// Replicated-database repair under Byzantine corruption — the paper's
// first motivating application ([7], [20]): replicas hold versions of a
// record, most are correct, some are corrupted, and an active adversary
// keeps re-corrupting up to F replicas per round. The cluster must
// converge to (and then hold) the correct version on all but O(F)
// replicas using the self-stabilizing 3-majority rule (Corollary 4).
//
//   $ ./replica_repair --replicas 1e6 --versions 4 --corrupt-budget 50
#include <iostream>

#include "core/adversary.hpp"
#include "core/majority.hpp"
#include "core/runner.hpp"
#include "core/workloads.hpp"
#include "io/table.hpp"
#include "support/cli.hpp"
#include "support/format.hpp"

int main(int argc, char** argv) {
  using namespace plurality;

  CliParser cli("replica_repair",
                "self-stabilizing version repair in a replicated database");
  cli.add_uint("replicas", 1'000'000, "number of replicas (nodes)");
  cli.add_uint("versions", 4, "number of distinct record versions in play");
  cli.add_double("correct-share", 0.4, "fraction of replicas holding the correct version");
  cli.add_uint("corrupt-budget", 50, "replicas the adversary can corrupt per round (F)");
  cli.add_uint("stability-rounds", 300, "rounds to verify stability after repair");
  cli.add_uint("seed", 11, "random seed");
  if (!cli.parse(argc, argv)) return 0;

  const count_t n = cli.get_uint("replicas");
  const auto versions = static_cast<state_t>(cli.get_uint("versions"));
  const count_t f = cli.get_uint("corrupt-budget");
  const count_t m = 4 * f + 8;  // tolerated residual corruption

  // Version 0 is "correct" and held by a plurality; the stale versions
  // split the rest evenly.
  const Configuration start =
      workloads::plurality_share(n, versions, cli.get_double("correct-share"));
  std::cout << "cluster: " << format_count(n) << " replicas, " << versions
            << " versions; correct version held by "
            << format_percent(static_cast<double>(start.at(0)) / static_cast<double>(n))
            << "\nadversary: re-corrupts up to " << f
            << " replicas per round (targeting the strongest rival version)\n"
            << "goal: all but M = " << m << " replicas on the correct version\n\n";

  ThreeMajority dynamics;
  BoostRunnerUp adversary(f);
  rng::Xoshiro256pp gen(cli.get_uint("seed"));

  // Phase 1: repair.
  RunOptions options;
  options.adversary = &adversary;
  options.max_rounds = 100'000;
  options.record_trajectory = true;
  options.stop_predicate = stop_at_m_plurality(m, 0);
  const RunResult repair = run_dynamics(dynamics, start, options, gen);

  io::Table trajectory({"round", "correct replicas", "corrupted replicas"});
  const std::size_t stride = std::max<std::size_t>(1, repair.trajectory.size() / 16);
  for (std::size_t i = 0; i < repair.trajectory.size(); ++i) {
    if (i % stride != 0 && i + 1 != repair.trajectory.size()) continue;
    const auto& pt = repair.trajectory[i];
    trajectory.row().cell(pt.round).cell(pt.plurality_count).cell(pt.minority_mass);
  }
  trajectory.print(std::cout);

  if (repair.reason != StopReason::PredicateMet &&
      repair.reason != StopReason::ColorConsensus) {
    std::cout << "\nrepair FAILED within the round budget (adversary too strong "
                 "for this bias — see Corollary 4's F = o(s/lambda) condition)\n";
    return 1;
  }
  std::cout << "\nrepaired to M-plurality consensus in " << repair.rounds
            << " rounds\n";

  // Phase 2: stability under continued attack (the "almost-stable phase
  // of poly(n) length" of Section 3.1).
  Configuration cluster = repair.final_config;
  count_t worst_corruption = cluster.n() - cluster.at(0);
  bool stable = true;
  const round_t window = cli.get_uint("stability-rounds");
  for (round_t round = 0; round < window; ++round) {
    step_count_based(dynamics, cluster, gen);
    adversary.corrupt(cluster, versions, round, gen);
    const count_t corrupted = cluster.n() - cluster.at(0);
    worst_corruption = std::max(worst_corruption, corrupted);
    if (corrupted > m) stable = false;
  }
  std::cout << "stability window (" << window << " rounds under attack): "
            << (stable ? "HELD" : "VIOLATED") << "; worst corruption seen: "
            << worst_corruption << " replicas (tolerance M = " << m << ")\n";
  return stable ? 0 : 1;
}
