// Quickstart: the 3-majority dynamics in ~30 lines of API.
//
//   $ ./quickstart --n 1e6 --k 5 --bias 30000
//
// Builds a biased k-color configuration, runs the 3-majority dynamics to
// plurality consensus, and prints the round-by-round trajectory.
#include <iostream>

#include "core/majority.hpp"
#include "core/runner.hpp"
#include "core/workloads.hpp"
#include "io/table.hpp"
#include "support/cli.hpp"
#include "support/format.hpp"

int main(int argc, char** argv) {
  using namespace plurality;

  CliParser cli("quickstart", "run the 3-majority dynamics once and watch it converge");
  cli.add_uint("n", 1'000'000, "number of nodes");
  cli.add_uint("k", 5, "number of colors");
  cli.add_uint("bias", 0, "initial bias s (0 = 2x the paper's critical scale)");
  cli.add_uint("seed", 42, "random seed");
  if (!cli.parse(argc, argv)) return 0;

  const count_t n = cli.get_uint("n");
  const auto k = static_cast<state_t>(cli.get_uint("k"));
  const count_t s = cli.get_uint("bias") != 0
                        ? cli.get_uint("bias")
                        : static_cast<count_t>(2.0 * workloads::critical_bias_scale(n, k));

  // 1. Build the initial configuration: bias s toward color 0.
  const Configuration start = workloads::additive_bias(n, k, s);
  std::cout << "n = " << format_count(n) << ", k = " << k << ", bias s = "
            << format_count(s) << " (critical scale: "
            << format_count(static_cast<count_t>(workloads::critical_bias_scale(n, k)))
            << ")\n\n";

  // 2. Run the dynamics, recording the trajectory.
  ThreeMajority dynamics;
  rng::Xoshiro256pp gen(cli.get_uint("seed"));
  RunOptions options;
  options.record_trajectory = true;
  const RunResult result = run_dynamics(dynamics, start, options, gen);

  // 3. Print it.
  io::Table table({"round", "plurality color", "plurality count", "bias s(t)",
                   "minority mass"});
  const std::size_t stride = std::max<std::size_t>(1, result.trajectory.size() / 24);
  for (std::size_t i = 0; i < result.trajectory.size(); ++i) {
    if (i % stride != 0 && i + 1 != result.trajectory.size()) continue;
    const auto& pt = result.trajectory[i];
    table.row()
        .cell(pt.round)
        .cell(static_cast<std::uint64_t>(pt.plurality_color))
        .cell(pt.plurality_count)
        .cell(pt.bias)
        .cell(pt.minority_mass);
  }
  table.print(std::cout);

  std::cout << "\nconsensus on color " << result.winner << " after " << result.rounds
            << " rounds — initial plurality "
            << (result.plurality_won ? "won" : "LOST") << "\n";
  return 0;
}
