// Quickstart: one declarative ScenarioSpec, compiled and run.
//
//   $ ./quickstart --n 1e6 --k 5 --bias 30000
//
// Describes a biased 3-majority scenario as a spec (the same object that
// parses from JSON files and "key=value" strings), lets the scenario layer
// pick the backend, and prints the trial summary. Swap any field —
// topology=regular:8, engine=batched, adversary=boost-runner-up:100 — and
// the same five lines run that scenario too.
#include <iostream>

#include "scenario/scenario.hpp"
#include "core/workloads.hpp"
#include "io/table.hpp"
#include "support/cli.hpp"
#include "support/format.hpp"

int main(int argc, char** argv) {
  using namespace plurality;

  CliParser cli("quickstart", "run the 3-majority dynamics and watch it converge");
  cli.add_uint("n", 1'000'000, "number of nodes");
  cli.add_uint("k", 5, "number of colors");
  cli.add_uint("bias", 0, "initial bias s (0 = 2x the paper's critical scale)");
  cli.add_uint("trials", 20, "independent trials");
  cli.add_uint("seed", 42, "random seed");
  if (!cli.parse(argc, argv)) return 0;

  // 1. Describe the experiment. "bias:2c" means twice the paper's critical
  //    bias scale; an explicit --bias overrides it.
  scenario::ScenarioSpec spec;
  spec.dynamics = "3-majority";
  spec.workload = cli.get_uint("bias") != 0
                      ? "bias:" + std::to_string(cli.get_uint("bias"))
                      : "bias:2c";
  spec.n = cli.get_uint("n");
  spec.k = static_cast<state_t>(cli.get_uint("k"));
  spec.trials = cli.get_uint("trials");
  spec.seed = cli.get_uint("seed");

  // 2. Compile (validates, resolves backend=auto) and run.
  const scenario::ScenarioResult result = scenario::run_scenario(spec);

  // 3. Print it.
  std::cout << "n = " << format_count(result.resolved.n) << ", k = " << result.resolved.k
            << ", workload " << result.resolved.workload << " (critical scale: "
            << format_count(static_cast<count_t>(workloads::critical_bias_scale(
                   result.resolved.n, result.resolved.k)))
            << "), backend " << result.resolved.backend << "\n\n";

  io::Table table({"metric", "value"});
  table.row().cell("trials").cell(result.summary.trials);
  table.row().cell("consensus rate").cell(format_percent(result.summary.consensus_rate()));
  table.row().cell("plurality win rate").cell(format_percent(result.summary.win_rate()));
  if (result.summary.rounds.count() > 0) {
    table.row().cell("rounds mean").cell(result.summary.rounds.mean(), 5);
    table.row().cell("rounds min/max").cell(
        format_sig(result.summary.rounds.min(), 4) + " / " +
        format_sig(result.summary.rounds.max(), 4));
  }
  table.row().cell("wall time").cell(format_duration(result.wall_seconds));
  table.print(std::cout);

  std::cout << "\nsame spec, other cells: topology=regular:8 | engine=batched | "
               "adversary=boost-runner-up:100\n";
  return 0;
}
