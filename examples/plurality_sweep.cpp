// plurality_sweep — run a whole scenario grid as one resumable job.
//
// A SweepSpec (JSON file or compact string) expands cartesian axes over any
// ScenarioSpec field into a cell grid; the orchestrator schedules cells
// work-stealing across OpenMP threads, checkpoints one result file per
// cell, and joins everything into aggregate.csv. Interrupt it any time —
// --resume continues from the completed cells.
//
//   $ ./plurality_sweep --sweep sweeps/consensus_vs_k.json --out-dir out/k_grid
//   $ ./plurality_sweep --grid "dynamics=3-majority workload=bias:2c n=2000 \
//         trials=8 k=2,4,8,16 engine=strict,batched" --out-dir out/quick
//   $ ./plurality_sweep --sweep sweeps/consensus_vs_k.json --out-dir out/k_grid \
//         --resume
//   $ ./plurality_sweep --sweep sweeps/adversary_budget.json --print-cells
#include <iostream>
#include <map>

#include "obs/trace.hpp"
#include "sweep/orchestrator.hpp"
#include "sweep/watchdog.hpp"
#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/format.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace plurality;

  CliParser cli("plurality_sweep",
                "expand, schedule, checkpoint, and aggregate a scenario grid");
  cli.add_string("sweep", "", "read the SweepSpec from this JSON file");
  cli.add_string("grid", "",
                 "compact sweep string: \"key=value[,value...] ...\" (commas make an axis)");
  cli.add_string("out-dir", "",
                 "checkpoint directory (manifest.json, cells/, aggregate.csv); empty "
                 "runs in memory only");
  cli.add_flag("resume", "skip cells whose result file already matches the grid");
  cli.add_flag("force", "start over inside a populated out-dir (overwrites cell files)");
  cli.add_uint("trials", 0, "override every cell's trial count (0 = spec values)");
  cli.add_flag("seq-cells",
               "run cells one at a time (each cell's trials then run OpenMP-parallel)");
  cli.add_uint("observe-m", 0,
               "track time-to-m-plurality with this m (adds ttm_* columns); overrides "
               "the spec's observe block");
  cli.add_uint("observe-trajectory", 0,
               "record this many per-trial trajectory rows per cell "
               "(cells/<id>_trajectory.csv)");
  cli.add_double("cell-timeout", 0.0,
                 "per-cell wall-clock deadline in seconds, watchdog-enforced "
                 "(0 = none); overruns count as failed_timeout and retry");
  cli.add_uint("retries", 2,
               "retries per cell after a retryable failure (timeout / crash / "
               "corrupt write); attempts persist across process deaths");
  cli.add_string("fault-plan", "",
                 "deterministic fault-injection plan (JSON); torture/CI use only");
  cli.add_uint("memory-budget-mb", 0,
               "preflight memory budget in MiB (0 = ~80% of physical RAM); "
               "oversized cells are refused as failed_spec");
  cli.add_flag("zero-wall-times",
               "write wall_seconds as 0 everywhere so identical grids produce "
               "bitwise-identical artifacts (CI golden comparisons)");
  cli.add_double("progress-seconds", 0.0,
                 "print an aggregate progress line (cells done/running/failed, "
                 "node-updates/s) every N seconds (0 = off)");
  cli.add_string("trace-out", "",
                 "write a Chrome trace-event JSON (cell attempts, trials, checkpoint "
                 "writes) to this file on exit");
  cli.add_flag("print-cells", "list the expanded cells and exit without running");
  cli.add_flag("quiet", "suppress per-cell progress lines");
  if (!cli.parse(argc, argv)) return 0;

  const bool from_file = !cli.get_string("sweep").empty();
  const bool from_grid = !cli.get_string("grid").empty();
  PLURALITY_REQUIRE(from_file != from_grid,
                    "plurality_sweep: pass exactly one of --sweep <file> or --grid "
                    "\"<spec>\" (see --help)");

  sweep::SweepSpec spec = from_file
                              ? sweep::SweepSpec::from_json_file(cli.get_string("sweep"))
                              : sweep::SweepSpec::parse(cli.get_string("grid"));
  if (cli.provided("observe-m")) {
    spec.observe.m_plurality = cli.get_uint("observe-m") > 0;
    spec.observe.m = cli.get_uint("observe-m");
  }
  if (cli.provided("observe-trajectory")) {
    spec.observe.trajectory = cli.get_uint("observe-trajectory");
  }

  if (cli.flag("print-cells")) {
    const auto cells = spec.expand();
    std::cout << cells.size() << " cells:\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      std::cout << "  " << sweep::cell_id(i) << "  " << cells[i].to_spec_string() << "\n";
    }
    return 0;
  }

  sweep::SweepOptions options;
  options.out_dir = cli.get_string("out-dir");
  options.resume = cli.flag("resume");
  options.force = cli.flag("force");
  options.cells_in_parallel = !cli.flag("seq-cells");
  options.trials_override = cli.get_uint("trials");
  options.cell_timeout_seconds = cli.get_double("cell-timeout");
  options.max_retries = static_cast<std::uint32_t>(cli.get_uint("retries"));
  options.memory_budget_bytes = cli.get_uint("memory-budget-mb") * (1ull << 20);
  options.zero_wall_times = cli.flag("zero-wall-times");
  options.progress_seconds = cli.get_double("progress-seconds");
  if (!cli.get_string("fault-plan").empty()) {
    options.fault_plan = sweep::FaultPlan::from_json_file(cli.get_string("fault-plan"));
  }
  if (!cli.flag("quiet")) {
    options.on_cell = [](const sweep::CellOutcome& cell, std::size_t done,
                         std::size_t total) {
      std::cout << "[" << done << "/" << total << "] " << cell.id << "  "
                << cell.requested.dynamics << " on " << cell.requested.topology << "  n="
                << format_count(cell.requested.n) << " k=" << cell.requested.k << "  ("
                << cell.resolved_backend << "/" << cell.requested.engine << ")"
                << (cell.resumed
                        ? "  [resumed]"
                        : "  rounds mean " +
                              (cell.metrics.rounds_mean >= 0
                                   ? format_sig(cell.metrics.rounds_mean, 4)
                                   : std::string("n/a")) +
                              ", " + format_duration(cell.metrics.wall_seconds))
                << "\n";
    };
  }

  const std::string trace_out = cli.get_string("trace-out");
  if (!trace_out.empty()) obs::TraceRecorder::global().enable();

  sweep::install_shutdown_signal_handlers();
  const sweep::SweepOutcome outcome = sweep::run_sweep(spec, options);
  if (!trace_out.empty()) obs::TraceRecorder::global().write(trace_out);

  std::cout << "\nsweep complete: " << outcome.cells.size() << " cells (" << outcome.ran
            << " ran, " << outcome.resumed << " resumed) in "
            << format_duration(outcome.wall_seconds) << "\n";
  if (!outcome.aggregate_path.empty()) {
    std::cout << "aggregate -> " << outcome.aggregate_path << "\n"
              << "manifest  -> " << outcome.manifest_path << "\n";
  }

  if (outcome.failed > 0) {
    // Per-taxonomy failure summary; the full table is failures.csv.
    std::map<std::string, std::size_t> by_status;
    for (const sweep::CellOutcome& cell : outcome.cells) {
      if (sweep::cell_status_failed(cell.status)) {
        ++by_status[sweep::cell_status_name(cell.status)];
      }
    }
    std::cerr << "plurality_sweep: " << outcome.failed << " of " << outcome.cells.size()
              << " cells failed:";
    for (const auto& [status, count] : by_status) {
      std::cerr << "  " << status << "=" << count;
    }
    std::cerr << "\n";
    for (const sweep::CellOutcome& cell : outcome.cells) {
      if (sweep::cell_status_failed(cell.status)) {
        std::cerr << "  " << cell.id << " [" << sweep::cell_status_name(cell.status)
                  << ", " << cell.attempts << " attempt(s)]: " << cell.error << "\n";
      }
    }
    if (!outcome.failures_path.empty()) {
      std::cerr << "failure table -> " << outcome.failures_path << "\n";
    }
    std::cerr << "completed cells are checkpointed; rerun with --resume to retry "
                 "just the failures\n";
    return 2;
  }
  if (outcome.interrupted) {
    std::cerr << "plurality_sweep: interrupted by shutdown request; the out-dir is "
                 "resumable (rerun with --resume)\n";
    return 130;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Spec/validation/resume errors are user errors, not crashes: print the
  // actionable message and exit nonzero (completed cells stay on disk).
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "plurality_sweep: " << e.what() << "\n";
    return 1;
  }
}
