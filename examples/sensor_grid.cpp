// Plurality consensus on a sensor grid — the sparse-topology extension,
// expressed as three scenario specs that differ only in their topology
// field.
//
//   $ ./sensor_grid --side 100 --k 3
//
// A field of battery-powered sensors laid out as a torus measures a
// discrete phenomenon (k classes) with noise; each sensor can only gossip
// with its four physical neighbors. The clique theory does not apply
// directly — this example shows how much locality costs by racing the same
// protocol on the torus, on a random 8-regular overlay (as if the sensors
// had a few long-range radio links), and on the idealized clique. One
// ScenarioSpec, three values of `topology`.
#include <iostream>

#include "io/table.hpp"
#include "scenario/scenario.hpp"
#include "support/cli.hpp"
#include "support/format.hpp"

int main(int argc, char** argv) {
  using namespace plurality;

  CliParser cli("sensor_grid", "3-majority gossip on physical vs overlay topologies");
  cli.add_uint("side", 100, "torus side length (n = side^2 sensors)");
  cli.add_uint("k", 3, "number of phenomenon classes");
  cli.add_double("true-share", 0.45, "fraction of sensors observing the true class");
  cli.add_uint("trials", 10, "independent runs per topology");
  cli.add_uint("max-rounds", 50000, "round cap per run");
  cli.add_uint("seed", 21, "random seed");
  if (!cli.parse(argc, argv)) return 0;

  const count_t side = cli.get_uint("side");
  const count_t n = side * side;
  const auto k = static_cast<state_t>(cli.get_uint("k"));

  // The scenario template every topology shares. backend=graph keeps the
  // clique row per-agent too, so all three rows simulate the same process
  // (auto would route the clique to the count backend).
  scenario::ScenarioSpec spec;
  spec.dynamics = "3-majority";
  spec.workload = "share:" + std::to_string(cli.get_double("true-share"));
  spec.backend = "graph";
  spec.n = n;
  spec.k = k;
  spec.trials = cli.get_uint("trials");
  spec.max_rounds = cli.get_uint("max-rounds");
  spec.seed = cli.get_uint("seed");

  std::cout << "sensors: " << format_count(n) << " on a " << side << "x" << side
            << " torus; true class observed by "
            << format_percent(cli.get_double("true-share")) << " of sensors\n\n";

  struct Entry {
    const char* name;
    std::string topology;
  };
  const Entry entries[] = {{"physical torus (deg 4)", "torus"},
                           {"radio overlay (8-regular)", "regular:8"},
                           {"idealized clique", "clique"}};

  io::Table table({"topology", "consensus rate", "true class wins",
                   "rounds (mean)", "wall time/run"});
  for (const auto& entry : entries) {
    spec.topology = entry.topology;
    const scenario::ScenarioResult result = scenario::run_scenario(spec);
    const TrialSummary& summary = result.summary;
    table.row()
        .cell(entry.name)
        .percent(summary.consensus_rate())
        .percent(summary.win_rate())
        .cell(summary.consensus_count > 0 ? format_sig(summary.rounds.mean(), 4)
                                          : std::string("> cap"))
        .cell(format_duration(result.wall_seconds /
                              static_cast<double>(summary.trials)));
  }
  table.print(std::cout);

  std::cout << "\n(a handful of long-range links recovers nearly clique-speed\n"
               " consensus — the expander overlay is what gossip deployments\n"
               " actually build.)\n";
  return 0;
}
