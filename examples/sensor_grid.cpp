// Plurality consensus on a sensor grid — the sparse-topology extension.
//
//   $ ./sensor_grid --side 100 --k 3
//
// A field of battery-powered sensors laid out as a torus measures a
// discrete phenomenon (k classes) with noise; each sensor can only gossip
// with its four physical neighbors. The clique theory does not apply
// directly — this example shows how much locality costs by racing the same
// protocol on the torus, on a random 8-regular overlay (as if the sensors
// had a few long-range radio links), and on the idealized clique.
#include <iostream>

#include "core/majority.hpp"
#include "core/workloads.hpp"
#include "graph/agent_graph.hpp"
#include "graph/builders.hpp"
#include "io/table.hpp"
#include "support/cli.hpp"
#include "support/format.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace plurality;

  CliParser cli("sensor_grid", "3-majority gossip on physical vs overlay topologies");
  cli.add_uint("side", 100, "torus side length (n = side^2 sensors)");
  cli.add_uint("k", 3, "number of phenomenon classes");
  cli.add_double("true-share", 0.45, "fraction of sensors observing the true class");
  cli.add_uint("trials", 10, "independent runs per topology");
  cli.add_uint("max-rounds", 50000, "round cap per run");
  cli.add_uint("seed", 21, "random seed");
  if (!cli.parse(argc, argv)) return 0;

  const count_t side = cli.get_uint("side");
  const count_t n = side * side;
  const auto k = static_cast<state_t>(cli.get_uint("k"));
  const std::uint64_t trials = cli.get_uint("trials");
  const auto max_rounds = static_cast<round_t>(cli.get_uint("max-rounds"));

  const Configuration readings =
      workloads::plurality_share(n, k, cli.get_double("true-share"));
  std::cout << "sensors: " << format_count(n) << " on a " << side << "x" << side
            << " torus; true class observed by "
            << format_percent(cli.get_double("true-share")) << " of sensors\n\n";

  rng::Xoshiro256pp topo_gen(cli.get_uint("seed"));
  const auto torus = graph::torus(side, side);
  const auto overlay = graph::random_regular(n, 8, topo_gen);
  const auto clique = graph::Topology::complete(n);

  struct Entry {
    const char* name;
    const graph::Topology* topology;
  };
  const Entry entries[] = {{"physical torus (deg 4)", &torus},
                           {"radio overlay (8-regular)", &overlay},
                           {"idealized clique", &clique}};

  ThreeMajority dynamics;
  io::Table table({"topology", "consensus rate", "true class wins",
                   "rounds (mean)", "wall time/run"});
  for (const auto& entry : entries) {
    std::uint64_t consensus = 0, wins = 0;
    double rounds_sum = 0;
    WallTimer timer;
    for (std::uint64_t t = 0; t < trials; ++t) {
      graph::GraphSimulation sim(dynamics, *entry.topology, readings,
                                 cli.get_uint("seed") + 100 + t);
      const round_t used = sim.run_to_consensus(max_rounds);
      if (!sim.configuration().color_consensus(k)) continue;
      ++consensus;
      rounds_sum += static_cast<double>(used);
      wins += (sim.configuration().at(0) == n);
    }
    table.row()
        .cell(entry.name)
        .percent(static_cast<double>(consensus) / static_cast<double>(trials))
        .percent(static_cast<double>(wins) / static_cast<double>(trials))
        .cell(consensus > 0 ? format_sig(rounds_sum / static_cast<double>(consensus), 4)
                            : std::string("> cap"))
        .cell(format_duration(timer.seconds() / static_cast<double>(trials)));
  }
  table.print(std::cout);

  std::cout << "\n(a handful of long-range links recovers nearly clique-speed\n"
               " consensus — the expander overlay is what gossip deployments\n"
               " actually build.)\n";
  return 0;
}
