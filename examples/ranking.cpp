// Distributed item ranking — the paper's motivating application [21]:
// every node initially prefers some item, and the network must agree on
// the most popular one using only constant-size random samples per round.
//
//   $ ./ranking --n 1e6 --items 50 --theta 0.6 --trials 25
//
// Item popularity follows a Zipf(theta) law (realistic ranking workloads);
// each trial draws every node's initial preference from that law, so the
// realized plurality and bias fluctuate per trial. The example reports how
// often the 3-majority dynamics elects the TRUE most popular item, how
// long it takes, and how that compares with the voter baseline.
#include <iostream>

#include "core/majority.hpp"
#include "core/trials.hpp"
#include "core/voter.hpp"
#include "core/workloads.hpp"
#include "io/table.hpp"
#include "rng/discrete.hpp"
#include "support/cli.hpp"
#include "support/format.hpp"

int main(int argc, char** argv) {
  using namespace plurality;

  CliParser cli("ranking", "agree on the most popular item via 3-majority sampling");
  cli.add_uint("n", 1'000'000, "number of nodes");
  cli.add_uint("items", 50, "number of items (colors)");
  cli.add_double("theta", 0.6, "Zipf skew of item popularity (0 = uniform)");
  cli.add_uint("trials", 25, "independent elections");
  cli.add_uint("seed", 7, "random seed");
  if (!cli.parse(argc, argv)) return 0;

  const count_t n = cli.get_uint("n");
  const auto items = static_cast<state_t>(cli.get_uint("items"));
  const double theta = cli.get_double("theta");
  const std::uint64_t trials = cli.get_uint("trials");

  std::vector<double> popularity = rng::zipf_weights(items, theta);
  rng::normalize_weights(popularity);
  std::cout << "item popularity: Zipf(theta=" << theta << ") over " << items
            << " items; top item holds " << format_percent(popularity[0])
            << " in expectation\n";
  const double expected_bias =
      static_cast<double>(n) * (popularity[0] - popularity[1]);
  std::cout << "expected bias: " << format_count(static_cast<count_t>(expected_bias))
            << " vs critical scale "
            << format_count(static_cast<count_t>(workloads::critical_bias_scale(n, items)))
            << "\n\n";

  // Each trial samples node preferences i.i.d. from the popularity law.
  const ConfigFactory workload = [&](std::uint64_t, rng::Xoshiro256pp& gen) {
    return workloads::sample_from_weights(n, popularity, gen);
  };

  ThreeMajority majority;
  Voter voter;
  io::Table table({"protocol", "samples/round/node", "elects true top item",
                   "rounds (mean)", "rounds (max)"});
  for (const Dynamics* dynamics :
       {static_cast<const Dynamics*>(&majority), static_cast<const Dynamics*>(&voter)}) {
    CommonTrialOptions options;
    options.trials = trials;
    options.seed = cli.get_uint("seed");
    options.max_rounds = 5'000'000;
    const TrialSummary summary = run_trials(*dynamics, workload, options);
    table.row()
        .cell(dynamics->name())
        .cell(static_cast<std::uint64_t>(dynamics->sample_arity()))
        .percent(summary.win_rate())
        .cell(summary.rounds.count() > 0 ? format_sig(summary.rounds.mean(), 4) : "-")
        .cell(summary.rounds.count() > 0 ? format_sig(summary.rounds.max(), 4) : "-");
  }
  table.print(std::cout);

  std::cout << "\n(three samples per node per round suffice to elect the plurality\n"
               " item essentially always; one sample — the polling baseline — picks\n"
               " an item with probability only proportional to its popularity.)\n";
  return 0;
}
