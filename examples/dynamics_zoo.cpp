// The dynamics zoo: every protocol in the library racing from the same
// starting configuration — a one-screen empirical summary of the paper.
//
//   $ ./dynamics_zoo --n 2e5 --k 6
//
// From a configuration with the plurality on an extreme color, watch:
// 3-majority win the plurality; h-plurality win faster as h grows; the
// median dynamics converge quickly but to the WRONG (median) color; the
// voter / 2-choices pair forget the bias; and the undecided-state protocol
// race ahead using its one extra memory state.
#include <iostream>
#include <memory>

#include "core/hplurality.hpp"
#include "core/majority.hpp"
#include "core/median.hpp"
#include "core/trials.hpp"
#include "core/undecided.hpp"
#include "core/voter.hpp"
#include "core/workloads.hpp"
#include "io/table.hpp"
#include "stats/quantile.hpp"
#include "support/cli.hpp"
#include "support/format.hpp"

int main(int argc, char** argv) {
  using namespace plurality;

  CliParser cli("dynamics_zoo", "all dynamics from one start, side by side");
  cli.add_uint("n", 200'000, "number of nodes");
  cli.add_uint("k", 6, "number of colors");
  cli.add_uint("trials", 40, "trials per dynamics");
  cli.add_uint("seed", 3, "random seed");
  if (!cli.parse(argc, argv)) return 0;

  const count_t n = cli.get_uint("n");
  const auto k = static_cast<state_t>(cli.get_uint("k"));
  const std::uint64_t trials = cli.get_uint("trials");

  // Plurality (30%) on color 0, an extreme of the ordered color range, so
  // plurality and median disagree; the rest balanced.
  const Configuration start = workloads::plurality_share(n, k, 0.3);
  std::cout << "start: " << start.to_string() << "\n"
            << "initial plurality: color 0 at "
            << format_percent(static_cast<double>(start.at(0)) / static_cast<double>(n))
            << " — value-median sits at color " << (k / 2) / 2 + 1 << "-ish\n\n";

  const ThreeMajority majority;
  const HPlurality h5(5), h9(9);
  const MedianDynamics median;
  const MedianOwnTwo median_own;
  const Voter voter;
  const TwoChoices two_choices;
  const UndecidedState undecided;

  struct Entry {
    const Dynamics* dynamics;
    const char* memory;
  };
  const Entry entries[] = {
      {&majority, "none"},      {&h5, "none"},      {&h9, "none"},
      {&median, "none"},        {&median_own, "own color"},
      {&voter, "none"},         {&two_choices, "none"},
      {&undecided, "1 extra state"},
  };

  io::Table table({"dynamics", "samples", "memory", "consensus rate",
                   "plurality wins", "rounds (mean)", "rounds (p95)"});
  for (const auto& entry : entries) {
    const Dynamics& dynamics = *entry.dynamics;
    const Configuration protocol_start =
        dynamics.num_states(k) > k ? UndecidedState::extend_with_undecided(start)
                                   : start;
    TrialOptions options;
    options.trials = trials;
    options.seed = cli.get_uint("seed");
    options.run.max_rounds = 2'000'000;
    // Large-h exact laws are gated; fall back to the agent backend.
    if (!dynamics.has_exact_law(protocol_start.k())) {
      options.run.backend = Backend::Agent;
      options.trials = std::min<std::uint64_t>(trials, 10);
    }
    const TrialSummary summary = run_trials(dynamics, protocol_start, options);
    const bool finished = summary.rounds.count() > 0;
    table.row()
        .cell(dynamics.name())
        .cell(static_cast<std::uint64_t>(dynamics.sample_arity()))
        .cell(entry.memory)
        .percent(summary.consensus_rate())
        .percent(summary.win_rate())
        .cell(finished ? format_sig(summary.rounds.mean(), 4) : std::string("> cap"))
        .cell(finished ? format_sig(stats::quantile(summary.round_samples, 0.95), 4)
                       : std::string("-"));
  }
  table.print(std::cout);

  std::cout
      << "\nreading guide (all paper results, one table):\n"
         "  * 3-majority / h-plurality: plurality wins ~100%; larger h is\n"
         "    faster but by at most ~h^2 (Theorem 4)\n"
         "  * median rules: fast consensus for any k, but on the median\n"
         "    color, not the plurality (Theorem 3's non-uniform rules)\n"
         "  * voter & 2-choices: identical by Section 1's equivalence, win\n"
         "    only in proportion to the initial share\n"
         "  * undecided-state: fastest here (md(c) is small) but needs the\n"
         "    extra state and fails for k = omega(sqrt n)\n";
  return 0;
}
