// The dynamics zoo: every protocol in the library racing from the same
// starting configuration — a one-screen empirical summary of the paper.
//
//   $ ./dynamics_zoo --n 2e5 --k 6
//
// From a configuration with the plurality on an extreme color, watch:
// 3-majority win the plurality; h-plurality win faster as h grows; the
// median dynamics converge quickly but to the WRONG (median) color; the
// voter / 2-choices pair forget the bias; and the undecided-state protocol
// race ahead using its one extra memory state. The whole sweep is one
// ScenarioSpec with the `dynamics` field iterated over the registry —
// registry metadata (describe_dynamics) fills the samples/memory columns,
// and backend=auto drops large-h protocols onto the agent backend by
// itself.
#include <iostream>

#include "core/registry.hpp"
#include "io/table.hpp"
#include "scenario/scenario.hpp"
#include "support/cli.hpp"
#include "support/format.hpp"

int main(int argc, char** argv) {
  using namespace plurality;

  CliParser cli("dynamics_zoo", "all dynamics from one start, side by side");
  cli.add_uint("n", 200'000, "number of nodes");
  cli.add_uint("k", 6, "number of colors");
  cli.add_uint("trials", 40, "trials per dynamics");
  cli.add_uint("seed", 3, "random seed");
  if (!cli.parse(argc, argv)) return 0;

  const count_t n = cli.get_uint("n");
  const auto k = static_cast<state_t>(cli.get_uint("k"));
  const std::uint64_t trials = cli.get_uint("trials");

  // Plurality (30%) on color 0, an extreme of the ordered color range, so
  // plurality and median disagree; the rest balanced.
  scenario::ScenarioSpec spec;
  spec.workload = "share:0.3";
  spec.n = n;
  spec.k = k;
  spec.trials = trials;
  spec.seed = cli.get_uint("seed");
  spec.max_rounds = 2'000'000;

  std::cout << "start: share:0.3 — initial plurality: color 0 at 30%"
            << " — value-median sits at color " << (k / 2) / 2 + 1 << "-ish\n\n";

  const char* zoo[] = {"3-majority", "5-plurality", "9-plurality", "3-median",
                       "median-own2", "voter", "2-choices", "undecided"};

  io::Table table({"dynamics", "samples", "memory bits", "backend", "consensus rate",
                   "plurality wins", "rounds (mean)", "rounds (p95)"});
  for (const char* name : zoo) {
    const DynamicsInfo info = describe_dynamics(name);
    spec.dynamics = name;
    // Large-h exact laws are gated; backend=auto falls back to the agent
    // sampler — cap its Θ(n·h) trials.
    spec.trials = spec.resolved_backend() == "agent" ? std::min<std::uint64_t>(trials, 10)
                                                     : trials;
    const scenario::ScenarioResult result = scenario::run_scenario(spec);
    const TrialSummary& summary = result.summary;
    const bool finished = summary.rounds.count() > 0;
    table.row()
        .cell(info.display_name)
        .cell(static_cast<std::uint64_t>(info.sample_arity))
        .cell(static_cast<std::uint64_t>(info.memory_bits))
        .cell(result.resolved.backend)
        .percent(summary.consensus_rate())
        .percent(summary.win_rate())
        .cell(finished ? format_sig(summary.rounds.mean(), 4) : std::string("> cap"))
        .cell(finished ? format_sig(summary.rounds_p(0.95), 4)
                       : std::string("-"));
  }
  table.print(std::cout);

  std::cout
      << "\nreading guide (all paper results, one table):\n"
         "  * 3-majority / h-plurality: plurality wins ~100%; larger h is\n"
         "    faster but by at most ~h^2 (Theorem 4)\n"
         "  * median rules: fast consensus for any k, but on the median\n"
         "    color, not the plurality (Theorem 3's non-uniform rules)\n"
         "  * voter & 2-choices: identical by Section 1's equivalence, win\n"
         "    only in proportion to the initial share\n"
         "  * undecided-state: fastest here (md(c) is small) but needs the\n"
         "    extra state and fails for k = omega(sqrt n)\n";
  return 0;
}
