// plurality_sim — the general-purpose simulator CLI, now a thin shell
// around the scenario API: every run is a ScenarioSpec, whether it arrives
// as a JSON file (--spec), a compact spec string (--scenario), or the
// classic flags (which just fill spec fields).
//
//   $ ./plurality_sim --dynamics 3-majority --workload bias:2c --n 1e7 --k 8
//   $ ./plurality_sim --scenario "dynamics=undecided topology=regular:8 \
//         workload=zipf:0.8 n=1e6 k=50 engine=batched trials=32"
//   $ ./plurality_sim --spec scenarios/graph_batched.json --out result.json
//   $ ./plurality_sim --dynamics undecided --workload zipf:0.8 --n 1e6 \
//         --k 50 --trajectory
//   $ ./plurality_sim --list
#include <filesystem>
#include <iostream>

#include "core/adversary.hpp"
#include "core/registry.hpp"
#include "core/runner.hpp"
#include "core/workloads.hpp"
#include "graph/topology_registry.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"
#include "scenario/scenario.hpp"
#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/format.hpp"
#include "support/timer.hpp"

namespace {

using namespace plurality;

void print_catalog() {
  io::Table table({"dynamics", "protocol", "h", "aux states", "memory bits",
                   "own-state law", "exact law (k=8)"});
  for (const DynamicsInfo& info : dynamics_catalog()) {
    table.row()
        .cell(info.name)
        .cell(info.display_name)
        .cell(static_cast<std::uint64_t>(info.sample_arity))
        .cell(static_cast<std::uint64_t>(info.aux_states))
        .cell(static_cast<std::uint64_t>(info.memory_bits))
        .cell(info.law_depends_on_own_state ? "yes" : "no")
        .cell(info.exact_law_at_k8 ? "yes" : "no");
  }
  table.print(std::cout);
  std::cout << "(any \"<h>-plurality\" constructs; the list shows the members whose\n"
               " exact law fits the default enumeration budget)\n\n";

  const auto print_grammar = [](const char* what, const std::vector<std::string>& names) {
    std::cout << what << ": ";
    for (std::size_t i = 0; i < names.size(); ++i) {
      std::cout << (i > 0 ? " | " : "") << names[i];
    }
    std::cout << "\n";
  };
  print_grammar("workloads", workloads::workload_names());
  print_grammar("topologies", graph::topology_names());
  print_grammar("adversaries", adversary_names());
  std::cout << "stops: consensus | m-plurality:<M> | any-reaches:<T>\n"
            << "backends: auto | count | agent | graph    engines: strict | batched\n";
}

/// Runs the --trajectory mode: one run, round-by-round table (count path;
/// the compiled scenario supplies the dynamics/start/backend resolution).
int run_trajectory(const scenario::Scenario& compiled, const std::string& csv_path) {
  PLURALITY_REQUIRE(!compiled.uses_graph_driver(),
                    "--trajectory is a count-path feature; drop it or set "
                    "topology=clique");
  const auto& spec = compiled.spec();
  rng::Xoshiro256pp gen(spec.seed);
  RunOptions options;
  options.max_rounds = spec.max_rounds;
  options.record_trajectory = true;
  options.backend = spec.backend == "agent" ? Backend::Agent : Backend::CountBased;
  options.engine = compiled.options().mode;
  options.adversary = compiled.adversary();
  options.stop_predicate = compiled.options().stop_predicate;
  const RunResult result = run_dynamics(compiled.dynamics(), compiled.start(), options, gen);

  io::Table table({"round", "plurality", "count", "bias", "minority"});
  io::CsvWriter csv =
      csv_path.empty() ? io::CsvWriter() : io::CsvWriter(csv_path, table.headers());
  const std::size_t stride = std::max<std::size_t>(1, result.trajectory.size() / 32);
  for (std::size_t i = 0; i < result.trajectory.size(); ++i) {
    const auto& pt = result.trajectory[i];
    csv.add_row({std::to_string(pt.round), std::to_string(pt.plurality_color),
                 std::to_string(pt.plurality_count), std::to_string(pt.bias),
                 std::to_string(pt.minority_mass)});
    if (i % stride != 0 && i + 1 != result.trajectory.size()) continue;
    table.row()
        .cell(pt.round)
        .cell(static_cast<std::uint64_t>(pt.plurality_color))
        .cell(pt.plurality_count)
        .cell(pt.bias)
        .cell(pt.minority_mass);
  }
  table.print(std::cout);
  std::cout << "\nstopped after " << result.rounds << " rounds: "
            << (result.reason == StopReason::ColorConsensus
                    ? (result.plurality_won ? "consensus on the initial plurality"
                                            : "consensus on a NON-plurality color")
                    : "no consensus within the round cap")
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("plurality_sim", "run any scenario: one declarative spec, any backend");
  cli.add_string("spec", "", "read the ScenarioSpec from this JSON file");
  cli.add_string("scenario", "", "compact spec string: \"key=value ...\" (see --list)");
  cli.add_string("dynamics", "3-majority", "protocol name (see --list)");
  cli.add_string("workload", "bias:2c", "initial configuration spec (see --list)");
  cli.add_string("topology", "clique", "topology spec (see --list)");
  cli.add_string("adversary", "none", "adversary spec (see --list)");
  cli.add_string("backend", "auto", "auto | count | agent | graph");
  cli.add_string("engine", "strict", "strict | batched");
  cli.add_string("stop", "consensus", "consensus | m-plurality:<M> | any-reaches:<T>");
  cli.add_uint("n", 1'000'000, "number of nodes");
  cli.add_uint("k", 4, "number of colors");
  cli.add_uint("trials", 20, "independent trials");
  cli.add_uint("seed", 1, "master seed");
  cli.add_uint("max-rounds", 10'000'000, "round cap per trial");
  cli.add_flag("agent", "force the agent-level backend (same as --backend agent)");
  cli.add_flag("trajectory", "print one trial's round-by-round trajectory");
  cli.add_string("csv", "", "write the trajectory to this CSV path");
  cli.add_string("out", "", "write the ScenarioResult JSON to this path");
  cli.add_flag("force", "allow --out to overwrite an existing result file");
  cli.add_flag("print-spec", "print the resolved spec JSON and exit without running");
  cli.add_flag("list", "list dynamics, workloads, topologies, adversaries, then exit");
  if (!cli.parse(argc, argv)) return 0;

  if (cli.flag("list")) {
    print_catalog();
    return 0;
  }

  // Build the spec: file < string < explicitly-provided flags (so a CI
  // matrix can shrink a committed spec with --trials 2).
  scenario::ScenarioSpec spec;
  if (!cli.get_string("spec").empty()) {
    spec = scenario::ScenarioSpec::from_json_file(cli.get_string("spec"));
  } else if (!cli.get_string("scenario").empty()) {
    spec = scenario::ScenarioSpec::parse(cli.get_string("scenario"));
  }
  const bool from_file = !cli.get_string("spec").empty() || !cli.get_string("scenario").empty();
  const auto take_string = [&](const char* flag, std::string& field) {
    if (!from_file || cli.provided(flag)) field = cli.get_string(flag);
  };
  take_string("dynamics", spec.dynamics);
  take_string("workload", spec.workload);
  take_string("topology", spec.topology);
  take_string("adversary", spec.adversary);
  take_string("backend", spec.backend);
  take_string("engine", spec.engine);
  take_string("stop", spec.stop);
  if (!from_file || cli.provided("n")) spec.n = cli.get_uint("n");
  if (!from_file || cli.provided("k")) spec.k = static_cast<state_t>(cli.get_uint("k"));
  if (!from_file || cli.provided("trials")) spec.trials = cli.get_uint("trials");
  if (!from_file || cli.provided("seed")) spec.seed = cli.get_uint("seed");
  if (!from_file || cli.provided("max-rounds")) spec.max_rounds = cli.get_uint("max-rounds");
  if (cli.flag("agent")) spec.backend = "agent";

  const scenario::Scenario compiled = scenario::Scenario::compile(spec);
  const auto& resolved = compiled.spec();

  if (cli.flag("print-spec")) {
    std::cout << resolved.to_json().to_string();
    return 0;
  }

  // Check --out BEFORE running (but after the non-writing --print-spec
  // exit): result files are what sweep resume (and any human reading them
  // later) trusts, so a stale file must never be clobbered silently — and
  // refusing after the trials ran would waste the run.
  const std::string out_path = cli.get_string("out");
  PLURALITY_REQUIRE(out_path.empty() || cli.flag("force") ||
                        !std::filesystem::exists(out_path),
                    "plurality_sim: --out " << out_path
                        << " already exists; pass --force to overwrite it");

  const state_t colors = compiled.dynamics().num_colors(compiled.start().k());
  std::cout << "dynamics:  " << compiled.dynamics().name() << " ("
            << compiled.dynamics().sample_arity() << " samples/node/round)\n"
            << "workload:  " << resolved.workload << "  ->  n = "
            << format_count(compiled.start().n()) << ", k = " << colors << ", bias s = "
            << format_count(compiled.start().bias(colors)) << " (critical scale "
            << format_count(static_cast<count_t>(
                   workloads::critical_bias_scale(resolved.n, colors)))
            << ")\n"
            << "topology:  " << resolved.topology << "\n"
            << "backend:   " << resolved.backend << " / " << resolved.engine
            << (resolved.adversary != "none" ? "   adversary: " + resolved.adversary : "")
            << "\n";

  if (cli.flag("trajectory")) {
    return run_trajectory(compiled, cli.get_string("csv"));
  }

  WallTimer timer;
  scenario::ScenarioResult result;
  result.resolved = resolved;
  result.summary = compiled.run();
  result.wall_seconds = timer.seconds();
  const TrialSummary& summary = result.summary;

  io::Table table({"metric", "value"});
  table.row().cell("trials").cell(summary.trials);
  table.row().cell("consensus rate").cell(format_percent(summary.consensus_rate()));
  table.row().cell("plurality win rate").cell(format_percent(summary.win_rate()));
  const auto ci = summary.win_ci();
  table.row().cell("win rate 95% CI").cell(
      format_percent(ci.low) + " .. " + format_percent(ci.high));
  if (summary.predicate_stops > 0) {
    table.row().cell("predicate stops").cell(summary.predicate_stops);
  }
  if (summary.rounds.count() > 0) {
    table.row().cell("rounds mean").cell(summary.rounds.mean(), 5);
    table.row().cell("rounds min/max").cell(
        format_sig(summary.rounds.min(), 4) + " / " + format_sig(summary.rounds.max(), 4));
    table.row().cell("rounds p50").cell(summary.rounds_p(0.5), 5);
    table.row().cell("rounds p95").cell(summary.rounds_p(0.95), 5);
  }
  table.row().cell("wall time").cell(format_duration(timer.seconds()));
  table.print(std::cout);

  if (!out_path.empty()) {
    io::write_json_file(out_path, scenario::scenario_result_to_json(result));
    std::cout << "\nresult JSON -> " << out_path << "\n";
  }
  return 0;
}
