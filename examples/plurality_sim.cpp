// plurality_sim — the general-purpose simulator CLI.
//
// Any dynamics in the library x any workload x any scale, with trial
// statistics and optional per-round trajectories and CSV output:
//
//   $ ./plurality_sim --dynamics 3-majority --workload bias:2c --n 1e7 --k 8
//   $ ./plurality_sim --dynamics 7-plurality --workload near-balanced:0.25 \
//         --n 1e5 --k 16 --trials 50
//   $ ./plurality_sim --dynamics undecided --workload zipf:0.8 --n 1e6 \
//         --k 50 --trajectory
//   $ ./plurality_sim --list
#include <iostream>

#include "core/registry.hpp"
#include "core/trials.hpp"
#include "core/undecided.hpp"
#include "core/workloads.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"
#include "stats/quantile.hpp"
#include "support/cli.hpp"
#include "support/format.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace plurality;

  CliParser cli("plurality_sim", "run any dynamics on any workload at any scale");
  cli.add_string("dynamics", "3-majority", "protocol name (see --list)");
  cli.add_string("workload", "bias:2c", "initial configuration spec (see workloads.hpp)");
  cli.add_uint("n", 1'000'000, "number of nodes");
  cli.add_uint("k", 4, "number of colors");
  cli.add_uint("trials", 20, "independent trials");
  cli.add_uint("seed", 1, "master seed");
  cli.add_uint("max-rounds", 10'000'000, "round cap per trial");
  cli.add_flag("agent", "force the agent-level backend");
  cli.add_flag("trajectory", "print one trial's round-by-round trajectory");
  cli.add_string("csv", "", "write the trajectory to this CSV path");
  cli.add_flag("list", "list dynamics names and workload specs, then exit");
  if (!cli.parse(argc, argv)) return 0;

  if (cli.flag("list")) {
    std::cout << "dynamics:\n";
    for (const auto& name : dynamics_names()) std::cout << "  " << name << "\n";
    std::cout << "workloads: balanced | bias:<s|mult'c'> | share:<x> | zipf:<theta>"
                 " | near-balanced:<eps> | lemma10:<s> | theorem3:<s>\n";
    return 0;
  }

  const count_t n = cli.get_uint("n");
  const auto k = static_cast<state_t>(cli.get_uint("k"));
  const auto dynamics = make_dynamics(cli.get_string("dynamics"));
  Configuration start = workloads::parse_workload(cli.get_string("workload"), n, k);
  if (dynamics->num_states(start.k()) > start.k()) {
    start = UndecidedState::extend_with_undecided(start);
  }
  const state_t colors = dynamics->num_colors(start.k());

  std::cout << "dynamics:  " << dynamics->name() << " (" << dynamics->sample_arity()
            << " samples/node/round)\n"
            << "workload:  " << cli.get_string("workload") << "  ->  n = "
            << format_count(start.n()) << ", k = " << colors << ", bias s = "
            << format_count(start.bias(colors)) << " (critical scale "
            << format_count(static_cast<count_t>(workloads::critical_bias_scale(n, colors)))
            << ")\n";

  RunOptions run_options;
  run_options.max_rounds = cli.get_uint("max-rounds");
  if (cli.flag("agent") || !dynamics->has_exact_law(start.k())) {
    run_options.backend = Backend::Agent;
    std::cout << "backend:   agent-level (O(n*h) per round)\n";
  } else {
    std::cout << "backend:   count-based (exact multinomial, O(k) per round)\n";
  }

  if (cli.flag("trajectory")) {
    rng::Xoshiro256pp gen(cli.get_uint("seed"));
    run_options.record_trajectory = true;
    const RunResult result = run_dynamics(*dynamics, start, run_options, gen);
    io::Table table({"round", "plurality", "count", "bias", "minority"});
    io::CsvWriter csv = cli.get_string("csv").empty()
                            ? io::CsvWriter()
                            : io::CsvWriter(cli.get_string("csv"), table.headers());
    const std::size_t stride = std::max<std::size_t>(1, result.trajectory.size() / 32);
    for (std::size_t i = 0; i < result.trajectory.size(); ++i) {
      const auto& pt = result.trajectory[i];
      csv.add_row({std::to_string(pt.round), std::to_string(pt.plurality_color),
                   std::to_string(pt.plurality_count), std::to_string(pt.bias),
                   std::to_string(pt.minority_mass)});
      if (i % stride != 0 && i + 1 != result.trajectory.size()) continue;
      table.row()
          .cell(pt.round)
          .cell(static_cast<std::uint64_t>(pt.plurality_color))
          .cell(pt.plurality_count)
          .cell(pt.bias)
          .cell(pt.minority_mass);
    }
    table.print(std::cout);
    std::cout << "\nstopped after " << result.rounds << " rounds: "
              << (result.reason == StopReason::ColorConsensus
                      ? (result.plurality_won ? "consensus on the initial plurality"
                                              : "consensus on a NON-plurality color")
                      : "no consensus within the round cap")
              << "\n";
    return 0;
  }

  WallTimer timer;
  TrialOptions trial_options;
  trial_options.trials = cli.get_uint("trials");
  trial_options.seed = cli.get_uint("seed");
  trial_options.run = run_options;
  const TrialSummary summary = run_trials(*dynamics, start, trial_options);

  io::Table table({"metric", "value"});
  table.row().cell("trials").cell(summary.trials);
  table.row().cell("consensus rate").cell(format_percent(summary.consensus_rate()));
  table.row().cell("plurality win rate").cell(format_percent(summary.win_rate()));
  const auto ci = summary.win_ci();
  table.row().cell("win rate 95% CI").cell(
      format_percent(ci.low) + " .. " + format_percent(ci.high));
  if (summary.rounds.count() > 0) {
    table.row().cell("rounds mean").cell(summary.rounds.mean(), 5);
    table.row().cell("rounds min/max").cell(
        format_sig(summary.rounds.min(), 4) + " / " + format_sig(summary.rounds.max(), 4));
    table.row().cell("rounds p50").cell(stats::median(summary.round_samples), 5);
    table.row().cell("rounds p95").cell(stats::quantile(summary.round_samples, 0.95), 5);
  }
  table.row().cell("wall time").cell(format_duration(timer.seconds()));
  table.print(std::cout);
  return 0;
}
