#include "service/result_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "io/checkpoint.hpp"
#include "support/check.hpp"

namespace plurality::service {

namespace fs = std::filesystem;

namespace {

std::uint64_t fnv1a(const std::string& s, std::uint64_t h) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Deep copy through the serializer — JsonValue is move-only (unique_ptr
/// children), and parse(emit(v)) reproduces kinds exactly.
io::JsonValue clone(const io::JsonValue& v) { return io::parse_json(v.to_compact_string()); }

}  // namespace

ResultCache::ResultCache(std::string dir, sweep::ObserveSpec observe, bool zero_wall_times,
                         std::uint64_t max_entries)
    : dir_(std::move(dir)),
      observe_(observe),
      zero_wall_times_(zero_wall_times),
      max_entries_(max_entries) {
  if (!dir_.empty()) fs::create_directories(dir_);
}

bool ResultCache::cacheable() const {
  // Trajectory cells produce a per-trial CSV next to the payload; caching
  // only the payload would resurrect cells without their product.
  return enabled() && observe_.trajectory == 0;
}

std::uint64_t ResultCache::key(const sweep::CellOutcome& cell) const {
  std::uint64_t h = fnv1a(cell.requested.to_spec_string(), 1469598103934665603ull);
  h = fnv1a(" observe:m_plurality=" + std::to_string(observe_.m_plurality ? 1 : 0) +
                " m=" + std::to_string(observe_.m) +
                " trajectory=" + std::to_string(observe_.trajectory) +
                " stride=" + std::to_string(observe_.trajectory_stride) +
                " zero_wall=" + std::to_string(zero_wall_times_ ? 1 : 0),
            h);
  return h;
}

fs::path ResultCache::entry_path(std::uint64_t key) const {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(key));
  return fs::path(dir_) / (std::string(buf) + ".json");
}

bool ResultCache::fetch(const sweep::CellOutcome& cell, const fs::path& cell_path) {
  if (!cacheable()) return false;
  const fs::path entry = entry_path(key(cell));
  io::JsonValue payload;
  try {
    payload = io::read_checkpoint_file(entry.string());
    // Hash collision or a foreign cache dir: the payload must describe
    // EXACTLY this cell's requested spec, or installing it would wedge the
    // cell (scan_cell_file would reject it forever while first-write-wins
    // keeps it pinned on disk).
    if (payload.at("cell").at("requested").as_string() != cell.requested.to_spec_string()) {
      ++stats_.misses;
      return false;
    }
  } catch (const CheckError&) {
    // Corrupt/truncated/unreadable entry: the cache is an optimization,
    // not a source of truth — drop the entry, treat as a miss.
    std::error_code ec;
    fs::remove(entry, ec);
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;

  // Rewrite the grid position to the fetching cell (the payload may have
  // been stored from a different sweep's grid).
  io::JsonValue doc = io::JsonValue::object();
  for (const std::string& k : payload.keys()) {
    if (k == "cell") {
      io::JsonValue& cell_obj = doc.set("cell", io::JsonValue::object());
      cell_obj.set("index", std::uint64_t{cell.index});
      cell_obj.set("id", cell.id);
      cell_obj.set("requested", cell.requested.to_spec_string());
    } else {
      doc.set(k, clone(payload.at(k)));
    }
  }
  io::write_checkpoint_file(cell_path.string(), doc);
  return true;
}

void ResultCache::store(const sweep::CellOutcome& cell, const fs::path& cell_path) {
  if (!cacheable()) return;
  try {
    const io::JsonValue payload = io::read_checkpoint_file(cell_path.string());
    io::JsonValue doc = io::JsonValue::object();
    for (const std::string& k : payload.keys()) {
      // How many times some past run crashed is not a property of the
      // result — strip the retry audit block so hits are attempt-clean.
      if (k == "retry") continue;
      doc.set(k, clone(payload.at(k)));
    }
    io::write_checkpoint_file(entry_path(key(cell)).string(), doc);
    trim_to_max_entries();
  } catch (const CheckError&) {
    // Best-effort: a failed store never fails the sweep.
  } catch (const fs::filesystem_error&) {
    // Same contract for raw filesystem failures (cache dir removed or
    // made unreadable mid-run).
  }
}

void ResultCache::trim_to_max_entries() {
  if (max_entries_ == 0) return;
  // Oldest-mtime-first trim on insert: a bounded cache sheds the entries
  // that have gone longest without a store. Misses after eviction are
  // harmless — the cell recomputes and re-enters. Every filesystem call
  // here uses the error_code overloads: a cache dir that vanishes or turns
  // unreadable mid-run means nothing to trim, never a failed sweep.
  std::vector<std::pair<fs::file_time_type, fs::path>> entries;
  std::error_code ec;
  for (fs::directory_iterator it(dir_, ec); !ec && it != fs::directory_iterator();
       it.increment(ec)) {
    const fs::directory_entry& e = *it;
    std::error_code entry_ec;
    if (!e.is_regular_file(entry_ec) || entry_ec) continue;
    if (e.path().extension() != ".json") continue;
    const fs::file_time_type mtime = fs::last_write_time(e.path(), entry_ec);
    if (!entry_ec) entries.emplace_back(mtime, e.path());
  }
  if (entries.size() <= max_entries_) return;
  std::sort(entries.begin(), entries.end());
  const std::size_t excess = entries.size() - max_entries_;
  for (std::size_t i = 0; i < excess; ++i) {
    std::error_code ec;
    if (fs::remove(entries[i].second, ec)) ++stats_.evictions;
  }
}

}  // namespace plurality::service
