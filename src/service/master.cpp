#include "service/master.hpp"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "io/checkpoint.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "service/result_cache.hpp"
#include "support/check.hpp"
#include "sweep/cell_runner.hpp"
#include "sweep/orchestrator.hpp"
#include "sweep/preflight.hpp"
#include "sweep/watchdog.hpp"

namespace plurality::service {

namespace fs = std::filesystem;
using sweep::CellOutcome;
using sweep::CellScan;
using sweep::CellStatus;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One connected peer (worker or monitor).
struct Conn {
  net::TcpConnection tcp;
  std::string worker = "?";
  /// True once the peer has requested a lease — only such peers count
  /// toward the per-worker memory share. A monitor (plurality_sweep_top)
  /// that only polls `status` must not shrink everyone's budget.
  bool compute = false;
};

/// Latest heartbeat progress block for one leased cell (version-tolerant:
/// old workers send heartbeats without one and `valid` stays false).
struct CellProgress {
  bool valid = false;
  std::uint64_t trial = 0;
  std::uint64_t round = 0;
  double node_updates_per_sec = 0.0;
  std::uint64_t rss_bytes = 0;
  std::string worker;
  double updated = 0.0;  ///< now_s() of the carrying heartbeat
};

/// Lease bookkeeping for one cell (cell results live in CellOutcome).
struct LeaseState {
  bool leased = false;
  std::size_t conn_key = 0;
  std::string holder;
  double expiry = 0.0;         ///< monotonic deadline of the current lease
  double next_eligible = 0.0;  ///< backoff gate for the next lease
  std::uint32_t attempt = 0;   ///< attempt number of the current/last lease
};

CellStatus failure_status_from_name(const std::string& name) {
  if (name == "failed_timeout") return CellStatus::FailedTimeout;
  if (name == "failed_corrupt") return CellStatus::FailedCorrupt;
  if (name == "failed_spec") return CellStatus::FailedSpec;
  return CellStatus::FailedCrash;  // failed_crash and anything unrecognized
}

class Master {
 public:
  explicit Master(MasterOptions options)
      : opt_(std::move(options)),
        cache_(opt_.cache_dir, opt_.spec.observe, opt_.zero_wall_times,
               opt_.cache_max_entries) {}

  int run();

 private:
  void log(const char* fmt, ...) __attribute__((format(printf, 2, 3)));

  [[nodiscard]] double lease_length() const {
    return opt_.lease_seconds > 0 ? opt_.lease_seconds
                                  : kLeaseExpiryHeartbeats * opt_.heartbeat_seconds;
  }
  [[nodiscard]] fs::path cell_path(const CellOutcome& cell) const {
    return cells_dir_ / (cell.id + ".json");
  }
  [[nodiscard]] double backoff_seconds(const CellOutcome& cell, std::uint32_t attempt) const {
    const double jitter =
        static_cast<double>(sweep::retry_stream_word(cell.requested.seed, attempt, 1) %
                            1000) /
        1000.0;
    const std::uint32_t doublings = attempt - 1 < 20 ? attempt - 1 : 20;
    return opt_.retry_backoff_seconds *
           static_cast<double>(std::uint64_t{1} << doublings) * (1.0 + jitter);
  }

  void prepare_out_dir();
  void reconcile_from_disk();
  void mark_done(std::size_t i, const char* how);
  void mark_terminal(std::size_t i, CellStatus status, const std::string& error);
  void revoke_lease(std::size_t i, const char* why);
  [[nodiscard]] std::size_t pending_count() const;
  [[nodiscard]] std::size_t leased_count() const;
  void write_outputs(bool allow_aggregate);

  io::JsonValue welcome_message();
  io::JsonValue lease_reply(std::size_t conn_key, const std::string& worker);
  io::JsonValue handle_message(std::size_t conn_key, const io::JsonValue& msg);
  void handle_complete(std::size_t conn_key, const io::JsonValue& msg);
  io::JsonValue status_reply();
  [[nodiscard]] std::size_t compute_conn_count() const;
  void serve_metrics_scrape(net::TcpConnection scrape);
  [[nodiscard]] std::string exposition_text();
  void maybe_print_progress(double now);

  MasterOptions opt_;
  ResultCache cache_;
  std::vector<CellOutcome> cells_;
  std::vector<LeaseState> leases_;
  std::vector<CellProgress> progress_;
  std::unordered_map<std::string, std::size_t> index_by_id_;
  fs::path cells_dir_;
  fs::path quarantine_dir_;
  fs::path manifest_;
  std::map<std::size_t, Conn> conns_;
  std::size_t done_count_ = 0;  // done + resumed + failed (progress display)
  bool draining_ = false;
  /// Master-side registry behind the exposition endpoint (per-master, not
  /// the process global: in-process tests run several masters).
  obs::MetricsRegistry registry_;
  double last_progress_line_ = 0.0;
};

void Master::log(const char* fmt, ...) {
  if (!opt_.verbose) return;
  std::fprintf(stderr, "[sweepd] ");
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fprintf(stderr, "\n");
}

void Master::prepare_out_dir() {
  PLURALITY_REQUIRE(!opt_.out_dir.empty(), "sweepd: --out is required (workers share it)");
  const fs::path dir(opt_.out_dir);
  cells_dir_ = dir / "cells";
  quarantine_dir_ = cells_dir_ / "quarantine";
  fs::create_directories(cells_dir_);
  manifest_ = dir / "manifest.json";
  const std::string sweep_json = opt_.spec.to_json().to_string();
  if (fs::exists(manifest_)) {
    if (opt_.resume) {
      const io::JsonValue stored = io::read_checkpoint_file(manifest_.string());
      PLURALITY_REQUIRE(stored.at("sweep").to_string() == sweep_json,
                        "sweep: manifest at " << manifest_.string()
                            << " records a DIFFERENT sweep (spec or trial override "
                               "changed); refusing to resume a mixed grid — use a "
                               "fresh out_dir");
    } else {
      PLURALITY_REQUIRE(opt_.force,
                        "sweep: " << manifest_.string()
                            << " already exists; pass resume to continue that sweep "
                               "or force to start over (cell files get overwritten)");
    }
  }
  if (fs::exists(manifest_) && !opt_.resume) {
    // Fresh (force) start: delete stale cell files. Workers commit with
    // link(2) first-write-wins, which would otherwise PRESERVE the old
    // results instead of recomputing them (rename overwrites; link does
    // not).
    for (const CellOutcome& cell : cells_) {
      std::error_code ec;
      fs::remove(cell_path(cell), ec);
      fs::remove(sweep::ledger_path(cells_dir_, cell.id), ec);
    }
  }
  sweep::remove_stray_tmp_files(dir);
  sweep::remove_stray_tmp_files(cells_dir_);
  io::write_checkpoint_file(manifest_.string(), sweep::manifest_to_json(opt_.spec, cells_));
}

void Master::reconcile_from_disk() {
  const std::uint64_t budget = opt_.memory_budget_bytes > 0
                                   ? opt_.memory_budget_bytes
                                   : sweep::default_memory_budget_bytes();
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    CellOutcome& cell = cells_[i];
    if (opt_.resume &&
        sweep::scan_cell_file(cell_path(cell), quarantine_dir_, cell) == CellScan::Trusted) {
      cell.status = CellStatus::Resumed;
      cell.resumed = true;
      fs::remove(sweep::ledger_path(cells_dir_, cell.id));  // stale crash ledger
      ++done_count_;
      continue;
    }
    // Result cache: a hit installs the payload as this cell's checkpoint
    // file, then earns trust through the SAME disk-scan path as any other
    // result — the cache never bypasses CRC verification.
    if (cache_.fetch(cell, cell_path(cell)) &&
        sweep::scan_cell_file(cell_path(cell), quarantine_dir_, cell) == CellScan::Trusted) {
      cell.status = CellStatus::Resumed;
      cell.resumed = true;
      fs::remove(sweep::ledger_path(cells_dir_, cell.id));
      ++done_count_;
      log("%s satisfied from result cache", cell.id.c_str());
      continue;
    }
    const std::uint64_t estimate = sweep::estimate_cell_memory_bytes(cell.requested);
    if (estimate > budget) {
      mark_terminal(i, CellStatus::FailedSpec,
                    "preflight: estimated peak memory " + sweep::format_bytes(estimate) +
                        " exceeds the sweep budget " + sweep::format_bytes(budget) +
                        " (raise memory_budget_bytes or shrink the cell)");
    }
  }
}

void Master::mark_done(std::size_t i, const char* how) {
  CellOutcome& cell = cells_[i];
  cell.status = CellStatus::Done;
  cell.error.clear();
  if (cell.attempts < leases_[i].attempt) cell.attempts = leases_[i].attempt;
  fs::remove(sweep::ledger_path(cells_dir_, cell.id));  // its story is over
  cache_.store(cell, cell_path(cell));
  ++done_count_;
  log("%s done (%s) [%zu/%zu]", cell.id.c_str(), how, done_count_, cells_.size());
}

void Master::mark_terminal(std::size_t i, CellStatus status, const std::string& error) {
  CellOutcome& cell = cells_[i];
  cell.status = status;
  cell.error = error;
  if (cell.attempts < leases_[i].attempt) cell.attempts = leases_[i].attempt;
  if (cell.attempts > 1) {
    cell.retry_tag = sweep::retry_tag_hex(cell.requested.seed, cell.attempts);
  }
  fs::remove(sweep::ledger_path(cells_dir_, cell.id));  // a future resume starts fresh
  ++done_count_;
  log("%s %s: %s [%zu/%zu]", cell.id.c_str(), sweep::cell_status_name(status),
      error.c_str(), done_count_, cells_.size());
}

/// A lease died (missed heartbeats / connection loss). Reconcile from disk
/// FIRST — a worker that committed its cell file and then died still did
/// the work — otherwise requeue with backoff, or close the budget.
void Master::revoke_lease(std::size_t i, const char* why) {
  LeaseState& st = leases_[i];
  CellOutcome& cell = cells_[i];
  st.leased = false;
  if (cell.status != CellStatus::Pending) return;
  log("%s lease (attempt %u, worker %s) revoked: %s", cell.id.c_str(), st.attempt,
      st.holder.c_str(), why);
  if (sweep::scan_cell_file(cell_path(cell), quarantine_dir_, cell) == CellScan::Trusted) {
    mark_done(i, "reconciled from disk after lease loss");
    return;
  }
  if (st.attempt > opt_.max_retries) {
    mark_terminal(i, CellStatus::FailedCrash,
                  "lease lost during " + std::to_string(st.attempt) +
                      " attempt(s) (" + why + "); retry budget exhausted");
    return;
  }
  st.next_eligible = now_s() + backoff_seconds(cell, st.attempt);
}

std::size_t Master::pending_count() const {
  std::size_t n = 0;
  for (const CellOutcome& cell : cells_) {
    if (cell.status == CellStatus::Pending) ++n;
  }
  return n;
}

std::size_t Master::leased_count() const {
  std::size_t n = 0;
  for (const LeaseState& st : leases_) {
    if (st.leased) ++n;
  }
  return n;
}

std::size_t Master::compute_conn_count() const {
  // Peers that have requested a lease (every current holder has). Monitors
  // never request, so they never dilute the share.
  std::size_t n = 0;
  for (const auto& [key, conn] : conns_) {
    if (conn.compute) ++n;
  }
  return n;
}

void Master::write_outputs(bool allow_aggregate) {
  // Prune ledgers whose cells reached a clean verdict (covers workers that
  // died between committing the cell file and removing their ledger).
  for (const CellOutcome& cell : cells_) {
    if (cell.status == CellStatus::Done || cell.status == CellStatus::Resumed) {
      fs::remove(sweep::ledger_path(cells_dir_, cell.id));
    }
  }
  sweep::write_failures_csv((fs::path(opt_.out_dir) / "failures.csv").string(), cells_);
  io::write_checkpoint_file(manifest_.string(), sweep::manifest_to_json(opt_.spec, cells_));
  bool complete = true;
  for (const CellOutcome& cell : cells_) {
    if (cell.status != CellStatus::Done && cell.status != CellStatus::Resumed) {
      complete = false;
      break;
    }
  }
  if (allow_aggregate && complete) {
    sweep::write_aggregate_csv((fs::path(opt_.out_dir) / "aggregate.csv").string(),
                               opt_.spec, cells_, opt_.zero_wall_times);
    log("aggregate.csv written (%zu cells)", cells_.size());
  }
}

io::JsonValue Master::welcome_message() {
  io::JsonValue msg = make_message("welcome");
  msg.set("sweep", opt_.spec.to_json());
  msg.set("out_dir", opt_.out_dir);
  msg.set("heartbeat_seconds", opt_.heartbeat_seconds);
  msg.set("cell_timeout_seconds", opt_.cell_timeout_seconds);
  msg.set("max_retries", std::uint64_t{opt_.max_retries});
  msg.set("zero_wall_times", opt_.zero_wall_times);
  if (!opt_.fault_plan_text.empty()) {
    msg.set("fault_plan", io::parse_json(opt_.fault_plan_text));
  }
  return msg;
}

io::JsonValue Master::lease_reply(std::size_t conn_key, const std::string& worker) {
  if (draining_) return make_message("drain");
  const double now = now_s();
  const std::uint64_t budget = opt_.memory_budget_bytes > 0
                                   ? opt_.memory_budget_bytes
                                   : sweep::default_memory_budget_bytes();
  // Preflight share: the budget is a HOST property, divided across the
  // workers that will run cells concurrently on it — i.e. peers that hold
  // or request leases, NOT every open connection (an idle monitor like
  // plurality_sweep_top must not shrink everyone's budget).
  const std::uint64_t share =
      budget / std::max<std::uint64_t>(1, static_cast<std::uint64_t>(compute_conn_count()));

  double soonest = 1.0;
  bool any_pending = false;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    CellOutcome& cell = cells_[i];
    LeaseState& st = leases_[i];
    if (cell.status != CellStatus::Pending) continue;
    any_pending = true;
    if (st.leased) continue;
    if (now < st.next_eligible) {
      soonest = std::min(soonest, st.next_eligible - now);
      continue;
    }
    // The shared ledger is the cross-process attempts truth: a cell that
    // burned its budget killing OTHER workers must not run again.
    const std::uint32_t prior =
        std::max(sweep::read_attempts_ledger(sweep::ledger_path(cells_dir_, cell.id)),
                 st.attempt);
    if (prior > opt_.max_retries) {
      mark_terminal(i, CellStatus::FailedCrash,
                    "process died during " + std::to_string(prior) +
                        " attempt(s) (attempts ledger); retry budget exhausted");
      continue;
    }
    st.leased = true;
    st.conn_key = conn_key;
    st.holder = worker;
    st.attempt = prior + 1;
    st.expiry = now + lease_length();
    progress_[i] = CellProgress{};  // a new lease starts with a clean block
    io::JsonValue msg = make_message("lease");
    msg.set("cell", cell.id);
    msg.set("index", std::uint64_t{cell.index});
    msg.set("attempt", std::uint64_t{st.attempt});
    msg.set("memory_budget_bytes", share);
    log("%s leased to %s (attempt %u)", cell.id.c_str(), worker.c_str(), st.attempt);
    return msg;
  }
  if (!any_pending) return make_message("drain");  // grid finished
  io::JsonValue msg = make_message("wait");
  msg.set("seconds", std::clamp(soonest, 0.05, 1.0));
  return msg;
}

void Master::handle_complete(std::size_t conn_key, const io::JsonValue& msg) {
  const std::string& id = msg.at("cell").as_string();
  const auto it = index_by_id_.find(id);
  if (it == index_by_id_.end()) return;  // unknown cell: ack and ignore
  const std::size_t i = it->second;
  CellOutcome& cell = cells_[i];
  LeaseState& st = leases_[i];
  const bool was_holder = st.leased && st.conn_key == conn_key;
  if (was_holder) st.leased = false;

  // Already terminal: a reassigned cell finished twice. The first verdict
  // stands (and first-write-wins already reconciled the files) — never
  // count it again.
  if (cell.status != CellStatus::Pending) return;

  const std::string status = msg.at("status").as_string();
  const std::uint32_t attempts = msg.contains("attempts")
                                     ? static_cast<std::uint32_t>(msg.at("attempts").as_uint())
                                     : st.attempt;
  if (attempts > st.attempt) st.attempt = attempts;

  // NEVER trust the message: the disk is the result channel, and only a
  // CRC-verified checkpoint that matches this cell's spec counts.
  if (sweep::scan_cell_file(cell_path(cell), quarantine_dir_, cell) == CellScan::Trusted) {
    if (cell.attempts < attempts) {
      cell.attempts = attempts;
      if (attempts > 1) cell.retry_tag = sweep::retry_tag_hex(cell.requested.seed, attempts);
    }
    mark_done(i, "completed");
    return;
  }

  const std::string error =
      msg.contains("error") ? msg.at("error").as_string() : ("worker reported " + status);
  if (status == "interrupted") {
    // The worker was asked to shut down mid-lease — a clean cancellation,
    // not a crash. Re-lease immediately, no attempt burned.
    st.next_eligible = now_s();
    log("%s interrupted by worker shutdown; requeued", cell.id.c_str());
    return;
  }
  if (status == "failed_spec") {
    // Deterministic spec/validation failure: retrying re-proves it.
    mark_terminal(i, CellStatus::FailedSpec, error);
    return;
  }
  cell.error = error;
  if (attempts > opt_.max_retries) {
    mark_terminal(i, failure_status_from_name(status), error);
    return;
  }
  st.next_eligible = now_s() + backoff_seconds(cell, attempts);
  log("%s attempt %u %s: %s (requeued)", cell.id.c_str(), attempts, status.c_str(),
      error.c_str());
}

io::JsonValue Master::handle_message(std::size_t conn_key, const io::JsonValue& msg) {
  const std::string& type = message_type(msg);
  Conn& conn = conns_.at(conn_key);
  if (type == "hello") {
    if (msg.contains("worker")) conn.worker = msg.at("worker").as_string();
    log("worker %s connected (%zu total)", conn.worker.c_str(), conns_.size());
    return welcome_message();
  }
  if (type == "request") {
    conn.compute = true;  // a lease-taking worker, not a monitor
    return lease_reply(conn_key, conn.worker);
  }
  if (type == "heartbeat") {
    const std::string& id = msg.at("cell").as_string();
    const auto it = index_by_id_.find(id);
    if (it != index_by_id_.end()) {
      LeaseState& st = leases_[it->second];
      if (st.leased && st.conn_key == conn_key) {
        st.expiry = now_s() + lease_length();
        // Optional live-progress block (newer workers). Absence is fine —
        // the heartbeat still renews the lease (version tolerance).
        if (const io::JsonValue* prog = msg.get("progress")) {
          CellProgress& p = progress_[it->second];
          p.valid = true;
          p.trial = prog->contains("trial") ? prog->at("trial").as_uint() : 0;
          p.round = prog->contains("round") ? prog->at("round").as_uint() : 0;
          p.node_updates_per_sec = prog->contains("node_updates_per_sec")
                                       ? prog->at("node_updates_per_sec").as_double()
                                       : 0.0;
          p.rss_bytes = prog->contains("rss_bytes") ? prog->at("rss_bytes").as_uint() : 0;
          p.worker = conn.worker;
          p.updated = now_s();
        }
        return make_message("ack");
      }
    }
    // Not the holder (lease expired and was reassigned, or the cell is
    // already terminal): tell the worker to abandon the attempt.
    return make_message("expired");
  }
  if (type == "complete") {
    handle_complete(conn_key, msg);
    return make_message("ack");
  }
  if (type == "status") {
    return status_reply();
  }
  throw ProtocolError("protocol: unexpected message type '" + type + "' from worker");
}

io::JsonValue Master::status_reply() {
  const double now = now_s();
  io::JsonValue msg = make_message("status");
  msg.set("cells_total", std::uint64_t{cells_.size()});

  std::uint64_t done = 0;
  std::uint64_t failed = 0;
  std::uint64_t pending = 0;
  io::JsonValue failures = io::JsonValue::object();
  std::map<std::string, std::uint64_t> failure_counts;
  for (const CellOutcome& cell : cells_) {
    if (cell.status == CellStatus::Done || cell.status == CellStatus::Resumed) {
      ++done;
    } else if (sweep::cell_status_failed(cell.status)) {
      ++failed;
      ++failure_counts[sweep::cell_status_name(cell.status)];
    } else {
      ++pending;
    }
  }
  msg.set("done", done);
  msg.set("failed", failed);
  msg.set("pending", pending);
  msg.set("leased", std::uint64_t{leased_count()});
  msg.set("draining", draining_);
  for (const auto& [name, count] : failure_counts) failures.set(name, count);
  msg.set("failures", std::move(failures));

  // Workers table: lease count per connected compute peer.
  io::JsonValue workers = io::JsonValue::array();
  for (const auto& [key, conn] : conns_) {
    if (!conn.compute) continue;
    std::uint64_t held = 0;
    for (const LeaseState& st : leases_) {
      if (st.leased && st.conn_key == key) ++held;
    }
    io::JsonValue w = io::JsonValue::object();
    w.set("worker", conn.worker);
    w.set("leases", held);
    workers.push(std::move(w));
  }
  msg.set("workers", std::move(workers));

  // Per-cell live table: every leased cell, with its latest heartbeat
  // progress block when the holder sends one.
  double total_rate = 0.0;
  io::JsonValue cell_rows = io::JsonValue::array();
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const LeaseState& st = leases_[i];
    if (!st.leased) continue;
    io::JsonValue row = io::JsonValue::object();
    row.set("cell", cells_[i].id);
    row.set("index", std::uint64_t{cells_[i].index});
    row.set("worker", st.holder);
    row.set("attempt", std::uint64_t{st.attempt});
    const CellProgress& p = progress_[i];
    if (p.valid) {
      row.set("trial", p.trial);
      row.set("round", p.round);
      row.set("node_updates_per_sec", p.node_updates_per_sec);
      row.set("rss_bytes", p.rss_bytes);
      row.set("progress_age_seconds", now - p.updated);
      total_rate += p.node_updates_per_sec;
    }
    cell_rows.push(std::move(row));
  }
  msg.set("cells", std::move(cell_rows));
  msg.set("node_updates_per_sec", total_rate);

  if (cache_.enabled()) {
    io::JsonValue cache = io::JsonValue::object();
    cache.set("hits", cache_.stats().hits);
    cache.set("misses", cache_.stats().misses);
    cache.set("evictions", cache_.stats().evictions);
    msg.set("cache", std::move(cache));
  }
  return msg;
}

std::string Master::exposition_text() {
  // Refresh the registry from the cell table, then render. Counter-typed
  // families advance by delta (a Counter only adds); everything here runs
  // on the master's single thread.
  const io::JsonValue status = status_reply();
  auto set_gauge = [&](const char* name, const char* help, double v) {
    registry_.gauge(name, help).set(v);
  };
  set_gauge("sweepd_cells_total", "Cells in the grid",
            static_cast<double>(status.at("cells_total").as_uint()));
  set_gauge("sweepd_cells_done", "Cells done or resumed",
            static_cast<double>(status.at("done").as_uint()));
  set_gauge("sweepd_cells_failed", "Cells with a terminal failed_* verdict",
            static_cast<double>(status.at("failed").as_uint()));
  set_gauge("sweepd_cells_pending", "Cells not yet done or failed",
            static_cast<double>(status.at("pending").as_uint()));
  set_gauge("sweepd_cells_leased", "Cells currently leased",
            static_cast<double>(status.at("leased").as_uint()));
  set_gauge("sweepd_workers_connected", "Connected compute workers",
            static_cast<double>(status.at("workers").size()));
  set_gauge("sweepd_node_updates_per_sec",
            "Summed node-updates/s over the latest worker heartbeats",
            status.at("node_updates_per_sec").as_double());
  if (cache_.enabled()) {
    auto set_counter = [&](const char* name, const char* help, std::uint64_t v) {
      obs::Counter& c = registry_.counter(name, help);
      c.add(v - c.value());
    };
    set_counter("sweepd_cache_hits_total", "Result-cache hits", cache_.stats().hits);
    set_counter("sweepd_cache_misses_total", "Result-cache misses", cache_.stats().misses);
    set_counter("sweepd_cache_evictions_total", "Result-cache evictions",
                cache_.stats().evictions);
  }
  // Per-cell series are rebuilt from the live status table on every scrape
  // rather than registered: a registry entry would outlive its lease,
  // reporting finished/revoked cells as live work forever and growing the
  // series set with the grid.
  obs::MetricsSnapshot snap = registry_.snapshot();
  const auto push_cell_gauge = [&snap](const char* name, const char* help,
                                       const std::string& cell, double v) {
    obs::MetricSample s;
    s.name = name;
    s.help = help;
    s.labels = {{"cell", cell}};
    s.kind = obs::MetricSample::Kind::Gauge;
    s.gauge = v;
    snap.samples.push_back(std::move(s));
  };
  const io::JsonValue& rows = status.at("cells");
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const io::JsonValue& row = rows.item(r);
    if (!row.contains("round")) continue;
    const std::string& cell = row.at("cell").as_string();
    push_cell_gauge("sweepd_cell_round", "Latest reported round of a leased cell", cell,
                    static_cast<double>(row.at("round").as_uint()));
    push_cell_gauge("sweepd_cell_node_updates_per_sec",
                    "Latest reported node-updates/s of a leased cell", cell,
                    row.at("node_updates_per_sec").as_double());
  }
  return snap.to_exposition_text();
}

/// Minimal HTTP/1.0 exposition endpoint: read the request line, answer
/// with text/plain, close. Enough for curl / python urllib / Prometheus.
///
/// Scrapes are served synchronously on the lease loop's thread, so each
/// one gets a SMALL I/O budget (far below the lease expiry) and the loop
/// applies queued heartbeats before its expiry check — a slow or stalled
/// scraper drops its scrape, never a healthy worker's lease.
void Master::serve_metrics_scrape(net::TcpConnection scrape) {
  constexpr double kScrapeRecvSeconds = 0.25;
  constexpr double kScrapeSendSeconds = 1.0;
  try {
    std::string request_line;
    (void)scrape.recv_line(request_line, kScrapeRecvSeconds);
    const std::string body = exposition_text();
    std::string response = "HTTP/1.0 200 OK\r\n";
    response += "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n";
    response += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    response += "Connection: close\r\n\r\n";
    response += body;
    scrape.send_all(response, kScrapeSendSeconds);
  } catch (const net::NetError&) {
    // A slow or vanished scraper is its own problem, never the sweep's.
  }
  scrape.close();
}

void Master::maybe_print_progress(double now) {
  if (opt_.progress_seconds <= 0) return;
  if (now - last_progress_line_ < opt_.progress_seconds) return;
  last_progress_line_ = now;
  double total_rate = 0.0;
  for (std::size_t i = 0; i < leases_.size(); ++i) {
    if (leases_[i].leased && progress_[i].valid) {
      total_rate += progress_[i].node_updates_per_sec;
    }
  }
  std::size_t failed = 0;
  for (const CellOutcome& cell : cells_) {
    if (sweep::cell_status_failed(cell.status)) ++failed;
  }
  std::fprintf(stderr,
               "[sweepd] %zu/%zu done, %zu leased, %zu pending, %zu failed | "
               "%zu worker(s) | %.3g node-upd/s\n",
               done_count_, cells_.size(), leased_count(), pending_count(), failed,
               compute_conn_count(), total_rate);
}

int Master::run() {
  // Effective spec: trials_override applies BEFORE expansion, exactly like
  // run_sweep, so resume matching and worker-side expansion see one grid.
  if (opt_.trials_override > 0) {
    for (const sweep::SweepAxis& axis : opt_.spec.axes) {
      PLURALITY_REQUIRE(axis.field != "trials",
                        "sweep: trials_override cannot combine with a 'trials' axis");
    }
    opt_.spec.base.trials = opt_.trials_override;
  }
  const std::vector<scenario::ScenarioSpec> expanded = opt_.spec.expand();
  cells_.resize(expanded.size());
  leases_.resize(expanded.size());
  progress_.resize(expanded.size());
  for (std::size_t i = 0; i < expanded.size(); ++i) {
    cells_[i].index = i;
    cells_[i].id = sweep::cell_id(i);
    cells_[i].requested = expanded[i];
    index_by_id_[cells_[i].id] = i;
  }

  prepare_out_dir();
  reconcile_from_disk();
  log("grid: %zu cells, %zu already satisfied", cells_.size(), done_count_);

  net::TcpListener listener(opt_.host, opt_.port);
  if (!opt_.port_file.empty()) {
    io::atomic_write_text(opt_.port_file, std::to_string(listener.port()) + "\n");
  }
  log("listening on %s:%u (lease %.3gs, heartbeat %.3gs)", opt_.host.c_str(),
      static_cast<unsigned>(listener.port()), lease_length(), opt_.heartbeat_seconds);

  std::unique_ptr<net::TcpListener> metrics_listener;
  if (opt_.serve_metrics) {
    metrics_listener = std::make_unique<net::TcpListener>(opt_.host, opt_.metrics_port);
    if (!opt_.metrics_port_file.empty()) {
      io::atomic_write_text(opt_.metrics_port_file,
                            std::to_string(metrics_listener->port()) + "\n");
    }
    log("metrics exposition on %s:%u", opt_.host.c_str(),
        static_cast<unsigned>(metrics_listener->port()));
  }

  std::size_t next_conn_key = 1;
  double drain_deadline = 0.0;
  bool finished = false;
  double linger_deadline = 0.0;

  for (;;) {
    const double now = now_s();

    if (!draining_ && !finished && sweep::shutdown_requested()) {
      draining_ = true;
      drain_deadline = now + opt_.drain_seconds;
      log("drain requested: no new leases; waiting up to %.3gs for %zu in-flight lease(s)",
          opt_.drain_seconds, leased_count());
    }

    if (draining_) {
      if (leased_count() == 0 || now >= drain_deadline) {
        // One last disk reconcile: a worker that committed during the
        // drain window but could not report still counts.
        for (std::size_t i = 0; i < cells_.size(); ++i) {
          if (cells_[i].status != CellStatus::Pending) continue;
          if (sweep::scan_cell_file(cell_path(cells_[i]), quarantine_dir_, cells_[i]) ==
              CellScan::Trusted) {
            mark_done(i, "reconciled from disk at drain");
          }
        }
        write_outputs(/*allow_aggregate=*/true);
        log("drained; out_dir is resumable (exit %d)", kExitDrained);
        return kExitDrained;
      }
    } else if (!finished && pending_count() == 0) {
      write_outputs(/*allow_aggregate=*/true);
      finished = true;
      linger_deadline = now + 3.0;  // hand "drain" to idle workers, then go
      log("grid finished: %zu done, lingering to release workers", done_count_);
    }
    if (finished && (conns_.empty() || now >= linger_deadline)) {
      std::size_t failed = 0;
      for (const CellOutcome& cell : cells_) {
        if (sweep::cell_status_failed(cell.status)) ++failed;
      }
      return failed > 0 ? kExitFailedCells : kExitComplete;
    }

    maybe_print_progress(now);

    // --- poll listeners + workers ------------------------------------
    std::vector<pollfd> fds;
    std::vector<std::size_t> keys;
    fds.push_back({listener.fd(), POLLIN, 0});
    std::size_t first_conn = 1;
    if (metrics_listener != nullptr) {
      fds.push_back({metrics_listener->fd(), POLLIN, 0});
      first_conn = 2;
    }
    for (auto& [key, conn] : conns_) {
      fds.push_back({conn.tcp.fd(), POLLIN, 0});
      keys.push_back(key);
    }
    const int rc = ::poll(fds.data(), fds.size(), 100);
    if (rc < 0) {
      if (errno == EINTR) continue;  // signal: loop re-checks the flags
      PLURALITY_REQUIRE(false, "sweepd: poll failed: " << std::strerror(errno));
    }

    if (fds[0].revents & POLLIN) {
      for (;;) {
        net::TcpConnection accepted = listener.accept_nonblocking();
        if (!accepted.valid()) break;
        conns_.emplace(next_conn_key++, Conn{std::move(accepted), "?"});
      }
    }
    if (metrics_listener != nullptr && (fds[1].revents & POLLIN)) {
      for (;;) {
        net::TcpConnection scrape = metrics_listener->accept_nonblocking();
        if (!scrape.valid()) break;
        serve_metrics_scrape(std::move(scrape));
      }
    }

    std::vector<std::size_t> dead;
    for (std::size_t f = first_conn; f < fds.size(); ++f) {
      const std::size_t key = keys[f - first_conn];
      if (!(fds[f].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      Conn& conn = conns_.at(key);
      bool alive = true;
      try {
        alive = conn.tcp.fill_from_socket();
        std::string line;
        while (alive && conn.tcp.take_buffered_line(line)) {
          const io::JsonValue reply = handle_message(key, parse_message(line));
          conn.tcp.send_all(encode(reply), kIoTimeoutSeconds);
        }
      } catch (const ProtocolError& e) {
        log("worker %s dropped: %s", conn.worker.c_str(), e.what());
        alive = false;
      } catch (const net::NetError& e) {
        log("worker %s connection failed: %s", conn.worker.c_str(), e.what());
        alive = false;
      }
      if (!alive) dead.push_back(key);
    }
    for (const std::size_t key : dead) {
      const std::string worker = conns_.at(key).worker;
      const bool compute = conns_.at(key).compute;
      conns_.erase(key);
      // A dead connection kills its leases NOW (worker crash / TCP reset)
      // — no reason to wait out the heartbeat budget.
      for (std::size_t i = 0; i < leases_.size(); ++i) {
        if (leases_[i].leased && leases_[i].conn_key == key) {
          revoke_lease(i, "connection lost");
        }
      }
      // Monitors (status-only connections) come and go constantly; only
      // compute peers are worth a log line.
      if (compute || worker != "?") {
        log("worker %s disconnected (%zu left)", worker.c_str(), conns_.size());
      }
    }

    // Expire stale leases (missed heartbeats / silent worker death) LAST,
    // on a fresh clock: any heartbeat queued while this iteration was busy
    // (a stalled metrics scrape, a burst of completions) has been applied
    // above and has already renewed its lease.
    const double expiry_now = now_s();
    for (std::size_t i = 0; i < leases_.size(); ++i) {
      if (leases_[i].leased && expiry_now >= leases_[i].expiry) {
        revoke_lease(i, "missed heartbeats");
      }
    }
  }
}

}  // namespace

int run_master(MasterOptions options) { return Master(std::move(options)).run(); }

}  // namespace plurality::service
