// Wire protocol of the distributed sweep service (plurality_sweepd +
// plurality_sweep_worker): line-delimited JSON over TCP (net/socket.hpp).
//
// Every message is one compact JSON object terminated by '\n', with a
// required "type" field. The WORKER drives: it sends exactly one message
// and reads exactly one reply, so there is never an unsolicited frame in
// flight and the connection needs no multiplexing. Heartbeats ride the
// same request/response rhythm from the worker's lease thread while a
// separate compute thread runs the cell.
//
//   worker -> master                     master -> worker
//   ----------------                     ----------------
//   hello    {worker}                    welcome {sweep, out_dir, heartbeat_seconds,
//                                                 cell_timeout_seconds, max_retries,
//                                                 zero_wall_times, fault_plan?}
//   request  {worker}                    lease   {cell, index, attempt,
//                                                 memory_budget_bytes}
//                                        wait    {seconds}     nothing leasable yet
//                                        drain   {}            no more leases, ever
//   heartbeat{worker, cell, progress?}   ack     {}            lease still yours
//                                        expired {}            lease reassigned: abandon
//   complete {worker, cell, status,      ack     {}
//             attempts, error?}
//   status   {}                          status  {cells_total, done, failed, pending,
//                                                 leased, workers[], cells[],
//                                                 failures{}, cache?, ...}
//
// heartbeat.progress (optional, version-tolerant — masters ack heartbeats
// without it, so old workers keep working) is the live telemetry block:
//   {cell, trial, round, node_updates_per_sec, rss_bytes}
// The master aggregates the latest block per leased cell and serves the
// result through the `status` verb (plurality_sweep_top renders it) and
// the --metrics-port text exposition endpoint. `status` needs no hello —
// a monitor client never counts as a worker (it takes no leases and does
// not shrink the per-worker memory share).
//
// Trust discipline: `complete` is a NOTIFICATION, not a data channel.
// Results never cross the wire — workers share the out_dir filesystem, and
// the master re-reads and CRC-verifies the cell file from disk before
// believing anything (sweep/cell_runner.hpp scan_cell_file). A lying or
// half-dead worker can waste a lease, never corrupt the grid.
#pragma once

#include <cstdint>
#include <string>

#include "io/json.hpp"

namespace plurality::service {

/// Heartbeat cadence a master hands to workers unless overridden.
inline constexpr double kDefaultHeartbeatSeconds = 2.0;

/// A lease expires after this many missed heartbeat intervals.
inline constexpr double kLeaseExpiryHeartbeats = 3.0;

/// Deadline on every bounded protocol exchange (send a line / await the
/// matching reply). Long enough for a loaded CI box, short enough that a
/// wedged peer is detected the same minute.
inline constexpr double kIoTimeoutSeconds = 10.0;

// Exit codes (documented in docs/sweeps.md; CI asserts them).
inline constexpr int kExitComplete = 0;     ///< both: all cells done / clean drain
inline constexpr int kExitFailedCells = 2;  ///< master: grid finished, some cells failed
inline constexpr int kExitOrphaned = 3;     ///< worker: master vanished mid-cell; the
                                            ///< cell file was still written to disk
inline constexpr int kExitDrained = 130;    ///< both: SIGINT/SIGTERM graceful stop

/// Malformed frame (not JSON, no "type", wrong field shape). The receiver
/// drops the connection — a peer speaking garbage cannot be reasoned with.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// {"type": t} ready for more fields.
[[nodiscard]] io::JsonValue make_message(const std::string& type);

/// Compact single-line serialization + '\n' — the exact bytes on the wire.
[[nodiscard]] std::string encode(const io::JsonValue& message);

/// Parses one received line; throws ProtocolError unless it is a JSON
/// object with a string "type".
[[nodiscard]] io::JsonValue parse_message(const std::string& line);

/// The message's "type" (parse_message guarantees presence).
[[nodiscard]] const std::string& message_type(const io::JsonValue& message);

}  // namespace plurality::service
