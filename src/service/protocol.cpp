#include "service/protocol.hpp"

#include "support/check.hpp"

namespace plurality::service {

io::JsonValue make_message(const std::string& type) {
  io::JsonValue msg = io::JsonValue::object();
  msg.set("type", type);
  return msg;
}

std::string encode(const io::JsonValue& message) {
  return message.to_compact_string() + "\n";
}

io::JsonValue parse_message(const std::string& line) {
  io::JsonValue msg;
  try {
    msg = io::parse_json(line);
  } catch (const CheckError& e) {
    throw ProtocolError(std::string("protocol: frame is not valid JSON: ") + e.what());
  }
  if (!msg.is_object() || msg.get("type") == nullptr || !msg.at("type").is_string()) {
    throw ProtocolError("protocol: frame must be an object with a string 'type'");
  }
  return msg;
}

const std::string& message_type(const io::JsonValue& message) {
  return message.at("type").as_string();
}

}  // namespace plurality::service
