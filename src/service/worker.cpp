#include "service/worker.hpp"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_observer.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "sweep/cell_runner.hpp"
#include "sweep/preflight.hpp"
#include "sweep/watchdog.hpp"

namespace plurality::service {

namespace fs = std::filesystem;
using sweep::CellOutcome;
using sweep::CellStatus;

namespace {

/// Chunked, shutdown-aware sleep.
void sleep_cooperatively(double seconds) {
  const auto start = std::chrono::steady_clock::now();
  const auto budget = std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() - start < budget) {
    if (sweep::shutdown_requested()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

struct Welcome {
  sweep::SweepSpec spec;
  std::string out_dir;
  double heartbeat_seconds = kDefaultHeartbeatSeconds;
  double cell_timeout_seconds = 0.0;
  bool zero_wall_times = false;
  sweep::FaultPlan fault_plan;
};

/// What one lease ended as, from the protocol loop's point of view.
enum class LeaseEnd {
  Reported,   ///< complete sent, ack received
  Abandoned,  ///< lease expired under us; the new holder owns the cell
  Orphaned,   ///< master vanished mid-cell; cell file written locally
};

class Worker {
 public:
  explicit Worker(WorkerOptions options) : opt_(std::move(options)) {}

  int run();

 private:
  void log(const char* message) {
    if (opt_.verbose) {
      std::fprintf(stderr, "[%s] %s\n", opt_.name.c_str(), message);
    }
  }

  [[nodiscard]] std::uint16_t resolve_port();
  void handshake();
  LeaseEnd run_lease(const io::JsonValue& lease, sweep::FaultInjector& injector,
                     sweep::Watchdog& watchdog,
                     const std::vector<scenario::ScenarioSpec>& expanded);
  io::JsonValue exchange(const io::JsonValue& msg);

  WorkerOptions opt_;
  net::TcpConnection conn_;
  Welcome welcome_;
};

std::uint16_t Worker::resolve_port() {
  if (opt_.port != 0) return opt_.port;
  PLURALITY_REQUIRE(!opt_.port_file.empty(),
                    "worker: need --port or --port-file to find the master");
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(opt_.connect_timeout_seconds);
  for (;;) {
    if (std::ifstream in(opt_.port_file); in.good()) {
      unsigned port = 0;
      in >> port;
      if (port > 0 && port <= 65535) return static_cast<std::uint16_t>(port);
    }
    PLURALITY_REQUIRE(std::chrono::steady_clock::now() < deadline,
                      "worker: master port file " << opt_.port_file << " never appeared");
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

io::JsonValue Worker::exchange(const io::JsonValue& msg) {
  conn_.send_all(encode(msg), kIoTimeoutSeconds);
  std::string line;
  if (!conn_.recv_line(line, kIoTimeoutSeconds)) {
    throw net::NetError("net recv: master closed the connection");
  }
  return parse_message(line);
}

void Worker::handshake() {
  // The master may still be binding/reconciling: retry the connect until
  // the deadline rather than failing the first refused attempt. Re-resolve
  // the port each round — a port file left by a DRAINED master names a
  // dead port until the restarted master overwrites it.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(opt_.connect_timeout_seconds);
  for (;;) {
    try {
      conn_ = net::connect_tcp(opt_.host, resolve_port(), 1.0);
      break;
    } catch (const net::NetError&) {
      if (std::chrono::steady_clock::now() >= deadline) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }

  io::JsonValue hello = make_message("hello");
  hello.set("worker", opt_.name);
  const io::JsonValue reply = exchange(hello);
  PLURALITY_REQUIRE(message_type(reply) == "welcome",
                    "worker: expected welcome, got '" << message_type(reply) << "'");
  welcome_.spec = sweep::SweepSpec::from_json(reply.at("sweep"));
  welcome_.out_dir = reply.at("out_dir").as_string();
  welcome_.heartbeat_seconds = reply.at("heartbeat_seconds").as_double();
  welcome_.cell_timeout_seconds = reply.at("cell_timeout_seconds").as_double();
  welcome_.zero_wall_times = reply.at("zero_wall_times").as_bool();
  if (reply.contains("fault_plan")) {
    welcome_.fault_plan = sweep::FaultPlan::from_json(reply.at("fault_plan"));
  }
  log("joined sweep");
}

LeaseEnd Worker::run_lease(const io::JsonValue& lease, sweep::FaultInjector& injector,
                           sweep::Watchdog& watchdog,
                           const std::vector<scenario::ScenarioSpec>& expanded) {
  const std::size_t index = static_cast<std::size_t>(lease.at("index").as_uint());
  const std::string& id = lease.at("cell").as_string();
  const std::uint32_t attempt = static_cast<std::uint32_t>(lease.at("attempt").as_uint());
  const std::uint64_t memory_share = lease.at("memory_budget_bytes").as_uint();
  PLURALITY_REQUIRE(index < expanded.size(),
                    "worker: lease for cell index " << index << " outside the grid ("
                                                    << expanded.size() << " cells)");

  CellOutcome cell;
  cell.index = index;
  cell.id = id;
  cell.requested = expanded[index];
  const std::string spec_string = cell.requested.to_spec_string();

  injector.at_lease_start(index, id, spec_string);  // worker_crash fires here

  // Preflight against the PER-WORKER share the master computed (total
  // budget / connected workers): N workers run cells concurrently on one
  // host, so each may only claim its slice.
  const std::uint64_t estimate = sweep::estimate_cell_memory_bytes(cell.requested);
  if (estimate > memory_share) {
    io::JsonValue msg = make_message("complete");
    msg.set("worker", opt_.name);
    msg.set("cell", id);
    msg.set("status", "failed_spec");
    msg.set("attempts", std::uint64_t{attempt});
    msg.set("error", "preflight: estimated peak memory " + sweep::format_bytes(estimate) +
                         " exceeds this worker's share " + sweep::format_bytes(memory_share) +
                         " of the sweep budget (fewer workers or a larger budget)");
    try {
      (void)exchange(msg);
    } catch (const net::NetError&) {
      return LeaseEnd::Orphaned;
    }
    return LeaseEnd::Reported;
  }

  const bool drop_heartbeats = injector.should_drop_heartbeats(index, id, spec_string);
  if (drop_heartbeats) log("fault: heartbeats suppressed for this lease");

  CancellationToken token;
  sweep::CellRunContext ctx;
  ctx.cells_dir = fs::path(welcome_.out_dir) / "cells";
  ctx.observe = welcome_.spec.observe;
  ctx.zero_wall_times = welcome_.zero_wall_times;
  ctx.cell_timeout_seconds = welcome_.cell_timeout_seconds;
  ctx.first_write_wins = true;  // an expired lease means sibling writers exist
  ctx.single_attempt = attempt;
  ctx.token = &token;
  ctx.injector = &injector;
  ctx.watchdog = &watchdog;
  // Workers always feed the process-global registry: the heartbeat's
  // progress block below is read from these same handles.
  ctx.metrics = &obs::MetricsRegistry::global();
  const obs::EngineMetrics em(obs::MetricsRegistry::global());
  // The registry outlives leases, so the previous cell's last trial/round
  // would otherwise leak into this lease's first heartbeats: zero the
  // position gauges before the compute thread starts observing.
  em.current_trial.set(0);
  em.current_round.set(0);
  std::uint64_t last_updates = em.node_updates_total.value();
  auto last_rate_time = std::chrono::steady_clock::now();

  std::atomic<bool> compute_done{false};
  std::thread compute([&] {
    run_cell_to_verdict(cell, ctx);
    compute_done.store(true, std::memory_order_release);
  });

  bool orphaned = false;
  bool lease_lost = false;
  bool heartbeating = !drop_heartbeats;
  auto last_heartbeat = std::chrono::steady_clock::now();
  while (!compute_done.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    if (!heartbeating) continue;
    const auto now = std::chrono::steady_clock::now();
    if (std::chrono::duration<double>(now - last_heartbeat).count() <
        welcome_.heartbeat_seconds) {
      continue;
    }
    last_heartbeat = now;
    io::JsonValue hb = make_message("heartbeat");
    hb.set("worker", opt_.name);
    hb.set("cell", id);
    {
      // Live progress, folded into the heartbeat we were sending anyway
      // (version-tolerant: old masters ignore unknown fields). The rate is
      // the node-updates counter delta over the heartbeat interval.
      const std::uint64_t updates = em.node_updates_total.value();
      const double elapsed = std::chrono::duration<double>(now - last_rate_time).count();
      const double rate =
          elapsed > 0 ? static_cast<double>(updates - last_updates) / elapsed : 0.0;
      last_updates = updates;
      last_rate_time = now;
      io::JsonValue& progress = hb.set("progress", io::JsonValue::object());
      progress.set("cell", id);
      progress.set("trial", static_cast<std::uint64_t>(em.current_trial.value()));
      progress.set("round", static_cast<std::uint64_t>(em.current_round.value()));
      progress.set("node_updates_per_sec", rate);
      progress.set("rss_bytes", obs::current_rss_bytes());
    }
    try {
      if (message_type(exchange(hb)) == "expired") {
        // The master reassigned this cell. Stop burning cycles; whatever
        // the new holder commits is bitwise what we would have.
        token.cancel(CancellationToken::Reason::kLeaseLost);
        lease_lost = true;
        heartbeating = false;
        log("lease expired under us; abandoning the attempt");
      }
    } catch (const net::NetError&) {
      // Master vanished mid-cell: LOCAL-ORCHESTRATOR MODE. Finish the
      // cell; the runner commits the checkpoint; a future master
      // reconciles it from disk.
      orphaned = true;
      heartbeating = false;
      log("master unreachable mid-cell; finishing locally");
    } catch (const ProtocolError&) {
      orphaned = true;
      heartbeating = false;
    }
  }
  compute.join();

  if (orphaned) return LeaseEnd::Orphaned;
  if (lease_lost) return LeaseEnd::Abandoned;

  // stall_conn fault: the network path wedges right before the report —
  // the master should expire the lease and survive the late message.
  const double stall = injector.stall_connection_seconds(index, id, spec_string);
  if (stall > 0) sleep_cooperatively(stall);

  io::JsonValue msg = make_message("complete");
  msg.set("worker", opt_.name);
  msg.set("cell", id);
  msg.set("status", sweep::cell_status_name(cell.status));
  msg.set("attempts", std::uint64_t{cell.attempts});
  if (!cell.error.empty()) msg.set("error", cell.error);
  try {
    (void)exchange(msg);
  } catch (const net::NetError&) {
    return LeaseEnd::Orphaned;  // cell file is on disk; the report is lost
  }
  return LeaseEnd::Reported;
}

int Worker::run() {
  if (opt_.name.empty()) opt_.name = "w" + std::to_string(::getpid());
  handshake();

  const std::vector<scenario::ScenarioSpec> expanded = welcome_.spec.expand();
  sweep::FaultInjector injector(welcome_.fault_plan, welcome_.out_dir);
  sweep::Watchdog watchdog;

  for (;;) {
    if (sweep::shutdown_requested()) {
      log("shutdown requested; leaving");
      return kExitDrained;
    }
    io::JsonValue request = make_message("request");
    request.set("worker", opt_.name);
    io::JsonValue reply;
    try {
      obs::TraceSpan span("lease_roundtrip", "service", opt_.name);
      reply = exchange(request);
    } catch (const net::NetError&) {
      // Master gone while we hold nothing: nothing owed, clean exit.
      log("master unreachable while idle; exiting");
      return kExitComplete;
    }
    const std::string& type = message_type(reply);
    if (type == "drain") {
      log("drained by master");
      return kExitComplete;
    }
    if (type == "wait") {
      sleep_cooperatively(reply.at("seconds").as_double());
      continue;
    }
    if (type == "lease") {
      switch (run_lease(reply, injector, watchdog, expanded)) {
        case LeaseEnd::Reported:
        case LeaseEnd::Abandoned:
          continue;
        case LeaseEnd::Orphaned:
          return kExitOrphaned;
      }
      continue;
    }
    PLURALITY_REQUIRE(false, "worker: unexpected reply '" << type << "' to a lease request");
  }
}

}  // namespace

int run_worker(WorkerOptions options) { return Worker(std::move(options)).run(); }

}  // namespace plurality::service
