// plurality_sweepd's engine: a single-threaded master that owns a sweep
// grid and dispatches cells to plurality_sweep_worker processes under
// LEASES.
//
// Model: workers share the master's out_dir filesystem. Control messages
// (protocol.hpp) cross the wire; results never do — a completed cell is a
// CRC checkpoint envelope on disk, and the master re-reads and verifies it
// before counting it (scan_cell_file), so its cell table can always be
// rebuilt from disk and never has to trust a worker's memory (or its own).
//
// Lease/heartbeat state machine, per cell:
//
//     pending ──lease──> leased ──verified-complete──> done
//        ^                  │ │
//        │   missed 3×HB /  │ └─reported-failure──> pending (backoff) or
//        └── conn death ────┘          failed_* (budget/terminal verdict)
//
// A lease carries the attempt number (continuing the shared on-disk
// attempts ledger, so crash loops are bounded ACROSS workers) and the
// per-worker memory share (preflight budget / connected workers).
// Reassignment applies the same exponential backoff + seeded jitter as the
// in-process orchestrator — same Philox retry stream, same doubling cap.
//
// Robustness behaviors:
//   - lease expiry (missed heartbeats, worker crash, TCP reset) first
//     RECONCILES FROM DISK: a worker that died after committing its cell
//     file still gets its work counted
//   - duplicate completions (a reassigned cell finished twice) are
//     resolved by the workers' link(2) first-write-wins commit + the
//     master's already-terminal check — never double-counted
//   - SIGTERM drains: stop issuing leases, wait up to drain_seconds for
//     in-flight leases, write a resumable manifest (leased cells stay
//     pending), exit 130
//   - completed grid: failures.csv + final manifest always; aggregate.csv
//     only when every cell is done/resumed (exit 0) — failed cells exit 2
#pragma once

#include <cstdint>
#include <string>

#include "service/protocol.hpp"
#include "sweep/sweep_spec.hpp"

namespace plurality::service {

struct MasterOptions {
  sweep::SweepSpec spec;
  std::string out_dir;  ///< required: the shared filesystem rendezvous
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral (see port_file)
  /// Written (atomically) with the bound port once listening — how
  /// workers and tests find an ephemeral port without racing.
  std::string port_file;
  bool resume = false;
  bool force = false;
  std::uint64_t trials_override = 0;  ///< applied before expansion, like run_sweep
  double heartbeat_seconds = kDefaultHeartbeatSeconds;
  /// 0 = kLeaseExpiryHeartbeats * heartbeat_seconds.
  double lease_seconds = 0.0;
  double cell_timeout_seconds = 0.0;  ///< forwarded to workers (watchdog deadline)
  std::uint32_t max_retries = 2;
  double retry_backoff_seconds = 0.05;
  std::uint64_t memory_budget_bytes = 0;  ///< 0 = ~80% of RAM; split across workers
  bool zero_wall_times = false;
  double drain_seconds = 10.0;
  /// Raw fault-plan JSON text forwarded to every worker verbatim (empty =
  /// none). The MASTER runs no cells and injects nothing itself; workers
  /// parse and arm it against the shared out_dir marker files.
  std::string fault_plan_text;
  /// Result cache directory (result_cache.hpp); empty = disabled.
  std::string cache_dir;
  /// Bound on result-cache entries (oldest-mtime trim on store); 0 = never
  /// evict.
  std::uint64_t cache_max_entries = 0;
  bool verbose = true;  ///< progress lines on stderr
  /// > 0: a periodic aggregate progress line on stderr every N seconds
  /// (done/leased/pending cells, summed worker node-updates/s) — readable
  /// on big grids where per-cell completion lines scroll away.
  double progress_seconds = 0.0;
  /// != 0 (or metrics_port_file set): serve the Prometheus text exposition
  /// over HTTP on this port. 0 with a metrics_port_file = ephemeral port,
  /// written to the file like port_file.
  std::uint16_t metrics_port = 0;
  std::string metrics_port_file;
  /// Serve the exposition endpoint (set by the CLI when either
  /// metrics_port or metrics_port_file was given).
  bool serve_metrics = false;
};

/// Runs the master to completion (or drain) and returns the process exit
/// code: kExitComplete / kExitFailedCells / kExitDrained. Throws
/// CheckError for unusable configuration (bad out_dir state, spec skew on
/// resume) and NetError if the listener cannot bind.
int run_master(MasterOptions options);

}  // namespace plurality::service
