// plurality_sweep_worker's engine: connect to a plurality_sweepd master,
// lease cells, run them with the SAME cell runner as the in-process
// orchestrator, and heartbeat while computing.
//
// Per lease: the worker runs exactly ONE attempt (the master owns the
// retry loop and backoff), on a compute thread, while the protocol thread
// heartbeats every heartbeat_seconds. Cell files are committed with the
// link(2) first-write-wins discipline, because an expired lease means a
// sibling worker may be finishing the same cell.
//
// Degradation ladder:
//   - heartbeat answered "expired": the master reassigned this cell.
//     Cancel the compute thread (Reason::kLeaseLost), abandon the attempt
//     — whatever the new holder produces is bitwise what we would have.
//   - master unreachable mid-cell: LOCAL-ORCHESTRATOR MODE. Finish the
//     cell, let the runner commit the checkpoint file, exit kExitOrphaned
//     (3) — the master (restarted or drained) reconciles from disk and
//     the work still counts.
//   - master unreachable while idle: nothing owed; exit 0.
//   - SIGTERM/SIGINT: in-flight cell cancels cooperatively (Interrupted,
//     reported to the master as a clean requeue), exit kExitDrained (130).
#pragma once

#include <cstdint>
#include <string>

#include "service/protocol.hpp"

namespace plurality::service {

struct WorkerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = read it from port_file
  /// File the master writes its bound port into; polled until
  /// connect_timeout_seconds so workers can start before the master.
  std::string port_file;
  std::string name;  ///< default "w<pid>"
  double connect_timeout_seconds = 10.0;
  bool verbose = true;
};

/// Runs the worker loop until the master drains it (0), shutdown (130),
/// or the master vanishes mid-cell (3). Throws CheckError on unusable
/// configuration and NetError if the master can never be reached.
int run_worker(WorkerOptions options);

}  // namespace plurality::service
