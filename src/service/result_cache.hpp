// Cross-run result cache for the sweep service, keyed by resolved-spec
// hash.
//
// Two sweeps that share a cell (same expanded ScenarioSpec, same observer
// config) compute the same result — by the library's determinism contract,
// bitwise. The master therefore checks a content-addressed cache before
// leasing any cell: a hit installs the cached payload as the cell's
// checkpoint file (id/index rewritten to the current grid position) and
// the cell never touches a worker. Every freshly completed cell is stored
// back.
//
// Keying: FNV-1a 64 over the cell's REQUESTED spec string (pre-backend
// resolution — the same string resume matching uses), the observe config,
// and the zero_wall_times flag. wall-clock numbers are part of the payload,
// so a cache shared between timed and zeroed runs must not cross-hit.
//
// Safety:
//   - entries are full CRC checkpoint envelopes; a corrupt entry is
//     deleted and treated as a miss (the cache is an optimization, never
//     a source of truth)
//   - the stored payload strips the "retry" audit block — how many times
//     SOME PAST RUN crashed is not a property of this result
//   - cells with trajectory probes are never cached (their product is a
//     per-trial CSV, not just the payload)
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>

#include "sweep/orchestrator.hpp"
#include "sweep/sweep_spec.hpp"

namespace plurality::service {

class ResultCache {
 public:
  /// Hit/miss/eviction accounting, surfaced in the master's status table
  /// and metrics exposition.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  /// Empty dir = disabled (every lookup misses, every store is a no-op).
  /// max_entries > 0 bounds the entry count: each store trims the
  /// OLDEST-mtime entries until the cache fits again (mtime == last store;
  /// an evicted cell simply recomputes and re-enters on its next store).
  ResultCache(std::string dir, sweep::ObserveSpec observe, bool zero_wall_times,
              std::uint64_t max_entries = 0);

  [[nodiscard]] bool enabled() const { return !dir_.empty(); }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Cache key for a cell (stable across runs and processes).
  [[nodiscard]] std::uint64_t key(const sweep::CellOutcome& cell) const;

  /// On hit: writes the cached payload (cell id/index rewritten) as a CRC
  /// envelope at `cell_path` and returns true — the caller then trusts it
  /// through the normal scan_cell_file path, exactly like any other
  /// on-disk result. Returns false on miss/disabled/uncacheable.
  bool fetch(const sweep::CellOutcome& cell, const std::filesystem::path& cell_path);

  /// Stores the verified checkpoint at `cell_path` under the cell's key
  /// (retry block stripped). No-op when disabled/uncacheable; best-effort
  /// (a failed store never fails the sweep).
  void store(const sweep::CellOutcome& cell, const std::filesystem::path& cell_path);

 private:
  [[nodiscard]] bool cacheable() const;
  [[nodiscard]] std::filesystem::path entry_path(std::uint64_t key) const;
  void trim_to_max_entries();

  std::string dir_;
  sweep::ObserveSpec observe_;
  bool zero_wall_times_;
  std::uint64_t max_entries_;
  Stats stats_;
};

}  // namespace plurality::service
