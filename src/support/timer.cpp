#include "support/timer.hpp"

namespace plurality {

WallTimer::WallTimer() : start_(std::chrono::steady_clock::now()) {}

void WallTimer::reset() { start_ = std::chrono::steady_clock::now(); }

double WallTimer::seconds() const {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now - start_).count();
}

double WallTimer::millis() const { return seconds() * 1e3; }

}  // namespace plurality
