// Checked-assertion macros used throughout the library.
//
// Unlike assert(), these stay enabled in release builds: the simulators are
// the ground truth for the experiments, so silent corruption is worse than
// the (negligible) branch cost. Violations throw, so tests can assert on
// misuse and callers on a REPL can recover.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace plurality {

/// Thrown when a PLURALITY_CHECK / PLURALITY_REQUIRE condition fails.
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* cond, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace plurality

/// Internal-invariant check: condition must hold or the library has a bug.
#define PLURALITY_CHECK(cond)                                                \
  do {                                                                       \
    if (!(cond)) ::plurality::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

/// Internal-invariant check with a formatted explanation.
#define PLURALITY_CHECK_MSG(cond, msg)                                       \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::ostringstream plurality_check_os_;                                \
      plurality_check_os_ << msg;                                            \
      ::plurality::detail::check_failed(#cond, __FILE__, __LINE__,           \
                                        plurality_check_os_.str());          \
    }                                                                        \
  } while (0)

/// Precondition on caller-supplied arguments (public API contract).
#define PLURALITY_REQUIRE(cond, msg) PLURALITY_CHECK_MSG(cond, msg)
