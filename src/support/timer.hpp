// Monotonic wall-clock timing for experiment harnesses and benchmarks.
#pragma once

#include <chrono>

namespace plurality {

/// Stopwatch over std::chrono::steady_clock. Starts running on construction.
class WallTimer {
 public:
  WallTimer();

  /// Restarts the stopwatch.
  void reset();

  /// Seconds elapsed since construction / last reset().
  [[nodiscard]] double seconds() const;

  /// Milliseconds elapsed since construction / last reset().
  [[nodiscard]] double millis() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace plurality
