#include "support/format.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace plurality {

std::string format_sig(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", digits, v);
  return buf;
}

std::string format_fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string format_count(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i + 3 - lead) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string format_si(double v) {
  static constexpr std::array<const char*, 5> kSuffix = {"", "k", "M", "G", "T"};
  double mag = std::fabs(v);
  std::size_t idx = 0;
  while (mag >= 1000.0 && idx + 1 < kSuffix.size()) {
    mag /= 1000.0;
    v /= 1000.0;
    ++idx;
  }
  char buf[64];
  if (idx == 0 && v == std::floor(v)) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.3g%s", v, kSuffix[idx]);
  }
  return buf;
}

std::string format_duration(double seconds) {
  char buf[64];
  if (seconds < 0) return "-" + format_duration(-seconds);
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.0fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof buf, "%.0fms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof buf, "%.1fs", seconds);
  } else {
    int minutes = static_cast<int>(seconds / 60.0);
    std::snprintf(buf, sizeof buf, "%dm%02.0fs", minutes, seconds - 60.0 * minutes);
  }
  return buf;
}

std::string format_percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string pad_left(const std::string& s, std::size_t w) {
  if (s.size() >= w) return s;
  return std::string(w - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t w) {
  if (s.size() >= w) return s;
  return s + std::string(w - s.size(), ' ');
}

}  // namespace plurality
