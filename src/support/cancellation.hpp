// Cooperative cancellation for long-running trial drivers.
//
// A sweep cell that hangs (pathological spec, injected fault, adversary
// that forbids consensus under a huge round cap) must not stall the whole
// grid forever. The contract is cooperative: every trial driver
// (run_dynamics on the count/agent paths, graph::run_graph_trials) loads
// one relaxed atomic between rounds — the cheapest possible check, no
// clock reads on the hot path — and an external watchdog (sweep/watchdog.hpp)
// owns the clock, firing tokens whose wall-clock deadline passed and
// propagating process-wide shutdown requests.
//
// Cancellation is deliberately NOT an exception inside the round loop:
// trial bodies execute inside OpenMP regions where an escaping exception
// is fatal. A cancelled run stops at the next round boundary with
// StopReason::Cancelled; the trial driver then throws CancelledError
// *after* joining its parallel region, where unwinding is safe. Results of
// a cancelled run are discarded by construction — a partial summary would
// not be reproducible, and reproducibility is this library's product.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace plurality {

class CancellationToken {
 public:
  /// Why the token fired. The FIRST cancel wins: a shutdown arriving after
  /// a deadline fired keeps the deadline verdict (and vice versa), so the
  /// failure taxonomy is stable under racing causes.
  enum class Reason : std::uint32_t {
    kNone = 0,
    kDeadline = 1,   // per-cell wall-clock budget exhausted (watchdog)
    kShutdown = 2,   // SIGINT/SIGTERM graceful-shutdown request
    kLeaseLost = 3,  // sweep service: the master reassigned this cell's
                     // lease (missed heartbeats); the result would be
                     // discarded, so stop burning cycles on it
  };

  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Requests cancellation. Safe from any thread; first reason sticks.
  void cancel(Reason reason) {
    std::uint32_t expected = 0;
    state_.compare_exchange_strong(expected, static_cast<std::uint32_t>(reason),
                                   std::memory_order_release,
                                   std::memory_order_relaxed);
  }

  /// The hot-path check — one relaxed atomic load.
  [[nodiscard]] bool stop_requested() const {
    return state_.load(std::memory_order_relaxed) != 0;
  }

  [[nodiscard]] Reason reason() const {
    return static_cast<Reason>(state_.load(std::memory_order_acquire));
  }

  /// Re-arms the token for another attempt (the retry loop reuses one
  /// token per cell). Only the owning cell runner may call this, and only
  /// while no driver is consuming the token.
  void reset() { state_.store(0, std::memory_order_release); }

 private:
  std::atomic<std::uint32_t> state_{0};
};

/// Thrown by trial drivers (outside their parallel regions) when a token
/// fired mid-run. `reason()` feeds the sweep layer's failure taxonomy
/// (kDeadline -> failed_timeout; kShutdown -> interrupted, not a failure).
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(CancellationToken::Reason reason)
      : std::runtime_error(reason == CancellationToken::Reason::kDeadline
                               ? "run cancelled: wall-clock deadline exceeded"
                           : reason == CancellationToken::Reason::kLeaseLost
                               ? "run cancelled: lease expired and was reassigned"
                               : "run cancelled: shutdown requested"),
        reason_(reason) {}

  [[nodiscard]] CancellationToken::Reason reason() const { return reason_; }

 private:
  CancellationToken::Reason reason_;
};

}  // namespace plurality
