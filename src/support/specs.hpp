// Shared shape of every registry spec string: "<kind>" or "<kind>:<arg>".
// The dynamics, workload, topology, adversary, and stop-condition
// registries all split specs the same way; keeping the split here means
// their npos handling cannot drift apart.
#pragma once

#include <string>

namespace plurality {

struct SpecParts {
  std::string kind;
  std::string arg;  // empty when the spec has no ':'
};

inline SpecParts split_spec(const std::string& spec) {
  const auto colon = spec.find(':');
  if (colon == std::string::npos) return {spec, ""};
  return {spec.substr(0, colon), spec.substr(colon + 1)};
}

}  // namespace plurality
