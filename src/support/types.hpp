// Shared numeric vocabulary for the whole library.
#pragma once

#include <cstdint>

namespace plurality {

/// Number of nodes holding a given color. Counts up to 2^63 keep every
/// intermediate product `n * c_j` representable in long double / double math.
using count_t = std::uint64_t;

/// Color / state index. Colors are 0-based indices in [0, k); dynamics with
/// auxiliary states (e.g. the undecided-state protocol) append them after
/// the color range.
using state_t = std::uint32_t;

/// Round counter.
using round_t = std::uint64_t;

}  // namespace plurality
