#include "support/cli.hpp"

#include <charconv>
#include <cstdio>
#include <sstream>

#include "support/check.hpp"

namespace plurality {

namespace {

std::int64_t parse_int(const std::string& name, const std::string& text) {
  std::int64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  PLURALITY_REQUIRE(ec == std::errc() && ptr == text.data() + text.size(),
                    "option --" << name << ": expected integer, got '" << text << "'");
  return value;
}

std::uint64_t parse_uint(const std::string& name, const std::string& text) {
  // Accept scientific shorthand like 1e6 for node counts.
  if (text.find_first_of("eE.") != std::string::npos) {
    double d = 0.0;
    try {
      d = std::stod(text);
    } catch (const std::exception&) {
      PLURALITY_REQUIRE(false, "option --" << name << ": expected count, got '" << text << "'");
    }
    PLURALITY_REQUIRE(d >= 0 && d <= 9.2e18 && d == static_cast<double>(static_cast<std::uint64_t>(d)),
                      "option --" << name << ": '" << text << "' is not an exact nonnegative count");
    return static_cast<std::uint64_t>(d);
  }
  std::uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  PLURALITY_REQUIRE(ec == std::errc() && ptr == text.data() + text.size(),
                    "option --" << name << ": expected nonnegative integer, got '" << text << "'");
  return value;
}

double parse_double(const std::string& name, const std::string& text) {
  try {
    std::size_t pos = 0;
    double v = std::stod(text, &pos);
    PLURALITY_REQUIRE(pos == text.size(),
                      "option --" << name << ": trailing garbage in '" << text << "'");
    return v;
  } catch (const CheckError&) {
    throw;
  } catch (const std::exception&) {
    PLURALITY_REQUIRE(false, "option --" << name << ": expected number, got '" << text << "'");
  }
  return 0.0;  // unreachable
}

bool parse_bool(const std::string& name, const std::string& text) {
  if (text == "true" || text == "1" || text == "yes" || text == "on") return true;
  if (text == "false" || text == "0" || text == "no" || text == "off") return false;
  PLURALITY_REQUIRE(false, "option --" << name << ": expected bool, got '" << text << "'");
  return false;  // unreachable
}

}  // namespace

CliParser::CliParser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  PLURALITY_REQUIRE(!options_.count(name), "duplicate option --" << name);
  Option opt;
  opt.kind = Kind::Flag;
  opt.help = help;
  opt.default_text = "false";
  options_.emplace(name, std::move(opt));
  order_.push_back(name);
}

void CliParser::add_int(const std::string& name, std::int64_t default_value,
                        const std::string& help) {
  PLURALITY_REQUIRE(!options_.count(name), "duplicate option --" << name);
  Option opt;
  opt.kind = Kind::Int;
  opt.help = help;
  opt.int_value = default_value;
  opt.default_text = std::to_string(default_value);
  options_.emplace(name, std::move(opt));
  order_.push_back(name);
}

void CliParser::add_uint(const std::string& name, std::uint64_t default_value,
                         const std::string& help) {
  PLURALITY_REQUIRE(!options_.count(name), "duplicate option --" << name);
  Option opt;
  opt.kind = Kind::Uint;
  opt.help = help;
  opt.uint_value = default_value;
  opt.default_text = std::to_string(default_value);
  options_.emplace(name, std::move(opt));
  order_.push_back(name);
}

void CliParser::add_double(const std::string& name, double default_value,
                           const std::string& help) {
  PLURALITY_REQUIRE(!options_.count(name), "duplicate option --" << name);
  Option opt;
  opt.kind = Kind::Double;
  opt.help = help;
  opt.double_value = default_value;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", default_value);
  opt.default_text = buf;
  options_.emplace(name, std::move(opt));
  order_.push_back(name);
}

void CliParser::add_string(const std::string& name, const std::string& default_value,
                           const std::string& help) {
  PLURALITY_REQUIRE(!options_.count(name), "duplicate option --" << name);
  Option opt;
  opt.kind = Kind::String;
  opt.help = help;
  opt.string_value = default_value;
  opt.default_text = default_value.empty() ? "\"\"" : default_value;
  options_.emplace(name, std::move(opt));
  order_.push_back(name);
}

void CliParser::set_from_text(const std::string& name, Option& opt, const std::string& text) {
  switch (opt.kind) {
    case Kind::Flag:
      opt.flag_value = parse_bool(name, text);
      break;
    case Kind::Int:
      opt.int_value = parse_int(name, text);
      break;
    case Kind::Uint:
      opt.uint_value = parse_uint(name, text);
      break;
    case Kind::Double:
      opt.double_value = parse_double(name, text);
      break;
    case Kind::String:
      opt.string_value = text;
      break;
  }
  opt.provided = true;
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help_text().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string name;
    std::optional<std::string> value;
    if (auto eq = body.find('='); eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else {
      name = body;
    }
    auto it = options_.find(name);
    PLURALITY_REQUIRE(it != options_.end(), "unknown option --" << name);
    Option& opt = it->second;
    if (!value.has_value()) {
      if (opt.kind == Kind::Flag) {
        opt.flag_value = true;
        opt.provided = true;
        continue;
      }
      PLURALITY_REQUIRE(i + 1 < argc, "option --" << name << " requires a value");
      value = argv[++i];
    }
    set_from_text(name, opt, *value);
  }
  return true;
}

const CliParser::Option& CliParser::lookup(const std::string& name, Kind kind) const {
  auto it = options_.find(name);
  PLURALITY_REQUIRE(it != options_.end(), "option --" << name << " was never registered");
  PLURALITY_REQUIRE(it->second.kind == kind, "option --" << name << " accessed with wrong type");
  return it->second;
}

bool CliParser::flag(const std::string& name) const { return lookup(name, Kind::Flag).flag_value; }

std::int64_t CliParser::get_int(const std::string& name) const {
  return lookup(name, Kind::Int).int_value;
}

std::uint64_t CliParser::get_uint(const std::string& name) const {
  return lookup(name, Kind::Uint).uint_value;
}

double CliParser::get_double(const std::string& name) const {
  return lookup(name, Kind::Double).double_value;
}

const std::string& CliParser::get_string(const std::string& name) const {
  return lookup(name, Kind::String).string_value;
}

bool CliParser::provided(const std::string& name) const {
  auto it = options_.find(name);
  PLURALITY_REQUIRE(it != options_.end(), "option --" << name << " was never registered");
  return it->second.provided;
}

const std::vector<std::string>& CliParser::positional() const { return positional_; }

std::string CliParser::help_text() const {
  std::ostringstream os;
  os << program_ << " — " << summary_ << "\n\nOptions:\n";
  std::size_t width = 0;
  for (const auto& name : order_) width = std::max(width, name.size());
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    os << "  --" << name << std::string(width - name.size() + 2, ' ') << opt.help
       << " (default: " << opt.default_text << ")\n";
  }
  os << "  --help" << std::string(width >= 4 ? width - 4 + 2 : 2, ' ') << "show this text\n";
  return os.str();
}

}  // namespace plurality
