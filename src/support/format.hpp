// Small formatting helpers shared by tables, logs and experiment reports.
#pragma once

#include <cstdint>
#include <string>

namespace plurality {

/// Formats a double with `digits` significant digits ("0.00123", "1.23e+09").
std::string format_sig(double v, int digits = 4);

/// Formats a double with a fixed number of decimals ("3.142").
std::string format_fixed(double v, int decimals = 3);

/// Formats an integer with thousands separators ("1,234,567").
std::string format_count(std::uint64_t v);

/// Formats a count with an SI suffix ("1.2M", "34k", "987").
std::string format_si(double v);

/// Formats seconds as a human-readable duration ("1.2s", "3m04s", "842ms").
std::string format_duration(double seconds);

/// Formats a probability / rate as a percentage ("97.5%").
std::string format_percent(double fraction, int decimals = 1);

/// Left/right-pads `s` with spaces to width `w` (no-op if already wider).
std::string pad_left(const std::string& s, std::size_t w);
std::string pad_right(const std::string& s, std::size_t w);

}  // namespace plurality
