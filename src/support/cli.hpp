// Minimal dependency-free command-line parser used by examples and benches.
//
// Supports `--name value`, `--name=value`, boolean flags (`--flag`,
// `--flag=false`), positional arguments, typed getters with defaults, and
// generated `--help` text. Unknown options are an error (typos in sweep
// parameters silently running the wrong experiment is the failure mode we
// care about).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace plurality {

class CliParser {
 public:
  /// `program` and `summary` appear in the generated --help text.
  CliParser(std::string program, std::string summary);

  /// Registers an option. `name` excludes the leading dashes.
  /// All registration must happen before parse().
  void add_flag(const std::string& name, const std::string& help);
  void add_int(const std::string& name, std::int64_t default_value, const std::string& help);
  void add_uint(const std::string& name, std::uint64_t default_value, const std::string& help);
  void add_double(const std::string& name, double default_value, const std::string& help);
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);

  /// Parses argv. Returns false if --help was requested (help text printed);
  /// throws CheckError on malformed input or unknown options.
  bool parse(int argc, const char* const* argv);

  /// Typed getters; throw if the option was never registered.
  [[nodiscard]] bool flag(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] std::uint64_t get_uint(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;

  /// True if the user explicitly supplied the option on the command line.
  [[nodiscard]] bool provided(const std::string& name) const;

  /// Arguments that did not start with '--', in order.
  [[nodiscard]] const std::vector<std::string>& positional() const;

  /// The generated usage/help text.
  [[nodiscard]] std::string help_text() const;

 private:
  enum class Kind { Flag, Int, Uint, Double, String };

  struct Option {
    Kind kind;
    std::string help;
    std::string default_text;
    // Current values (only the member matching `kind` is meaningful).
    bool flag_value = false;
    std::int64_t int_value = 0;
    std::uint64_t uint_value = 0;
    double double_value = 0.0;
    std::string string_value;
    bool provided = false;
  };

  const Option& lookup(const std::string& name, Kind kind) const;
  void set_from_text(const std::string& name, Option& opt, const std::string& text);

  std::string program_;
  std::string summary_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;  // registration order, for help text
  std::vector<std::string> positional_;
};

}  // namespace plurality
