#include "core/voter.hpp"

#include "rng/distributions.hpp"
#include "support/check.hpp"

namespace plurality {

void Voter::adoption_law(std::span<const double> counts, std::span<double> out) const {
  PLURALITY_REQUIRE(counts.size() == out.size(), "voter law: size mismatch");
  double n = 0.0;
  for (double c : counts) n += c;
  PLURALITY_REQUIRE(n > 0.0, "voter law: empty configuration");
  for (std::size_t j = 0; j < counts.size(); ++j) out[j] = counts[j] / n;
}

state_t Voter::apply_rule(state_t own, std::span<const state_t> sampled,
                          state_t states, rng::Xoshiro256pp& gen) const {
  (void)own;
  (void)states;
  (void)gen;
  PLURALITY_CHECK(sampled.size() == 1);
  return sampled[0];
}

void TwoChoices::adoption_law(std::span<const double> counts, std::span<double> out) const {
  PLURALITY_REQUIRE(counts.size() == out.size(), "2-choices law: size mismatch");
  double n = 0.0;
  for (double c : counts) n += c;
  PLURALITY_REQUIRE(n > 0.0, "2-choices law: empty configuration");
  for (std::size_t j = 0; j < counts.size(); ++j) {
    const double share = counts[j] / n;
    out[j] = share * share + share * (1.0 - share);
  }
}

state_t TwoChoices::apply_rule(state_t own, std::span<const state_t> sampled,
                               state_t states, rng::Xoshiro256pp& gen) const {
  (void)own;
  (void)states;
  PLURALITY_CHECK(sampled.size() == 2);
  if (sampled[0] == sampled[1]) return sampled[0];
  return rng::bernoulli(gen, 0.5) ? sampled[0] : sampled[1];
}

}  // namespace plurality
