// Phase decomposition of 3-majority trajectories, following the structure
// of the Theorem 1 proof:
//
//   phase 1 (Lemma 3): n/lambda <= c1 <= 2n/3 — the bias s(t) multiplies by
//           at least 1 + c1/(4n) per round w.h.p.;
//   phase 2 (Lemma 4): 2n/3 < c1 < n - polylog — the total minority mass
//           decays by a factor <= 8/9 per round w.h.p.;
//   phase 3 (Lemma 5): c1 >= n - polylog — everything else dies, w.h.p. in
//           one round.
//
// This module classifies recorded trajectories into those phases and
// aggregates the per-round statistics each lemma bounds. Used by the E8
// bench and by tests that pin the drift structure.
#pragma once

#include <span>
#include <vector>

#include "core/runner.hpp"
#include "stats/summary.hpp"
#include "support/types.hpp"

namespace plurality {

enum class Phase {
  BiasGrowth,     // Lemma 3 regime
  MinorityDecay,  // Lemma 4 regime
  LastStep,       // Lemma 5 regime
};

/// Which phase a trajectory point belongs to, given n and the phase-3
/// boundary (the paper's n - polylog; callers pick the polylog).
Phase classify_phase(const TrajectoryPoint& point, count_t n, double last_step_boundary);

struct PhaseReport {
  // Rounds spent per phase.
  stats::OnlineStats rounds_phase1;
  stats::OnlineStats rounds_phase2;
  stats::OnlineStats rounds_phase3;

  // Lemma 3: observed per-round bias growth factors and the fraction of
  // steps violating the 1 + c1/(4n) bound (w.h.p. => rare).
  stats::OnlineStats bias_growth;
  std::uint64_t bias_growth_steps = 0;
  std::uint64_t bias_growth_violations = 0;

  // Lemma 4: observed per-round minority decay factors vs 8/9.
  stats::OnlineStats minority_decay;
  std::uint64_t minority_decay_steps = 0;
  std::uint64_t minority_decay_violations = 0;

  [[nodiscard]] double bias_violation_rate() const;
  [[nodiscard]] double decay_violation_rate() const;

  /// Merges another report (parallel trial aggregation).
  void merge(const PhaseReport& other);
};

/// Decomposes one recorded trajectory. `last_step_boundary` is the phase-3
/// entry threshold measured in nodes below n (e.g. log^2 n).
PhaseReport analyze_phases(std::span<const TrajectoryPoint> trajectory, count_t n,
                           double last_step_boundary);

}  // namespace plurality
