// The two simulation backends.
//
// Count-based: because node updates are i.i.d. given the configuration
// (or i.i.d. within each own-state class for stateful dynamics), one
// multinomial draw per round over the adoption law samples the EXACT
// one-round transition of the Markov chain — Θ(k) work per round instead of
// Θ(n·h). This is what lets the experiments run n up to 10^9.
//
// The stepper works out of a caller-owned StepWorkspace so steady-state
// rounds perform zero heap allocations, and its multinomial kernel is
// sparse: stateful dynamics pay O(k + nnz) per *occupied* own-state class
// (nnz = support of that class's law) instead of Θ(k) binomial calls per
// class. Both properties are load-bearing at paper scale (k in the
// hundreds, almost all classes empty). step_count_based_reference() keeps
// the original dense allocating implementation frozen so tests and
// bench_throughput can verify, bitwise and in rounds/sec, what the
// workspace path buys — the two must consume identical RNG streams.
//
// Agent-based: the literal protocol — an explicit node array, h uniform
// samples per node per round, OpenMP-parallel over fixed node chunks with
// one independent RNG stream per (round, chunk) so results are bitwise
// reproducible regardless of thread count. It exists (a) to cross-validate
// the count-based backend (they must agree in distribution — property-
// tested via chi-square), (b) for dynamics whose exact law is unavailable
// (large h-plurality), and (c) as the basis of the sparse-graph extension.
#pragma once

#include <vector>

#include "core/configuration.hpp"
#include "core/dynamics.hpp"
#include "core/step_workspace.hpp"
#include "rng/philox.hpp"
#include "rng/stream.hpp"
#include "rng/xoshiro.hpp"

namespace plurality {

/// Which stepping implementation a runner should use.
enum class Backend { CountBased, Agent };

/// Advances one synchronous round in place using the exact adoption law.
/// Requires dynamics.has_exact_law(config.k()). Zero heap allocations once
/// `ws` is warm at this k.
///
/// Template over the generator engine (instantiated in backend.cpp):
/// Xoshiro256pp is the sequential default every existing stream runs on;
/// rng::PhiloxStream is the counter-based batched mode — the same exact
/// conditional-binomial kernels fed by block-generated Philox uniforms, so
/// the two engines are distributionally identical (pinned by
/// tests/core/test_backend.cpp) while Philox streams stay order-free and
/// cheap to derive per (seed, tag).
template <class Gen>
void step_count_based(const Dynamics& dynamics, Configuration& config, Gen& gen,
                      StepWorkspace& ws);

/// Convenience overload for one-off steps; allocates a throwaway workspace.
template <class Gen>
void step_count_based(const Dynamics& dynamics, Configuration& config, Gen& gen);

/// The pre-workspace dense implementation, kept frozen as the bitwise
/// ground truth: same RNG stream, same results, Θ(k) per own-state class
/// plus per-round allocations. Used by the determinism suite and by
/// bench_throughput to report the workspace path's speedup.
void step_count_based_reference(const Dynamics& dynamics, Configuration& config,
                                rng::Xoshiro256pp& gen);

/// Explicit per-node simulation of the same process.
class AgentSimulation {
 public:
  /// Lays out `start.at(j)` nodes in state j. `seed` derives the per-round
  /// per-chunk sampling streams.
  AgentSimulation(const Dynamics& dynamics, const Configuration& start,
                  std::uint64_t seed);

  /// One synchronous round: every node samples sample_arity() nodes from
  /// the whole population (with repetition, including itself) and applies
  /// the rule. Zero heap allocations (all buffers live on the simulation).
  void step();

  [[nodiscard]] const Configuration& configuration() const { return config_; }
  [[nodiscard]] round_t round() const { return round_; }
  [[nodiscard]] const std::vector<state_t>& states() const { return nodes_; }

  /// Number of fixed parallel chunks (determinism contract: results depend
  /// on the seed but never on the number of threads).
  static constexpr unsigned kChunks = 64;

 private:
  const Dynamics& dynamics_;
  Configuration config_;
  std::vector<state_t> nodes_;
  std::vector<state_t> scratch_;
  std::vector<count_t> partials_;       // kChunks x k per-chunk counts
  std::vector<count_t> counts_scratch_; // k, reduction of partials_
  rng::StreamFactory streams_;
  round_t round_ = 0;
};

}  // namespace plurality
