#include "core/dynamics.hpp"

#include "support/check.hpp"

namespace plurality {

void Dynamics::adoption_law(std::span<const double> counts, std::span<double> out) const {
  (void)counts;
  (void)out;
  PLURALITY_CHECK_MSG(false, "dynamics '" << name()
                                          << "' did not implement a shared adoption law");
}

void Dynamics::adoption_law_given(state_t own, std::span<const double> counts,
                                  std::span<double> out) const {
  (void)own;
  adoption_law(counts, out);
}

}  // namespace plurality
