#include "core/dynamics.hpp"

#include "support/check.hpp"

namespace plurality {

void Dynamics::adoption_law(std::span<const double> counts, std::span<double> out) const {
  (void)counts;
  (void)out;
  PLURALITY_CHECK_MSG(false, "dynamics '" << name()
                                          << "' did not implement a shared adoption law");
}

void Dynamics::adoption_law_given(state_t own, std::span<const double> counts,
                                  std::span<double> out) const {
  (void)own;
  adoption_law(counts, out);
}

state_t Dynamics::adoption_law_given_sparse(state_t own, std::span<const double> counts,
                                            double total, std::span<state_t> states_out,
                                            std::span<double> probs_out) const {
  (void)own;
  (void)counts;
  (void)total;
  (void)states_out;
  (void)probs_out;
  PLURALITY_CHECK_MSG(false, "dynamics '" << name()
                                          << "' advertises no sparse adoption law");
  return 0;
}

}  // namespace plurality
