#include "core/registry.hpp"

#include <charconv>

#include "core/hplurality.hpp"
#include "core/majority.hpp"
#include "core/median.hpp"
#include "core/rule_table.hpp"
#include "core/undecided.hpp"
#include "core/voter.hpp"
#include "support/check.hpp"

namespace plurality {

std::unique_ptr<Dynamics> make_dynamics(const std::string& name) {
  if (name == "3-majority") return std::make_unique<ThreeMajority>();
  if (name == "voter") return std::make_unique<Voter>();
  if (name == "2-choices") return std::make_unique<TwoChoices>();
  if (name == "3-median") return std::make_unique<MedianDynamics>();
  if (name == "median-own2") return std::make_unique<MedianOwnTwo>();
  if (name == "undecided") return std::make_unique<UndecidedState>();

  if (const auto pos = name.find("-plurality");
      pos != std::string::npos && pos + 10 == name.size()) {
    unsigned h = 0;
    const auto [ptr, ec] = std::from_chars(name.data(), name.data() + pos, h);
    PLURALITY_REQUIRE(ec == std::errc() && ptr == name.data() + pos && h >= 1,
                      "make_dynamics: malformed h-plurality name '" << name << "'");
    return std::make_unique<HPlurality>(h);
  }

  if (name.rfind("rule:", 0) == 0) {
    const std::string rule = name.substr(5);
    if (rule == "first") {
      return std::make_unique<ThreeInputDynamics>("first-sample", rule_first_sample());
    }
    if (rule == "min") {
      return std::make_unique<ThreeInputDynamics>("min", rule_min());
    }
    if (rule == "median") {
      return std::make_unique<ThreeInputDynamics>("median-table", rule_median());
    }
    if (rule == "majority-tie-lowest") {
      return std::make_unique<ThreeInputDynamics>("majority/tie-lowest",
                                                  rule_majority_tie_lowest());
    }
    if (rule == "majority-tie-cond") {
      return std::make_unique<ThreeInputDynamics>("majority/tie-cond",
                                                  rule_majority_tie_conditional());
    }
    if (rule == "majority-tie-last") {
      return std::make_unique<ThreeInputDynamics>("majority/tie-last",
                                                  rule_majority_tie_last());
    }
  }
  PLURALITY_REQUIRE(false, "make_dynamics: unknown dynamics '"
                               << name << "'; known: 3-majority, voter, 2-choices, "
                               << "3-median, median-own2, undecided, <h>-plurality, "
                               << "rule:{first,min,median,majority-tie-lowest,"
                               << "majority-tie-cond,majority-tie-last}");
  return nullptr;  // unreachable
}

std::vector<std::string> dynamics_names() {
  std::vector<std::string> names = {"3-majority", "voter", "2-choices",
                                    "3-median",   "median-own2", "undecided"};
  // The h-plurality family is a parameterized protocol, not one entry:
  // enumerate the members whose exact law stays within the default
  // enumeration budget at paper-scale k. (h = 1 is the voter and h = 3
  // nearly the 3-majority; both are listed under their own names.)
  for (unsigned h = 2; h <= 8; ++h) {
    names.push_back(std::to_string(h) + "-plurality");
  }
  names.insert(names.end(),
               {"rule:first", "rule:min", "rule:median", "rule:majority-tie-lowest",
                "rule:majority-tie-cond", "rule:majority-tie-last"});
  return names;
}

DynamicsInfo describe_dynamics(const std::string& name) {
  const auto dynamics = make_dynamics(name);
  constexpr state_t kProbe = 8;  // reference color count for k-dependent probes
  DynamicsInfo info;
  info.name = name;
  info.display_name = dynamics->name();
  info.sample_arity = dynamics->sample_arity();
  info.aux_states = dynamics->num_states(kProbe) - kProbe;
  info.memory_bits = 0;
  for (state_t aux = info.aux_states; aux > 0; aux >>= 1) ++info.memory_bits;
  info.law_depends_on_own_state = dynamics->law_depends_on_own_state();
  info.exact_law_at_k8 = dynamics->has_exact_law(dynamics->num_states(kProbe));
  return info;
}

std::vector<DynamicsInfo> dynamics_catalog() {
  std::vector<DynamicsInfo> catalog;
  for (const auto& name : dynamics_names()) {
    catalog.push_back(describe_dynamics(name));
  }
  return catalog;
}

}  // namespace plurality
