#include "core/workloads.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "rng/discrete.hpp"
#include "rng/multinomial.hpp"
#include "support/check.hpp"

namespace plurality::workloads {

std::vector<count_t> largest_remainder_round(count_t n, std::span<const double> targets) {
  PLURALITY_REQUIRE(!targets.empty(), "largest_remainder_round: empty targets");
  double total = 0.0;
  for (double t : targets) {
    PLURALITY_REQUIRE(t >= 0.0, "largest_remainder_round: negative target");
    total += t;
  }
  PLURALITY_REQUIRE(total > 0.0, "largest_remainder_round: zero total");

  const std::size_t k = targets.size();
  std::vector<count_t> counts(k);
  std::vector<std::pair<double, std::size_t>> remainders(k);
  count_t assigned = 0;
  for (std::size_t j = 0; j < k; ++j) {
    const double exact = static_cast<double>(n) * targets[j] / total;
    const double floored = std::floor(exact);
    counts[j] = static_cast<count_t>(floored);
    assigned += counts[j];
    remainders[j] = {exact - floored, j};
  }
  PLURALITY_CHECK(assigned <= n);
  count_t leftover = n - assigned;
  // Hand the leftover units to the largest fractional parts (index order
  // breaks ties so the result is deterministic).
  std::sort(remainders.begin(), remainders.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  for (std::size_t i = 0; leftover > 0; ++i, --leftover) {
    PLURALITY_CHECK(i < k);
    ++counts[remainders[i].second];
  }
  return counts;
}

Configuration balanced(count_t n, state_t k) {
  PLURALITY_REQUIRE(k >= 1, "balanced: k must be positive");
  PLURALITY_REQUIRE(n >= k, "balanced: need n >= k so every color is populated");
  std::vector<count_t> counts(k, n / k);
  for (state_t j = 0; j < static_cast<state_t>(n % k); ++j) ++counts[j];
  return Configuration(std::move(counts));
}

Configuration additive_bias(count_t n, state_t k, count_t s) {
  PLURALITY_REQUIRE(k >= 2, "additive_bias: need k >= 2");
  PLURALITY_REQUIRE(s <= n, "additive_bias: bias exceeds n");
  PLURALITY_REQUIRE(n - s >= k, "additive_bias: too little residual mass");
  Configuration base = balanced(n - s, k);
  std::vector<count_t> counts(base.counts().begin(), base.counts().end());
  counts[0] += s;
  return Configuration(std::move(counts));
}

Configuration plurality_share(count_t n, state_t k, double share) {
  PLURALITY_REQUIRE(k >= 2, "plurality_share: need k >= 2");
  PLURALITY_REQUIRE(share > 0.0 && share < 1.0, "plurality_share: share in (0,1)");
  const auto c0 = static_cast<count_t>(std::llround(share * static_cast<double>(n)));
  PLURALITY_REQUIRE(c0 >= 1 && n - c0 >= static_cast<count_t>(k) - 1,
                    "plurality_share: share leaves colors empty");
  Configuration rest = balanced(n - c0, k - 1);
  std::vector<count_t> counts;
  counts.reserve(k);
  counts.push_back(c0);
  counts.insert(counts.end(), rest.counts().begin(), rest.counts().end());
  return Configuration(std::move(counts));
}

Configuration lemma10(count_t n, state_t k, count_t s) {
  PLURALITY_REQUIRE(k >= 2, "lemma10: need k >= 2");
  PLURALITY_REQUIRE(s < n, "lemma10: bias exceeds n");
  const count_t x = (n - s) / k;
  PLURALITY_REQUIRE(x >= 1, "lemma10: x = (n-s)/k must be positive");
  PLURALITY_REQUIRE(s <= x, "lemma10: requires s <= x (see Lemma 10's proof)");
  std::vector<count_t> counts(k, x);
  counts[0] = x + s;
  // Rounding slack from the integer division goes to the last color(s),
  // keeping c_0 - c_j >= s - slack; slack < k.
  count_t assigned = x * k + s;
  PLURALITY_CHECK(assigned <= n);
  count_t leftover = n - assigned;
  for (state_t j = k; j-- > 1 && leftover > 0;) {
    ++counts[j];
    --leftover;
  }
  counts[0] += leftover;  // k-1 colors were not enough (tiny k): give to 0
  return Configuration(std::move(counts));
}

Configuration theorem3(count_t n, count_t s) {
  PLURALITY_REQUIRE(n >= 6, "theorem3: n too small");
  const count_t third = n / 3;
  PLURALITY_REQUIRE(s < third, "theorem3: s must be below n/3");
  std::vector<count_t> counts = {third + s, third, third - s};
  count_t leftover = n - 3 * third;
  // Leftover (0..2) goes to the middle color: it never changes which color
  // is the plurality or the magnitude relations c0 > c1 > c2.
  counts[1] += leftover;
  return Configuration(std::move(counts));
}

Configuration near_balanced(count_t n, state_t k, double epsilon) {
  PLURALITY_REQUIRE(k >= 2, "near_balanced: need k >= 2");
  PLURALITY_REQUIRE(epsilon > 0.0 && epsilon < 1.0, "near_balanced: epsilon in (0,1)");
  Configuration base = balanced(n, k);
  std::vector<count_t> counts(base.counts().begin(), base.counts().end());
  const double per_color = static_cast<double>(n) / static_cast<double>(k);
  auto imbalance =
      static_cast<count_t>(std::floor(std::pow(per_color, 1.0 - epsilon)));
  // Take the imbalance from the tail colors without emptying them.
  count_t need = imbalance;
  for (state_t j = k; j-- > 1 && need > 0;) {
    const count_t take = std::min(need, counts[j] > 1 ? counts[j] - 1 : 0);
    counts[j] -= take;
    need -= take;
  }
  counts[0] += imbalance - need;
  return Configuration(std::move(counts));
}

Configuration zipf(count_t n, state_t k, double theta) {
  PLURALITY_REQUIRE(k >= 1, "zipf: k must be positive");
  const std::vector<double> weights = rng::zipf_weights(k, theta);
  return Configuration(largest_remainder_round(n, weights));
}

Configuration sample_from_weights(count_t n, std::span<const double> weights,
                                  rng::Xoshiro256pp& gen) {
  std::vector<double> probs(weights.begin(), weights.end());
  rng::normalize_weights(probs);
  std::vector<count_t> counts(weights.size(), 0);
  rng::multinomial(gen, n, probs, counts);
  return Configuration(std::move(counts));
}

Configuration parse_workload(const std::string& spec, count_t n, state_t k) {
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  const std::string arg = colon == std::string::npos ? "" : spec.substr(colon + 1);
  const auto parse_num = [&](const std::string& text) {
    try {
      std::size_t pos = 0;
      const double v = std::stod(text, &pos);
      PLURALITY_REQUIRE(pos == text.size(),
                        "parse_workload: trailing garbage in '" << text << "'");
      return v;
    } catch (const CheckError&) {
      throw;
    } catch (const std::exception&) {
      PLURALITY_REQUIRE(false, "parse_workload: expected a number, got '" << text << "'");
      return 0.0;  // unreachable
    }
  };

  if (kind == "balanced") {
    PLURALITY_REQUIRE(arg.empty(), "parse_workload: 'balanced' takes no argument");
    return balanced(n, k);
  }
  if (kind == "bias") {
    PLURALITY_REQUIRE(!arg.empty(), "parse_workload: 'bias:<s>' needs a value");
    if (arg.back() == 'c') {
      const double mult = parse_num(arg.substr(0, arg.size() - 1));
      return additive_bias(n, k,
                           static_cast<count_t>(mult * critical_bias_scale(n, k)));
    }
    return additive_bias(n, k, static_cast<count_t>(parse_num(arg)));
  }
  if (kind == "share") return plurality_share(n, k, parse_num(arg));
  if (kind == "zipf") return zipf(n, k, parse_num(arg));
  if (kind == "near-balanced") return near_balanced(n, k, parse_num(arg));
  if (kind == "lemma10") return lemma10(n, k, static_cast<count_t>(parse_num(arg)));
  if (kind == "theorem3") return theorem3(n, static_cast<count_t>(parse_num(arg)));
  PLURALITY_REQUIRE(false, "parse_workload: unknown workload '"
                               << kind << "'; known: balanced, bias, share, zipf, "
                               << "near-balanced, lemma10, theorem3");
  return balanced(n, k);  // unreachable
}

std::vector<std::string> workload_names() {
  return {"balanced", "bias:<s>", "bias:<mult>c", "share:<x>", "zipf:<theta>",
          "near-balanced:<eps>", "lemma10:<s>", "theorem3:<s>"};
}

double critical_bias_scale(count_t n, state_t k) {
  PLURALITY_REQUIRE(n >= 3, "critical_bias_scale: n too small");
  const double nd = static_cast<double>(n);
  const double ln_n = std::log(nd);
  const double lambda =
      std::min(2.0 * static_cast<double>(k), std::cbrt(nd / ln_n));
  return std::sqrt(lambda * nd * ln_n);
}

double critical_bias_scale_lambda(count_t n, double lambda) {
  PLURALITY_REQUIRE(n >= 3, "critical_bias_scale_lambda: n too small");
  PLURALITY_REQUIRE(lambda >= 1.0, "critical_bias_scale_lambda: lambda >= 1");
  const double nd = static_cast<double>(n);
  return std::sqrt(lambda * nd * std::log(nd));
}

}  // namespace plurality::workloads
