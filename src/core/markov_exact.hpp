// Exact finite-n Markov analysis of i.i.d.-law dynamics on the clique.
//
// For k = 2 the chain state is c_0 in {0..n}; one round is exactly
// C' ~ Binomial(n, p_0(c)) by the i.i.d.-update argument, so the full
// transition matrix is a matrix of binomial pmfs. For k = 3 states are the
// compositions (c_0, c_1) with c_0 + c_1 <= n and rows are trinomial pmfs.
//
// From the transition matrix we solve the absorption equations
//     (I - Q) u = b
// by dense Gaussian elimination: exact win probabilities per color and
// exact expected absorption times for every start. This is the ground
// truth the simulators are validated against (E14), and it turns paper
// statements like "the voter converges to a minority with constant
// probability" into exact numbers (the voter's win probability is
// exactly c_j / n — a martingale identity the tests check to 1e-10).
#pragma once

#include <array>
#include <vector>

#include "core/dynamics.hpp"
#include "support/types.hpp"

namespace plurality {

struct AbsorptionK2 {
  count_t n = 0;
  /// win_color0[i] = P(absorb at all-color-0 | c_0 = i), i = 0..n.
  std::vector<double> win_color0;
  /// expected_rounds[i] = E[rounds to absorption | c_0 = i].
  std::vector<double> expected_rounds;
};

/// Exact k=2 analysis. Requires an i.i.d. adoption law and modest n
/// (O(n^3) solve; n <= ~400 is comfortable).
AbsorptionK2 analyze_k2(const Dynamics& dynamics, count_t n);

struct AbsorptionK3 {
  count_t n = 0;
  /// States are compositions (c0, c1) with c0 + c1 <= n; index via index().
  [[nodiscard]] std::size_t index(count_t c0, count_t c1) const;
  [[nodiscard]] std::size_t num_states() const;
  /// win[state][j] = P(absorb at all-color-j | state).
  std::vector<std::array<double, 3>> win;
  std::vector<double> expected_rounds;
};

/// Exact k=3 analysis; states grow as (n+1)(n+2)/2, keep n <= ~60.
AbsorptionK3 analyze_k3(const Dynamics& dynamics, count_t n);

/// Exact transient analysis for k = 2: the full distribution of C_0 pushed
/// forward round by round. This turns "w.h.p." statements into exact
/// finite-n curves P(consensus by round t).
struct TransientK2 {
  count_t n = 0;
  /// distribution[t][i] = P(C_0 = i after t rounds); index 0 is the start.
  std::vector<std::vector<double>> distribution;
  /// P(chain is monochromatic by round t) — the consensus CDF over rounds.
  std::vector<double> absorbed_by_round;
  /// P(absorbed at all-color-0 by round t).
  std::vector<double> win0_by_round;
};

/// Evolves the exact distribution for `rounds` rounds from C_0 = start_c0.
/// Requires an i.i.d. adoption law; O(rounds * n^2) after an O(n^2) pmf
/// table build, fine for n <= ~2000.
TransientK2 evolve_k2(const Dynamics& dynamics, count_t n, count_t start_c0,
                      round_t rounds);

/// Dense Gaussian elimination with partial pivoting solving A x = b in
/// place (A is row-major, size m x m). Exposed for tests.
void solve_dense(std::vector<double>& a, std::vector<double>& b, std::size_t m);

/// Dense solve with multiple right-hand sides (column-major rhs vectors).
void solve_dense_multi(std::vector<double>& a, std::vector<std::vector<double>>& rhs,
                       std::size_t m);

}  // namespace plurality
