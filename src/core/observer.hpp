// Per-round observation pipeline for the trial drivers.
//
// The paper's results are curves, not single cells: consensus time vs k,
// bias decay round by round, the monochromatic-distance trajectory of [4],
// Corollary 4's time-to-m-plurality. Before this layer the only per-round
// window was RunOptions::record_trajectory — count-path only, allocating,
// and invisible to run_trials. A RoundObserver threads through all three
// drivers (count / agent via run_dynamics, graph via run_graph_trials) and
// sees every materialized round of every trial.
//
// The contract that keeps observation free of side effects:
//
//  * Observers READ the already-materialized configuration. They draw no
//    RNG and never touch the trial's generator, so observer-on and
//    observer-off runs produce bitwise-identical trial streams on every
//    backend × engine × adversary cell (tests/core/test_observer.cpp).
//  * Observers allocate nothing per round: all buffers are preallocated
//    from the trial count at construction (tests/alloc pins warm observed
//    rounds at zero heap traffic).
//  * Trials run OpenMP-parallel, so callbacks for DIFFERENT trials may be
//    concurrent; implementations must write disjoint per-trial slots (the
//    same discipline as TrialOutcomes::record). Calls for one trial come
//    from one thread, in order: begin_trial, observe_round (round 1, 2,
//    ...), end_trial. Cross-trial reductions belong in a sequential
//    finalize() after the driver returns.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/runner.hpp"
#include "stats/quantile_sketch.hpp"
#include "stats/summary.hpp"

namespace plurality {

class RoundObserver {
 public:
  virtual ~RoundObserver() = default;

  /// Trial `trial` is about to run from `start` (the round-0 state, already
  /// in the dynamics' state space).
  virtual void begin_trial(std::uint64_t trial, const Configuration& start,
                           state_t num_colors) = 0;

  /// Round `round` of trial `trial` is fully materialized: protocol step
  /// and adversary move (when wired) applied. Called before the driver's
  /// own stop checks, so the absorbing round is observed too.
  virtual void observe_round(std::uint64_t trial, round_t round,
                             const Configuration& config, state_t num_colors) = 0;

  /// Trial `trial` stopped after `rounds` rounds with `final` as its last
  /// configuration (for StopReason::RoundLimit, `rounds` is the round cap).
  virtual void end_trial(std::uint64_t trial, StopReason reason, round_t rounds,
                         const Configuration& final, state_t num_colors) = 0;
};

/// One recorded trajectory point of ProbeObserver (colors only).
struct ProbeRow {
  round_t round;
  /// c_max / n — the plurality fraction.
  double plurality_fraction;
  /// Colors with at least one supporter (the configuration's support size).
  state_t support;
  /// Monochromatic distance of [4]: sum_j (c_j / c_max)^2.
  double mono_distance;
};

struct ProbeOptions {
  /// Trial count of the driver this observer attaches to (sizes every
  /// per-trial slot). Required.
  std::uint64_t trials = 0;
  /// Per-trial trajectory rows to keep; 0 disables trajectory recording
  /// (the scalar probes still run). Memory: trials * capacity *
  /// sizeof(ProbeRow) (32 bytes).
  std::size_t trajectory_capacity = 0;
  /// Record rounds where round % stride == 0 (round 0 always; rounds past
  /// the capacity are dropped, never resampled — choose stride ~
  /// expected_rounds / capacity to cover long runs).
  round_t trajectory_stride = 1;
  /// Track time-to-m-plurality (Corollary 4): the first round where all
  /// but at most `m_plurality` nodes hold the current plurality color.
  bool track_m_plurality = false;
  count_t m_plurality = 0;
  /// Exact-sample capacity of the finalize() sketches.
  std::size_t sketch_capacity = stats::QuantileSketch::kDefaultExactCapacity;
};

/// The standard probe set: per-round plurality fraction / support size /
/// monochromatic distance into preallocated per-trial trajectory buffers,
/// per-trial time-to-m-plurality, and per-trial final-state scalars —
/// reduced into streaming sketches by finalize(). This is what the sweep
/// orchestrator attaches to every cell.
class ProbeObserver final : public RoundObserver {
 public:
  explicit ProbeObserver(const ProbeOptions& options);

  void begin_trial(std::uint64_t trial, const Configuration& start,
                   state_t num_colors) override;
  void observe_round(std::uint64_t trial, round_t round, const Configuration& config,
                     state_t num_colors) override;
  void end_trial(std::uint64_t trial, StopReason reason, round_t rounds,
                 const Configuration& final, state_t num_colors) override;

  /// Sequential cross-trial reduction (call once, after the driver
  /// returns): builds the time-to-m sketch and the final-state summaries.
  void finalize();

  [[nodiscard]] const ProbeOptions& options() const { return options_; }

  /// Recorded trajectory of one trial (empty when capacity is 0).
  [[nodiscard]] std::span<const ProbeRow> trajectory(std::uint64_t trial) const;

  /// First round where all but at most m nodes held the plurality color;
  /// -1 when the trial never got there (or the probe is off).
  [[nodiscard]] double time_to_m(std::uint64_t trial) const;

  // --- finalize() products ---

  /// Trials that reached m-plurality, and the round distribution over them.
  [[nodiscard]] std::uint64_t m_plurality_hits() const { return m_hits_; }
  [[nodiscard]] const stats::QuantileSketch& time_to_m_sketch() const { return m_sketch_; }

  /// Final-state probes across trials.
  [[nodiscard]] const stats::OnlineStats& final_plurality_fraction() const {
    return final_fraction_stats_;
  }
  [[nodiscard]] const stats::OnlineStats& final_support() const { return final_support_stats_; }
  [[nodiscard]] const stats::OnlineStats& final_mono_distance() const {
    return final_mono_stats_;
  }

 private:
  void probe(std::uint64_t trial, round_t round, const Configuration& config,
             state_t num_colors);

  ProbeOptions options_;
  // Per-trial slots (disjoint writes; see the class comment).
  std::vector<ProbeRow> rows_;            // trials * trajectory_capacity arena
  std::vector<std::uint32_t> row_count_;  // rows used per trial
  std::vector<double> time_to_m_;         // -1 until the threshold is hit
  std::vector<double> final_fraction_;
  std::vector<double> final_support_;
  std::vector<double> final_mono_;
  // finalize() products.
  bool finalized_ = false;
  std::uint64_t m_hits_ = 0;
  stats::QuantileSketch m_sketch_;
  stats::OnlineStats final_fraction_stats_;
  stats::OnlineStats final_support_stats_;
  stats::OnlineStats final_mono_stats_;
};

}  // namespace plurality
