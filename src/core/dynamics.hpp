// The dynamics abstraction (Definition 1 of the paper, generalized).
//
// A dynamics is a synchronous anonymous update rule: each round, every node
// draws `sample_arity()` nodes independently and uniformly at random (with
// repetition, including itself — the paper's sampling model on the clique)
// and recolors itself as a function of the sampled states (and, for
// protocols like undecided-state or Doerr et al.'s median, its own state).
//
// Every dynamics exposes the same two faces:
//
//  1. `apply_rule` — the node-level rule, used by the agent backend (and the
//     graph extension, where samples come from a node's neighborhood).
//  2. the *adoption law* — the exact distribution of one node's next state
//     given the current configuration. On the clique, node updates are
//     i.i.d. given the configuration (or i.i.d. within each own-state
//     class), so the next configuration is exactly a multinomial (or a sum
//     of per-class multinomials) over this law. The count-based backend and
//     the exact Markov solver are built on it, and the mean-field engine
//     iterates it deterministically — which is why the law operates on
//     real-valued counts.
#pragma once

#include <span>
#include <string>

#include "rng/xoshiro.hpp"
#include "support/types.hpp"

namespace plurality {

class Dynamics {
 public:
  virtual ~Dynamics() = default;

  /// Human-readable protocol name for tables and logs.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Nodes sampled per node per round (h in the paper's h-dynamics).
  [[nodiscard]] virtual unsigned sample_arity() const = 0;

  /// Markov states used for a k-color instance (k, or k+aux for protocols
  /// with extra memory).
  [[nodiscard]] virtual state_t num_states(state_t num_colors) const { return num_colors; }

  /// Inverse of num_states: how many leading states are colors.
  [[nodiscard]] virtual state_t num_colors(state_t states) const { return states; }

  /// True if the per-node law depends on the node's own current state
  /// (undecided-state, median-with-own-value). When false the law is one
  /// shared distribution and a single multinomial advances the round.
  [[nodiscard]] virtual bool law_depends_on_own_state() const { return false; }

  /// True if the adoption law can be evaluated exactly at this state count.
  /// (The h-plurality law costs C(h+k-1, h) terms; beyond a budget we fall
  /// back to the agent backend.) Laws are exact whenever offered.
  [[nodiscard]] virtual bool has_exact_law(state_t states) const {
    (void)states;
    return true;
  }

  /// Shared adoption law: out[j] = P(node's next state = j | counts).
  /// `counts` are real-valued state counts (sum = n > 0); out.size() ==
  /// counts.size(). Only called when !law_depends_on_own_state().
  virtual void adoption_law(std::span<const double> counts, std::span<double> out) const;

  /// Per-own-state adoption law. Default forwards to adoption_law (i.i.d.
  /// dynamics ignore the node's own state).
  virtual void adoption_law_given(state_t own, std::span<const double> counts,
                                  std::span<double> out) const;

  /// True if adoption_law_given_sparse() is implemented. Stateful dynamics
  /// whose per-class law has small support (e.g. undecided-state: a colored
  /// node can only keep its color or go undecided) should implement it —
  /// the count-based stepper then pays O(support) per occupied class
  /// instead of materializing the dense k-entry law.
  [[nodiscard]] virtual bool has_sparse_law() const { return false; }

  /// Sparse per-own-state adoption law: writes the law's support into
  /// (states_out[i], probs_out[i]) for i < nnz and returns nnz. Contract:
  ///   * states ascending, probabilities >= 0 (zero entries may be
  ///     included; the sampling kernel skips them),
  ///   * probabilities bitwise-equal to the dense adoption_law_given
  ///     entries at those states, all omitted states having probability 0,
  ///   * `total` is the real-valued population size; callers pass the
  ///     exact count, which matches the dense law's internally summed
  ///     total bitwise for populations below 2^53,
  ///   * both spans have room for at least k entries.
  /// Only called when has_sparse_law(); the default implementation aborts.
  [[nodiscard]] virtual state_t adoption_law_given_sparse(
      state_t own, std::span<const double> counts, double total,
      std::span<state_t> states_out, std::span<double> probs_out) const;

  /// Node-level rule: next state of a node currently in `own` that sampled
  /// `sampled` (size == sample_arity()). `states` is the size of the state
  /// space, so rules with auxiliary states can locate them (the undecided
  /// marker is always the last state). `gen` is for tie-breaking only.
  [[nodiscard]] virtual state_t apply_rule(state_t own, std::span<const state_t> sampled,
                                           state_t states, rng::Xoshiro256pp& gen) const = 0;
};

}  // namespace plurality
