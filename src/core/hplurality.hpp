// The h-plurality dynamics (Section 4.3): every node samples h nodes
// uniformly at random (with repetition, including itself) and adopts the
// plurality color of the sample, breaking ties uniformly at random among
// the tied colors.
//
// Theorem 4 proves a lower bound Omega(k / h^2) on its convergence time
// from near-balanced starts — i.e. bigger samples buy at most a factor h^2,
// so polylog sample sizes yield only polylog speedups (experiment E5).
//
// Exact adoption law: enumerate all sample multisets (compositions of h
// over k colors) — C(h+k-1, h) terms. That is cheap for small h*k and
// hopeless beyond (k=32, h=17 is ~10^13 terms), so the law is gated by an
// evaluation budget; past it, callers must use the agent backend, which is
// exact at O(n*h) per round. exact_law_cost()/has_exact_law() expose the
// gate, and the choice is ablated in E5.
//
// For h = 3 the law coincides with 3-majority's Lemma 1 closed form (the
// tie rule is distributionally irrelevant) — a cross-validation test.
#pragma once

#include <cstdint>

#include "core/dynamics.hpp"

namespace plurality {

class HPlurality final : public Dynamics {
 public:
  /// `h` >= 1. Default law budget admits ~2e6 enumeration terms.
  explicit HPlurality(unsigned h, std::uint64_t law_term_budget = 2'000'000);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] unsigned sample_arity() const override { return h_; }

  /// Number of enumeration terms C(h+k-1, h) the exact law costs at k
  /// states (saturates at uint64 max on overflow).
  [[nodiscard]] std::uint64_t exact_law_cost(state_t k) const;

  [[nodiscard]] bool has_exact_law(state_t states) const override;

  void adoption_law(std::span<const double> counts, std::span<double> out) const override;

  [[nodiscard]] state_t apply_rule(state_t own, std::span<const state_t> sampled,
                                   state_t states, rng::Xoshiro256pp& gen) const override;

 private:
  unsigned h_;
  std::uint64_t law_term_budget_;
};

}  // namespace plurality
