#include "core/runner.hpp"

#include <memory>

#include "core/observer.hpp"
#include "support/check.hpp"

namespace plurality {

namespace {

TrajectoryPoint snapshot(const Configuration& config, state_t num_colors, round_t round) {
  const state_t plurality = config.plurality(num_colors);
  return TrajectoryPoint{
      .round = round,
      .plurality_color = plurality,
      .plurality_count = config.at(plurality),
      .runner_up_count = num_colors >= 2 ? config.runner_up_count(num_colors) : 0,
      .bias = config.bias(num_colors),
      .minority_mass = config.minority_mass(num_colors),
  };
}

}  // namespace

RunResult run_dynamics(const Dynamics& dynamics, const Configuration& start,
                       const RunOptions& options, rng::Xoshiro256pp& gen,
                       StepWorkspace& ws) {
  const state_t states = start.k();
  const state_t num_colors = dynamics.num_colors(states);
  PLURALITY_REQUIRE(num_colors >= 1 && num_colors <= states,
                    "run_dynamics: start configuration has " << states
                        << " states but dynamics expects "
                        << dynamics.num_states(num_colors));
  PLURALITY_REQUIRE(start.n() > 0, "run_dynamics: empty configuration");
  PLURALITY_REQUIRE(options.adversary == nullptr || options.backend == Backend::CountBased,
                    "run_dynamics: adversaries are supported on the count-based backend");
  PLURALITY_REQUIRE(options.engine == EngineMode::Strict ||
                        options.backend == Backend::CountBased,
                    "run_dynamics: the batched engine is count-based only here "
                    "(graph scenarios batch via run_graph_trials)");

  RunResult result;
  result.initial_plurality = start.plurality(num_colors);

  Configuration config = start;
  std::unique_ptr<AgentSimulation> agents;
  if (options.backend == Backend::Agent) {
    // Derive the agent seed from the caller's generator so independent
    // trials get independent agent streams.
    agents = std::make_unique<AgentSimulation>(dynamics, start, gen());
  }
  std::unique_ptr<rng::PhiloxStream> philox;
  if (options.backend == Backend::CountBased && options.engine == EngineMode::Batched) {
    // One draw keys the counter-based stepping stream; `gen` stays the
    // source for everything else (adversary moves, factory randomness), so
    // switching engines never perturbs those streams.
    philox = std::make_unique<rng::PhiloxStream>(gen());
  }

  if (options.record_trajectory) {
    result.trajectory.push_back(snapshot(config, num_colors, 0));
  }
  if (options.observer != nullptr) {
    options.observer->begin_trial(options.observer_trial, config, num_colors);
  }

  auto finish = [&](round_t rounds, StopReason reason) {
    result.rounds = rounds;
    result.reason = reason;
    if (reason == StopReason::ColorConsensus) {
      result.winner = config.plurality(num_colors);
      result.plurality_won = (result.winner == result.initial_plurality);
    }
    if (options.observer != nullptr) {
      options.observer->end_trial(options.observer_trial, reason, rounds, config,
                                  num_colors);
    }
    result.final_config = std::move(config);
    return result;
  };

  // Round 0 checks: a start that is already absorbed/stopping.
  if (config.color_consensus(num_colors)) return finish(0, StopReason::ColorConsensus);
  if (options.stop_predicate && options.stop_predicate(config, 0)) {
    return finish(0, StopReason::PredicateMet);
  }

  for (round_t round = 1; round <= options.max_rounds; ++round) {
    if (options.cancel != nullptr && options.cancel->stop_requested()) {
      // Between-rounds cooperative stop: cheapest possible check (one
      // relaxed load), and the partially-advanced config is discarded by
      // every caller that sees Cancelled.
      return finish(round - 1, StopReason::Cancelled);
    }
    if (options.backend == Backend::CountBased) {
      if (philox != nullptr) {
        step_count_based(dynamics, config, *philox, ws);
      } else {
        step_count_based(dynamics, config, gen, ws);
      }
      if (options.adversary != nullptr) {
        options.adversary->corrupt(config, num_colors, round, gen);
      }
    } else {
      agents->step();
      config = agents->configuration();
    }

    if (options.record_trajectory) {
      result.trajectory.push_back(snapshot(config, num_colors, round));
    }
    if (options.observer != nullptr) {
      options.observer->observe_round(options.observer_trial, round, config, num_colors);
    }
    if (config.color_consensus(num_colors)) {
      return finish(round, StopReason::ColorConsensus);
    }
    if (config.monochromatic()) {
      // All mass in one non-color state (e.g. all-undecided): absorbing but
      // not a consensus on any color.
      return finish(round, StopReason::NonColorAbsorbed);
    }
    if (options.stop_predicate && options.stop_predicate(config, round)) {
      return finish(round, StopReason::PredicateMet);
    }
  }
  return finish(options.max_rounds, StopReason::RoundLimit);
}

RunResult run_dynamics(const Dynamics& dynamics, const Configuration& start,
                       const RunOptions& options, rng::Xoshiro256pp& gen) {
  StepWorkspace ws;
  return run_dynamics(dynamics, start, options, gen, ws);
}

std::function<bool(const Configuration&, round_t)> stop_when_any_color_reaches(
    count_t threshold, state_t num_colors) {
  return [threshold, num_colors](const Configuration& config, round_t) {
    return config.plurality_count(num_colors) >= threshold;
  };
}

std::function<bool(const Configuration&, round_t)> stop_at_m_plurality(count_t m,
                                                                       state_t color) {
  return [m, color](const Configuration& config, round_t) {
    return config.n() - config.at(color) <= m;
  };
}

}  // namespace plurality
