// F-bounded dynamic adversaries (Section 3.1).
//
// The paper's adversary knows the full state at the end of each round and
// may recolor up to F nodes arbitrarily before the next round begins; the
// achievable goal then weakens to M-plurality consensus (all but M nodes on
// the plurality) for M = Omega(F). Corollary 4: 3-majority reaches
// O(s/lambda)-plurality consensus in O(lambda log n) rounds against any
// F = o(s/lambda) adversary, and stays there.
//
// Strategies provided (strongest natural attacks on the clique):
//   * BoostRunnerUp    — move F nodes from the current plurality to the
//     current runner-up: the unique bias-minimizing single move, i.e. the
//     worst case for the phase-1 bias-growth argument.
//   * FeedWeakest      — move F nodes from the plurality to the smallest
//     surviving color, maximally delaying Lemma 5's die-out.
//   * RandomCorruption — recolor F uniformly random nodes to uniformly
//     random colors (a noise baseline).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/configuration.hpp"
#include "rng/xoshiro.hpp"
#include "support/types.hpp"

namespace plurality {

class Adversary {
 public:
  explicit Adversary(count_t budget) : budget_(budget) {}
  virtual ~Adversary() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Corruption budget F per round.
  [[nodiscard]] count_t budget() const { return budget_; }

  /// Applies the corruption for this round in place. `num_colors` is the
  /// color prefix of the state space (adversaries recolor, they do not
  /// create auxiliary states).
  virtual void corrupt(Configuration& config, state_t num_colors, round_t round,
                       rng::Xoshiro256pp& gen) const = 0;

 private:
  count_t budget_;
};

class BoostRunnerUp final : public Adversary {
 public:
  using Adversary::Adversary;
  [[nodiscard]] std::string name() const override { return "boost-runner-up"; }
  void corrupt(Configuration& config, state_t num_colors, round_t round,
               rng::Xoshiro256pp& gen) const override;
};

class FeedWeakest final : public Adversary {
 public:
  using Adversary::Adversary;
  [[nodiscard]] std::string name() const override { return "feed-weakest"; }
  void corrupt(Configuration& config, state_t num_colors, round_t round,
               rng::Xoshiro256pp& gen) const override;
};

class RandomCorruption final : public Adversary {
 public:
  using Adversary::Adversary;
  [[nodiscard]] std::string name() const override { return "random"; }
  void corrupt(Configuration& config, state_t num_colors, round_t round,
               rng::Xoshiro256pp& gen) const override;
};

/// Name-based factory over the adversary strategies — the same discipline
/// as core/registry.hpp for dynamics, used by the scenario layer. Accepted
/// specs:
///   "none"                       no adversary (returns nullptr)
///   "boost-runner-up:<F>"        BoostRunnerUp with per-round budget F
///   "feed-weakest:<F>"           FeedWeakest with budget F
///   "random:<F>"                 RandomCorruption with budget F
/// F must be a positive integer. Throws CheckError for unknown strategies
/// or malformed budgets.
std::unique_ptr<Adversary> make_adversary(const std::string& spec);

/// The spec forms accepted by make_adversary (grammar, for --list output).
std::vector<std::string> adversary_names();

}  // namespace plurality
