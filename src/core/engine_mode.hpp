// The engine-mode axis of the experiment grid, shared by every backend.
//
// Which stepping pipeline a simulation runs. The names come from the graph
// engine (PR 3) but the axis now spans both backends, so the enum lives in
// core where the trial drivers and the scenario layer can name it without
// depending on graph/:
//
//  * Strict  — the sequential-generator pipelines: per-(round, chunk)
//    xoshiro streams on the graph backend, the trial's xoshiro stream on
//    the count backend. Bitwise-pinned against the frozen reference
//    steppers; the default everywhere, and what every golden trajectory is
//    recorded against.
//  * Batched — the counter-based (rng::Philox4x32) pipelines: stage-split
//    SIMD kernels addressed by (seed, round, node, draw) on the graph
//    backend; block-generated PhiloxStream uniforms feeding the same exact
//    conditional-binomial kernels on the count backend. Distributionally
//    equivalent to Strict, not bitwise (different generator): pinned by
//    the chi-square law battery and cross-mode consensus-time tests.
//  * Push    — the scatter formulation of the batched pipeline for arity-1
//    dynamics on the graph backend (step_push.cpp): node v still draws ITS
//    OWN sample u with the exact batched Philox addressing, but the engine
//    executes the round source-major — pairs are binned by the sampled
//    source's id so the gather phase streams the state array in 64 KiB
//    windows instead of random-loading it. Bitwise identical to Batched
//    (same words, same law, same states); dynamics without a push kernel
//    (arity > 1) fall back to Batched, then Strict.
#pragma once

#include <cstdint>

namespace plurality {

enum class EngineMode : std::uint8_t { Strict, Batched, Push };

}  // namespace plurality
