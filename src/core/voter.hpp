// The voter / polling dynamics (1-majority) and the 2-choices rule with
// uniform tie-breaking.
//
// The paper (Section 1) observes that sampling TWO nodes and breaking the
// tie uniformly is *equivalent* to the polling process: the adoption law of
// both is exactly p_j = c_j / n. We implement the two protocols separately
// — different node rules, independently derived laws — precisely so the
// equivalence is a testable theorem of the code rather than an assumption
// (experiment E9).
//
// The voter process is a martingale in each color count, so it converges to
// a minority color with constant probability even from bias s = Θ(n): the
// exact win probability from the Markov solver is c_j/n.
#pragma once

#include "core/dynamics.hpp"

namespace plurality {

class Voter final : public Dynamics {
 public:
  [[nodiscard]] std::string name() const override { return "voter"; }
  [[nodiscard]] unsigned sample_arity() const override { return 1; }

  void adoption_law(std::span<const double> counts, std::span<double> out) const override;

  [[nodiscard]] state_t apply_rule(state_t own, std::span<const state_t> sampled,
                                   state_t states, rng::Xoshiro256pp& gen) const override;
};

class TwoChoices final : public Dynamics {
 public:
  [[nodiscard]] std::string name() const override { return "2-choices(uniform-tie)"; }
  [[nodiscard]] unsigned sample_arity() const override { return 2; }

  /// Derived independently of Voter:
  ///   p_j = (c_j/n)^2 + 2 * (c_j/n) * (1 - c_j/n) * 1/2  —  equals c_j/n.
  void adoption_law(std::span<const double> counts, std::span<double> out) const override;

  [[nodiscard]] state_t apply_rule(state_t own, std::span<const state_t> sampled,
                                   state_t states, rng::Xoshiro256pp& gen) const override;
};

}  // namespace plurality
