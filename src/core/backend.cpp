#include "core/backend.hpp"

#include <array>

#include "rng/distributions.hpp"
#include "rng/multinomial.hpp"
#include "support/check.hpp"

#if defined(PLURALITY_HAVE_OPENMP)
#include <omp.h>
#endif

namespace plurality {

void step_count_based(const Dynamics& dynamics, Configuration& config,
                      rng::Xoshiro256pp& gen) {
  const state_t k = config.k();
  PLURALITY_REQUIRE(dynamics.has_exact_law(k),
                    "count-based step: dynamics '" << dynamics.name()
                                                   << "' has no exact law at k=" << k);
  const std::vector<double> counts = config.counts_real();
  std::vector<double> law(k);
  std::vector<count_t> next(k, 0);

  if (!dynamics.law_depends_on_own_state()) {
    dynamics.adoption_law(counts, law);
    rng::multinomial(gen, config.n(), law, next);
  } else {
    // Nodes within one own-state class are i.i.d.; each class contributes
    // its own multinomial and the class draws are independent given the
    // configuration, so summing them samples the exact joint transition.
    std::vector<count_t> class_next(k, 0);
    for (state_t s = 0; s < k; ++s) {
      const count_t class_size = config.at(s);
      if (class_size == 0) continue;
      dynamics.adoption_law_given(s, counts, law);
      rng::multinomial(gen, class_size, law, class_next);
      for (state_t j = 0; j < k; ++j) next[j] += class_next[j];
    }
  }

  config = Configuration(std::move(next));
}

AgentSimulation::AgentSimulation(const Dynamics& dynamics, const Configuration& start,
                                 std::uint64_t seed)
    : dynamics_(dynamics), config_(start), streams_(seed) {
  PLURALITY_REQUIRE(start.n() > 0, "AgentSimulation: empty configuration");
  nodes_.reserve(start.n());
  for (state_t j = 0; j < start.k(); ++j) {
    nodes_.insert(nodes_.end(), start.at(j), j);
  }
  // No shuffle needed: sampling is uniform over the whole array, so the
  // layout order carries no information.
  scratch_.resize(nodes_.size());
}

void AgentSimulation::step() {
  const std::size_t n = nodes_.size();
  const state_t k = config_.k();
  const unsigned arity = dynamics_.sample_arity();
  PLURALITY_CHECK_MSG(arity <= 64, "agent backend supports sample arity <= 64");

  const std::size_t chunk_size = (n + kChunks - 1) / kChunks;
  std::array<std::vector<count_t>, kChunks> partial_counts;

#if defined(PLURALITY_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
  for (unsigned chunk = 0; chunk < kChunks; ++chunk) {
    const std::size_t lo = static_cast<std::size_t>(chunk) * chunk_size;
    const std::size_t hi = std::min(n, lo + chunk_size);
    std::vector<count_t> local(k, 0);
    if (lo < hi) {
      rng::Xoshiro256pp gen = streams_.stream(round_ * kChunks + chunk);
      state_t sample[64];
      for (std::size_t i = lo; i < hi; ++i) {
        for (unsigned s = 0; s < arity; ++s) {
          sample[s] = nodes_[rng::uniform_below(gen, n)];
        }
        const state_t next = dynamics_.apply_rule(
            nodes_[i], std::span<const state_t>(sample, arity), k, gen);
        scratch_[i] = next;
        ++local[next];
      }
    }
    partial_counts[chunk] = std::move(local);
  }

  nodes_.swap(scratch_);
  Configuration next = Configuration::zeros(k);
  for (const auto& local : partial_counts) {
    if (local.empty()) continue;
    for (state_t j = 0; j < k; ++j) next.set(j, next.at(j) + local[j]);
  }
  config_ = std::move(next);
  ++round_;
}

}  // namespace plurality
