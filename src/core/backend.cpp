#include "core/backend.hpp"

#include <algorithm>

#include "rng/binomial.hpp"
#include "rng/distributions.hpp"
#include "rng/multinomial.hpp"
#include "support/check.hpp"

#if defined(PLURALITY_HAVE_OPENMP)
#include <omp.h>
#endif

namespace plurality {

template <class Gen>
void step_count_based(const Dynamics& dynamics, Configuration& config, Gen& gen,
                      StepWorkspace& ws) {
  const state_t k = config.k();
  PLURALITY_REQUIRE(dynamics.has_exact_law(k),
                    "count-based step: dynamics '" << dynamics.name()
                                                   << "' has no exact law at k=" << k);
  ws.prepare(k);
  config.counts_real_into(ws.counts_real);
  std::fill(ws.next.begin(), ws.next.end(), count_t{0});

  if (!dynamics.law_depends_on_own_state()) {
    dynamics.adoption_law(ws.counts_real, ws.law);
    rng::multinomial_accumulate(gen, config.n(), ws.law, ws.next, ws.multinomial);
  } else {
    // Nodes within one own-state class are i.i.d.; each class contributes
    // its own multinomial and the class draws are independent given the
    // configuration, so summing them samples the exact joint transition.
    // Only occupied classes do any work, and each class's multinomial only
    // draws over its law's support — empty classes and zero-probability
    // transitions cost nothing (and consume no randomness, keeping the
    // stream identical to the dense reference). Dynamics with a sparse law
    // skip materializing the dense k-entry law entirely, so a round costs
    // O(k + total support) instead of Θ(k · occupied classes).
    const std::span<const count_t> counts = config.counts();
    const bool sparse = dynamics.has_sparse_law();
    const auto total = static_cast<double>(config.n());
    for (state_t s = 0; s < k; ++s) {
      const count_t class_size = counts[s];
      if (class_size == 0) continue;
      if (sparse) {
        const state_t nnz = dynamics.adoption_law_given_sparse(
            s, ws.counts_real, total, ws.sparse_states, ws.sparse_weights);
        PLURALITY_CHECK_MSG(nnz >= 1 && nnz <= k,
                            "sparse law of '" << dynamics.name() << "' returned nnz=" << nnz);
        rng::multinomial_accumulate_indexed(
            gen, class_size, std::span<const state_t>(ws.sparse_states.data(), nnz),
            std::span<const double>(ws.sparse_weights.data(), nnz), ws.next,
            ws.multinomial);
      } else {
        dynamics.adoption_law_given(s, ws.counts_real, ws.law);
        rng::multinomial_accumulate(gen, class_size, ws.law, ws.next, ws.multinomial);
      }
    }
  }

  // Publish with a copy, not a buffer swap: swapping would trade buffer
  // capacities between the configuration and the workspace, so a workspace
  // shared across different k values would re-allocate every round. The
  // copy is k words into an already-sized buffer.
  config.assign_counts(ws.next);
}

template <class Gen>
void step_count_based(const Dynamics& dynamics, Configuration& config, Gen& gen) {
  StepWorkspace ws;
  step_count_based(dynamics, config, gen, ws);
}

// The two shipped engines (see backend.hpp).
template void step_count_based<rng::Xoshiro256pp>(const Dynamics&, Configuration&,
                                                  rng::Xoshiro256pp&, StepWorkspace&);
template void step_count_based<rng::PhiloxStream>(const Dynamics&, Configuration&,
                                                  rng::PhiloxStream&, StepWorkspace&);
template void step_count_based<rng::Xoshiro256pp>(const Dynamics&, Configuration&,
                                                  rng::Xoshiro256pp&);
template void step_count_based<rng::PhiloxStream>(const Dynamics&, Configuration&,
                                                  rng::PhiloxStream&);

void step_count_based_reference(const Dynamics& dynamics, Configuration& config,
                                rng::Xoshiro256pp& gen) {
  // Frozen pre-workspace implementation (dense conditional-binomial loop,
  // per-round allocations). Do not optimize: it is the bitwise baseline the
  // determinism tests and bench_throughput compare against.
  const state_t k = config.k();
  PLURALITY_REQUIRE(dynamics.has_exact_law(k),
                    "count-based step: dynamics '" << dynamics.name()
                                                   << "' has no exact law at k=" << k);
  const std::vector<double> counts = config.counts_real();
  std::vector<double> law(k);
  std::vector<count_t> next(k, 0);

  auto dense_multinomial = [&gen](count_t n, std::span<const double> probs,
                                  std::span<count_t> out) {
    const std::size_t kk = probs.size();
    std::vector<double> suffix(kk + 1, 0.0);
    for (std::size_t j = kk; j-- > 0;) {
      double w = probs[j];
      PLURALITY_REQUIRE(w > -1e-9, "multinomial: negative weight " << w << " at " << j);
      if (w < 0.0) w = 0.0;
      suffix[j] = suffix[j + 1] + w;
    }
    PLURALITY_REQUIRE(suffix[0] > 0.0, "multinomial: all weights zero");
    count_t remaining = n;
    for (std::size_t j = 0; j + 1 < kk; ++j) {
      if (remaining == 0 || suffix[j] <= 0.0) {
        out[j] = 0;
        continue;
      }
      double pc = probs[j] <= 0.0 ? 0.0 : probs[j] / suffix[j];
      if (pc > 1.0) pc = 1.0;
      const count_t draw = rng::binomial(gen, remaining, pc);
      out[j] = draw;
      remaining -= draw;
    }
    out[kk - 1] = remaining;
  };

  if (!dynamics.law_depends_on_own_state()) {
    dynamics.adoption_law(counts, law);
    dense_multinomial(config.n(), law, next);
  } else {
    std::vector<count_t> class_next(k, 0);
    for (state_t s = 0; s < k; ++s) {
      const count_t class_size = config.at(s);
      if (class_size == 0) continue;
      dynamics.adoption_law_given(s, counts, law);
      dense_multinomial(class_size, law, class_next);
      for (state_t j = 0; j < k; ++j) next[j] += class_next[j];
    }
  }

  config = Configuration(std::move(next));
}

AgentSimulation::AgentSimulation(const Dynamics& dynamics, const Configuration& start,
                                 std::uint64_t seed)
    : dynamics_(dynamics), config_(start), streams_(seed) {
  PLURALITY_REQUIRE(start.n() > 0, "AgentSimulation: empty configuration");
  nodes_.reserve(start.n());
  for (state_t j = 0; j < start.k(); ++j) {
    nodes_.insert(nodes_.end(), start.at(j), j);
  }
  // No shuffle needed: sampling is uniform over the whole array, so the
  // layout order carries no information.
  scratch_.resize(nodes_.size());
  partials_.resize(static_cast<std::size_t>(kChunks) * start.k());
  counts_scratch_.resize(start.k());
}

void AgentSimulation::step() {
  const std::size_t n = nodes_.size();
  const state_t k = config_.k();
  const unsigned arity = dynamics_.sample_arity();
  PLURALITY_CHECK_MSG(arity <= 64, "agent backend supports sample arity <= 64");

  const std::size_t chunk_size = (n + kChunks - 1) / kChunks;
  std::fill(partials_.begin(), partials_.end(), count_t{0});

#if defined(PLURALITY_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
  for (unsigned chunk = 0; chunk < kChunks; ++chunk) {
    const std::size_t lo = static_cast<std::size_t>(chunk) * chunk_size;
    const std::size_t hi = std::min(n, lo + chunk_size);
    if (lo < hi) {
      count_t* local = partials_.data() + static_cast<std::size_t>(chunk) * k;
      rng::Xoshiro256pp gen = streams_.stream(round_ * kChunks + chunk);
      state_t sample[64];
      for (std::size_t i = lo; i < hi; ++i) {
        for (unsigned s = 0; s < arity; ++s) {
          sample[s] = nodes_[rng::uniform_below(gen, n)];
        }
        const state_t next = dynamics_.apply_rule(
            nodes_[i], std::span<const state_t>(sample, arity), k, gen);
        scratch_[i] = next;
        ++local[next];
      }
    }
  }

  nodes_.swap(scratch_);
  std::fill(counts_scratch_.begin(), counts_scratch_.end(), count_t{0});
  for (unsigned chunk = 0; chunk < kChunks; ++chunk) {
    const count_t* local = partials_.data() + static_cast<std::size_t>(chunk) * k;
    for (state_t j = 0; j < k; ++j) counts_scratch_[j] += local[j];
  }
  config_.assign_counts(counts_scratch_);
  ++round_;
}

}  // namespace plurality
