#include "core/adversary.hpp"

#include <charconv>

#include "rng/distributions.hpp"
#include "support/check.hpp"
#include "support/specs.hpp"

namespace plurality {

void BoostRunnerUp::corrupt(Configuration& config, state_t num_colors, round_t round,
                            rng::Xoshiro256pp& gen) const {
  (void)round;
  (void)gen;
  PLURALITY_REQUIRE(num_colors >= 2, "boost-runner-up: need >= 2 colors");
  const state_t plurality = config.plurality(num_colors);
  // Runner-up by count, lowest index on ties.
  state_t runner = plurality == 0 ? 1 : 0;
  for (state_t j = 0; j < num_colors; ++j) {
    if (j == plurality) continue;
    if (config.at(j) > config.at(runner)) runner = j;
  }
  config.move_mass(plurality, runner, budget());
}

void FeedWeakest::corrupt(Configuration& config, state_t num_colors, round_t round,
                          rng::Xoshiro256pp& gen) const {
  (void)round;
  (void)gen;
  PLURALITY_REQUIRE(num_colors >= 2, "feed-weakest: need >= 2 colors");
  const state_t plurality = config.plurality(num_colors);
  state_t weakest = plurality == 0 ? 1 : 0;
  for (state_t j = 0; j < num_colors; ++j) {
    if (j == plurality) continue;
    if (config.at(j) < config.at(weakest)) weakest = j;
  }
  config.move_mass(plurality, weakest, budget());
}

void RandomCorruption::corrupt(Configuration& config, state_t num_colors, round_t round,
                               rng::Xoshiro256pp& gen) const {
  (void)round;
  PLURALITY_REQUIRE(num_colors >= 2, "random corruption: need >= 2 colors");
  const count_t n = config.n();
  PLURALITY_CHECK(n > 0);
  for (count_t i = 0; i < budget(); ++i) {
    // Pick a uniform node (equivalently: a source state with probability
    // proportional to its count) and send it to a uniform color.
    count_t pick = rng::uniform_below(gen, n);
    state_t source = 0;
    for (state_t j = 0; j < config.k(); ++j) {
      if (pick < config.at(j)) {
        source = j;
        break;
      }
      pick -= config.at(j);
    }
    const auto target = static_cast<state_t>(rng::uniform_below(gen, num_colors));
    config.move_mass(source, target, 1);
  }
}

std::unique_ptr<Adversary> make_adversary(const std::string& spec) {
  if (spec == "none" || spec.empty()) return nullptr;
  const auto [kind, arg] = split_spec(spec);

  const bool known =
      kind == "boost-runner-up" || kind == "feed-weakest" || kind == "random";
  PLURALITY_REQUIRE(known, "make_adversary: unknown adversary '"
                               << kind << "'; known: none, boost-runner-up:<F>, "
                               << "feed-weakest:<F>, random:<F>");
  PLURALITY_REQUIRE(!arg.empty(),
                    "make_adversary: '" << kind << "' needs a budget, e.g. '"
                                        << kind << ":100'");
  count_t budget = 0;
  const auto [ptr, ec] =
      std::from_chars(arg.data(), arg.data() + arg.size(), budget);
  PLURALITY_REQUIRE(ec == std::errc() && ptr == arg.data() + arg.size() && budget >= 1,
                    "make_adversary: budget must be a positive integer, got '"
                        << arg << "' in '" << spec << "'");

  if (kind == "boost-runner-up") return std::make_unique<BoostRunnerUp>(budget);
  if (kind == "feed-weakest") return std::make_unique<FeedWeakest>(budget);
  return std::make_unique<RandomCorruption>(budget);
}

std::vector<std::string> adversary_names() {
  return {"none", "boost-runner-up:<F>", "feed-weakest:<F>", "random:<F>"};
}

}  // namespace plurality
