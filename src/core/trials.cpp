#include "core/trials.hpp"

#include "support/check.hpp"

#if defined(PLURALITY_HAVE_OPENMP)
#include <omp.h>
#endif

namespace plurality {

double TrialSummary::win_rate() const {
  PLURALITY_REQUIRE(trials > 0, "TrialSummary::win_rate: no trials");
  return static_cast<double>(plurality_wins) / static_cast<double>(trials);
}

double TrialSummary::consensus_rate() const {
  PLURALITY_REQUIRE(trials > 0, "TrialSummary::consensus_rate: no trials");
  return static_cast<double>(consensus_count) / static_cast<double>(trials);
}

stats::ProportionCi TrialSummary::win_ci() const {
  return stats::wilson_interval(plurality_wins, trials);
}

TrialSummary run_trials(const Dynamics& dynamics, const ConfigFactory& factory,
                        const TrialOptions& options) {
  PLURALITY_REQUIRE(options.trials > 0, "run_trials: need at least one trial");
  RunOptions run_options = options.run;
  run_options.record_trajectory = false;  // trajectories cost memory x trials

  const rng::StreamFactory streams(options.seed);
  TrialSummary summary;
  summary.trials = options.trials;
  summary.round_samples.resize(options.trials, -1.0);

  std::vector<std::uint8_t> won(options.trials, 0);
  std::vector<std::uint8_t> consensus(options.trials, 0);
  std::vector<std::uint8_t> limited(options.trials, 0);
  std::vector<std::uint8_t> predicate(options.trials, 0);

  // One StepWorkspace per executing thread, reused across every round of
  // every trial that thread runs. The workspace is pure scratch, so which
  // thread runs which trial (schedule(dynamic)) cannot affect results —
  // each trial's randomness comes only from its own hash-derived stream.
  const auto body = [&](std::uint64_t trial, StepWorkspace& ws) {
    rng::Xoshiro256pp gen = streams.stream(trial);
    const Configuration start = factory(trial, gen);
    const RunResult result = run_dynamics(dynamics, start, run_options, gen, ws);
    switch (result.reason) {
      case StopReason::ColorConsensus:
        consensus[trial] = 1;
        won[trial] = result.plurality_won ? 1 : 0;
        summary.round_samples[trial] = static_cast<double>(result.rounds);
        break;
      case StopReason::PredicateMet:
        predicate[trial] = 1;
        summary.round_samples[trial] = static_cast<double>(result.rounds);
        break;
      case StopReason::RoundLimit:
        limited[trial] = 1;
        break;
      case StopReason::NonColorAbsorbed:
        break;
    }
  };

#if defined(PLURALITY_HAVE_OPENMP)
  if (options.parallel) {
#pragma omp parallel
    {
      StepWorkspace ws;
#pragma omp for schedule(dynamic)
      for (std::uint64_t trial = 0; trial < options.trials; ++trial) body(trial, ws);
    }
  } else {
    StepWorkspace ws;
    for (std::uint64_t trial = 0; trial < options.trials; ++trial) body(trial, ws);
  }
#else
  StepWorkspace ws;
  for (std::uint64_t trial = 0; trial < options.trials; ++trial) body(trial, ws);
#endif

  std::vector<double> kept;
  kept.reserve(options.trials);
  for (std::uint64_t trial = 0; trial < options.trials; ++trial) {
    summary.consensus_count += consensus[trial];
    summary.plurality_wins += won[trial];
    summary.round_limit_hits += limited[trial];
    summary.predicate_stops += predicate[trial];
    if (summary.round_samples[trial] >= 0.0) {
      summary.rounds.add(summary.round_samples[trial]);
      kept.push_back(summary.round_samples[trial]);
    }
  }
  summary.round_samples = std::move(kept);
  return summary;
}

TrialSummary run_trials(const Dynamics& dynamics, const Configuration& start,
                        const TrialOptions& options) {
  return run_trials(
      dynamics,
      [&start](std::uint64_t, rng::Xoshiro256pp&) { return start; },
      options);
}

}  // namespace plurality
