#include "core/trials.hpp"

#include "core/observer.hpp"
#include "support/check.hpp"

#if defined(PLURALITY_HAVE_OPENMP)
#include <omp.h>
#endif

namespace plurality {

double TrialSummary::win_rate() const {
  PLURALITY_REQUIRE(trials > 0, "TrialSummary::win_rate: no trials");
  return static_cast<double>(plurality_wins) / static_cast<double>(trials);
}

double TrialSummary::consensus_rate() const {
  PLURALITY_REQUIRE(trials > 0, "TrialSummary::consensus_rate: no trials");
  return static_cast<double>(consensus_count) / static_cast<double>(trials);
}

stats::ProportionCi TrialSummary::win_ci() const {
  return stats::wilson_interval(plurality_wins, trials);
}

TrialOutcomes::TrialOutcomes(std::uint64_t trials, std::size_t exact_round_samples)
    : trials_(trials),
      exact_round_samples_(exact_round_samples),
      won_(trials, 0),
      consensus_(trials, 0),
      limited_(trials, 0),
      predicate_(trials, 0),
      round_samples_(trials, -1.0) {
  PLURALITY_REQUIRE(trials > 0, "TrialOutcomes: need at least one trial");
  // Fail fast: summarize() builds a QuantileSketch with this capacity, and
  // discovering a bad value only after every trial ran would lose the run.
  PLURALITY_REQUIRE(exact_round_samples >= 2,
                    "TrialOutcomes: exact_round_samples must be >= 2, got "
                        << exact_round_samples);
}

void TrialOutcomes::record(std::uint64_t trial, StopReason reason, bool plurality_won,
                           round_t rounds) {
  PLURALITY_REQUIRE(trial < trials_, "TrialOutcomes::record: trial out of range");
  switch (reason) {
    case StopReason::ColorConsensus:
      consensus_[trial] = 1;
      won_[trial] = plurality_won ? 1 : 0;
      round_samples_[trial] = static_cast<double>(rounds);
      break;
    case StopReason::PredicateMet:
      predicate_[trial] = 1;
      round_samples_[trial] = static_cast<double>(rounds);
      break;
    case StopReason::RoundLimit:
      limited_[trial] = 1;
      break;
    case StopReason::NonColorAbsorbed:
      break;
    case StopReason::Cancelled:
      // A cancelled trial has no outcome; the driver throws CancelledError
      // after joining, so this recording is never summarized.
      break;
  }
}

TrialSummary TrialOutcomes::summarize() const {
  TrialSummary summary;
  summary.trials = trials_;
  summary.round_quantiles = stats::QuantileSketch(exact_round_samples_);
  for (std::uint64_t trial = 0; trial < trials_; ++trial) {
    summary.consensus_count += consensus_[trial];
    summary.plurality_wins += won_[trial];
    summary.round_limit_hits += limited_[trial];
    summary.predicate_stops += predicate_[trial];
    if (round_samples_[trial] >= 0.0) {
      summary.rounds.add(round_samples_[trial]);
      summary.round_quantiles.add(round_samples_[trial]);
      if (summary.round_samples.size() < exact_round_samples_) {
        summary.round_samples.push_back(round_samples_[trial]);
      }
    }
  }
  if (!summary.round_quantiles.exact()) {
    // Past the cap the vector would be a misleading prefix; the sketch
    // carries a capacity-sized uniform sample instead.
    summary.round_samples.clear();
    summary.round_samples.shrink_to_fit();
  }
  return summary;
}

TrialSummary run_trials(const Dynamics& dynamics, const ConfigFactory& factory,
                        const CommonTrialOptions& options) {
  PLURALITY_REQUIRE(options.trials > 0, "run_trials: need at least one trial");
  RunOptions run_options;
  run_options.max_rounds = options.max_rounds;
  run_options.record_trajectory = false;  // trajectories cost memory x trials
  run_options.backend = options.backend;
  run_options.engine = options.mode;
  run_options.adversary = options.adversary;
  run_options.stop_predicate = options.stop_predicate;
  run_options.observer = options.observer;
  run_options.cancel = options.cancel;

  const rng::StreamFactory streams(options.seed);
  TrialOutcomes outcomes(options.trials, options.exact_round_samples);

  // One StepWorkspace per executing thread, reused across every round of
  // every trial that thread runs. The workspace is pure scratch, so which
  // thread runs which trial (schedule(dynamic)) cannot affect results —
  // each trial's randomness comes only from its own hash-derived stream.
  const auto body = [&](std::uint64_t trial, StepWorkspace& ws) {
    rng::Xoshiro256pp gen = streams.stream(trial);
    const Configuration start = factory(trial, gen);
    RunResult result;
    if (options.observer != nullptr) {
      // Per-trial copy carries the trial index to the observer callbacks
      // (one options copy per TRIAL, never per round; the shared object
      // cannot hold a mutating index under parallel trials).
      RunOptions run = run_options;
      run.observer_trial = trial;
      result = run_dynamics(dynamics, start, run, gen, ws);
    } else {
      result = run_dynamics(dynamics, start, run_options, gen, ws);
    }
    outcomes.record(trial, result.reason, result.plurality_won, result.rounds);
  };

#if defined(PLURALITY_HAVE_OPENMP)
  if (options.parallel) {
#pragma omp parallel
    {
      StepWorkspace ws;
#pragma omp for schedule(dynamic)
      for (std::uint64_t trial = 0; trial < options.trials; ++trial) body(trial, ws);
    }
  } else {
    StepWorkspace ws;
    for (std::uint64_t trial = 0; trial < options.trials; ++trial) body(trial, ws);
  }
#else
  StepWorkspace ws;
  for (std::uint64_t trial = 0; trial < options.trials; ++trial) body(trial, ws);
#endif

  // Unwinding is only safe here, outside the OpenMP region. Any token that
  // fired poisons the whole run: partial summaries are not reproducible.
  if (options.cancel != nullptr && options.cancel->stop_requested()) {
    throw CancelledError(options.cancel->reason());
  }

  return outcomes.summarize();
}

TrialSummary run_trials(const Dynamics& dynamics, const Configuration& start,
                        const CommonTrialOptions& options) {
  return run_trials(
      dynamics,
      [&start](std::uint64_t, rng::Xoshiro256pp&) { return start; },
      options);
}

}  // namespace plurality
