#include "core/mean_field.hpp"

#include <cmath>

#include "support/check.hpp"

namespace plurality {

std::vector<double> mean_field_step(const Dynamics& dynamics,
                                    std::span<const double> counts) {
  const std::size_t k = counts.size();
  PLURALITY_REQUIRE(k >= 1, "mean_field_step: empty state space");
  double n = 0.0;
  for (double c : counts) {
    PLURALITY_REQUIRE(c >= 0.0, "mean_field_step: negative count");
    n += c;
  }
  PLURALITY_REQUIRE(n > 0.0, "mean_field_step: zero mass");

  std::vector<double> next(k, 0.0);
  std::vector<double> law(k);
  if (!dynamics.law_depends_on_own_state()) {
    dynamics.adoption_law(counts, law);
    for (std::size_t j = 0; j < k; ++j) next[j] = n * law[j];
  } else {
    for (std::size_t s = 0; s < k; ++s) {
      if (counts[s] <= 0.0) continue;
      dynamics.adoption_law_given(static_cast<state_t>(s), counts, law);
      for (std::size_t j = 0; j < k; ++j) next[j] += counts[s] * law[j];
    }
  }
  return next;
}

MeanFieldResult mean_field_trajectory(const Dynamics& dynamics, std::vector<double> start,
                                      const MeanFieldOptions& options) {
  MeanFieldResult result;
  result.trajectory.push_back(start);

  std::vector<double> current = std::move(start);
  for (round_t round = 1; round <= options.max_rounds; ++round) {
    std::vector<double> next = mean_field_step(dynamics, current);
    double max_delta = 0.0;
    for (std::size_t j = 0; j < next.size(); ++j) {
      max_delta = std::max(max_delta, std::fabs(next[j] - current[j]));
    }
    current = std::move(next);
    result.rounds = round;
    if (options.record_trajectory) {
      result.trajectory.push_back(current);
    }
    if (max_delta <= options.tolerance) {
      result.converged = true;
      break;
    }
  }
  if (!options.record_trajectory) {
    result.trajectory.push_back(current);
  }
  return result;
}

}  // namespace plurality
