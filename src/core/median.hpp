// Median dynamics — the paper's key comparison point (Doerr et al.,
// SPAA'11: "Stabilizing consensus with the power of two choices").
//
// Colors are treated as ordered values 0 < 1 < ... < k-1. Two variants:
//
//  * MedianDynamics — the D3-class version: sample three nodes, adopt the
//    median of the three sampled values. As a 3-input rule it has the
//    clear-majority property but NOT the uniform property (on a distinct
//    triple the middle value always wins: delta = (0, 6, 0)), which is
//    exactly why Theorem 3 rules it out as a plurality solver. For k = 2
//    the median of three IS the majority of three, so the two dynamics
//    coincide — the equivalence noted in the paper's introduction.
//
//  * MedianOwnTwo — Doerr et al.'s actual protocol: a node takes the median
//    of its OWN value and two uniformly sampled values. Its law depends on
//    the node's current state, exercising the per-class multinomial path.
//
// Both laws come from the order-statistics identity: the median of three
// i.i.d. draws satisfies P(med <= t) = G(F(t)) with G(x) = 3x^2 - 2x^3,
// and for the own-value variant P(med <= t | own = v) = 1-(1-F)^2 if v <= t,
// else F^2.
#pragma once

#include "core/dynamics.hpp"

namespace plurality {

class MedianDynamics final : public Dynamics {
 public:
  [[nodiscard]] std::string name() const override { return "3-median"; }
  [[nodiscard]] unsigned sample_arity() const override { return 3; }

  void adoption_law(std::span<const double> counts, std::span<double> out) const override;

  [[nodiscard]] state_t apply_rule(state_t own, std::span<const state_t> sampled,
                                   state_t states, rng::Xoshiro256pp& gen) const override;
};

class MedianOwnTwo final : public Dynamics {
 public:
  [[nodiscard]] std::string name() const override { return "median(own+2)"; }
  [[nodiscard]] unsigned sample_arity() const override { return 2; }
  [[nodiscard]] bool law_depends_on_own_state() const override { return true; }

  void adoption_law_given(state_t own, std::span<const double> counts,
                          std::span<double> out) const override;

  [[nodiscard]] state_t apply_rule(state_t own, std::span<const state_t> sampled,
                                   state_t states, rng::Xoshiro256pp& gen) const override;
};

}  // namespace plurality
