#include "core/median.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace plurality {

namespace {

double total(std::span<const double> counts) {
  double n = 0.0;
  for (double c : counts) {
    PLURALITY_REQUIRE(c >= 0.0, "median law: negative count");
    n += c;
  }
  PLURALITY_REQUIRE(n > 0.0, "median law: empty configuration");
  return n;
}

/// G(x) = P(at least 2 of 3 iid uniform-[0,1]-quantile draws land <= x).
double g3(double x) { return x * x * (3.0 - 2.0 * x); }

}  // namespace

void MedianDynamics::adoption_law(std::span<const double> counts,
                                  std::span<double> out) const {
  PLURALITY_REQUIRE(counts.size() == out.size(), "3-median law: size mismatch");
  const double n = total(counts);
  double cdf_prev = 0.0;   // F(j-1)
  double gprev = 0.0;      // G(F(j-1))
  double cum = 0.0;
  for (std::size_t j = 0; j < counts.size(); ++j) {
    cum += counts[j];
    const double cdf = std::min(cum / n, 1.0);
    const double g = g3(cdf);
    out[j] = g - gprev;
    cdf_prev = cdf;
    gprev = g;
  }
  (void)cdf_prev;
}

namespace {

state_t median_of_three(state_t a, state_t b, state_t c) {
  if (a > b) std::swap(a, b);
  if (b > c) std::swap(b, c);
  if (a > b) std::swap(a, b);
  return b;
}

}  // namespace

state_t MedianDynamics::apply_rule(state_t own, std::span<const state_t> sampled,
                                   state_t states, rng::Xoshiro256pp& gen) const {
  (void)own;
  (void)states;
  (void)gen;
  PLURALITY_CHECK(sampled.size() == 3);
  return median_of_three(sampled[0], sampled[1], sampled[2]);
}

void MedianOwnTwo::adoption_law_given(state_t own, std::span<const double> counts,
                                      std::span<double> out) const {
  PLURALITY_REQUIRE(counts.size() == out.size(), "median(own+2) law: size mismatch");
  PLURALITY_REQUIRE(own < counts.size(), "median(own+2) law: own state out of range");
  const double n = total(counts);
  // P(median(own, X, Y) <= t) is (1 - (1-F)^2) for t >= own and F^2 below.
  double cum = 0.0;
  double cdf_med_prev = 0.0;
  for (std::size_t j = 0; j < counts.size(); ++j) {
    cum += counts[j];
    const double f = std::min(cum / n, 1.0);
    const double cdf_med = j >= own ? 1.0 - (1.0 - f) * (1.0 - f) : f * f;
    out[j] = cdf_med - cdf_med_prev;
    cdf_med_prev = cdf_med;
  }
}

state_t MedianOwnTwo::apply_rule(state_t own, std::span<const state_t> sampled,
                                 state_t states, rng::Xoshiro256pp& gen) const {
  (void)states;
  (void)gen;
  PLURALITY_CHECK(sampled.size() == 2);
  return median_of_three(own, sampled[0], sampled[1]);
}

}  // namespace plurality
