// Single-run driver: advances a dynamics from an initial configuration
// until color consensus (or another absorbing/stop condition), optionally
// recording the per-round trajectory the phase-structure analysis (E8)
// needs and applying an F-bounded adversary after each protocol step
// (Section 3.1's  Random -> Adversary  round split).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "core/adversary.hpp"
#include "core/backend.hpp"
#include "core/configuration.hpp"
#include "core/dynamics.hpp"
#include "core/engine_mode.hpp"
#include "rng/xoshiro.hpp"
#include "support/cancellation.hpp"
#include "support/types.hpp"

namespace plurality {

class RoundObserver;  // core/observer.hpp

/// One sampled point of a run's trajectory (colors only; auxiliary states
/// count toward minority_mass).
struct TrajectoryPoint {
  round_t round;
  state_t plurality_color;
  count_t plurality_count;
  count_t runner_up_count;
  count_t bias;
  count_t minority_mass;
};

enum class StopReason {
  ColorConsensus,   // all n nodes on one color — the absorbing goal state
  NonColorAbsorbed, // absorbed in a non-color state (all-undecided)
  PredicateMet,     // caller's stop_predicate returned true
  RoundLimit,       // max_rounds exhausted without absorption
  Cancelled,        // RunOptions::cancel fired — result must be discarded
};

struct RunResult {
  round_t rounds = 0;
  StopReason reason = StopReason::RoundLimit;
  /// Winning color; only meaningful for ColorConsensus.
  state_t winner = 0;
  /// Plurality color of the INITIAL configuration (lowest index on ties).
  state_t initial_plurality = 0;
  /// reason == ColorConsensus && winner == initial_plurality.
  bool plurality_won = false;
  /// Final configuration at stop time.
  Configuration final_config;
  /// Per-round trajectory; empty unless RunOptions::record_trajectory.
  std::vector<TrajectoryPoint> trajectory;
};

struct RunOptions {
  round_t max_rounds = 1'000'000;
  bool record_trajectory = false;
  Backend backend = Backend::CountBased;
  /// Stepping pipeline (count-based backend only). Strict is the bitwise-
  /// pinned xoshiro default; Batched steps with block-generated PhiloxStream
  /// uniforms through the same exact conditional-binomial kernels (the
  /// count-side face of the graph engine's mode axis — distributionally
  /// equivalent, not bitwise). The Philox stream is keyed off one draw from
  /// the caller's generator, so trials stay independent and thread-
  /// invariant; adversary and factory randomness keep using the caller's
  /// generator either way.
  EngineMode engine = EngineMode::Strict;
  /// Applied after every protocol step (count-based backend only).
  const Adversary* adversary = nullptr;
  /// Optional extra stop condition, checked after each round:
  /// (configuration, round) -> stop?
  std::function<bool(const Configuration&, round_t)> stop_predicate;
  /// Per-round probe pipeline (core/observer.hpp): begin_trial before the
  /// first step, observe_round after each materialized round (protocol +
  /// adversary), end_trial at stop. Observers read the configuration only
  /// and draw no RNG, so wiring one in never changes the run's results
  /// (pinned by tests/core/test_observer.cpp).
  RoundObserver* observer = nullptr;
  /// Trial index forwarded to the observer's callbacks (run_trials sets it;
  /// standalone runs default to 0).
  std::uint64_t observer_trial = 0;
  /// Cooperative cancellation (support/cancellation.hpp): checked between
  /// rounds (one relaxed atomic load). A fired token stops the run at the
  /// next round boundary with StopReason::Cancelled — the run's partial
  /// state is NOT a valid result and must be discarded by the caller (the
  /// trial drivers translate it into a CancelledError once outside their
  /// parallel regions). nullptr = never cancelled.
  const CancellationToken* cancel = nullptr;
};

/// Runs `dynamics` from `start` (already in the dynamics' state space —
/// use UndecidedState::extend_with_undecided for protocols with auxiliary
/// states). Advances `gen` as its randomness source. `ws` is the stepping
/// scratch; callers running many runs (run_trials) pass one workspace per
/// thread so steady-state rounds allocate nothing. Workspace sharing never
/// affects results (it is pure scratch — see step_workspace.hpp).
RunResult run_dynamics(const Dynamics& dynamics, const Configuration& start,
                       const RunOptions& options, rng::Xoshiro256pp& gen,
                       StepWorkspace& ws);

/// Convenience overload for one-off runs; allocates a throwaway workspace.
RunResult run_dynamics(const Dynamics& dynamics, const Configuration& start,
                       const RunOptions& options, rng::Xoshiro256pp& gen);

/// Stop predicate for Theorem 2-style experiments: stop once any color
/// reaches `threshold` nodes.
std::function<bool(const Configuration&, round_t)> stop_when_any_color_reaches(
    count_t threshold, state_t num_colors);

/// Stop predicate for Corollary 4: stop once all but at most M nodes hold
/// `color`.
std::function<bool(const Configuration&, round_t)> stop_at_m_plurality(
    count_t m, state_t color);

}  // namespace plurality
