#include "core/phases.hpp"

#include "support/check.hpp"

namespace plurality {

Phase classify_phase(const TrajectoryPoint& point, count_t n, double last_step_boundary) {
  PLURALITY_REQUIRE(n > 0, "classify_phase: empty population");
  const double c1 = static_cast<double>(point.plurality_count);
  const double nd = static_cast<double>(n);
  if (c1 >= nd - last_step_boundary) return Phase::LastStep;
  if (c1 > 2.0 * nd / 3.0) return Phase::MinorityDecay;
  return Phase::BiasGrowth;
}

double PhaseReport::bias_violation_rate() const {
  return bias_growth_steps == 0
             ? 0.0
             : static_cast<double>(bias_growth_violations) /
                   static_cast<double>(bias_growth_steps);
}

double PhaseReport::decay_violation_rate() const {
  return minority_decay_steps == 0
             ? 0.0
             : static_cast<double>(minority_decay_violations) /
                   static_cast<double>(minority_decay_steps);
}

void PhaseReport::merge(const PhaseReport& other) {
  rounds_phase1.merge(other.rounds_phase1);
  rounds_phase2.merge(other.rounds_phase2);
  rounds_phase3.merge(other.rounds_phase3);
  bias_growth.merge(other.bias_growth);
  bias_growth_steps += other.bias_growth_steps;
  bias_growth_violations += other.bias_growth_violations;
  minority_decay.merge(other.minority_decay);
  minority_decay_steps += other.minority_decay_steps;
  minority_decay_violations += other.minority_decay_violations;
}

PhaseReport analyze_phases(std::span<const TrajectoryPoint> trajectory, count_t n,
                           double last_step_boundary) {
  PLURALITY_REQUIRE(trajectory.size() >= 2, "analyze_phases: need >= 2 points");
  PhaseReport report;
  std::uint64_t in_phase1 = 0, in_phase2 = 0, in_phase3 = 0;

  for (std::size_t i = 0; i + 1 < trajectory.size(); ++i) {
    const TrajectoryPoint& cur = trajectory[i];
    const TrajectoryPoint& nxt = trajectory[i + 1];
    const double nd = static_cast<double>(n);
    switch (classify_phase(cur, n, last_step_boundary)) {
      case Phase::BiasGrowth: {
        ++in_phase1;
        if (cur.bias > 0) {
          const double growth =
              static_cast<double>(nxt.bias) / static_cast<double>(cur.bias);
          const double bound = 1.0 + static_cast<double>(cur.plurality_count) / (4.0 * nd);
          report.bias_growth.add(growth);
          ++report.bias_growth_steps;
          report.bias_growth_violations += (growth < bound);
        }
        break;
      }
      case Phase::MinorityDecay: {
        ++in_phase2;
        if (cur.minority_mass > 0) {
          const double decay = static_cast<double>(nxt.minority_mass) /
                               static_cast<double>(cur.minority_mass);
          report.minority_decay.add(decay);
          ++report.minority_decay_steps;
          report.minority_decay_violations += (decay > 8.0 / 9.0);
        }
        break;
      }
      case Phase::LastStep:
        ++in_phase3;
        break;
    }
  }
  report.rounds_phase1.add(static_cast<double>(in_phase1));
  report.rounds_phase2.add(static_cast<double>(in_phase2));
  report.rounds_phase3.add(static_cast<double>(in_phase3));
  return report;
}

}  // namespace plurality
