#include "core/hplurality.hpp"

#include <cmath>
#include <vector>

#include "rng/distributions.hpp"
#include "support/check.hpp"

namespace plurality {

namespace {

/// C(n, r) saturating at uint64 max.
std::uint64_t binom_saturating(std::uint64_t n, std::uint64_t r) {
  if (r > n) return 0;
  r = std::min(r, n - r);
  std::uint64_t result = 1;
  for (std::uint64_t i = 1; i <= r; ++i) {
    const std::uint64_t numer = n - r + i;
    if (result > ~0ULL / numer) return ~0ULL;  // would overflow
    result = result * numer / i;  // exact: product of i consecutive ints is divisible by i!
  }
  return result;
}

/// Depth-first enumeration of sample compositions. At each leaf the sample
/// histogram (m_0..m_{k-1}, sum h) occurs with multinomial probability
///   h! / prod(m_j!) * prod(share_j ^ m_j),
/// and credits its probability equally to the argmax colors.
class LawEnumerator {
 public:
  LawEnumerator(std::span<const double> shares, unsigned h, std::span<double> out)
      : shares_(shares), out_(out), histogram_(shares.size(), 0) {
    log_factorial_.resize(h + 1, 0.0);
    for (unsigned i = 2; i <= h; ++i) {
      log_factorial_[i] = log_factorial_[i - 1] + std::log(static_cast<double>(i));
    }
    for (double& p : out_) p = 0.0;
    recurse(0, h, log_factorial_[h]);
  }

 private:
  void recurse(std::size_t color, unsigned remaining, double log_weight) {
    if (color + 1 == shares_.size()) {
      histogram_[color] = remaining;
      double lw = log_weight - log_factorial_[remaining];
      if (remaining > 0) {
        if (shares_[color] <= 0.0) return;  // impossible leaf
        lw += remaining * std::log(shares_[color]);
      }
      credit(std::exp(lw));
      return;
    }
    // m = 0 keeps the weight untouched.
    histogram_[color] = 0;
    recurse(color + 1, remaining, log_weight);
    if (shares_[color] <= 0.0) return;
    const double log_share = std::log(shares_[color]);
    for (unsigned m = 1; m <= remaining; ++m) {
      histogram_[color] = m;
      recurse(color + 1, remaining - m,
              log_weight - log_factorial_[m] + m * log_share);
    }
    histogram_[color] = 0;
  }

  void credit(double probability) {
    unsigned best = 0;
    for (unsigned m : histogram_) best = std::max(best, m);
    if (best == 0) return;
    unsigned ties = 0;
    for (unsigned m : histogram_) ties += (m == best);
    const double share = probability / ties;
    for (std::size_t j = 0; j < histogram_.size(); ++j) {
      if (histogram_[j] == best) out_[j] += share;
    }
  }

  std::span<const double> shares_;
  std::span<double> out_;
  std::vector<unsigned> histogram_;
  std::vector<double> log_factorial_;
};

}  // namespace

HPlurality::HPlurality(unsigned h, std::uint64_t law_term_budget)
    : h_(h), law_term_budget_(law_term_budget) {
  PLURALITY_REQUIRE(h >= 1, "h-plurality: h must be at least 1");
}

std::string HPlurality::name() const { return std::to_string(h_) + "-plurality"; }

std::uint64_t HPlurality::exact_law_cost(state_t k) const {
  return binom_saturating(static_cast<std::uint64_t>(h_) + k - 1, h_);
}

bool HPlurality::has_exact_law(state_t states) const {
  return exact_law_cost(states) <= law_term_budget_;
}

void HPlurality::adoption_law(std::span<const double> counts, std::span<double> out) const {
  PLURALITY_REQUIRE(counts.size() == out.size(), "h-plurality law: size mismatch");
  PLURALITY_REQUIRE(has_exact_law(static_cast<state_t>(counts.size())),
                    "h-plurality exact law too expensive for k="
                        << counts.size() << ", h=" << h_ << " ("
                        << exact_law_cost(static_cast<state_t>(counts.size()))
                        << " terms); use the agent backend");
  double n = 0.0;
  for (double c : counts) {
    PLURALITY_REQUIRE(c >= 0.0, "h-plurality law: negative count");
    n += c;
  }
  PLURALITY_REQUIRE(n > 0.0, "h-plurality law: empty configuration");
  std::vector<double> shares(counts.size());
  for (std::size_t j = 0; j < counts.size(); ++j) shares[j] = counts[j] / n;
  LawEnumerator(shares, h_, out);
}

state_t HPlurality::apply_rule(state_t own, std::span<const state_t> sampled,
                               state_t states, rng::Xoshiro256pp& gen) const {
  (void)own;
  (void)states;
  PLURALITY_CHECK(sampled.size() == h_);
  // Count occurrences among at most h distinct colors with a flat scan —
  // h is small, so this beats a hash map and never allocates beyond h slots.
  state_t distinct[64];
  unsigned counts[64];
  PLURALITY_CHECK_MSG(h_ <= 64, "agent rule supports h <= 64");
  unsigned num_distinct = 0;
  for (state_t s : sampled) {
    bool found = false;
    for (unsigned i = 0; i < num_distinct; ++i) {
      if (distinct[i] == s) {
        ++counts[i];
        found = true;
        break;
      }
    }
    if (!found) {
      distinct[num_distinct] = s;
      counts[num_distinct] = 1;
      ++num_distinct;
    }
  }
  unsigned best = 0;
  for (unsigned i = 0; i < num_distinct; ++i) best = std::max(best, counts[i]);
  unsigned ties = 0;
  for (unsigned i = 0; i < num_distinct; ++i) ties += (counts[i] == best);
  // Uniform tie-breaking among the tied plurality colors.
  std::uint64_t pick = ties == 1 ? 0 : rng::uniform_below(gen, ties);
  for (unsigned i = 0; i < num_distinct; ++i) {
    if (counts[i] == best) {
      if (pick == 0) return distinct[i];
      --pick;
    }
  }
  PLURALITY_CHECK_MSG(false, "h-plurality rule: unreachable");
  return sampled[0];
}

}  // namespace plurality
