#include "core/observer.hpp"

#include "support/check.hpp"

namespace plurality {

ProbeObserver::ProbeObserver(const ProbeOptions& options)
    : options_(options), m_sketch_(options.sketch_capacity) {
  PLURALITY_REQUIRE(options.trials > 0, "ProbeObserver: need at least one trial");
  PLURALITY_REQUIRE(options.trajectory_stride >= 1,
                    "ProbeObserver: trajectory_stride must be >= 1");
  // Everything the per-round callbacks touch is allocated here, once, so an
  // observed warm round stays heap-free (tests/alloc pins this).
  rows_.resize(options.trials * options.trajectory_capacity);
  row_count_.assign(options.trials, 0);
  time_to_m_.assign(options.trials, -1.0);
  final_fraction_.assign(options.trials, -1.0);
  final_support_.assign(options.trials, -1.0);
  final_mono_.assign(options.trials, -1.0);
}

void ProbeObserver::probe(std::uint64_t trial, round_t round, const Configuration& config,
                          state_t num_colors) {
  const count_t n = config.n();
  const count_t cmax = config.plurality_count(num_colors);
  const double fraction = static_cast<double>(cmax) / static_cast<double>(n);

  state_t support = 0;
  for (state_t j = 0; j < num_colors; ++j) support += config.at(j) > 0 ? 1 : 0;

  // All mass can sit in auxiliary states (all-undecided absorption); the
  // distance is defined over colors, so report 0 rather than divide by 0.
  const double mono = cmax > 0 ? config.monochromatic_distance(num_colors) : 0.0;

  if (options_.track_m_plurality && time_to_m_[trial] < 0.0 &&
      n - cmax <= options_.m_plurality) {
    time_to_m_[trial] = static_cast<double>(round);
  }

  if (options_.trajectory_capacity > 0 && round % options_.trajectory_stride == 0) {
    const std::uint32_t used = row_count_[trial];
    if (used < options_.trajectory_capacity) {
      rows_[trial * options_.trajectory_capacity + used] =
          ProbeRow{round, fraction, support, mono};
      row_count_[trial] = used + 1;
    }
  }

  // Overwritten every round; end_trial freezes the last materialized state.
  final_fraction_[trial] = fraction;
  final_support_[trial] = static_cast<double>(support);
  final_mono_[trial] = mono;
}

void ProbeObserver::begin_trial(std::uint64_t trial, const Configuration& start,
                                state_t num_colors) {
  PLURALITY_REQUIRE(trial < options_.trials,
                    "ProbeObserver::begin_trial: trial out of range");
  // Reset the trial's slots (observers may be reused across driver calls),
  // then record round 0.
  row_count_[trial] = 0;
  time_to_m_[trial] = -1.0;
  probe(trial, 0, start, num_colors);
}

void ProbeObserver::observe_round(std::uint64_t trial, round_t round,
                                  const Configuration& config, state_t num_colors) {
  probe(trial, round, config, num_colors);
}

void ProbeObserver::end_trial(std::uint64_t trial, StopReason reason, round_t rounds,
                              const Configuration& final, state_t num_colors) {
  (void)reason;
  (void)rounds;
  // The final configuration was already probed (observe_round runs before
  // the driver's stop checks; round-0 stops were probed by begin_trial), so
  // there is nothing to recompute — the per-trial final slots hold it.
  (void)final;
  (void)num_colors;
  PLURALITY_REQUIRE(trial < options_.trials, "ProbeObserver::end_trial: trial out of range");
}

void ProbeObserver::finalize() {
  PLURALITY_REQUIRE(!finalized_, "ProbeObserver::finalize: already finalized");
  finalized_ = true;
  for (std::uint64_t trial = 0; trial < options_.trials; ++trial) {
    if (time_to_m_[trial] >= 0.0) {
      ++m_hits_;
      m_sketch_.add(time_to_m_[trial]);
    }
    if (final_fraction_[trial] >= 0.0) {
      final_fraction_stats_.add(final_fraction_[trial]);
      final_support_stats_.add(final_support_[trial]);
      final_mono_stats_.add(final_mono_[trial]);
    }
  }
}

std::span<const ProbeRow> ProbeObserver::trajectory(std::uint64_t trial) const {
  PLURALITY_REQUIRE(trial < options_.trials, "ProbeObserver::trajectory: trial out of range");
  return {rows_.data() + trial * options_.trajectory_capacity, row_count_[trial]};
}

double ProbeObserver::time_to_m(std::uint64_t trial) const {
  PLURALITY_REQUIRE(trial < options_.trials, "ProbeObserver::time_to_m: trial out of range");
  return time_to_m_[trial];
}

}  // namespace plurality
