// Name-based factory over every dynamics in the library — the entry point
// for generic tools (plurality_sim) and sweep scripts that choose a
// protocol on the command line.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/dynamics.hpp"

namespace plurality {

/// Creates a dynamics by name. Accepted names:
///   "3-majority", "voter", "2-choices", "3-median", "median-own2",
///   "undecided", "<h>-plurality" (e.g. "7-plurality"),
///   and the 3-input rule tables "rule:first", "rule:min", "rule:median",
///   "rule:majority-tie-lowest", "rule:majority-tie-cond",
///   "rule:majority-tie-last".
/// Throws CheckError for unknown names.
std::unique_ptr<Dynamics> make_dynamics(const std::string& name);

/// All canonical names accepted by make_dynamics (one per protocol; the
/// h-plurality family is represented by "5-plurality").
std::vector<std::string> dynamics_names();

}  // namespace plurality
