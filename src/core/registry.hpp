// Name-based factory over every dynamics in the library — the entry point
// for generic tools (plurality_sim) and sweep scripts that choose a
// protocol on the command line.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/dynamics.hpp"

namespace plurality {

/// Creates a dynamics by name. Accepted names:
///   "3-majority", "voter", "2-choices", "3-median", "median-own2",
///   "undecided", "<h>-plurality" (e.g. "7-plurality"),
///   and the 3-input rule tables "rule:first", "rule:min", "rule:median",
///   "rule:majority-tie-lowest", "rule:majority-tie-cond",
///   "rule:majority-tie-last".
/// Throws CheckError for unknown names.
std::unique_ptr<Dynamics> make_dynamics(const std::string& name);

/// All canonical names accepted by make_dynamics. The h-plurality family
/// is enumerated for h = 2..8 (every member make_dynamics accepts by
/// pattern and whose exact law stays within the default enumeration budget
/// at paper-scale k); arbitrary "<h>-plurality" names beyond the list
/// still construct.
std::vector<std::string> dynamics_names();

/// Static metadata for one dynamics — what `plurality_sim --list` prints
/// and what scenario tooling uses to pick backends without constructing a
/// full run.
struct DynamicsInfo {
  std::string name;          ///< canonical registry name (make_dynamics input)
  std::string display_name;  ///< Dynamics::name()
  unsigned sample_arity = 0;       ///< samples per node per round (h)
  state_t aux_states = 0;          ///< Markov states beyond the k colors
  unsigned memory_bits = 0;        ///< per-node memory beyond the color itself
  bool law_depends_on_own_state = false;
  bool exact_law_at_k8 = false;    ///< has_exact_law at the reference k = 8
};

/// Metadata for one registry name (constructs the dynamics to probe it).
/// Throws CheckError for unknown names, like make_dynamics.
DynamicsInfo describe_dynamics(const std::string& name);

/// describe_dynamics over every dynamics_names() entry.
std::vector<DynamicsInfo> dynamics_catalog();

}  // namespace plurality
