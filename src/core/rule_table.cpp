#include "core/rule_table.hpp"

#include <vector>

#include "support/check.hpp"

namespace plurality {

ThreeInputDynamics::ThreeInputDynamics(std::string name, Rule3 rule)
    : name_(std::move(name)), rule_(std::move(rule)) {
  PLURALITY_REQUIRE(static_cast<bool>(rule_), "ThreeInputDynamics: empty rule");
}

void ThreeInputDynamics::adoption_law(std::span<const double> counts,
                                      std::span<double> out) const {
  PLURALITY_REQUIRE(counts.size() == out.size(), "3-input law: size mismatch");
  const auto k = static_cast<state_t>(counts.size());
  PLURALITY_REQUIRE(has_exact_law(k), "3-input law: k=" << k << " exceeds the k<=256 guard");
  double n = 0.0;
  for (double c : counts) {
    PLURALITY_REQUIRE(c >= 0.0, "3-input law: negative count");
    n += c;
  }
  PLURALITY_REQUIRE(n > 0.0, "3-input law: empty configuration");
  for (double& p : out) p = 0.0;
  const double n3 = n * n * n;
  for (state_t a = 0; a < k; ++a) {
    if (counts[a] == 0.0) continue;
    for (state_t b = 0; b < k; ++b) {
      if (counts[b] == 0.0) continue;
      const double wab = counts[a] * counts[b];
      for (state_t c = 0; c < k; ++c) {
        if (counts[c] == 0.0) continue;
        out[rule_(a, b, c)] += wab * counts[c] / n3;
      }
    }
  }
}

state_t ThreeInputDynamics::apply_rule(state_t own, std::span<const state_t> sampled,
                                       state_t states, rng::Xoshiro256pp& gen) const {
  (void)own;
  (void)states;
  (void)gen;
  PLURALITY_CHECK(sampled.size() == 3);
  return rule_(sampled[0], sampled[1], sampled[2]);
}

bool has_clear_majority_property(const Rule3& rule, state_t k) {
  for (state_t a = 0; a < k; ++a) {
    for (state_t b = 0; b < k; ++b) {
      if (a == b) continue;
      if (rule(a, a, b) != a) return false;
      if (rule(a, b, a) != a) return false;
      if (rule(b, a, a) != a) return false;
    }
  }
  return true;
}

std::array<int, 3> rule_deltas(const Rule3& rule, state_t r, state_t g, state_t b) {
  PLURALITY_REQUIRE(r != g && g != b && r != b, "rule_deltas: colors must be distinct");
  const state_t perms[6][3] = {{r, g, b}, {r, b, g}, {g, r, b},
                               {g, b, r}, {b, r, g}, {b, g, r}};
  std::array<int, 3> deltas = {0, 0, 0};
  for (const auto& p : perms) {
    const state_t winner = rule(p[0], p[1], p[2]);
    if (winner == r) ++deltas[0];
    else if (winner == g) ++deltas[1];
    else if (winner == b) ++deltas[2];
    else PLURALITY_CHECK_MSG(false, "rule returned a color outside its inputs");
  }
  return deltas;
}

bool has_uniform_property(const Rule3& rule, state_t k) {
  for (state_t r = 0; r < k; ++r) {
    for (state_t g = r + 1; g < k; ++g) {
      for (state_t b = g + 1; b < k; ++b) {
        const auto d = rule_deltas(rule, r, g, b);
        if (d[0] != 2 || d[1] != 2 || d[2] != 2) return false;
      }
    }
  }
  return true;
}

bool is_three_majority_class(const Rule3& rule, state_t k) {
  return has_clear_majority_property(rule, k) && has_uniform_property(rule, k);
}

bool returns_an_input(const Rule3& rule, state_t k) {
  for (state_t a = 0; a < k; ++a) {
    for (state_t b = 0; b < k; ++b) {
      for (state_t c = 0; c < k; ++c) {
        const state_t out = rule(a, b, c);
        if (out != a && out != b && out != c) return false;
      }
    }
  }
  return true;
}

namespace {

state_t clear_majority_or_sentinel(state_t a, state_t b, state_t c) {
  if (a == b || a == c) return a;
  if (b == c) return b;
  return static_cast<state_t>(~0u);  // all distinct
}

state_t median3(state_t a, state_t b, state_t c) {
  if (a > b) std::swap(a, b);
  if (b > c) std::swap(b, c);
  if (a > b) std::swap(a, b);
  return b;
}

constexpr state_t kDistinct = static_cast<state_t>(~0u);

}  // namespace

Rule3 rule_majority_tie_first() {
  return [](state_t a, state_t b, state_t c) {
    const state_t m = clear_majority_or_sentinel(a, b, c);
    return m != kDistinct ? m : a;
  };
}

Rule3 rule_majority_tie_last() {
  return [](state_t a, state_t b, state_t c) {
    const state_t m = clear_majority_or_sentinel(a, b, c);
    return m != kDistinct ? m : c;
  };
}

Rule3 rule_first_sample() {
  return [](state_t a, state_t, state_t) { return a; };
}

Rule3 rule_min() {
  return [](state_t a, state_t b, state_t c) { return std::min({a, b, c}); };
}

Rule3 rule_median() {
  return [](state_t a, state_t b, state_t c) { return median3(a, b, c); };
}

Rule3 rule_majority_tie_lowest() {
  return [](state_t a, state_t b, state_t c) {
    const state_t m = clear_majority_or_sentinel(a, b, c);
    return m != kDistinct ? m : std::min({a, b, c});
  };
}

Rule3 rule_majority_tie_conditional() {
  return [](state_t a, state_t b, state_t c) {
    const state_t m = clear_majority_or_sentinel(a, b, c);
    if (m != kDistinct) return m;
    return a < b ? a : c;
  };
}

std::vector<NamedRule> all_named_rules() {
  return {
      {"majority/tie-first", rule_majority_tie_first()},
      {"majority/tie-last", rule_majority_tie_last()},
      {"first-sample", rule_first_sample()},
      {"min", rule_min()},
      {"median", rule_median()},
      {"majority/tie-lowest", rule_majority_tie_lowest()},
      {"majority/tie-cond", rule_majority_tie_conditional()},
  };
}

}  // namespace plurality
