#include "core/configuration.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "support/check.hpp"

namespace plurality {

Configuration::Configuration(std::vector<count_t> counts) : counts_(std::move(counts)) {
  PLURALITY_REQUIRE(!counts_.empty(), "Configuration: need at least one state");
  n_ = std::accumulate(counts_.begin(), counts_.end(), count_t{0});
}

Configuration Configuration::zeros(state_t k) {
  PLURALITY_REQUIRE(k >= 1, "Configuration::zeros: need at least one state");
  return Configuration(std::vector<count_t>(k, 0));
}

count_t Configuration::at(state_t j) const {
  PLURALITY_REQUIRE(j < k(), "Configuration: state " << j << " out of range (k=" << k() << ")");
  return counts_[j];
}

void Configuration::set(state_t j, count_t value) {
  PLURALITY_REQUIRE(j < k(), "Configuration: state " << j << " out of range (k=" << k() << ")");
  n_ = n_ - counts_[j] + value;
  counts_[j] = value;
}

count_t Configuration::move_mass(state_t from, state_t to, count_t amount) {
  PLURALITY_REQUIRE(from < k() && to < k(), "Configuration::move_mass: state out of range");
  if (from == to) return 0;
  const count_t moved = std::min(amount, counts_[from]);
  counts_[from] -= moved;
  counts_[to] += moved;
  return moved;
}

void Configuration::assign_counts(std::span<const count_t> counts) {
  PLURALITY_REQUIRE(!counts.empty(), "Configuration::assign_counts: need at least one state");
  counts_.assign(counts.begin(), counts.end());
  n_ = std::accumulate(counts_.begin(), counts_.end(), count_t{0});
}

void Configuration::counts_real_into(std::span<double> out) const {
  PLURALITY_REQUIRE(out.size() == counts_.size(),
                    "Configuration::counts_real_into: out size mismatch");
  for (std::size_t j = 0; j < counts_.size(); ++j) out[j] = static_cast<double>(counts_[j]);
}

std::vector<double> Configuration::counts_real() const {
  std::vector<double> out(counts_.size());
  counts_real_into(out);
  return out;
}

std::vector<double> Configuration::shares() const {
  PLURALITY_REQUIRE(n_ > 0, "Configuration::shares: empty configuration");
  std::vector<double> out(counts_.size());
  for (std::size_t j = 0; j < counts_.size(); ++j) {
    out[j] = static_cast<double>(counts_[j]) / static_cast<double>(n_);
  }
  return out;
}

state_t Configuration::plurality(state_t num_colors) const {
  PLURALITY_REQUIRE(num_colors >= 1 && num_colors <= k(),
                    "Configuration::plurality: bad color prefix " << num_colors);
  state_t best = 0;
  for (state_t j = 1; j < num_colors; ++j) {
    if (counts_[j] > counts_[best]) best = j;
  }
  return best;
}

count_t Configuration::plurality_count(state_t num_colors) const {
  return counts_[plurality(num_colors)];
}

count_t Configuration::runner_up_count(state_t num_colors) const {
  PLURALITY_REQUIRE(num_colors >= 2, "runner_up_count: needs at least two colors");
  const state_t first = plurality(num_colors);
  count_t best = 0;
  bool seen = false;
  for (state_t j = 0; j < num_colors; ++j) {
    if (j == first) continue;
    if (!seen || counts_[j] > best) {
      best = counts_[j];
      seen = true;
    }
  }
  return best;
}

count_t Configuration::bias(state_t num_colors) const {
  if (num_colors < 2) return plurality_count(num_colors);
  return plurality_count(num_colors) - runner_up_count(num_colors);
}

count_t Configuration::minority_mass(state_t num_colors) const {
  // Mass on every state other than the plurality color, including any
  // auxiliary (non-color) states: those nodes do not support the plurality.
  return n_ - plurality_count(num_colors);
}

bool Configuration::monochromatic() const {
  if (n_ == 0) return false;
  for (count_t c : counts_) {
    if (c == n_) return true;
    if (c != 0) return false;
  }
  return false;  // unreachable given the sum invariant
}

bool Configuration::color_consensus(state_t num_colors) const {
  PLURALITY_REQUIRE(num_colors >= 1 && num_colors <= k(),
                    "color_consensus: bad color prefix " << num_colors);
  if (n_ == 0) return false;
  for (state_t j = 0; j < num_colors; ++j) {
    if (counts_[j] == n_) return true;
  }
  return false;
}

double Configuration::monochromatic_distance(state_t num_colors) const {
  const count_t cmax = plurality_count(num_colors);
  PLURALITY_REQUIRE(cmax > 0, "monochromatic_distance: no colored nodes");
  double sum = 0.0;
  for (state_t j = 0; j < num_colors; ++j) {
    const double ratio = static_cast<double>(counts_[j]) / static_cast<double>(cmax);
    sum += ratio * ratio;
  }
  return sum;
}

Configuration Configuration::sorted_desc() const {
  std::vector<count_t> sorted = counts_;
  std::sort(sorted.begin(), sorted.end(), std::greater<count_t>());
  return Configuration(std::move(sorted));
}

std::string Configuration::to_string() const {
  std::ostringstream os;
  os << '(';
  for (std::size_t j = 0; j < counts_.size(); ++j) {
    if (j) os << ", ";
    os << counts_[j];
  }
  os << ')';
  return os.str();
}

}  // namespace plurality
