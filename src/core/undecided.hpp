// The undecided-state dynamics (Angluin–Aspnes–Eisenstat's third-state
// protocol in the synchronous pull model; analyzed for general k in
// Becchetti et al., SODA'15 — reference [4] of the paper).
//
// Each node pulls ONE uniform sample per round:
//   * a colored node that sees a DIFFERENT color becomes undecided
//     (seeing its own color or an undecided node leaves it unchanged);
//   * an undecided node adopts the sampled color (stays undecided when it
//     samples another undecided node).
//
// States: 0..k-1 are colors, state k is "undecided". The initial
// configuration has zero undecided mass (extend_with_undecided()).
//
// The paper's discussion (Section 1) makes two claims we reproduce in E10:
// convergence time is linear in the monochromatic distance md(c) = sum_j
// (c_j/c_max)^2 — exponentially faster than 3-majority on configurations
// with many tiny colors — but for k = omega(sqrt n) there are configurations
// where the plurality color disappears in one round with constant
// probability.
#pragma once

#include "core/configuration.hpp"
#include "core/dynamics.hpp"

namespace plurality {

class UndecidedState final : public Dynamics {
 public:
  [[nodiscard]] std::string name() const override { return "undecided-state"; }
  [[nodiscard]] unsigned sample_arity() const override { return 1; }
  [[nodiscard]] state_t num_states(state_t num_colors) const override {
    return num_colors + 1;
  }
  [[nodiscard]] state_t num_colors(state_t states) const override { return states - 1; }
  [[nodiscard]] bool law_depends_on_own_state() const override { return true; }

  void adoption_law_given(state_t own, std::span<const double> counts,
                          std::span<double> out) const override;

  /// A colored node's law has two-entry support ({own color, undecided} —
  /// computed in O(1)); the undecided class's law is supported on the
  /// occupied colors plus undecided (one O(k) scan). This is what makes
  /// count-based stepping O(k + occupied) per round instead of
  /// Θ(k · occupied).
  [[nodiscard]] bool has_sparse_law() const override { return true; }
  [[nodiscard]] state_t adoption_law_given_sparse(
      state_t own, std::span<const double> counts, double total,
      std::span<state_t> states_out, std::span<double> probs_out) const override;

  [[nodiscard]] state_t apply_rule(state_t own, std::span<const state_t> sampled,
                                   state_t states, rng::Xoshiro256pp& gen) const override;

  /// Adapts a pure-color configuration to this protocol's state space by
  /// appending an empty undecided state.
  [[nodiscard]] static Configuration extend_with_undecided(const Configuration& colors);
};

}  // namespace plurality
