// Initial-configuration generators for every workload the paper's
// statements quantify over. Each generator guarantees counts sum exactly
// to n (largest-remainder rounding where fractions appear).
#pragma once

#include <span>
#include <vector>

#include "core/configuration.hpp"
#include "rng/xoshiro.hpp"
#include "support/types.hpp"

namespace plurality::workloads {

/// Perfectly balanced: floor(n/k) everywhere, the remainder spread one each
/// over the first (n mod k) colors.
Configuration balanced(count_t n, state_t k);

/// Additive bias s toward color 0: the other n - s nodes split evenly, then
/// color 0 receives the s extra supporters. bias() is s up to rounding (and
/// exactly s when k divides n - s). Requires s <= n.
Configuration additive_bias(count_t n, state_t k, count_t s);

/// Plurality share control (Theorem 1's lambda = n / c1): color 0 holds
/// round(share * n) nodes, the rest are balanced over colors 1..k-1.
Configuration plurality_share(count_t n, state_t k, double share);

/// Lemma 10's configuration: x = (n - s) / k; c = (x + s, x, ..., x).
Configuration lemma10(count_t n, state_t k, count_t s);

/// Lemma 8 / Theorem 3's three-color configuration (n/3 + s, n/3, n/3 - s).
Configuration theorem3(count_t n, count_t s);

/// Theorem 2's near-balanced start: max_j c_j <= n/k + (n/k)^(1-epsilon).
/// Color 0 gets the full allowed imbalance (the worst case for the lower
/// bound), compensated by the last color.
Configuration near_balanced(count_t n, state_t k, double epsilon);

/// Zipf-shaped configuration (the distributed-ranking motivation): color
/// ranks follow c_j ∝ 1/(j+1)^theta, deterministically rounded by largest
/// remainder. theta = 0 is balanced.
Configuration zipf(count_t n, state_t k, double theta);

/// Samples each node's color i.i.d. from explicit weights — a random
/// workload with the same shape (for trial-to-trial variability).
Configuration sample_from_weights(count_t n, std::span<const double> weights,
                                  rng::Xoshiro256pp& gen);

/// The paper's critical-bias scale sqrt(min{2k, (n/ln n)^(1/3)} · n · ln n)
/// — Corollary 1's threshold without the 72·sqrt(2) proof constant.
/// Benches sweep multiples of this.
double critical_bias_scale(count_t n, state_t k);

/// Theorem 1's threshold scale for a given lambda: sqrt(lambda · n · ln n).
double critical_bias_scale_lambda(count_t n, double lambda);

/// Largest-remainder (Hamilton) rounding of nonnegative targets to integer
/// counts summing exactly to n. Exposed for tests.
std::vector<count_t> largest_remainder_round(count_t n, std::span<const double> targets);

/// Parses a workload specification string into a configuration — the CLI
/// surface used by the plurality_sim tool. Accepted forms:
///   "balanced"                    balanced(n, k)
///   "bias:<s>"                    additive_bias(n, k, s); s may carry a
///                                 trailing 'c' meaning s = <v> * critical
///                                 bias scale (e.g. "bias:2c")
///   "share:<x>"                   plurality_share(n, k, x)
///   "zipf:<theta>"                zipf(n, k, theta)
///   "near-balanced:<eps>"         near_balanced(n, k, eps)
///   "lemma10:<s>"                 lemma10(n, k, s)
///   "theorem3:<s>"                theorem3(n, s) (forces k = 3)
/// Throws CheckError on malformed specs.
Configuration parse_workload(const std::string& spec, count_t n, state_t k);

/// The spec forms accepted by parse_workload — the same name→factory
/// discipline as dynamics_names() / adversary_names() / topology_names(),
/// so --list output and scenario validation enumerate one grammar.
std::vector<std::string> workload_names();

}  // namespace plurality::workloads
