// Deterministic mean-field iteration of a dynamics: replaces the random
// round by its expectation, x <- n * law(x) (and the per-class analogue for
// stateful protocols). This is the infinite-n limit of the process; the
// paper's drift lemmas (Lemmas 2-4) are statements about exactly this map
// plus concentration. Used to predict phase boundaries, locate fixed
// points, and cross-validate kernels against simulation averages.
#pragma once

#include <vector>

#include "core/dynamics.hpp"
#include "support/types.hpp"

namespace plurality {

struct MeanFieldResult {
  /// trajectory[t] = real-valued counts after t rounds (index 0 = start).
  std::vector<std::vector<double>> trajectory;
  /// True if the iteration reached a fixed point within tolerance.
  bool converged = false;
  /// Rounds actually executed.
  round_t rounds = 0;
};

struct MeanFieldOptions {
  round_t max_rounds = 10'000;
  /// Fixed-point tolerance: max_j |x'_j - x_j| <= tol stops the iteration.
  double tolerance = 1e-9;
  /// Keep every step (true) or just first/last (false).
  bool record_trajectory = true;
};

/// Iterates the expected-update map from `start` (real-valued counts in the
/// dynamics' state space).
MeanFieldResult mean_field_trajectory(const Dynamics& dynamics,
                                      std::vector<double> start,
                                      const MeanFieldOptions& options = {});

/// One application of the expected-update map.
std::vector<double> mean_field_step(const Dynamics& dynamics,
                                    std::span<const double> counts);

}  // namespace plurality
