#include "core/markov_exact.hpp"

#include <cmath>

#include "support/check.hpp"

namespace plurality {

namespace {

/// log pmf of a trinomial: P(counts | n, probs). Zero-probability categories
/// must have zero counts or the pmf is 0 (returns -inf).
double trinomial_log_pmf(count_t n, const std::array<double, 3>& probs,
                         const std::array<count_t, 3>& counts) {
  double log_p = std::lgamma(static_cast<double>(n) + 1.0);
  for (int j = 0; j < 3; ++j) {
    const double cd = static_cast<double>(counts[j]);
    log_p -= std::lgamma(cd + 1.0);
    if (counts[j] > 0) {
      if (probs[j] <= 0.0) return -INFINITY;
      log_p += cd * std::log(probs[j]);
    }
  }
  return log_p;
}

double binomial_log_pmf_local(count_t n, double p, count_t x) {
  const double nd = static_cast<double>(n);
  const double xd = static_cast<double>(x);
  if (p <= 0.0) return x == 0 ? 0.0 : -INFINITY;
  if (p >= 1.0) return x == n ? 0.0 : -INFINITY;
  return std::lgamma(nd + 1.0) - std::lgamma(xd + 1.0) - std::lgamma(nd - xd + 1.0) +
         xd * std::log(p) + (nd - xd) * std::log1p(-p);
}

}  // namespace

void solve_dense(std::vector<double>& a, std::vector<double>& b, std::size_t m) {
  std::vector<std::vector<double>> rhs = {std::move(b)};
  solve_dense_multi(a, rhs, m);
  b = std::move(rhs[0]);
}

void solve_dense_multi(std::vector<double>& a, std::vector<std::vector<double>>& rhs,
                       std::size_t m) {
  PLURALITY_REQUIRE(a.size() == m * m, "solve_dense: matrix size mismatch");
  for (const auto& b : rhs) {
    PLURALITY_REQUIRE(b.size() == m, "solve_dense: rhs size mismatch");
  }
  // Forward elimination with partial pivoting.
  for (std::size_t col = 0; col < m; ++col) {
    std::size_t pivot = col;
    double best = std::fabs(a[col * m + col]);
    for (std::size_t row = col + 1; row < m; ++row) {
      const double mag = std::fabs(a[row * m + col]);
      if (mag > best) {
        best = mag;
        pivot = row;
      }
    }
    PLURALITY_CHECK_MSG(best > 0.0, "solve_dense: singular matrix at column " << col);
    if (pivot != col) {
      for (std::size_t j = col; j < m; ++j) std::swap(a[col * m + j], a[pivot * m + j]);
      for (auto& b : rhs) std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a[col * m + col];
    for (std::size_t row = col + 1; row < m; ++row) {
      const double factor = a[row * m + col] * inv;
      if (factor == 0.0) continue;
      a[row * m + col] = 0.0;
      for (std::size_t j = col + 1; j < m; ++j) {
        a[row * m + j] -= factor * a[col * m + j];
      }
      for (auto& b : rhs) b[row] -= factor * b[col];
    }
  }
  // Back substitution.
  for (auto& b : rhs) {
    for (std::size_t row = m; row-- > 0;) {
      double acc = b[row];
      for (std::size_t j = row + 1; j < m; ++j) acc -= a[row * m + j] * b[j];
      b[row] = acc / a[row * m + row];
    }
  }
}

AbsorptionK2 analyze_k2(const Dynamics& dynamics, count_t n) {
  PLURALITY_REQUIRE(!dynamics.law_depends_on_own_state(),
                    "analyze_k2: requires an i.i.d. adoption law");
  PLURALITY_REQUIRE(n >= 2, "analyze_k2: n >= 2");
  PLURALITY_REQUIRE(n <= 2000, "analyze_k2: n too large for a dense solve");

  // Adoption probability of color 0 from every configuration (i, n-i).
  std::vector<double> p0(n + 1);
  std::vector<double> law(2);
  for (count_t i = 0; i <= n; ++i) {
    const double counts[2] = {static_cast<double>(i), static_cast<double>(n - i)};
    dynamics.adoption_law(std::span<const double>(counts, 2), law);
    p0[i] = law[0];
  }
  PLURALITY_CHECK_MSG(p0[0] <= 1e-12 && p0[n] >= 1.0 - 1e-12,
                      "analyze_k2: monochromatic states are not absorbing for '"
                          << dynamics.name() << "'");

  // Transient states 1..n-1. (I - Q) u = r where r is the one-step jump
  // probability into the all-color-0 absorbing state; (I - Q) t = 1.
  const std::size_t m = n - 1;
  std::vector<double> a(m * m, 0.0);
  std::vector<double> r_win(m, 0.0);
  std::vector<double> ones(m, 1.0);
  for (std::size_t row = 0; row < m; ++row) {
    const count_t i = row + 1;
    for (std::size_t col = 0; col < m; ++col) {
      const count_t j = col + 1;
      const double q = std::exp(binomial_log_pmf_local(n, p0[i], j));
      a[row * m + col] = (row == col ? 1.0 : 0.0) - q;
    }
    r_win[row] = std::exp(binomial_log_pmf_local(n, p0[i], n));
  }
  std::vector<std::vector<double>> rhs = {std::move(r_win), std::move(ones)};
  solve_dense_multi(a, rhs, m);

  AbsorptionK2 result;
  result.n = n;
  result.win_color0.assign(n + 1, 0.0);
  result.expected_rounds.assign(n + 1, 0.0);
  result.win_color0[n] = 1.0;
  for (std::size_t row = 0; row < m; ++row) {
    result.win_color0[row + 1] = rhs[0][row];
    result.expected_rounds[row + 1] = rhs[1][row];
  }
  return result;
}

TransientK2 evolve_k2(const Dynamics& dynamics, count_t n, count_t start_c0,
                      round_t rounds) {
  PLURALITY_REQUIRE(!dynamics.law_depends_on_own_state(),
                    "evolve_k2: requires an i.i.d. adoption law");
  PLURALITY_REQUIRE(n >= 2, "evolve_k2: n >= 2");
  PLURALITY_REQUIRE(n <= 2000, "evolve_k2: n too large for the dense pmf table");
  PLURALITY_REQUIRE(start_c0 <= n, "evolve_k2: start_c0 > n");

  // Transition pmf table: row i = Binomial(n, p0(i)) over next c0.
  std::vector<double> law(2);
  std::vector<double> pmf((n + 1) * (n + 1), 0.0);
  for (count_t i = 0; i <= n; ++i) {
    const double counts[2] = {static_cast<double>(i), static_cast<double>(n - i)};
    dynamics.adoption_law(std::span<const double>(counts, 2), law);
    for (count_t j = 0; j <= n; ++j) {
      pmf[i * (n + 1) + j] = std::exp(binomial_log_pmf_local(n, law[0], j));
    }
  }

  TransientK2 result;
  result.n = n;
  std::vector<double> dist(n + 1, 0.0);
  dist[start_c0] = 1.0;
  result.distribution.push_back(dist);
  result.absorbed_by_round.push_back(dist[0] + dist[n]);
  result.win0_by_round.push_back(dist[n]);

  std::vector<double> next(n + 1, 0.0);
  for (round_t t = 1; t <= rounds; ++t) {
    std::fill(next.begin(), next.end(), 0.0);
    for (count_t i = 0; i <= n; ++i) {
      const double mass = dist[i];
      if (mass == 0.0) continue;
      const double* row = &pmf[i * (n + 1)];
      for (count_t j = 0; j <= n; ++j) next[j] += mass * row[j];
    }
    dist.swap(next);
    result.distribution.push_back(dist);
    result.absorbed_by_round.push_back(dist[0] + dist[n]);
    result.win0_by_round.push_back(dist[n]);
  }
  return result;
}

std::size_t AbsorptionK3::index(count_t c0, count_t c1) const {
  PLURALITY_REQUIRE(c0 + c1 <= n, "AbsorptionK3::index: invalid composition");
  // Row offset for c0: sum_{a<c0} (n - a + 1) = c0 (n + 1) - c0 (c0 - 1)/2.
  const std::size_t offset =
      static_cast<std::size_t>(c0) * (n + 1) - static_cast<std::size_t>(c0) * (c0 - 1) / 2;
  return offset + c1;
}

std::size_t AbsorptionK3::num_states() const {
  return static_cast<std::size_t>(n + 1) * (n + 2) / 2;
}

AbsorptionK3 analyze_k3(const Dynamics& dynamics, count_t n) {
  PLURALITY_REQUIRE(!dynamics.law_depends_on_own_state(),
                    "analyze_k3: requires an i.i.d. adoption law");
  PLURALITY_REQUIRE(n >= 3, "analyze_k3: n >= 3");
  PLURALITY_REQUIRE(n <= 80, "analyze_k3: state space too large for a dense solve");

  AbsorptionK3 result;
  result.n = n;
  const std::size_t num_states = result.num_states();

  // Enumerate states and split transient vs absorbing.
  struct State {
    count_t c0, c1;
  };
  std::vector<State> states;
  states.reserve(num_states);
  for (count_t c0 = 0; c0 <= n; ++c0) {
    for (count_t c1 = 0; c1 + c0 <= n; ++c1) states.push_back({c0, c1});
  }
  const std::size_t abs0 = result.index(n, 0);
  const std::size_t abs1 = result.index(0, n);
  const std::size_t abs2 = result.index(0, 0);

  std::vector<std::size_t> transient;  // dense row id -> state id
  std::vector<std::ptrdiff_t> row_of(num_states, -1);
  for (std::size_t s = 0; s < num_states; ++s) {
    if (s == abs0 || s == abs1 || s == abs2) continue;
    row_of[s] = static_cast<std::ptrdiff_t>(transient.size());
    transient.push_back(s);
  }
  const std::size_t m = transient.size();

  // Per-state adoption law.
  std::vector<std::array<double, 3>> laws(num_states);
  std::vector<double> law(3);
  for (std::size_t s = 0; s < num_states; ++s) {
    const double counts[3] = {static_cast<double>(states[s].c0),
                              static_cast<double>(states[s].c1),
                              static_cast<double>(n - states[s].c0 - states[s].c1)};
    dynamics.adoption_law(std::span<const double>(counts, 3), law);
    laws[s] = {law[0], law[1], law[2]};
  }

  // (I - Q) with four right-hand sides: one-step jump probabilities into the
  // three absorbing corners, plus all-ones for expected time.
  std::vector<double> a(m * m, 0.0);
  std::vector<std::vector<double>> rhs(4, std::vector<double>(m, 0.0));
  for (std::size_t row = 0; row < m; ++row) {
    const std::size_t s = transient[row];
    const auto& p = laws[s];
    for (std::size_t t = 0; t < num_states; ++t) {
      const std::array<count_t, 3> next = {states[t].c0, states[t].c1,
                                           n - states[t].c0 - states[t].c1};
      const double prob = std::exp(trinomial_log_pmf(n, p, next));
      if (prob == 0.0) continue;
      if (t == abs0) rhs[0][row] = prob;
      else if (t == abs1) rhs[1][row] = prob;
      else if (t == abs2) rhs[2][row] = prob;
      else a[row * m + static_cast<std::size_t>(row_of[t])] -= prob;
    }
    a[row * m + row] += 1.0;
    rhs[3][row] = 1.0;
  }
  solve_dense_multi(a, rhs, m);

  result.win.assign(num_states, {0.0, 0.0, 0.0});
  result.expected_rounds.assign(num_states, 0.0);
  result.win[abs0] = {1.0, 0.0, 0.0};
  result.win[abs1] = {0.0, 1.0, 0.0};
  result.win[abs2] = {0.0, 0.0, 1.0};
  for (std::size_t row = 0; row < m; ++row) {
    const std::size_t s = transient[row];
    result.win[s] = {rhs[0][row], rhs[1][row], rhs[2][row]};
    result.expected_rounds[s] = rhs[3][row];
  }
  return result;
}

}  // namespace plurality
