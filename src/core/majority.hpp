// The 3-majority dynamics — the paper's protagonist.
//
//   "At every round, every node samples three nodes (including itself and
//    with repetitions) independently and uniformly at random and recolors
//    itself according to the majority of the colors it sees. If it sees
//    three different colors, it chooses the first one."
//
// The adoption law is Lemma 1's closed form:
//
//   mu_j(c) / n = (c_j / n^3) * (n^2 + n*c_j - sum_h c_h^2)
//
// The all-distinct tie rule does not affect the law (the paper notes that
// picking the second, third, or a uniformly random sample is equivalent);
// apply_rule implements "first" and the law is tested against a brute-force
// enumeration of all ordered triples.
#pragma once

#include "core/dynamics.hpp"

namespace plurality {

class ThreeMajority final : public Dynamics {
 public:
  [[nodiscard]] std::string name() const override { return "3-majority"; }
  [[nodiscard]] unsigned sample_arity() const override { return 3; }

  void adoption_law(std::span<const double> counts, std::span<double> out) const override;

  [[nodiscard]] state_t apply_rule(state_t own, std::span<const state_t> sampled,
                                   state_t states, rng::Xoshiro256pp& gen) const override;

  /// Lemma 2's guaranteed expected-bias growth: given the sorted
  /// configuration, a lower bound on (mu_1 - mu_j) / s. Used by tests and
  /// the phase-structure experiment (E8).
  static double expected_bias_growth_bound(double c1, double n);
};

}  // namespace plurality
