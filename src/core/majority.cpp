#include "core/majority.hpp"

#include "support/check.hpp"

namespace plurality {

void ThreeMajority::adoption_law(std::span<const double> counts, std::span<double> out) const {
  PLURALITY_REQUIRE(counts.size() == out.size(), "3-majority law: size mismatch");
  double n = 0.0;
  double sum_sq = 0.0;
  for (double c : counts) {
    PLURALITY_REQUIRE(c >= 0.0, "3-majority law: negative count");
    n += c;
    sum_sq += c * c;
  }
  PLURALITY_REQUIRE(n > 0.0, "3-majority law: empty configuration");
  const double n2 = n * n;
  const double n3 = n2 * n;
  // Lemma 1: p_j = (c_j / n^3) (n^2 + n c_j - sum_h c_h^2).
  for (std::size_t j = 0; j < counts.size(); ++j) {
    out[j] = counts[j] / n3 * (n2 + n * counts[j] - sum_sq);
  }
}

state_t ThreeMajority::apply_rule(state_t own, std::span<const state_t> sampled,
                                  state_t states, rng::Xoshiro256pp& gen) const {
  (void)own;
  (void)states;
  (void)gen;
  PLURALITY_CHECK(sampled.size() == 3);
  const state_t a = sampled[0], b = sampled[1], c = sampled[2];
  if (a == b || a == c) return a;
  if (b == c) return b;
  return a;  // three distinct colors: take the first (paper's rule)
}

double ThreeMajority::expected_bias_growth_bound(double c1, double n) {
  PLURALITY_REQUIRE(n > 0.0 && c1 >= 0.0 && c1 <= n,
                    "expected_bias_growth_bound: need 0 <= c1 <= n");
  // Lemma 2: mu_1 - mu_j >= s (1 + (c1/n)(1 - c1/n)).
  const double share = c1 / n;
  return 1.0 + share * (1.0 - share);
}

}  // namespace plurality
