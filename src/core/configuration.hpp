// A k-state configuration: how many of the n nodes currently hold each
// state. This is the entire Markov state of every dynamics in the paper —
// on the clique, node identities are exchangeable, so the count vector is a
// lossless description of the process.
//
// States 0..k-1 are "colors" for plain color dynamics; protocols with
// auxiliary memory (the undecided-state dynamics) append their extra states
// after the colors and tell the runner how many leading states are colors.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "support/types.hpp"

namespace plurality {

class Configuration {
 public:
  Configuration() = default;

  /// Takes ownership of a count vector; must be non-empty.
  explicit Configuration(std::vector<count_t> counts);

  /// All-zero configuration over `k` states (build up via set()).
  static Configuration zeros(state_t k);

  /// Number of states (colors + any auxiliary states).
  [[nodiscard]] state_t k() const { return static_cast<state_t>(counts_.size()); }

  /// Total number of nodes (cached sum of counts).
  [[nodiscard]] count_t n() const { return n_; }

  [[nodiscard]] count_t at(state_t j) const;
  [[nodiscard]] count_t operator[](state_t j) const { return at(j); }

  /// Replaces the count of state j, keeping the cached total consistent.
  void set(state_t j, count_t value);

  /// Moves `amount` nodes from state `from` to state `to`; `amount` is
  /// clamped to the available count. Returns the amount actually moved.
  count_t move_mass(state_t from, state_t to, count_t amount);

  /// Replaces the whole count vector in place (recomputing the cached
  /// total). Allocation-free when the state count does not grow — this is
  /// how the steppers publish a round's result without rebuilding the
  /// Configuration.
  void assign_counts(std::span<const count_t> counts);

  [[nodiscard]] std::span<const count_t> counts() const { return counts_; }

  /// Counts as doubles (the common input format of adoption laws).
  [[nodiscard]] std::vector<double> counts_real() const;

  /// Allocation-free variant: fills `out` (out.size() == k()) with the
  /// counts as doubles.
  void counts_real_into(std::span<double> out) const;

  /// Fractions c_j / n.
  [[nodiscard]] std::vector<double> shares() const;

  // --- Analysis over the first `num_colors` states (the color prefix). ---
  // All of these take the number of leading color states; passing k() (the
  // default via the overloads below) treats every state as a color.

  /// Index of the largest color (smallest index wins ties).
  [[nodiscard]] state_t plurality(state_t num_colors) const;
  [[nodiscard]] state_t plurality_all() const { return plurality(k()); }

  [[nodiscard]] count_t plurality_count(state_t num_colors) const;

  /// Second-largest color count (as a value; equals the largest when tied).
  [[nodiscard]] count_t runner_up_count(state_t num_colors) const;

  /// The paper's bias s(c) = c_(1) - c_(2) (largest minus second largest).
  [[nodiscard]] count_t bias(state_t num_colors) const;
  [[nodiscard]] count_t bias_all() const { return bias(k()); }

  /// Nodes not holding the plurality color (the mass Lemma 4 tracks).
  [[nodiscard]] count_t minority_mass(state_t num_colors) const;

  /// True if every node holds one single state.
  [[nodiscard]] bool monochromatic() const;

  /// True if every node holds the same *color* (a state below num_colors).
  [[nodiscard]] bool color_consensus(state_t num_colors) const;

  /// Monochromatic distance of [4]: sum_j (c_j / c_max)^2 over colors.
  [[nodiscard]] double monochromatic_distance(state_t num_colors) const;

  /// Copy with color counts sorted descending (analysis convenience).
  [[nodiscard]] Configuration sorted_desc() const;

  /// "(c0, c1, ...)" for logs and test failure messages.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Configuration& a, const Configuration& b) {
    return a.counts_ == b.counts_;
  }

 private:
  std::vector<count_t> counts_;
  count_t n_ = 0;
};

}  // namespace plurality
