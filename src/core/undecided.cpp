#include "core/undecided.hpp"

#include <vector>

#include "support/check.hpp"

namespace plurality {

void UndecidedState::adoption_law_given(state_t own, std::span<const double> counts,
                                        std::span<double> out) const {
  PLURALITY_REQUIRE(counts.size() == out.size(), "undecided law: size mismatch");
  PLURALITY_REQUIRE(counts.size() >= 2, "undecided law: need >= 1 color + undecided");
  PLURALITY_REQUIRE(own < counts.size(), "undecided law: own state out of range");
  const auto undecided = static_cast<state_t>(counts.size() - 1);
  double n = 0.0;
  for (double c : counts) {
    PLURALITY_REQUIRE(c >= 0.0, "undecided law: negative count");
    n += c;
  }
  PLURALITY_REQUIRE(n > 0.0, "undecided law: empty configuration");
  const double q = counts[undecided];

  for (double& p : out) p = 0.0;
  if (own == undecided) {
    // Adopt whatever color is sampled; stay undecided on an undecided pull.
    for (state_t j = 0; j < undecided; ++j) out[j] = counts[j] / n;
    out[undecided] = q / n;
  } else {
    // Keep own color on seeing own color or an undecided node; otherwise
    // become undecided.
    out[own] = (counts[own] + q) / n;
    out[undecided] = (n - counts[own] - q) / n;
  }
}

state_t UndecidedState::adoption_law_given_sparse(state_t own,
                                                  std::span<const double> counts,
                                                  double total,
                                                  std::span<state_t> states_out,
                                                  std::span<double> probs_out) const {
  PLURALITY_REQUIRE(counts.size() >= 2, "undecided law: need >= 1 color + undecided");
  PLURALITY_REQUIRE(own < counts.size(), "undecided law: own state out of range");
  PLURALITY_REQUIRE(total > 0.0, "undecided law: empty configuration");
  const auto undecided = static_cast<state_t>(counts.size() - 1);
  const double n = total;
  const double q = counts[undecided];

  // The probability expressions below are copied verbatim from
  // adoption_law_given so the two laws agree bitwise — the determinism
  // suite steps both paths against each other.
  if (own == undecided) {
    state_t nnz = 0;
    for (state_t j = 0; j < undecided; ++j) {
      if (counts[j] > 0.0) {
        states_out[nnz] = j;
        probs_out[nnz] = counts[j] / n;
        ++nnz;
      }
    }
    states_out[nnz] = undecided;
    probs_out[nnz] = q / n;
    return nnz + 1;
  }
  states_out[0] = own;
  probs_out[0] = (counts[own] + q) / n;
  states_out[1] = undecided;
  probs_out[1] = (n - counts[own] - q) / n;
  return 2;
}

state_t UndecidedState::apply_rule(state_t own, std::span<const state_t> sampled,
                                   state_t states, rng::Xoshiro256pp& gen) const {
  (void)gen;
  PLURALITY_CHECK(sampled.size() == 1);
  PLURALITY_CHECK(states >= 2);
  const state_t undecided = states - 1;
  const state_t seen = sampled[0];
  if (own == undecided) return seen;          // adopt sampled color (or stay)
  if (seen == own || seen == undecided) return own;  // confirmation / no info
  return undecided;                           // conflicting color: back off
}

Configuration UndecidedState::extend_with_undecided(const Configuration& colors) {
  std::vector<count_t> extended(colors.counts().begin(), colors.counts().end());
  extended.push_back(0);
  return Configuration(std::move(extended));
}

}  // namespace plurality
