// The full space of 3-input dynamics (Definitions 1-4) and the property
// checkers behind Theorem 3.
//
// A 3-input dynamics is a deterministic rule f : [k]^3 -> [k] with
// f(x1,x2,x3) in {x1,x2,x3} (Definition 1). Theorem 3 shows a protocol can
// only be a plurality-consensus solver if f has:
//   * the clear-majority property (Definition 2): on any triple with a
//     repeated color, f returns that color;
//   * the uniform property (Definition 3): for any three distinct colors
//     (r,g,b), each color wins on exactly 2 of the 6 orderings.
// The protocols satisfying both form the 3-majority class M3 (Definition 4).
//
// ThreeInputDynamics wraps any such rule as a Dynamics whose exact law is
// computed by brute-force enumeration of the k^3 ordered triples — slow but
// independent of any closed form, which is exactly what makes it useful as
// a cross-check and as the vehicle for the negative results (E4).
#pragma once

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "core/dynamics.hpp"

namespace plurality {

/// The deterministic 3-input rule type. Must return one of its arguments;
/// anonymity requires it to be label-equivariant, which all the built-in
/// rules are (they use only equality/order comparisons).
using Rule3 = std::function<state_t(state_t, state_t, state_t)>;

class ThreeInputDynamics final : public Dynamics {
 public:
  ThreeInputDynamics(std::string name, Rule3 rule);

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] unsigned sample_arity() const override { return 3; }

  /// O(k^3) brute-force law: sums ordered-triple probabilities onto f's
  /// outputs. Guarded at k <= 256 (16.7M triple evaluations).
  void adoption_law(std::span<const double> counts, std::span<double> out) const override;
  [[nodiscard]] bool has_exact_law(state_t states) const override { return states <= 256; }

  [[nodiscard]] state_t apply_rule(state_t own, std::span<const state_t> sampled,
                                   state_t states, rng::Xoshiro256pp& gen) const override;

  [[nodiscard]] const Rule3& rule() const { return rule_; }

 private:
  std::string name_;
  Rule3 rule_;
};

// --- Property checkers (Definitions 2 and 3), over colors [0, k). ---

/// Definition 2: f returns the repeated color on every clear-majority triple.
bool has_clear_majority_property(const Rule3& rule, state_t k);

/// The counters (delta_r, delta_g, delta_b) of Definition 3 for one
/// distinct triple: how many of the 6 orderings each color wins.
std::array<int, 3> rule_deltas(const Rule3& rule, state_t r, state_t g, state_t b);

/// Definition 3: every distinct triple has deltas (2,2,2).
bool has_uniform_property(const Rule3& rule, state_t k);

/// Definition 4: membership in the 3-majority class M3.
bool is_three_majority_class(const Rule3& rule, state_t k);

/// Validates the Definition-1 constraint f(x) in {x1,x2,x3} on all triples.
bool returns_an_input(const Rule3& rule, state_t k);

// --- The named rules used by the experiments. ---

/// Canonical 3-majority: clear majority, else the first sample. In M3.
Rule3 rule_majority_tie_first();

/// Clear majority, else the LAST sample. Also in M3 (equivalent protocol).
Rule3 rule_majority_tie_last();

/// f = x1. Uniform but no clear-majority: the voter in disguise — the
/// paper's example that consensus != plurality consensus.
Rule3 rule_first_sample();

/// f = min(x1,x2,x3). Neither property; drifts to the smallest color label.
Rule3 rule_min();

/// f = median. Clear-majority but non-uniform (deltas (0,6,0)): the median
/// dynamics of Doerr et al., Theorem 3's motivating non-solver.
Rule3 rule_median();

/// Clear majority, else min. Clear-majority but non-uniform (deltas (6,0,0)).
Rule3 rule_majority_tie_lowest();

/// Clear majority, else (x1 < x2 ? x1 : x3). Clear-majority, non-uniform
/// with deltas {3,2,1} — Lemma 8's "hardest case" delta pattern (relabeled).
Rule3 rule_majority_tie_conditional();

/// Convenience factory for all named rules with their display names.
struct NamedRule {
  const char* label;
  Rule3 rule;
};
std::vector<NamedRule> all_named_rules();

}  // namespace plurality
