// Multi-trial experiment driver: R independent runs of a dynamics,
// OpenMP-parallel over trials, each trial on its own hash-derived RNG
// stream so results are identical no matter how many threads execute them.
#pragma once

#include <functional>
#include <vector>

#include "core/runner.hpp"
#include "rng/stream.hpp"
#include "stats/summary.hpp"

namespace plurality {

/// Builds the start configuration for one trial (may itself be random,
/// e.g. sampled Zipf workloads). Must be thread-safe / pure.
using ConfigFactory = std::function<Configuration(std::uint64_t trial, rng::Xoshiro256pp&)>;

struct TrialSummary {
  std::uint64_t trials = 0;
  std::uint64_t consensus_count = 0;    // reached some color consensus
  std::uint64_t plurality_wins = 0;     // ... on the initial plurality color
  std::uint64_t round_limit_hits = 0;
  std::uint64_t predicate_stops = 0;
  /// Rounds over trials that stopped before the round limit (consensus or
  /// predicate), i.e. the quantity the theorems bound.
  stats::OnlineStats rounds;
  /// Raw per-trial round counts, same filter as `rounds` (for quantiles).
  std::vector<double> round_samples;

  [[nodiscard]] double win_rate() const;
  [[nodiscard]] double consensus_rate() const;
  [[nodiscard]] stats::ProportionCi win_ci() const;
};

/// The one option set every trial driver consumes — the former
/// TrialOptions/GraphTrialOptions drift (duplicated trials/seed/parallel,
/// max_rounds living both in RunOptions and flat in GraphTrialOptions,
/// shuffle_layout/mode with no count-side story) folded into a single
/// struct. The scenario layer fills it from a ScenarioSpec; the legacy
/// option structs below stay as thin compatibility wrappers for one
/// release and convert via to_common()/run_trials' wrapper overloads.
///
/// Fields the other backend ignores are documented as such rather than
/// split out: the point is that ONE struct names the whole grid axis.
struct CommonTrialOptions {
  std::uint64_t trials = 100;
  std::uint64_t seed = 1;
  bool parallel = true;
  round_t max_rounds = 1'000'000;
  /// Stepping pipeline (see core/engine_mode.hpp). Count backend: Strict =
  /// xoshiro, Batched = PhiloxStream. Graph backend: Strict = fused
  /// xoshiro kernels, Batched = counter-based stage-split SIMD pipeline.
  EngineMode mode = EngineMode::Strict;
  /// Applied after every protocol round (count-level on the count backend,
  /// node-level via corrupt_nodes on the graph backend).
  const Adversary* adversary = nullptr;
  /// Graph backend only: shuffle the node layout per trial (node position
  /// matters on sparse graphs). The count backend is exchangeable, so
  /// there is nothing to shuffle.
  bool shuffle_layout = true;
  /// Count path only: count-based exact-law stepping vs the literal
  /// agent-level clique simulation.
  Backend backend = Backend::CountBased;
  /// Count path only: optional extra stop condition, checked after each
  /// round. (Graph trials stop on consensus/absorption/round limit.)
  std::function<bool(const Configuration&, round_t)> stop_predicate;
};

struct TrialOptions {
  std::uint64_t trials = 100;
  std::uint64_t seed = 1;
  bool parallel = true;
  RunOptions run;  // per-run options (trajectories are force-disabled)

  /// The CommonTrialOptions this legacy struct denotes.
  [[nodiscard]] CommonTrialOptions to_common() const;
};

/// Per-trial outcome flags with the shared reduction into a TrialSummary.
/// Factored out of run_trials so every trial driver (the clique driver
/// below, graph::run_graph_trials) classifies stop reasons and filters
/// round samples identically. record() writes disjoint slots, so parallel
/// trial bodies may call it concurrently without synchronization.
class TrialOutcomes {
 public:
  explicit TrialOutcomes(std::uint64_t trials);

  /// Records trial `trial`'s stop. `rounds` is only consumed for stops the
  /// theorems bound (consensus / predicate).
  void record(std::uint64_t trial, StopReason reason, bool plurality_won,
              round_t rounds);

  /// Reduces all recorded trials into a summary (sequential; call once).
  [[nodiscard]] TrialSummary summarize() const;

 private:
  std::uint64_t trials_;
  std::vector<std::uint8_t> won_, consensus_, limited_, predicate_;
  std::vector<double> round_samples_;
};

/// Runs `options.trials` independent runs from factory-generated starts —
/// the count-path trial driver (clique model; for sparse topologies see
/// graph::run_graph_trials, which consumes the same CommonTrialOptions).
TrialSummary run_trials(const Dynamics& dynamics, const ConfigFactory& factory,
                        const CommonTrialOptions& options);

/// Convenience overload: every trial starts from the same configuration.
TrialSummary run_trials(const Dynamics& dynamics, const Configuration& start,
                        const CommonTrialOptions& options);

/// Compatibility wrappers over the CommonTrialOptions driver (one release;
/// bitwise-identical streams and summaries).
TrialSummary run_trials(const Dynamics& dynamics, const ConfigFactory& factory,
                        const TrialOptions& options);
TrialSummary run_trials(const Dynamics& dynamics, const Configuration& start,
                        const TrialOptions& options);

}  // namespace plurality
