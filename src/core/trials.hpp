// Multi-trial experiment driver: R independent runs of a dynamics,
// OpenMP-parallel over trials, each trial on its own hash-derived RNG
// stream so results are identical no matter how many threads execute them.
#pragma once

#include <functional>
#include <vector>

#include "core/runner.hpp"
#include "rng/stream.hpp"
#include "stats/quantile_sketch.hpp"
#include "stats/summary.hpp"

namespace plurality {

/// Builds the start configuration for one trial (may itself be random,
/// e.g. sampled Zipf workloads). Must be thread-safe / pure.
using ConfigFactory = std::function<Configuration(std::uint64_t trial, rng::Xoshiro256pp&)>;

struct TrialSummary {
  std::uint64_t trials = 0;
  std::uint64_t consensus_count = 0;    // reached some color consensus
  std::uint64_t plurality_wins = 0;     // ... on the initial plurality color
  std::uint64_t round_limit_hits = 0;
  std::uint64_t predicate_stops = 0;
  /// Rounds over trials that stopped before the round limit (consensus or
  /// predicate), i.e. the quantity the theorems bound.
  stats::OnlineStats rounds;
  /// The primary quantile path: a bounded-memory sketch over the same
  /// filtered per-trial round counts (exact below its capacity, reservoir
  /// estimates above — see stats/quantile_sketch.hpp).
  stats::QuantileSketch round_quantiles;
  /// Raw per-trial round counts, same filter as `rounds`, kept verbatim
  /// only while their number stays within the driver's
  /// `exact_round_samples` cap — CLEARED above it (the sketch then holds a
  /// capacity-sized uniform sample; docs/performance.md, "round-sample
  /// memory cap"). Consumers wanting quantiles should call rounds_p().
  std::vector<double> round_samples;

  [[nodiscard]] double win_rate() const;
  [[nodiscard]] double consensus_rate() const;
  [[nodiscard]] stats::ProportionCi win_ci() const;
  /// q-th quantile of the stopped-trial round counts (requires
  /// rounds.count() > 0). Exact when the sample count is within the cap.
  [[nodiscard]] double rounds_p(double q) const { return round_quantiles.quantile(q); }
};

/// The one option set every trial driver consumes — core's run_trials and
/// graph::run_graph_trials both read it, and the scenario layer fills it
/// from a ScenarioSpec. Fields the other backend ignores are documented as
/// such rather than split out: the point is that ONE struct names the
/// whole grid axis.
struct CommonTrialOptions {
  std::uint64_t trials = 100;
  std::uint64_t seed = 1;
  bool parallel = true;
  round_t max_rounds = 1'000'000;
  /// Stepping pipeline (see core/engine_mode.hpp). Count backend: Strict =
  /// xoshiro, Batched = PhiloxStream. Graph backend: Strict = fused
  /// xoshiro kernels, Batched = counter-based stage-split SIMD pipeline.
  EngineMode mode = EngineMode::Strict;
  /// Applied after every protocol round (count-level on the count backend,
  /// node-level via corrupt_nodes on the graph backend).
  const Adversary* adversary = nullptr;
  /// Graph backend only: shuffle the node layout per trial (node position
  /// matters on sparse graphs). The count backend is exchangeable, so
  /// there is nothing to shuffle.
  bool shuffle_layout = true;
  /// Graph backend only: cache-behavior knobs forwarded as StepTuning
  /// (graph/graph_workspace.hpp). Performance-only — results never depend
  /// on them. 0 = derive the batched tile from the word budget; 16 = the
  /// measured strict/batched prefetch sweet spot (0 disables prefetch).
  std::uint32_t tile_nodes = 0;
  std::uint32_t prefetch_distance = 16;
  /// Count path only: count-based exact-law stepping vs the literal
  /// agent-level clique simulation.
  Backend backend = Backend::CountBased;
  /// Count path only: optional extra stop condition, checked after each
  /// round. (Graph trials stop on consensus/absorption/round limit.)
  std::function<bool(const Configuration&, round_t)> stop_predicate;
  /// Per-round probe pipeline (core/observer.hpp), threaded through every
  /// driver. Observers read materialized configurations only and draw no
  /// RNG, so observer-on and observer-off runs produce bitwise-identical
  /// trial streams (tests/core/test_observer.cpp pins the backend × engine
  /// × adversary grid). Distinct trials may observe concurrently — see
  /// RoundObserver's per-trial-slot contract.
  RoundObserver* observer = nullptr;
  /// TrialSummary keeps stopped-trial round counts verbatim up to this
  /// many samples (exact quantiles); past it, round_samples is cleared and
  /// quantiles come from the streaming sketch.
  std::size_t exact_round_samples = stats::QuantileSketch::kDefaultExactCapacity;
  /// Cooperative cancellation (support/cancellation.hpp), threaded into
  /// every trial's between-rounds check by BOTH drivers. When the token
  /// fires, in-flight trials stop at their next round boundary, remaining
  /// trials drain immediately, and the driver throws CancelledError after
  /// its parallel region joins — a cancelled run never returns a partial
  /// TrialSummary. nullptr = never cancelled.
  const CancellationToken* cancel = nullptr;
};

/// Per-trial outcome flags with the shared reduction into a TrialSummary.
/// Factored out of run_trials so every trial driver (the clique driver
/// below, graph::run_graph_trials) classifies stop reasons and filters
/// round samples identically. record() writes disjoint slots, so parallel
/// trial bodies may call it concurrently without synchronization.
class TrialOutcomes {
 public:
  explicit TrialOutcomes(std::uint64_t trials,
                         std::size_t exact_round_samples =
                             stats::QuantileSketch::kDefaultExactCapacity);

  /// Records trial `trial`'s stop. `rounds` is only consumed for stops the
  /// theorems bound (consensus / predicate).
  void record(std::uint64_t trial, StopReason reason, bool plurality_won,
              round_t rounds);

  /// Reduces all recorded trials into a summary (sequential; call once).
  [[nodiscard]] TrialSummary summarize() const;

 private:
  std::uint64_t trials_;
  std::size_t exact_round_samples_;
  std::vector<std::uint8_t> won_, consensus_, limited_, predicate_;
  std::vector<double> round_samples_;
};

/// Runs `options.trials` independent runs from factory-generated starts —
/// the count-path trial driver (clique model; for sparse topologies see
/// graph::run_graph_trials, which consumes the same CommonTrialOptions).
TrialSummary run_trials(const Dynamics& dynamics, const ConfigFactory& factory,
                        const CommonTrialOptions& options);

/// Convenience overload: every trial starts from the same configuration.
TrialSummary run_trials(const Dynamics& dynamics, const Configuration& start,
                        const CommonTrialOptions& options);

}  // namespace plurality
