// Preallocated scratch for the count-based stepping hot path.
//
// Every simulated round needs the real-valued counts, the adoption law, the
// next-counts accumulator, and the multinomial kernel's support/suffix
// arrays. Allocating them per round makes the stepper allocator-bound at
// paper scale (n up to 10^9, thousands of trials), so the workspace owns
// them all and is reused across rounds AND across trials — run_trials keeps
// one per OpenMP thread.
//
// The workspace is pure scratch: every buffer is fully (re)written by the
// step that uses it, so reuse never leaks state between rounds, trials, or
// dynamics, and results are bitwise independent of how workspaces are
// shared (the determinism suite pins this). After the first step at a given
// k, a step performs zero heap allocations (tests/alloc/test_allocation.cpp).
#pragma once

#include <vector>

#include "rng/multinomial.hpp"
#include "support/types.hpp"

namespace plurality {

struct StepWorkspace {
  /// Current counts as doubles (the adoption-law input format).
  std::vector<double> counts_real;
  /// Adoption law (shared, or per own-state class for stateful dynamics).
  std::vector<double> law;
  /// Next-round counts, accumulated across per-class multinomial draws.
  std::vector<count_t> next;
  /// Sparse-law output pairs (dynamics with has_sparse_law()).
  std::vector<state_t> sparse_states;
  std::vector<double> sparse_weights;
  /// Support + suffix scratch for the sparse multinomial kernel.
  rng::MultinomialWorkspace multinomial;

  /// Sizes the k-indexed buffers; no-op (and allocation-free) once the
  /// workspace has seen this k.
  void prepare(state_t k) {
    counts_real.resize(k);
    law.resize(k);
    next.resize(k);
    sparse_states.resize(k);
    sparse_weights.resize(k);
    // Pre-size the kernel scratch to its worst case (a full-support law)
    // so the first sparse round at a new high-water k cannot allocate
    // mid-trial either.
    if (multinomial.support.size() < k) multinomial.support.resize(k);
    if (multinomial.weights.size() < k) multinomial.weights.resize(k);
    if (multinomial.suffix.size() < k + 1) multinomial.suffix.resize(k + 1);
  }
};

}  // namespace plurality
