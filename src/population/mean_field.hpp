// Mean-field (fluid-limit) analysis of population protocols: the expected
// per-interaction drift, computed generically from any PairDynamics by
// enumerating ordered state pairs — no per-protocol closed form needed.
// Integrating the drift is the ODE method of [21]/[8], which the paper
// notes "does not work for the discrete-time parallel model" — here it
// serves as the deterministic skeleton of the sequential simulator and is
// cross-validated against it in tests.
#pragma once

#include <span>
#include <vector>

#include "population/pair_dynamics.hpp"
#include "support/types.hpp"

namespace plurality::population {

/// Expected change of the count vector in ONE interaction from real-valued
/// counts (sum n >= 2). O(k^2) pair enumeration.
std::vector<double> population_drift(const PairDynamics& protocol,
                                     std::span<const double> counts);

struct PopulationMeanFieldResult {
  /// trajectory[t] = counts after t * record_every interactions.
  std::vector<std::vector<double>> trajectory;
  bool converged = false;
  /// Interactions actually integrated.
  std::uint64_t steps = 0;
};

struct PopulationMeanFieldOptions {
  std::uint64_t max_steps = 100'000'000;
  /// Record (and check convergence) every this many interactions; defaults
  /// to ~n per record when 0 (one "parallel round").
  std::uint64_t record_every = 0;
  double tolerance = 1e-9;
};

/// Forward-Euler integration of the drift, one interaction per step (the
/// exact mean map of the discrete chain, not a continuum approximation).
PopulationMeanFieldResult population_mean_field(const PairDynamics& protocol,
                                                std::vector<double> start,
                                                const PopulationMeanFieldOptions& options = {});

}  // namespace plurality::population
