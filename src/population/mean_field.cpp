#include "population/mean_field.hpp"

#include <cmath>

#include "support/check.hpp"

namespace plurality::population {

std::vector<double> population_drift(const PairDynamics& protocol,
                                     std::span<const double> counts) {
  const std::size_t k = counts.size();
  PLURALITY_REQUIRE(k >= 1, "population_drift: empty state space");
  double n = 0.0;
  for (double c : counts) {
    PLURALITY_REQUIRE(c >= 0.0, "population_drift: negative count");
    n += c;
  }
  PLURALITY_REQUIRE(n >= 2.0, "population_drift: need at least two nodes");

  std::vector<double> drift(k, 0.0);
  const auto states = static_cast<state_t>(k);
  for (state_t a = 0; a < states; ++a) {
    if (counts[a] <= 0.0) continue;
    for (state_t b = 0; b < states; ++b) {
      // Ordered pair of distinct nodes: initiator state a, responder b.
      const double pair_weight =
          counts[a] / n * ((counts[b] - (a == b ? 1.0 : 0.0)) / (n - 1.0));
      if (pair_weight <= 0.0) continue;
      const auto [a_next, b_next] = protocol.interact(a, b, states);
      if (a_next != a) {
        drift[a] -= pair_weight;
        drift[a_next] += pair_weight;
      }
      if (b_next != b) {
        drift[b] -= pair_weight;
        drift[b_next] += pair_weight;
      }
    }
  }
  return drift;
}

PopulationMeanFieldResult population_mean_field(
    const PairDynamics& protocol, std::vector<double> start,
    const PopulationMeanFieldOptions& options) {
  double n = 0.0;
  for (double c : start) n += c;
  PLURALITY_REQUIRE(n >= 2.0, "population_mean_field: need at least two nodes");
  const std::uint64_t record_every =
      options.record_every != 0
          ? options.record_every
          : static_cast<std::uint64_t>(std::llround(n));

  PopulationMeanFieldResult result;
  result.trajectory.push_back(start);
  std::vector<double> current = std::move(start);

  for (std::uint64_t step = 1; step <= options.max_steps; ++step) {
    const std::vector<double> drift = population_drift(protocol, current);
    double max_drift = 0.0;
    for (std::size_t j = 0; j < current.size(); ++j) {
      current[j] += drift[j];
      if (current[j] < 0.0) current[j] = 0.0;  // Euler-step round-off guard
      max_drift = std::max(max_drift, std::fabs(drift[j]));
    }
    result.steps = step;
    if (step % record_every == 0) {
      result.trajectory.push_back(current);
      if (max_drift <= options.tolerance) {
        result.converged = true;
        break;
      }
    }
  }
  if (result.trajectory.back() != current) result.trajectory.push_back(current);
  return result;
}

}  // namespace plurality::population
