// Concrete population protocols from the paper's related work.
#pragma once

#include "population/pair_dynamics.hpp"

namespace plurality::population {

/// The undecided-state ("third state") protocol of Angluin, Aspnes &
/// Eisenstat [2], in its natural multivalued (k-color) generalization as
/// discussed in [21], [8], [3]: states are the k colors plus one trailing
/// undecided state; only the RESPONDER updates (one-way protocol):
///   * responder undecided, initiator colored    -> adopt initiator's color
///   * responder colored, initiator different color -> become undecided
///   * otherwise (same color / initiator undecided) -> unchanged.
///
/// For k = 2 this is the approximate-majority protocol: correct w.h.p.
/// from bias omega(sqrt(n log n)) within O(n log n) interactions. For
/// k >= 3 the paper notes it does NOT converge to the plurality even from
/// bias s = Theta(n) on some configurations — bench_population measures
/// exactly that.
class UndecidedPopulation final : public PairDynamics {
 public:
  [[nodiscard]] std::string name() const override { return "undecided(population)"; }
  [[nodiscard]] state_t num_states(state_t num_colors) const override {
    return num_colors + 1;
  }
  [[nodiscard]] state_t num_colors(state_t states) const override { return states - 1; }
  [[nodiscard]] std::pair<state_t, state_t> interact(state_t initiator, state_t responder,
                                                     state_t states) const override;
};

/// Sequential voter model: the responder adopts the initiator's color.
/// Each color count is a martingale, so the win probability from any start
/// is exactly c_j / n — the baseline showing why one-sample rules forget
/// the plurality (same phenomenon as the synchronous polling process).
class SequentialVoter final : public PairDynamics {
 public:
  [[nodiscard]] std::string name() const override { return "voter(population)"; }
  [[nodiscard]] std::pair<state_t, state_t> interact(state_t initiator, state_t responder,
                                                     state_t states) const override;
};

/// Two-way "annihilation-free" comparison protocol used as a sanity
/// baseline: on a conflict both nodes keep their colors (no dynamics at
/// all). Useful in tests to pin the simulator's bookkeeping.
class FrozenProtocol final : public PairDynamics {
 public:
  [[nodiscard]] std::string name() const override { return "frozen"; }
  [[nodiscard]] std::pair<state_t, state_t> interact(state_t initiator, state_t responder,
                                                     state_t states) const override;
};

}  // namespace plurality::population
