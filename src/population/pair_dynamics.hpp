// The population model (sequential pairwise interactions) — the OTHER
// distributed model the paper positions itself against (Section 1 and
// related work: Angluin-Aspnes-Eisenstat [2], Perron-Vasudevan-Vojnovic
// [21], Draief-Vojnovic [8]).
//
// Instead of synchronous rounds, one ordered pair of DISTINCT nodes
// (initiator, responder) is drawn uniformly at random per step and both may
// update their states via a deterministic transition function
//   delta : (initiator, responder) -> (initiator', responder').
// "Parallel time" is conventionally steps / n.
#pragma once

#include <string>
#include <utility>

#include "support/types.hpp"

namespace plurality::population {

/// A population protocol's pairwise transition function.
class PairDynamics {
 public:
  virtual ~PairDynamics() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Markov states used for a k-color instance (k, or k+1 with a blank /
  /// undecided auxiliary state).
  [[nodiscard]] virtual state_t num_states(state_t num_colors) const { return num_colors; }

  /// How many leading states are colors.
  [[nodiscard]] virtual state_t num_colors(state_t states) const { return states; }

  /// The transition: returns (initiator', responder'). `states` is the
  /// state-space size so protocols can locate auxiliary states (always
  /// trailing).
  [[nodiscard]] virtual std::pair<state_t, state_t> interact(state_t initiator,
                                                             state_t responder,
                                                             state_t states) const = 0;
};

}  // namespace plurality::population
