#include "population/protocols.hpp"

#include "support/check.hpp"

namespace plurality::population {

std::pair<state_t, state_t> UndecidedPopulation::interact(state_t initiator,
                                                          state_t responder,
                                                          state_t states) const {
  PLURALITY_CHECK(states >= 2);
  const state_t undecided = states - 1;
  if (responder == undecided) {
    // Blank responder copies a colored initiator (stays blank otherwise).
    return {initiator, initiator == undecided ? undecided : initiator};
  }
  if (initiator != undecided && initiator != responder) {
    // Conflicting colors: the responder backs off to undecided.
    return {initiator, undecided};
  }
  return {initiator, responder};
}

std::pair<state_t, state_t> SequentialVoter::interact(state_t initiator,
                                                      state_t responder,
                                                      state_t states) const {
  (void)states;
  (void)responder;
  return {initiator, initiator};
}

std::pair<state_t, state_t> FrozenProtocol::interact(state_t initiator,
                                                     state_t responder,
                                                     state_t states) const {
  (void)states;
  return {initiator, responder};
}

}  // namespace plurality::population
