#include "population/simulator.hpp"

#include "rng/distributions.hpp"
#include "rng/stream.hpp"
#include "support/check.hpp"

namespace plurality::population {

namespace {

/// Draws a state with probability weight[s] / total via inverse CDF scan.
/// k is small in every experiment here, so the linear scan beats alias
/// tables that would need rebuilding after every count update.
state_t draw_state(const Configuration& config, count_t total, count_t exclude_one_of,
                   bool exclude, rng::Xoshiro256pp& gen) {
  count_t pick = rng::uniform_below(gen, total);
  for (state_t s = 0; s < config.k(); ++s) {
    count_t weight = config.at(s);
    if (exclude && s == exclude_one_of) --weight;
    if (pick < weight) return s;
    pick -= weight;
  }
  PLURALITY_CHECK_MSG(false, "draw_state: weights did not cover the range");
  return 0;
}

}  // namespace

bool population_step(const PairDynamics& protocol, Configuration& config,
                     rng::Xoshiro256pp& gen) {
  const count_t n = config.n();
  PLURALITY_REQUIRE(n >= 2, "population_step: need at least two nodes");
  const state_t states = config.k();

  const state_t initiator = draw_state(config, n, 0, false, gen);
  const state_t responder = draw_state(config, n - 1, initiator, true, gen);
  const auto [initiator_next, responder_next] =
      protocol.interact(initiator, responder, states);
  PLURALITY_CHECK_MSG(initiator_next < states && responder_next < states,
                      "protocol '" << protocol.name() << "' returned a state out of range");

  if (initiator_next == initiator && responder_next == responder) return false;
  config.set(initiator, config.at(initiator) - 1);
  config.set(responder, config.at(responder) - 1);
  config.set(initiator_next, config.at(initiator_next) + 1);
  config.set(responder_next, config.at(responder_next) + 1);
  return true;
}

PopulationRunResult run_population(const PairDynamics& protocol,
                                   const Configuration& start,
                                   const PopulationRunOptions& options,
                                   rng::Xoshiro256pp& gen) {
  const state_t states = start.k();
  const state_t num_colors = protocol.num_colors(states);
  PLURALITY_REQUIRE(num_colors >= 1 && num_colors <= states,
                    "run_population: configuration/state-space mismatch");
  PLURALITY_REQUIRE(start.n() >= 2, "run_population: need at least two nodes");

  PopulationRunResult result;
  result.initial_plurality = start.plurality(num_colors);
  Configuration config = start;

  const step_t interval = options.check_interval == 0 ? 1 : options.check_interval;

  auto finish = [&](step_t steps, PopulationStopReason reason) {
    result.steps = steps;
    result.reason = reason;
    if (reason == PopulationStopReason::ColorConsensus) {
      result.winner = config.plurality(num_colors);
      result.plurality_won = (result.winner == result.initial_plurality);
    }
    result.final_config = std::move(config);
    return result;
  };

  if (config.color_consensus(num_colors)) {
    return finish(0, PopulationStopReason::ColorConsensus);
  }
  if (config.monochromatic()) {
    // Already absorbed in a non-color state (e.g. all-blank start).
    return finish(0, PopulationStopReason::NonColorAbsorbed);
  }

  for (step_t step = 1; step <= options.max_steps; ++step) {
    // Absorption can only appear on a step that moved mass, so no-op
    // interactions skip the scan entirely (they dominate near absorption,
    // where almost every sampled pair is already in agreement).
    const bool changed = population_step(protocol, config, gen);
    if (step % interval == 0 || (changed && config.monochromatic())) {
      if (config.color_consensus(num_colors)) {
        return finish(step, PopulationStopReason::ColorConsensus);
      }
      if (config.monochromatic()) {
        return finish(step, PopulationStopReason::NonColorAbsorbed);
      }
    }
  }
  return finish(options.max_steps, PopulationStopReason::StepLimit);
}

double PopulationTrialSummary::win_rate() const {
  PLURALITY_REQUIRE(trials > 0, "PopulationTrialSummary::win_rate: no trials");
  return static_cast<double>(plurality_wins) / static_cast<double>(trials);
}

PopulationTrialSummary run_population_trials(const PairDynamics& protocol,
                                             const Configuration& start,
                                             std::uint64_t trials,
                                             const PopulationRunOptions& options,
                                             std::uint64_t seed) {
  PLURALITY_REQUIRE(trials > 0, "run_population_trials: need at least one trial");
  const rng::StreamFactory streams(seed);
  PopulationTrialSummary summary;
  summary.trials = trials;
  for (std::uint64_t t = 0; t < trials; ++t) {
    rng::Xoshiro256pp gen = streams.stream(t);
    const PopulationRunResult result = run_population(protocol, start, options, gen);
    switch (result.reason) {
      case PopulationStopReason::ColorConsensus:
        ++summary.consensus_count;
        summary.plurality_wins += result.plurality_won ? 1 : 0;
        summary.steps.add(static_cast<double>(result.steps));
        break;
      case PopulationStopReason::NonColorAbsorbed:
      case PopulationStopReason::Frozen:
        summary.steps.add(static_cast<double>(result.steps));
        break;
      case PopulationStopReason::StepLimit:
        ++summary.step_limit_hits;
        break;
    }
  }
  return summary;
}

}  // namespace plurality::population
