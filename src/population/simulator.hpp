// Count-based simulator for population protocols.
//
// Exactly as in the synchronous core, node identities are exchangeable on
// the clique, so the count vector is the whole Markov state. One step:
// draw the initiator's state with probability c_s/n, the responder's with
// probability (c_q - [q == initiator]) / (n - 1) (ordered pair of DISTINCT
// nodes), apply the transition, update two counters. Theta(k) per step.
#pragma once

#include <functional>

#include "core/configuration.hpp"
#include "population/pair_dynamics.hpp"
#include "rng/xoshiro.hpp"
#include "stats/summary.hpp"
#include "support/types.hpp"

namespace plurality::population {

/// Number of pairwise interactions (sequential steps).
using step_t = std::uint64_t;

enum class PopulationStopReason {
  ColorConsensus,    // all nodes on one color
  NonColorAbsorbed,  // absorbed with no color holding all nodes (all blank)
  Frozen,            // no transition can ever change the state again
  StepLimit,
};

struct PopulationRunResult {
  step_t steps = 0;
  PopulationStopReason reason = PopulationStopReason::StepLimit;
  state_t winner = 0;            // valid for ColorConsensus
  state_t initial_plurality = 0;
  bool plurality_won = false;
  Configuration final_config;
  /// steps / n — the conventional parallel-time normalization.
  [[nodiscard]] double parallel_time(count_t n) const {
    return static_cast<double>(steps) / static_cast<double>(n);
  }
};

struct PopulationRunOptions {
  step_t max_steps = 1'000'000'000;
  /// Absorption is checked every `check_interval` steps (and on every
  /// mass-moving step that lands in a monochromatic state; no-op
  /// interactions never re-scan). 0 = every step.
  step_t check_interval = 0;
};

/// One interaction step in place; returns true if the configuration changed.
bool population_step(const PairDynamics& protocol, Configuration& config,
                     rng::Xoshiro256pp& gen);

/// Runs until color consensus, absorption, or the step cap.
PopulationRunResult run_population(const PairDynamics& protocol,
                                   const Configuration& start,
                                   const PopulationRunOptions& options,
                                   rng::Xoshiro256pp& gen);

/// Multi-trial driver (sequential model is cheap; trials loop inline).
struct PopulationTrialSummary {
  std::uint64_t trials = 0;
  std::uint64_t consensus_count = 0;
  std::uint64_t plurality_wins = 0;
  std::uint64_t step_limit_hits = 0;
  stats::OnlineStats steps;  // over trials that reached consensus/absorption

  [[nodiscard]] double win_rate() const;
};

PopulationTrialSummary run_population_trials(const PairDynamics& protocol,
                                             const Configuration& start,
                                             std::uint64_t trials,
                                             const PopulationRunOptions& options,
                                             std::uint64_t seed);

}  // namespace plurality::population
