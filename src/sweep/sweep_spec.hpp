// SweepSpec — a declarative grid of scenarios.
//
// The paper's figures are curves over an axis (consensus time vs k, win
// rate vs initial bias, disruption vs adversary budget F), and the
// follow-up papers add more axes (topology in arXiv:1407.2565, memory in
// the undecided-state line). A SweepSpec names a whole grid at once: a
// base ScenarioSpec plus cartesian axes over ANY spec field —
//
//   base:  dynamics=3-majority workload=bias:2c n=2000 trials=8
//   axes:  k = 2,4,8,16,32,64
//          backend = count,graph
//          engine = strict,batched
//
// expand() multiplies the axes (declaration order, last axis fastest) into
// one ScenarioSpec per cell, derives per-cell seeds, and validates every
// cell through the scenario layer's registries UP FRONT — a sweep that
// would die on cell 2311 after an hour of cells 0..2310 refuses to start
// instead. The orchestrator (sweep/orchestrator.hpp) then runs, resumes,
// and aggregates the grid.
//
// Two parse faces, mirroring ScenarioSpec: a compact string form where a
// comma-separated value turns the field into an axis
// ("k=2,4,8 engine=strict,batched n=2000"), and strict JSON
// ({"base": {...}, "axes": {"k": [2,4,8]}, "observe": {...}}).
#pragma once

#include <string>
#include <vector>

#include "scenario/spec.hpp"

namespace plurality::sweep {

/// One cartesian axis: a ScenarioSpec field name and the values it sweeps
/// (kept as strings; each cell applies them via ScenarioSpec::set_field,
/// so axis values accept exactly the spec grammar, "1e6" included).
struct SweepAxis {
  std::string field;
  std::vector<std::string> values;
};

/// Per-cell observer probes (core/observer.hpp) the orchestrator attaches.
/// Probes read materialized rounds only — switching them on never changes
/// any cell's TrialSummary (bitwise; see tests/core/test_observer.cpp).
struct ObserveSpec {
  /// Track time-to-m-plurality: first round where all but at most `m`
  /// nodes hold the plurality color (Corollary 4's quantity).
  bool m_plurality = false;
  count_t m = 0;
  /// Per-trial trajectory rows (plurality fraction / support size /
  /// monochromatic distance) recorded per cell; 0 disables. With an
  /// out_dir, each cell writes cells/<id>_trajectory.csv.
  std::size_t trajectory = 0;
  /// Record every stride-th round (see ProbeOptions::trajectory_stride).
  round_t trajectory_stride = 1;
};

struct SweepSpec {
  scenario::ScenarioSpec base;
  /// Declaration order = expansion order (last axis varies fastest).
  std::vector<SweepAxis> axes;
  ObserveSpec observe;
  /// Cell seed policy. true (default): cells whose seed is not set by a
  /// "seed" axis get seed = base.seed + cell_index, so cells are
  /// statistically independent replicas; the derived seed is recorded in
  /// the expanded spec (cells stay standalone-reproducible). false: every
  /// cell inherits base.seed verbatim.
  bool per_cell_seeds = true;

  /// Compact string form: whitespace-separated key=value tokens; a value
  /// containing ',' becomes an axis (split on commas, two values minimum
  /// per axis by construction), anything else assigns the base field.
  static SweepSpec parse(const std::string& text);

  /// Strict JSON: {"base": {spec fields}, "axes": {field: [values]},
  ///               "observe": {...}?, "per_cell_seeds": bool?}.
  /// Unknown keys throw at every level. Axis arrays need >= 1 element;
  /// numeric/boolean elements are accepted and canonicalized to strings.
  static SweepSpec from_json(const io::JsonValue& doc);
  static SweepSpec from_json_file(const std::string& path);

  /// The spec as an ordered JSON object (round-trips through from_json;
  /// the manifest stores this so --resume can detect a changed sweep).
  [[nodiscard]] io::JsonValue to_json() const;

  /// Number of grid cells (product of axis lengths; 1 with no axes).
  [[nodiscard]] std::size_t cell_count() const;

  /// Expands the full grid in row-major order and validates every cell
  /// (ScenarioSpec::validate); throws CheckError naming the first
  /// offending cell and its axis assignment. The returned specs have
  /// per-cell seeds already applied.
  [[nodiscard]] std::vector<scenario::ScenarioSpec> expand() const;
};

/// Zero-padded stable cell id ("cell_00017") — file names and manifest
/// entries sort in expansion order.
std::string cell_id(std::size_t index);

}  // namespace plurality::sweep
