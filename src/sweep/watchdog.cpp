#include "sweep/watchdog.hpp"

#include <csignal>

namespace plurality::sweep {

namespace {

/// One process-wide flag; std::sig_atomic_t would also do, but atomic<int>
/// is both async-signal-safe (lock-free on every target we build) and
/// thread-safe for the pollers.
std::atomic<int> g_shutdown{0};

extern "C" void plurality_sweep_signal_handler(int) {
  g_shutdown.store(1, std::memory_order_relaxed);
}

}  // namespace

void install_shutdown_signal_handlers() {
  std::signal(SIGINT, plurality_sweep_signal_handler);
  std::signal(SIGTERM, plurality_sweep_signal_handler);
}

bool shutdown_requested() { return g_shutdown.load(std::memory_order_relaxed) != 0; }

void request_shutdown() { g_shutdown.store(1, std::memory_order_relaxed); }

void reset_shutdown_flag() { g_shutdown.store(0, std::memory_order_relaxed); }

Watchdog::Watchdog(std::chrono::milliseconds tick) : tick_(tick) {
  thread_ = std::thread([this] { loop(); });
}

Watchdog::~Watchdog() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

std::uint64_t Watchdog::watch(CancellationToken* token, Clock::time_point deadline) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t handle = next_handle_++;
  entries_.push_back(Entry{handle, token, deadline});
  return handle;
}

void Watchdog::unwatch(std::uint64_t handle) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].handle == handle) {
      entries_[i] = entries_.back();
      entries_.pop_back();
      return;
    }
  }
}

void Watchdog::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    const Clock::time_point now = Clock::now();
    const bool shutdown = shutdown_requested();
    for (const Entry& entry : entries_) {
      if (shutdown) {
        entry.token->cancel(CancellationToken::Reason::kShutdown);
      } else if (entry.deadline <= now) {
        entry.token->cancel(CancellationToken::Reason::kDeadline);
      }
    }
    // Fired tokens stay registered until their owner unwatches — cancel()
    // is idempotent and first-reason-wins, so re-firing is harmless.
    cv_.wait_for(lock, tick_, [this] { return stopping_; });
  }
}

}  // namespace plurality::sweep
