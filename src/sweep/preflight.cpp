#include "sweep/preflight.hpp"

#include <cstdio>
#include <filesystem>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace plurality::sweep {

namespace {

/// Edge-count upper bound for the packed CSR, from the topology grammar
/// (graph/topology_registry.hpp). Unknown/garbled arguments fall back to
/// the clique worst case — preflight must never under-estimate.
std::uint64_t estimate_edges(const std::string& topology, std::uint64_t n) {
  const std::uint64_t clique_edges = (n * (n - 1)) / 2;
  const std::size_t colon = topology.find(':');
  const std::string kind = topology.substr(0, colon);
  const std::string arg = colon == std::string::npos ? "" : topology.substr(colon + 1);
  try {
    if (kind == "clique") return clique_edges;
    if (kind == "ring") return n;
    if (kind == "torus") return 2 * n;
    if (kind == "regular") return (std::stoull(arg) * n + 1) / 2;
    if (kind == "gnm") return std::stoull(arg);
    if (kind == "er") {
      const double p = std::stod(arg);
      // Mean p*C(n,2) plus slack for the binomial tail.
      const double mean = p * 0.5 * static_cast<double>(n) * static_cast<double>(n - 1);
      return static_cast<std::uint64_t>(mean * 1.25) + 4 * n;
    }
    if (kind == "edges") {
      // Proxy: an edge list line is >= 4 bytes ("a b\n"), so file bytes / 4
      // bounds the edge count from above.
      std::error_code ec;
      const auto size = std::filesystem::file_size(arg, ec);
      if (!ec) return static_cast<std::uint64_t>(size) / 4 + 1;
    }
  } catch (...) {
    // stoull/stod failure: validation will reject the spec; estimate big.
  }
  return clique_edges;
}

}  // namespace

std::uint64_t estimate_cell_memory_bytes(const scenario::ScenarioSpec& spec) {
  std::string backend;
  try {
    backend = spec.resolved_backend();
  } catch (...) {
    backend = spec.backend == "auto" ? "graph" : spec.backend;
  }
  const std::uint64_t n = spec.n;
  const std::uint64_t k = spec.k;
  constexpr std::uint64_t kFixed = 1ull << 20;  // code, spec, summaries

  if (backend == "count") {
    // Θ(k) counters per engine state; trials reuse one workspace.
    return kFixed + 64 * k * 8;
  }
  if (backend == "agent") {
    // Two state arrays (u32), two byte mirrors, per-thread count partials.
    const std::uint64_t per_trial = 2 * n * 4 + 2 * n + 64 * k * 8;
    return kFixed + (per_trial * 3) / 2;
  }
  // graph: CSR arena (offsets u64 + both directions' endpoints u32) plus
  // the step workspace (graph/graph_workspace.hpp: node/scratch u32 + u8
  // mirrors + 64-lane count partials), with 1.5x construction slack (the
  // builder holds an edge list alongside the arena while packing).
  const std::uint64_t m = estimate_edges(spec.topology, n);
  const std::uint64_t csr = (n + 1) * 8 + 2 * m * 4;
  const std::uint64_t workspace = 2 * n * 4 + 2 * n + 64 * k * 8;
  return kFixed + (csr * 3) / 2 + workspace;
}

std::uint64_t default_memory_budget_bytes() {
  constexpr std::uint64_t kFallback = 2ull << 30;
#if defined(_SC_PHYS_PAGES) && defined(_SC_PAGESIZE)
  const long pages = sysconf(_SC_PHYS_PAGES);
  const long page = sysconf(_SC_PAGESIZE);
  if (pages > 0 && page > 0) {
    const std::uint64_t physical =
        static_cast<std::uint64_t>(pages) * static_cast<std::uint64_t>(page);
    return physical - physical / 5;  // keep 20% headroom for the OS
  }
#endif
  return kFallback;
}

std::string format_bytes(std::uint64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), unit == 0 ? "%.0f %s" : "%.1f %s", value, units[unit]);
  return buf;
}

}  // namespace plurality::sweep
