#include "sweep/preflight.hpp"

#include <cstdio>
#include <filesystem>
#include <string>

#include "graph/graph_trials.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace plurality::sweep {

namespace {

// Saturating u64 arithmetic: estimates feed a "fits / cannot fit"
// comparison, so wrapping is the one failure mode preflight must never
// have — a clique at n = 7e9 once wrapped (n*(n-1))/2 to a small number
// and sailed through the budget check. Saturated values compare as
// "cannot fit", which is always the safe answer.
constexpr std::uint64_t kSatMax = ~std::uint64_t{0};

std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) {
  const auto wide = static_cast<__uint128_t>(a) * b;
  return wide > kSatMax ? kSatMax : static_cast<std::uint64_t>(wide);
}

std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t sum = a + b;
  return sum < a ? kSatMax : sum;
}

std::uint64_t sat_from_double(double v) {
  if (!(v > 0.0)) return 0;
  if (v >= 1.8e19) return kSatMax;  // below kSatMax, above any real estimate
  return static_cast<std::uint64_t>(v);
}

/// Edge-count upper bound for the packed CSR, from the topology grammar
/// (graph/topology_registry.hpp). Unknown/garbled arguments fall back to
/// the clique worst case — preflight must never under-estimate.
std::uint64_t estimate_edges(const std::string& topology, std::uint64_t n) {
  const std::uint64_t clique_edges = sat_mul(n, n > 0 ? n - 1 : 0) / 2;
  const std::size_t colon = topology.find(':');
  const std::string kind = topology.substr(0, colon);
  const std::string arg = colon == std::string::npos ? "" : topology.substr(colon + 1);
  try {
    if (kind == "clique" || kind == "gossip") return clique_edges;
    if (kind == "ring") return n;
    if (kind == "torus") return sat_mul(2, n);
    if (kind == "lattice") return sat_mul(std::stoull(arg), n) / 2;
    if (kind == "regular") return sat_add(sat_mul(std::stoull(arg), n), 1) / 2;
    if (kind == "gnm") return std::stoull(arg);
    if (kind == "er") {
      const double p = std::stod(arg);
      // Mean p*C(n,2) plus slack for the binomial tail.
      const double mean = p * 0.5 * static_cast<double>(n) * static_cast<double>(n - 1);
      return sat_add(sat_from_double(mean * 1.25), sat_mul(4, n));
    }
    if (kind == "edges") {
      // Proxy: an edge list line is >= 4 bytes ("a b\n"), so file bytes / 4
      // bounds the edge count from above.
      std::error_code ec;
      const auto size = std::filesystem::file_size(arg, ec);
      if (!ec) return static_cast<std::uint64_t>(size) / 4 + 1;
    }
  } catch (...) {
    // stoull/stod failure: validation will reject the spec; estimate big.
  }
  return clique_edges;
}

/// Per-node state bytes of the graph step workspace, matching the memory
/// mode run_graph_trials will actually pick (graph_workspace.hpp):
/// bytes-only = the two u8 buffers; k <= 256 = u32 pair + u8 mirror pair;
/// otherwise u32 pair only.
std::uint64_t graph_state_bytes_per_node(const scenario::ScenarioSpec& spec) {
  const bool has_adversary = spec.adversary != "none";
  if (spec.k <= 256 &&
      graph::graph_bytes_only_auto(spec.n, spec.k, has_adversary)) {
    return 2;
  }
  return spec.k <= 256 ? 2 * 4 + 2 : 2 * 4;
}

}  // namespace

std::uint64_t estimate_cell_memory_bytes(const scenario::ScenarioSpec& spec) {
  std::string backend;
  try {
    backend = spec.resolved_backend();
  } catch (...) {
    backend = spec.backend == "auto" ? "graph" : spec.backend;
  }
  const std::uint64_t n = spec.n;
  const std::uint64_t k = spec.k;
  constexpr std::uint64_t kFixed = 1ull << 20;  // code, spec, summaries

  if (backend == "count") {
    // Θ(k) counters per engine state; trials reuse one workspace.
    return kFixed + 64 * k * 8;
  }
  if (backend == "agent") {
    // Two state arrays (u32), two byte mirrors, per-thread count partials.
    const std::uint64_t per_trial =
        sat_add(sat_mul(2 * 4 + 2, n), 64 * k * 8);
    return sat_add(kFixed, sat_mul(per_trial, 3) / 2);
  }

  // graph backend. Implicit topologies (gossip/clique, and ring/torus/
  // lattice once the auto rule kicks in) build no arena: total state is the
  // step workspace — at n = 1e9 in bytes-only mode that is ~2 GB, which is
  // exactly why preflight must NOT bill such cells for a clique-sized CSR.
  std::string topo_backend;
  try {
    topo_backend = spec.resolved_topology_backend();
  } catch (...) {
    topo_backend = spec.topology_backend;  // "auto" falls to the arena model
  }
  const std::uint64_t workspace =
      sat_add(sat_mul(graph_state_bytes_per_node(spec), n), 64 * k * 8);
  if (topo_backend == "implicit") {
    return sat_add(kFixed, workspace);
  }
  // Arena build: CSR (offsets u64 + both directions' endpoints u32) plus
  // the workspace, with 1.5x construction slack (the builder holds an edge
  // list alongside the arena while packing).
  const std::uint64_t m = estimate_edges(spec.topology, n);
  const std::uint64_t csr =
      sat_add(sat_mul(sat_add(n, 1), 8), sat_mul(sat_mul(2, m), 4));
  return sat_add(sat_add(kFixed, sat_mul(csr, 3) / 2), workspace);
}

std::uint64_t default_memory_budget_bytes() {
  constexpr std::uint64_t kFallback = 2ull << 30;
#if defined(_SC_PHYS_PAGES) && defined(_SC_PAGESIZE)
  const long pages = sysconf(_SC_PHYS_PAGES);
  const long page = sysconf(_SC_PAGESIZE);
  if (pages > 0 && page > 0) {
    const std::uint64_t physical =
        static_cast<std::uint64_t>(pages) * static_cast<std::uint64_t>(page);
    return physical - physical / 5;  // keep 20% headroom for the OS
  }
#endif
  return kFallback;
}

std::string format_bytes(std::uint64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), unit == 0 ? "%.0f %s" : "%.1f %s", value, units[unit]);
  return buf;
}

}  // namespace plurality::sweep
