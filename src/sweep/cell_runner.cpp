#include "sweep/cell_runner.hpp"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <thread>

#include "core/observer.hpp"
#include "io/checkpoint.hpp"
#include "io/csv.hpp"
#include "obs/metrics_observer.hpp"
#include "obs/trace.hpp"
#include "rng/philox.hpp"
#include "scenario/scenario.hpp"
#include "support/check.hpp"

namespace plurality::sweep {

namespace fs = std::filesystem;

namespace {

/// Stream-family tag for retry-scoped randomness (backoff jitter). Trial
/// streams NEVER derive from it — a retried cell reproduces its
/// first-attempt results bitwise.
constexpr std::uint64_t kRetryStreamTag = 0x7265747279ull;  // "retry"

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

ProbeOptions probe_options(const ObserveSpec& observe, std::uint64_t trials) {
  ProbeOptions options;
  options.trials = trials;
  options.trajectory_capacity = observe.trajectory;
  options.trajectory_stride = observe.trajectory_stride;
  options.track_m_plurality = observe.m_plurality;
  options.m_plurality = observe.m;
  return options;
}

CellMetrics metrics_from_run(const TrialSummary& summary, double wall_seconds,
                             const ProbeObserver* probe, const ObserveSpec& observe) {
  CellMetrics m;
  m.trials = summary.trials;
  m.consensus_count = summary.consensus_count;
  m.plurality_wins = summary.plurality_wins;
  m.round_limit_hits = summary.round_limit_hits;
  m.predicate_stops = summary.predicate_stops;
  m.rounds_count = summary.rounds.count();
  m.consensus_rate = summary.consensus_rate();
  m.win_rate = summary.win_rate();
  if (summary.rounds.count() > 0) {
    m.rounds_mean = summary.rounds.mean();
    m.rounds_min = summary.rounds.min();
    m.rounds_max = summary.rounds.max();
    m.rounds_p50 = summary.rounds_p(0.5);
    m.rounds_p95 = summary.rounds_p(0.95);
  }
  m.wall_seconds = wall_seconds;
  if (probe != nullptr) {
    if (probe->final_plurality_fraction().count() > 0) {
      m.final_fraction_mean = probe->final_plurality_fraction().mean();
      m.final_support_mean = probe->final_support().mean();
      m.final_mono_mean = probe->final_mono_distance().mean();
    }
    if (observe.m_plurality) {
      m.ttm_hits = static_cast<double>(probe->m_plurality_hits());
      if (probe->m_plurality_hits() > 0) {
        m.ttm_p50 = probe->time_to_m_sketch().quantile(0.5);
        m.ttm_p95 = probe->time_to_m_sketch().quantile(0.95);
      }
    }
  }
  return m;
}

void write_trajectory_csv(const fs::path& path, const ProbeObserver& probe) {
  const fs::path tmp = path.string() + ".tmp";
  {
    io::CsvWriter csv(tmp.string(),
                      {"trial", "round", "plurality_fraction", "support", "mono_distance"});
    for (std::uint64_t trial = 0; trial < probe.options().trials; ++trial) {
      for (const ProbeRow& row : probe.trajectory(trial)) {
        csv.add_row({std::to_string(trial), std::to_string(row.round),
                     fmt_double(row.plurality_fraction),
                     std::to_string(static_cast<std::uint64_t>(row.support)),
                     fmt_double(row.mono_distance)});
      }
    }
  }
  fs::rename(tmp, path);
}

/// Chunked sleep that gives up early on shutdown — a backoff must never
/// outlive a Ctrl-C.
void backoff_sleep(double seconds) {
  const auto start = std::chrono::steady_clock::now();
  const auto budget = std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() - start < budget) {
    if (shutdown_requested()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

/// First-write-wins commit: link(2) refuses to clobber, so whichever
/// writer links first owns the cell. The loser verifies the winner's CRC —
/// a verified file IS this cell's result (same seed => same bytes under
/// zero_wall_times) — and a corrupt "winner" is quarantined so the link
/// can be retried with honest bytes.
void commit_first_write_wins(const fs::path& tmp, const fs::path& target,
                             const fs::path& quarantine_dir) {
  for (int round = 0; round < 8; ++round) {
    if (::link(tmp.c_str(), target.c_str()) == 0) {
      fs::remove(tmp);
      return;
    }
    PLURALITY_REQUIRE(errno == EEXIST, "sweep: cannot commit " << target.string() << ": "
                                                               << std::strerror(errno));
    try {
      (void)io::read_checkpoint_file(target.string());
      fs::remove(tmp);  // verified winner: our bytes are redundant
      return;
    } catch (const io::CheckpointSchemaError&) {
      throw;  // version skew is a hard refusal, never a silent overwrite
    } catch (const io::CheckpointCorruptError&) {
      const std::string moved = quarantine_file(target, quarantine_dir);
      std::fprintf(stderr, "sweep: quarantined corrupt checkpoint %s -> %s\n",
                   target.string().c_str(), moved.c_str());
    } catch (const CheckError&) {
      // Racing quarantine by another process: target vanished between the
      // failed link and the read. Retry the link.
    }
  }
  PLURALITY_REQUIRE(false, "sweep: first-write-wins commit of " << target.string()
                                                                << " kept colliding");
}

}  // namespace

std::uint64_t retry_stream_word(std::uint64_t cell_seed, std::uint32_t attempt,
                                std::uint64_t w) {
  return rng::Philox4x32::word(rng::Philox4x32::key_from_seed(cell_seed, kRetryStreamTag),
                               attempt, w);
}

std::string retry_tag_hex(std::uint64_t cell_seed, std::uint32_t attempt) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(retry_stream_word(cell_seed, attempt, 0)));
  return buf;
}

fs::path ledger_path(const fs::path& cells_dir, const std::string& id) {
  return cells_dir / (id + ".attempts.json");
}

std::uint32_t read_attempts_ledger(const fs::path& path) {
  if (!fs::exists(path)) return 0;
  try {
    return static_cast<std::uint32_t>(
        io::read_json_file(path.string()).at("attempts").as_uint());
  } catch (const CheckError&) {
    return 0;  // unreadable ledger: assume nothing, the cell just retries
  }
}

void write_attempts_ledger(const fs::path& path, std::uint32_t attempts) {
  io::JsonValue doc = io::JsonValue::object();
  doc.set("attempts", std::uint64_t{attempts});
  io::atomic_write_text(path.string(), doc.to_string());
}

std::string quarantine_file(const fs::path& path, const fs::path& quarantine_dir) {
  fs::create_directories(quarantine_dir);
  fs::path target = quarantine_dir / path.filename();
  for (int n = 1; fs::exists(target); ++n) {
    target = quarantine_dir / (path.filename().string() + "." + std::to_string(n));
  }
  fs::rename(path, target);
  return target.string();
}

CellMetrics metrics_from_json(const io::JsonValue& doc) {
  CellMetrics m;
  const io::JsonValue& summary = doc.at("summary");
  m.trials = summary.at("trials").as_uint();
  m.consensus_count = summary.at("consensus_count").as_uint();
  m.plurality_wins = summary.at("plurality_wins").as_uint();
  m.round_limit_hits = summary.at("round_limit_hits").as_uint();
  m.predicate_stops = summary.at("predicate_stops").as_uint();
  m.consensus_rate = summary.at("consensus_rate").as_double();
  m.win_rate = summary.at("win_rate").as_double();
  const io::JsonValue& rounds = summary.at("rounds");
  m.rounds_count = rounds.at("count").as_uint();
  if (m.rounds_count > 0) {
    m.rounds_mean = rounds.at("mean").as_double();
    m.rounds_min = rounds.at("min").as_double();
    m.rounds_max = rounds.at("max").as_double();
    m.rounds_p50 = rounds.at("p50").as_double();
    m.rounds_p95 = rounds.at("p95").as_double();
  }
  m.wall_seconds = doc.at("wall_seconds").as_double();
  if (const io::JsonValue* observers = doc.get("observers")) {
    if (const io::JsonValue* ttm = observers->get("m_plurality")) {
      m.ttm_hits = static_cast<double>(ttm->at("hits").as_uint());
      if (const io::JsonValue* p50 = ttm->get("p50")) m.ttm_p50 = p50->as_double();
      if (const io::JsonValue* p95 = ttm->get("p95")) m.ttm_p95 = p95->as_double();
    }
    if (const io::JsonValue* fin = observers->get("final")) {
      m.final_fraction_mean = fin->at("plurality_fraction_mean").as_double();
      m.final_support_mean = fin->at("support_mean").as_double();
      m.final_mono_mean = fin->at("mono_distance_mean").as_double();
    }
  }
  return m;
}

CellScan scan_cell_file(const fs::path& path, const fs::path& quarantine_dir,
                        CellOutcome& cell) {
  if (!fs::exists(path)) return CellScan::Missing;
  obs::TraceSpan span("scan_cell_file", "sweep", cell.id);
  try {
    const io::JsonValue doc = io::read_checkpoint_file(path.string());
    if (doc.at("cell").at("requested").as_string() != cell.requested.to_spec_string()) {
      // A verified file for a DIFFERENT spec: not corruption — the grid
      // changed around it (whole-manifest skew is caught separately);
      // recompute.
      return CellScan::SpecMismatch;
    }
    cell.metrics = metrics_from_json(doc);
    cell.resolved_backend = doc.at("spec").at("backend").as_string();
    if (const io::JsonValue* retry = doc.get("retry")) {
      cell.attempts = static_cast<std::uint32_t>(retry->at("attempts").as_uint());
      cell.retry_tag = retry->at("stream_tag").as_string();
    }
    return CellScan::Trusted;
  } catch (const io::CheckpointSchemaError&) {
    throw;  // version skew is a hard, actionable refusal — never silent
  } catch (const CheckError&) {
    // Corrupt (CRC mismatch, truncation, malformed envelope) or a verified
    // envelope with an impossible payload shape: quarantine the bytes as
    // evidence, recompute the cell.
    const std::string moved = quarantine_file(path, quarantine_dir);
    std::fprintf(stderr, "sweep: quarantined corrupt checkpoint %s -> %s\n",
                 path.string().c_str(), moved.c_str());
    return CellScan::Quarantined;
  }
}

void remove_stray_tmp_files(const fs::path& dir) {
  if (!fs::exists(dir)) return;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".tmp") {
      fs::remove(entry.path());
    }
  }
}

void run_cell_to_verdict(CellOutcome& cell, const CellRunContext& ctx) {
  PLURALITY_REQUIRE(ctx.injector != nullptr && ctx.watchdog != nullptr,
                    "sweep: run_cell_to_verdict needs an injector and a watchdog");
  const bool files = !ctx.cells_dir.empty();
  const fs::path quarantine_dir = ctx.cells_dir / "quarantine";
  const std::string spec_string = cell.requested.to_spec_string();
  const fs::path cell_path = files ? ctx.cells_dir / (cell.id + ".json") : fs::path();
  const fs::path ledger = files ? ledger_path(ctx.cells_dir, cell.id) : fs::path();
  const bool probes_on = ctx.observe.m_plurality || ctx.observe.trajectory > 0;
  const std::size_t i = cell.index;

  scenario::ScenarioSpec run_spec = cell.requested;
  if (ctx.force_serial_trials) {
    // Cells are the parallel unit here; nested trial teams would
    // oversubscribe. Trial results are thread-count invariant, so this
    // changes scheduling only.
    run_spec.parallel = false;
  }

  CancellationToken local_token;
  CancellationToken* token = ctx.token != nullptr ? ctx.token : &local_token;

  // Cell-level telemetry. Handles resolve once here; a null registry costs
  // nothing below (every use is guarded).
  obs::Counter* cells_started = nullptr;
  obs::Counter* cells_done = nullptr;
  obs::Counter* cells_failed = nullptr;
  obs::Counter* cell_retries = nullptr;
  obs::Counter* cell_cancellations = nullptr;
  if (ctx.metrics != nullptr) {
    cells_started = &ctx.metrics->counter("sweep_cells_started_total",
                                          "Cells entering the attempt loop");
    cells_done =
        &ctx.metrics->counter("sweep_cells_finished_total", "Cells run to Done");
    cells_failed =
        &ctx.metrics->counter("sweep_cells_failed_total", "Cells with a failed_* verdict");
    cell_retries = &ctx.metrics->counter("sweep_cell_retries_total",
                                         "Cell attempts after the first");
    cell_cancellations = &ctx.metrics->counter(
        "sweep_cell_cancellations_total", "Cell attempts cancelled (shutdown/lease/timeout)");
    cells_started->add(1);
  }

  std::uint32_t attempt = ctx.prior_attempts;
  if (ctx.single_attempt > 0) {
    attempt = ctx.single_attempt - 1;  // the loop's ++ lands on the leased attempt
  } else if (attempt > ctx.max_retries) {
    // The ledger shows this cell already burned its whole budget killing
    // processes — do not run it an (N+2)th time.
    cell.status = CellStatus::FailedCrash;
    cell.attempts = attempt;
    cell.error = "process died during " + std::to_string(attempt) +
                 " attempt(s) (attempts ledger); retry budget exhausted";
    if (files) fs::remove(ledger);  // a future resume starts fresh
  }

  while (cell.status == CellStatus::Pending) {
    ++attempt;
    cell.attempts = attempt;
    obs::TraceSpan attempt_span("cell_attempt", "sweep",
                                cell.id + " attempt " + std::to_string(attempt));
    if (cell_retries != nullptr && attempt > ctx.prior_attempts + 1) cell_retries->add(1);
    if (attempt > 1) {
      cell.retry_tag = retry_tag_hex(cell.requested.seed, attempt);
    }
    if (files) write_attempts_ledger(ledger, attempt);

    token->reset();
    const auto deadline =
        ctx.cell_timeout_seconds > 0
            ? Watchdog::Clock::now() + std::chrono::duration_cast<Watchdog::Clock::duration>(
                  std::chrono::duration<double>(ctx.cell_timeout_seconds))
            : Watchdog::Clock::time_point::max();
    const std::uint64_t handle = ctx.watchdog->watch(token, deadline);

    CellStatus failure = CellStatus::Pending;  // Pending = no failure yet
    try {
      ctx.injector->at_driver_start(i, cell.id, spec_string, token);

      std::unique_ptr<ProbeObserver> probe;
      if (probes_on) {
        probe = std::make_unique<ProbeObserver>(probe_options(ctx.observe, run_spec.trials));
      }
      // Metrics stack ON TOP of the probes: the MetricsObserver forwards
      // every callback, so probe products are untouched and the drivers
      // still see exactly one observer.
      std::unique_ptr<obs::MetricsObserver> metrics_observer;
      RoundObserver* observer = probe.get();
      if (ctx.metrics != nullptr) {
        metrics_observer = std::make_unique<obs::MetricsObserver>(*ctx.metrics, probe.get());
        observer = metrics_observer.get();
      }
      const scenario::ScenarioResult result =
          scenario::run_scenario(run_spec, observer, token);
      if (probe != nullptr) probe->finalize();
      cell.resolved_backend = result.resolved.backend;
      cell.summary = result.summary;
      cell.metrics = metrics_from_run(result.summary,
                                      ctx.zero_wall_times ? 0.0 : result.wall_seconds,
                                      probe.get(), ctx.observe);
      if (files) {
        obs::TraceSpan write_span("checkpoint_write", "sweep", cell.id);
        std::string text = io::checkpoint_envelope_text(cell_result_to_json(cell));
        ctx.injector->mutate_checkpoint_text(i, cell.id, spec_string, text);
        ctx.injector->at_write_point(i, cell.id, spec_string, CrashPoint::BeforeWrite);
        const fs::path tmp = cell_path.string() + ".tmp";
        {
          std::ofstream out_file(tmp, std::ios::binary | std::ios::trunc);
          out_file << text;
          out_file.flush();
          PLURALITY_REQUIRE(out_file.good(), "sweep: cannot write " << tmp.string());
        }
        ctx.injector->at_write_point(i, cell.id, spec_string, CrashPoint::MidWrite);
        if (ctx.first_write_wins) {
          commit_first_write_wins(tmp, cell_path, quarantine_dir);
        } else {
          fs::rename(tmp, cell_path);
        }
        ctx.injector->at_write_point(i, cell.id, spec_string, CrashPoint::AfterWrite);

        // Read-back verification closes the loop: if what landed on disk
        // does not CRC-verify (injected corruption, actual I/O fault),
        // this attempt FAILED even though the driver succeeded.
        try {
          (void)io::read_checkpoint_file(cell_path.string());
        } catch (const io::CheckpointCorruptError& e) {
          const std::string moved = quarantine_file(cell_path, quarantine_dir);
          throw io::CheckpointCorruptError(std::string(e.what()) +
                                           " (quarantined to " + moved + ")");
        }
        if (ctx.observe.trajectory > 0 && probe != nullptr) {
          write_trajectory_csv(ctx.cells_dir / (cell.id + "_trajectory.csv"), *probe);
        }
      }
      cell.status = CellStatus::Done;
      cell.error.clear();
      if (files) fs::remove(ledger);
    } catch (const CancelledError& e) {
      if (cell_cancellations != nullptr) cell_cancellations->add(1);
      if (e.reason() == CancellationToken::Reason::kShutdown) {
        // Not a failure: the user asked the whole sweep to stop. Drop
        // the ledger — a clean cancellation is not a crash.
        cell.status = CellStatus::Interrupted;
        cell.error = e.what();
        if (files) fs::remove(ledger);
      } else if (e.reason() == CancellationToken::Reason::kLeaseLost) {
        // The master reassigned this cell while we ran it. Whoever holds
        // the new lease owns the ledger now — leave it alone.
        cell.status = CellStatus::Interrupted;
        cell.error = e.what();
      } else {
        failure = CellStatus::FailedTimeout;
        cell.error = e.what();
      }
    } catch (const io::CheckpointCorruptError& e) {
      failure = CellStatus::FailedCorrupt;
      cell.error = e.what();
    } catch (const CheckError& e) {
      // Spec/validation errors are deterministic — retrying re-proves them.
      cell.status = CellStatus::FailedSpec;
      cell.error = e.what();
      if (files) fs::remove(ledger);
    } catch (const std::exception& e) {
      failure = CellStatus::FailedCrash;
      cell.error = e.what();
    }
    ctx.watchdog->unwatch(handle);

    if (failure == CellStatus::Pending) break;  // success / terminal verdict
    if (ctx.single_attempt > 0) {
      // Service worker mode: one attempt per lease. Report the failure and
      // KEEP the ledger — the master owns the retry/terminal decision and
      // prunes the ledger when the cell's story ends.
      cell.status = failure;
      break;
    }
    if (shutdown_requested()) {
      // A retryable failure racing a shutdown stays RESUMABLE, not failed.
      cell.status = CellStatus::Interrupted;
      if (files) fs::remove(ledger);
      break;
    }
    if (attempt > ctx.max_retries) {
      cell.status = failure;
      if (files) fs::remove(ledger);  // a future resume starts fresh
      break;
    }
    // Exponential backoff with a jitter drawn from the retry stream (the
    // ONLY consumer of retry-derived randomness).
    const double jitter =
        static_cast<double>(retry_stream_word(cell.requested.seed, attempt, 1) % 1000) /
        1000.0;
    const std::uint32_t doublings = attempt - 1 < 20 ? attempt - 1 : 20;
    backoff_sleep(ctx.retry_backoff_seconds *
                  static_cast<double>(std::uint64_t{1} << doublings) * (1.0 + jitter));
  }

  if (ctx.metrics != nullptr) {
    if (cell.status == CellStatus::Done) {
      cells_done->add(1);
    } else if (cell_status_failed(cell.status)) {
      cells_failed->add(1);
    }
  }
}

}  // namespace plurality::sweep
