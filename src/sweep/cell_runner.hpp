// One sweep cell, run to a verdict — the attempt loop shared by the
// in-process orchestrator (sweep/orchestrator.cpp) and the out-of-process
// sweep service worker (service/worker.cpp).
//
// Extracted so that "what one cell attempt does" — ledger write, watchdog
// arm, fault injection, driver run, CRC-enveloped atomic checkpoint write,
// read-back verification, quarantine, failure taxonomy, seeded backoff —
// has exactly ONE implementation. The orchestrator loops cells in-process;
// the service worker runs one leased cell per request under a master-owned
// retry policy. Both paths must produce bitwise-identical cell files for
// the same spec and seed, and both must survive being SIGKILLed at any
// instruction; sharing this code is how that property stays true.
//
// Commit discipline (CellRunContext::first_write_wins):
//   false  — plain atomic rename (tmp -> target). The orchestrator's mode:
//            cells are uniquely owned, a second writer is a logic bug.
//   true   — link(2)-based first-write-wins. The service's mode: a lease
//            that expired mid-run can leave TWO workers finishing the same
//            cell. link(tmp, target) fails with EEXIST instead of
//            clobbering; the loser verifies the winner's CRC (a verified
//            existing file IS this cell's result — same seed, same bytes
//            under zero_wall_times) and discards its own. A corrupt
//            existing file is quarantined and the link retried, so a
//            half-dead writer can never poison the grid.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>

#include "obs/metrics.hpp"
#include "support/cancellation.hpp"
#include "sweep/fault_plan.hpp"
#include "sweep/orchestrator.hpp"
#include "sweep/watchdog.hpp"

namespace plurality::sweep {

/// Retry-scoped Philox word (stream family "retry"). Keys backoff jitter
/// and the audit tag ONLY — trial streams never derive from it, so a
/// retried cell reproduces its first-attempt results bitwise.
[[nodiscard]] std::uint64_t retry_stream_word(std::uint64_t cell_seed,
                                              std::uint32_t attempt, std::uint64_t w);

/// The "0x%016x" audit tag recorded in cell files when attempts > 1.
[[nodiscard]] std::string retry_tag_hex(std::uint64_t cell_seed, std::uint32_t attempt);

// --- per-cell attempts ledger ---------------------------------------------
// Written before each attempt, removed when the cell reaches a clean
// verdict. A ledger surviving a process death records attempts that died
// with it — they count against the retry budget, across processes: two
// workers crash-looping on the same poisoned cell share one budget because
// they share one ledger file.

[[nodiscard]] std::filesystem::path ledger_path(const std::filesystem::path& cells_dir,
                                                const std::string& id);
[[nodiscard]] std::uint32_t read_attempts_ledger(const std::filesystem::path& path);
void write_attempts_ledger(const std::filesystem::path& path, std::uint32_t attempts);

/// Moves a corrupt checkpoint into `quarantine_dir` under a unique name —
/// the bytes are evidence (what corrupted them?), never silently deleted.
/// Returns the destination path.
std::string quarantine_file(const std::filesystem::path& path,
                            const std::filesystem::path& quarantine_dir);

/// Reloads the CSV-level metrics from a completed cell payload.
[[nodiscard]] CellMetrics metrics_from_json(const io::JsonValue& doc);

/// Verdict of inspecting an on-disk cell file during resume / reconcile.
enum class CellScan {
  Missing,      ///< no file
  Trusted,      ///< CRC-verified and payload matches cell.requested; cell filled
  SpecMismatch, ///< verified file for a DIFFERENT spec (grid changed) — recompute
  Quarantined,  ///< corrupt; moved into quarantine_dir, recompute
};

/// CRC-verifies `path` and, when its payload's requested-spec string matches
/// `cell.requested`, fills cell.metrics / resolved_backend / retry audit
/// fields. Quarantines corrupt files (with a stderr note). Throws
/// CheckpointSchemaError on version skew — schema drift is a hard refusal,
/// never a silent recompute. This is the ONLY way a master or resume pass
/// may trust a result it did not just compute: always the disk, never memory.
CellScan scan_cell_file(const std::filesystem::path& path,
                        const std::filesystem::path& quarantine_dir, CellOutcome& cell);

/// Deletes stray "*.tmp" staging files in `dir` (a killed writer leaves
/// only those — commits are atomic).
void remove_stray_tmp_files(const std::filesystem::path& dir);

/// Everything run_cell_to_verdict needs besides the cell itself. The
/// injector and watchdog are borrowed, not owned; both must outlive the
/// call.
struct CellRunContext {
  /// <out_dir>/cells. Empty = in-memory run: no checkpoint, no ledger.
  std::filesystem::path cells_dir;
  ObserveSpec observe;
  bool zero_wall_times = false;
  double cell_timeout_seconds = 0.0;  ///< 0 = no deadline
  std::uint32_t max_retries = 2;
  double retry_backoff_seconds = 0.05;
  /// Commit via link(2) first-write-wins instead of rename (see header
  /// comment) — the multi-writer service mode.
  bool first_write_wins = false;
  /// Force run_spec.parallel = false (cells-in-parallel phase: cells are
  /// the parallel unit, nested trial teams would oversubscribe).
  bool force_serial_trials = false;
  /// Attempts burned by earlier processes (from the ledger); counted
  /// against max_retries before the first local attempt.
  std::uint32_t prior_attempts = 0;
  /// Service worker mode: run EXACTLY this attempt number and return —
  /// the master owns the retry loop, backoff, and the terminal verdict,
  /// so a retryable failure leaves status = the failure and KEEPS the
  /// ledger (the master prunes it when the cell's story ends). 0 = run
  /// the local retry loop to a terminal status (orchestrator mode).
  std::uint32_t single_attempt = 0;
  /// External token, cancellable by another thread (the worker's
  /// heartbeat loop fires kLeaseLost through it). Null = the runner uses
  /// its own private token.
  CancellationToken* token = nullptr;
  FaultInjector* injector = nullptr;  ///< required
  Watchdog* watchdog = nullptr;       ///< required
  /// Live telemetry (obs/metrics.hpp): a MetricsObserver is stacked on the
  /// cell's probe chain and cell-level counters (started / finished /
  /// retries / cancellations) tick here. Null = metrics off — the hot path
  /// then carries no observer and no atomics (runs stay bitwise-identical
  /// either way; tests/obs pins that).
  obs::MetricsRegistry* metrics = nullptr;
};

/// Runs `cell` until it leaves Pending (or, in single_attempt mode, for
/// exactly one attempt). On return cell.status is Done, Interrupted, or a
/// failed_* verdict; cell.attempts / retry_tag / error / metrics are
/// filled. Never throws for per-cell runtime failures — those ARE the
/// taxonomy — but propagates programming errors (bad context).
void run_cell_to_verdict(CellOutcome& cell, const CellRunContext& ctx);

}  // namespace plurality::sweep
