#include "sweep/orchestrator.hpp"

#include <cstdio>
#include <filesystem>
#include <memory>

#include "core/observer.hpp"
#include "io/csv.hpp"
#include "scenario/scenario.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"

#if defined(PLURALITY_HAVE_OPENMP)
#include <omp.h>
#endif

namespace plurality::sweep {

namespace fs = std::filesystem;

namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

/// tmp + rename so a killed sweep can never leave a half-written result
/// behind — resume trusts any file that exists and parses.
void atomic_write_json(const fs::path& path, const io::JsonValue& doc) {
  const fs::path tmp = path.string() + ".tmp";
  io::write_json_file(tmp.string(), doc);
  fs::rename(tmp, path);
}

ProbeOptions probe_options(const ObserveSpec& observe, std::uint64_t trials) {
  ProbeOptions options;
  options.trials = trials;
  options.trajectory_capacity = observe.trajectory;
  options.trajectory_stride = observe.trajectory_stride;
  options.track_m_plurality = observe.m_plurality;
  options.m_plurality = observe.m;
  return options;
}

CellMetrics metrics_from_run(const TrialSummary& summary, double wall_seconds,
                             const ProbeObserver* probe, const ObserveSpec& observe) {
  CellMetrics m;
  m.trials = summary.trials;
  m.consensus_count = summary.consensus_count;
  m.plurality_wins = summary.plurality_wins;
  m.round_limit_hits = summary.round_limit_hits;
  m.predicate_stops = summary.predicate_stops;
  m.rounds_count = summary.rounds.count();
  m.consensus_rate = summary.consensus_rate();
  m.win_rate = summary.win_rate();
  if (summary.rounds.count() > 0) {
    m.rounds_mean = summary.rounds.mean();
    m.rounds_min = summary.rounds.min();
    m.rounds_max = summary.rounds.max();
    m.rounds_p50 = summary.rounds_p(0.5);
    m.rounds_p95 = summary.rounds_p(0.95);
  }
  m.wall_seconds = wall_seconds;
  if (probe != nullptr) {
    if (probe->final_plurality_fraction().count() > 0) {
      m.final_fraction_mean = probe->final_plurality_fraction().mean();
      m.final_support_mean = probe->final_support().mean();
      m.final_mono_mean = probe->final_mono_distance().mean();
    }
    if (observe.m_plurality) {
      m.ttm_hits = static_cast<double>(probe->m_plurality_hits());
      if (probe->m_plurality_hits() > 0) {
        m.ttm_p50 = probe->time_to_m_sketch().quantile(0.5);
        m.ttm_p95 = probe->time_to_m_sketch().quantile(0.95);
      }
    }
  }
  return m;
}

/// Reloads the CSV-level metrics from a completed cell file (resume path).
CellMetrics metrics_from_json(const io::JsonValue& doc) {
  CellMetrics m;
  const io::JsonValue& summary = doc.at("summary");
  m.trials = summary.at("trials").as_uint();
  m.consensus_count = summary.at("consensus_count").as_uint();
  m.plurality_wins = summary.at("plurality_wins").as_uint();
  m.round_limit_hits = summary.at("round_limit_hits").as_uint();
  m.predicate_stops = summary.at("predicate_stops").as_uint();
  m.consensus_rate = summary.at("consensus_rate").as_double();
  m.win_rate = summary.at("win_rate").as_double();
  const io::JsonValue& rounds = summary.at("rounds");
  m.rounds_count = rounds.at("count").as_uint();
  if (m.rounds_count > 0) {
    m.rounds_mean = rounds.at("mean").as_double();
    m.rounds_min = rounds.at("min").as_double();
    m.rounds_max = rounds.at("max").as_double();
    m.rounds_p50 = rounds.at("p50").as_double();
    m.rounds_p95 = rounds.at("p95").as_double();
  }
  m.wall_seconds = doc.at("wall_seconds").as_double();
  if (const io::JsonValue* observers = doc.get("observers")) {
    if (const io::JsonValue* ttm = observers->get("m_plurality")) {
      m.ttm_hits = static_cast<double>(ttm->at("hits").as_uint());
      if (const io::JsonValue* p50 = ttm->get("p50")) m.ttm_p50 = p50->as_double();
      if (const io::JsonValue* p95 = ttm->get("p95")) m.ttm_p95 = p95->as_double();
    }
    if (const io::JsonValue* fin = observers->get("final")) {
      m.final_fraction_mean = fin->at("plurality_fraction_mean").as_double();
      m.final_support_mean = fin->at("support_mean").as_double();
      m.final_mono_mean = fin->at("mono_distance_mean").as_double();
    }
  }
  return m;
}

void write_trajectory_csv(const fs::path& path, const ProbeObserver& probe) {
  const fs::path tmp = path.string() + ".tmp";
  {
    io::CsvWriter csv(tmp.string(),
                      {"trial", "round", "plurality_fraction", "support", "mono_distance"});
    for (std::uint64_t trial = 0; trial < probe.options().trials; ++trial) {
      for (const ProbeRow& row : probe.trajectory(trial)) {
        csv.add_row({std::to_string(trial), std::to_string(row.round),
                     fmt_double(row.plurality_fraction),
                     std::to_string(static_cast<std::uint64_t>(row.support)),
                     fmt_double(row.mono_distance)});
      }
    }
  }
  fs::rename(tmp, path);
}

}  // namespace

io::JsonValue cell_result_to_json(const CellOutcome& outcome) {
  scenario::ScenarioResult result;
  result.resolved = outcome.requested;
  result.resolved.backend = outcome.resolved_backend;
  result.summary = outcome.summary;
  result.wall_seconds = outcome.metrics.wall_seconds;
  io::JsonValue doc = scenario::scenario_result_to_json(result);

  io::JsonValue& cell = doc.set("cell", io::JsonValue::object());
  cell.set("index", std::uint64_t{outcome.index});
  cell.set("id", outcome.id);
  // The PRE-resolution spec string — what resume matches against, so a
  // re-expanded grid recognizes its own cells even through backend=auto.
  cell.set("requested", outcome.requested.to_spec_string());

  const CellMetrics& m = outcome.metrics;
  if (m.ttm_hits >= 0.0 || m.final_fraction_mean >= 0.0) {
    io::JsonValue& observers = doc.set("observers", io::JsonValue::object());
    if (m.ttm_hits >= 0.0) {
      io::JsonValue& ttm = observers.set("m_plurality", io::JsonValue::object());
      ttm.set("hits", static_cast<std::uint64_t>(m.ttm_hits));
      if (m.ttm_hits > 0.0) {
        ttm.set("p50", m.ttm_p50);
        ttm.set("p95", m.ttm_p95);
      }
    }
    if (m.final_fraction_mean >= 0.0) {
      io::JsonValue& fin = observers.set("final", io::JsonValue::object());
      fin.set("plurality_fraction_mean", m.final_fraction_mean);
      fin.set("support_mean", m.final_support_mean);
      fin.set("mono_distance_mean", m.final_mono_mean);
    }
  }
  return doc;
}

std::vector<std::string> aggregate_columns(const SweepSpec& spec) {
  std::vector<std::string> columns = {
      "cell",        "dynamics",       "workload",   "topology",   "adversary",
      "backend",     "engine",         "stop",       "n",          "k",
      "trials",      "seed",           "max_rounds", "consensus_rate",
      "win_rate",    "rounds_mean",    "rounds_p50", "rounds_p95", "rounds_min",
      "rounds_max",  "round_limit_hits", "predicate_stops", "wall_seconds"};
  const bool probes = spec.observe.m_plurality || spec.observe.trajectory > 0;
  if (spec.observe.m_plurality) {
    columns.insert(columns.end(), {"ttm_hits", "ttm_p50", "ttm_p95"});
  }
  if (probes) {
    columns.insert(columns.end(),
                   {"final_fraction_mean", "final_support_mean", "final_mono_mean"});
  }
  return columns;
}

std::vector<std::string> aggregate_row(const SweepSpec& spec, const CellOutcome& outcome) {
  const scenario::ScenarioSpec& s = outcome.requested;
  const CellMetrics& m = outcome.metrics;
  std::vector<std::string> row = {
      outcome.id,
      s.dynamics,
      s.workload,
      s.topology,
      s.adversary,
      outcome.resolved_backend,
      s.engine,
      s.stop,
      std::to_string(s.n),
      std::to_string(s.k),
      std::to_string(m.trials),
      std::to_string(s.seed),
      std::to_string(s.max_rounds),
      fmt_double(m.consensus_rate),
      fmt_double(m.win_rate),
      fmt_double(m.rounds_mean),
      fmt_double(m.rounds_p50),
      fmt_double(m.rounds_p95),
      fmt_double(m.rounds_min),
      fmt_double(m.rounds_max),
      std::to_string(m.round_limit_hits),
      std::to_string(m.predicate_stops),
      fmt_double(m.wall_seconds)};
  const bool probes = spec.observe.m_plurality || spec.observe.trajectory > 0;
  if (spec.observe.m_plurality) {
    row.push_back(fmt_double(m.ttm_hits));
    row.push_back(fmt_double(m.ttm_p50));
    row.push_back(fmt_double(m.ttm_p95));
  }
  if (probes) {
    row.push_back(fmt_double(m.final_fraction_mean));
    row.push_back(fmt_double(m.final_support_mean));
    row.push_back(fmt_double(m.final_mono_mean));
  }
  return row;
}

SweepOutcome run_sweep(const SweepSpec& spec_in, const SweepOptions& options) {
  WallTimer timer;
  SweepSpec spec = spec_in;
  if (options.trials_override > 0) {
    for (const SweepAxis& axis : spec.axes) {
      PLURALITY_REQUIRE(axis.field != "trials",
                        "sweep: trials_override cannot combine with a 'trials' axis");
    }
    spec.base.trials = options.trials_override;
  }

  const std::vector<scenario::ScenarioSpec> expanded = spec.expand();
  const std::size_t total = expanded.size();
  const bool probes_on = spec.observe.m_plurality || spec.observe.trajectory > 0;

  SweepOutcome out;
  out.cells.resize(total);
  for (std::size_t i = 0; i < total; ++i) {
    out.cells[i].index = i;
    out.cells[i].id = cell_id(i);
    out.cells[i].requested = expanded[i];
  }

  // --- checkpoint directory + manifest -----------------------------------
  const bool files = !options.out_dir.empty();
  PLURALITY_REQUIRE(files || !options.resume, "sweep: resume requires an out_dir");
  fs::path cells_dir;
  if (files) {
    const fs::path dir(options.out_dir);
    cells_dir = dir / "cells";
    fs::create_directories(cells_dir);
    const fs::path manifest = dir / "manifest.json";
    const std::string sweep_json = spec.to_json().to_string();
    if (fs::exists(manifest)) {
      if (options.resume) {
        const io::JsonValue stored = io::read_json_file(manifest.string());
        PLURALITY_REQUIRE(stored.at("sweep").to_string() == sweep_json,
                          "sweep: manifest at " << manifest.string()
                              << " records a DIFFERENT sweep (spec or trial override "
                                 "changed); refusing to resume a mixed grid — use a "
                                 "fresh out_dir");
      } else {
        PLURALITY_REQUIRE(options.force,
                          "sweep: " << manifest.string()
                              << " already exists; pass resume to continue that sweep "
                                 "or force to start over (cell files get overwritten)");
      }
    }
    io::JsonValue doc = io::JsonValue::object();
    doc.set("schema_version", 1);
    doc.set("sweep", spec.to_json());
    io::JsonValue& cell_list = doc.set("cells", io::JsonValue::array());
    for (const CellOutcome& cell : out.cells) {
      io::JsonValue& entry = cell_list.push(io::JsonValue::object());
      entry.set("index", std::uint64_t{cell.index});
      entry.set("id", cell.id);
      entry.set("spec", cell.requested.to_spec_string());
    }
    atomic_write_json(manifest, doc);
    out.manifest_path = manifest.string();
  }

  // --- resume: trust completed cells whose file matches their spec -------
  std::size_t done = 0;
  std::vector<std::size_t> pending;
  pending.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    CellOutcome& cell = out.cells[i];
    if (options.resume) {
      const fs::path path = cells_dir / (cell.id + ".json");
      if (fs::exists(path)) {
        try {
          const io::JsonValue doc = io::read_json_file(path.string());
          if (doc.at("cell").at("requested").as_string() == cell.requested.to_spec_string()) {
            cell.metrics = metrics_from_json(doc);
            cell.resolved_backend = doc.at("spec").at("backend").as_string();
            cell.resumed = true;
            ++out.resumed;
            ++done;
            if (options.on_cell) options.on_cell(cell, done, total);
            continue;
          }
        } catch (const CheckError&) {
          // Unreadable or mismatched file: recompute the cell (the fresh
          // result overwrites it atomically).
        }
      }
    }
    pending.push_back(i);
  }

  // --- schedule pending cells --------------------------------------------
  std::vector<std::string> errors(total);

#if defined(PLURALITY_HAVE_OPENMP)
  const bool parallel_cells = options.cells_in_parallel;
#else
  const bool parallel_cells = false;
#endif

  const auto run_cell = [&](std::size_t i) {
    CellOutcome& cell = out.cells[i];
    try {
      scenario::ScenarioSpec run_spec = cell.requested;
      if (parallel_cells) {
        // Cells are the parallel unit here; nested trial teams would
        // oversubscribe. Trial results are thread-count invariant, so this
        // changes scheduling only.
        run_spec.parallel = false;
      }
      std::unique_ptr<ProbeObserver> probe;
      if (probes_on) {
        probe = std::make_unique<ProbeObserver>(probe_options(spec.observe, run_spec.trials));
      }
      const scenario::ScenarioResult result = scenario::run_scenario(run_spec, probe.get());
      if (probe != nullptr) probe->finalize();
      cell.resolved_backend = result.resolved.backend;
      cell.summary = result.summary;
      cell.metrics =
          metrics_from_run(result.summary, result.wall_seconds, probe.get(), spec.observe);
      if (files) {
        atomic_write_json(cells_dir / (cell.id + ".json"), cell_result_to_json(cell));
        if (spec.observe.trajectory > 0 && probe != nullptr) {
          write_trajectory_csv(cells_dir / (cell.id + "_trajectory.csv"), *probe);
        }
      }
    } catch (const std::exception& e) {
      errors[i] = e.what();
    }
#if defined(PLURALITY_HAVE_OPENMP)
#pragma omp critical(plurality_sweep_progress)
#endif
    {
      ++done;
      if (options.on_cell) options.on_cell(cell, done, total);
    }
  };

#if defined(PLURALITY_HAVE_OPENMP)
  if (parallel_cells) {
#pragma omp parallel for schedule(dynamic, 1)
    for (std::size_t p = 0; p < pending.size(); ++p) run_cell(pending[p]);
  } else {
    for (const std::size_t i : pending) run_cell(i);
  }
#else
  for (const std::size_t i : pending) run_cell(i);
#endif

  std::size_t failed = 0;
  std::string failure_list;
  for (std::size_t i = 0; i < total; ++i) {
    if (errors[i].empty()) continue;
    ++failed;
    failure_list += "\n  " + out.cells[i].id + " (" +
                    out.cells[i].requested.to_spec_string() + "): " + errors[i];
  }
  out.ran = pending.size() - failed;
  PLURALITY_REQUIRE(failed == 0, "sweep: " << failed << " of " << total
                                           << " cells failed (completed cells are "
                                              "checkpointed; rerun with resume to retry "
                                              "just the failures):"
                                           << failure_list);

  // --- aggregate ----------------------------------------------------------
  if (files) {
    const fs::path aggregate = fs::path(options.out_dir) / "aggregate.csv";
    const fs::path tmp = aggregate.string() + ".tmp";
    {
      io::CsvWriter csv(tmp.string(), aggregate_columns(spec));
      for (const CellOutcome& cell : out.cells) {
        csv.add_row(aggregate_row(spec, cell));
      }
    }
    fs::rename(tmp, aggregate);
    out.aggregate_path = aggregate.string();
  }

  out.wall_seconds = timer.seconds();
  return out;
}

}  // namespace plurality::sweep
