#include "sweep/orchestrator.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "io/checkpoint.hpp"
#include "io/csv.hpp"
#include "obs/metrics.hpp"
#include "scenario/scenario.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"
#include "sweep/cell_runner.hpp"
#include "sweep/preflight.hpp"
#include "sweep/watchdog.hpp"

#if defined(PLURALITY_HAVE_OPENMP)
#include <omp.h>
#endif

namespace plurality::sweep {

namespace fs = std::filesystem;

namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace

const char* cell_status_name(CellStatus status) {
  switch (status) {
    case CellStatus::Pending: return "pending";
    case CellStatus::Done: return "done";
    case CellStatus::Resumed: return "resumed";
    case CellStatus::FailedTimeout: return "failed_timeout";
    case CellStatus::FailedCrash: return "failed_crash";
    case CellStatus::FailedCorrupt: return "failed_corrupt";
    case CellStatus::FailedSpec: return "failed_spec";
    case CellStatus::Interrupted: return "interrupted";
  }
  return "?";
}

bool cell_status_failed(CellStatus status) {
  switch (status) {
    case CellStatus::FailedTimeout:
    case CellStatus::FailedCrash:
    case CellStatus::FailedCorrupt:
    case CellStatus::FailedSpec:
      return true;
    default:
      return false;
  }
}

io::JsonValue cell_result_to_json(const CellOutcome& outcome) {
  scenario::ScenarioResult result;
  result.resolved = outcome.requested;
  result.resolved.backend = outcome.resolved_backend;
  result.summary = outcome.summary;
  result.wall_seconds = outcome.metrics.wall_seconds;
  io::JsonValue doc = scenario::scenario_result_to_json(result);

  io::JsonValue& cell = doc.set("cell", io::JsonValue::object());
  cell.set("index", std::uint64_t{outcome.index});
  cell.set("id", outcome.id);
  // The PRE-resolution spec string — what resume matches against, so a
  // re-expanded grid recognizes its own cells even through backend=auto.
  cell.set("requested", outcome.requested.to_spec_string());

  if (outcome.attempts > 1) {
    // Retry audit block: how many attempts this result took, and the
    // retry-derived stream tag (keys backoff jitter only — the summary
    // above is bitwise what attempt 1 would have produced).
    io::JsonValue& retry = doc.set("retry", io::JsonValue::object());
    retry.set("attempts", std::uint64_t{outcome.attempts});
    retry.set("stream_tag", outcome.retry_tag);
  }

  const CellMetrics& m = outcome.metrics;
  if (m.ttm_hits >= 0.0 || m.final_fraction_mean >= 0.0) {
    io::JsonValue& observers = doc.set("observers", io::JsonValue::object());
    if (m.ttm_hits >= 0.0) {
      io::JsonValue& ttm = observers.set("m_plurality", io::JsonValue::object());
      ttm.set("hits", static_cast<std::uint64_t>(m.ttm_hits));
      if (m.ttm_hits > 0.0) {
        ttm.set("p50", m.ttm_p50);
        ttm.set("p95", m.ttm_p95);
      }
    }
    if (m.final_fraction_mean >= 0.0) {
      io::JsonValue& fin = observers.set("final", io::JsonValue::object());
      fin.set("plurality_fraction_mean", m.final_fraction_mean);
      fin.set("support_mean", m.final_support_mean);
      fin.set("mono_distance_mean", m.final_mono_mean);
    }
  }
  return doc;
}

std::vector<std::string> aggregate_columns(const SweepSpec& spec) {
  std::vector<std::string> columns = {
      "cell",        "dynamics",       "workload",   "topology",   "adversary",
      "backend",     "engine",         "stop",       "n",          "k",
      "trials",      "seed",           "max_rounds", "consensus_rate",
      "win_rate",    "rounds_mean",    "rounds_p50", "rounds_p95", "rounds_min",
      "rounds_max",  "round_limit_hits", "predicate_stops", "wall_seconds"};
  const bool probes = spec.observe.m_plurality || spec.observe.trajectory > 0;
  if (spec.observe.m_plurality) {
    columns.insert(columns.end(), {"ttm_hits", "ttm_p50", "ttm_p95"});
  }
  if (probes) {
    columns.insert(columns.end(),
                   {"final_fraction_mean", "final_support_mean", "final_mono_mean"});
  }
  return columns;
}

std::vector<std::string> aggregate_row(const SweepSpec& spec, const CellOutcome& outcome) {
  const scenario::ScenarioSpec& s = outcome.requested;
  const CellMetrics& m = outcome.metrics;
  std::vector<std::string> row = {
      outcome.id,
      s.dynamics,
      s.workload,
      s.topology,
      s.adversary,
      outcome.resolved_backend,
      s.engine,
      s.stop,
      std::to_string(s.n),
      std::to_string(s.k),
      std::to_string(m.trials),
      std::to_string(s.seed),
      std::to_string(s.max_rounds),
      fmt_double(m.consensus_rate),
      fmt_double(m.win_rate),
      fmt_double(m.rounds_mean),
      fmt_double(m.rounds_p50),
      fmt_double(m.rounds_p95),
      fmt_double(m.rounds_min),
      fmt_double(m.rounds_max),
      std::to_string(m.round_limit_hits),
      std::to_string(m.predicate_stops),
      fmt_double(m.wall_seconds)};
  const bool probes = spec.observe.m_plurality || spec.observe.trajectory > 0;
  if (spec.observe.m_plurality) {
    row.push_back(fmt_double(m.ttm_hits));
    row.push_back(fmt_double(m.ttm_p50));
    row.push_back(fmt_double(m.ttm_p95));
  }
  if (probes) {
    row.push_back(fmt_double(m.final_fraction_mean));
    row.push_back(fmt_double(m.final_support_mean));
    row.push_back(fmt_double(m.final_mono_mean));
  }
  return row;
}

io::JsonValue manifest_to_json(const SweepSpec& spec,
                               const std::vector<CellOutcome>& cells) {
  io::JsonValue doc = io::JsonValue::object();
  doc.set("schema_version", std::uint64_t{io::kCheckpointSchema});
  doc.set("sweep", spec.to_json());
  io::JsonValue& cell_list = doc.set("cells", io::JsonValue::array());
  for (const CellOutcome& cell : cells) {
    io::JsonValue& entry = cell_list.push(io::JsonValue::object());
    entry.set("index", std::uint64_t{cell.index});
    entry.set("id", cell.id);
    entry.set("spec", cell.requested.to_spec_string());
    entry.set("status", cell_status_name(cell.status));
    if (cell.attempts > 0) entry.set("attempts", std::uint64_t{cell.attempts});
    if (!cell.error.empty()) entry.set("error", cell.error);
  }
  return doc;
}

void write_failures_csv(const std::string& path, const std::vector<CellOutcome>& cells) {
  const fs::path tmp = path + ".tmp";
  {
    io::CsvWriter csv(tmp.string(), {"cell", "status", "attempts", "retry_tag", "error"});
    for (const CellOutcome& cell : cells) {
      if (!cell_status_failed(cell.status)) continue;
      csv.add_row({cell.id, cell_status_name(cell.status),
                   std::to_string(cell.attempts), cell.retry_tag, cell.error});
    }
  }
  fs::rename(tmp, path);
}

void write_aggregate_csv(const std::string& path, const SweepSpec& spec,
                         std::vector<CellOutcome>& cells, bool zero_wall_times) {
  const fs::path tmp = path + ".tmp";
  {
    io::CsvWriter csv(tmp.string(), aggregate_columns(spec));
    for (CellOutcome& cell : cells) {
      if (zero_wall_times) cell.metrics.wall_seconds = 0.0;
      csv.add_row(aggregate_row(spec, cell));
    }
  }
  fs::rename(tmp, path);
}

SweepOutcome run_sweep(const SweepSpec& spec_in, const SweepOptions& options) {
  WallTimer timer;
  SweepSpec spec = spec_in;
  if (options.trials_override > 0) {
    for (const SweepAxis& axis : spec.axes) {
      PLURALITY_REQUIRE(axis.field != "trials",
                        "sweep: trials_override cannot combine with a 'trials' axis");
    }
    spec.base.trials = options.trials_override;
  }

  const std::vector<scenario::ScenarioSpec> expanded = spec.expand();
  const std::size_t total = expanded.size();

  SweepOutcome out;
  out.cells.resize(total);
  for (std::size_t i = 0; i < total; ++i) {
    out.cells[i].index = i;
    out.cells[i].id = cell_id(i);
    out.cells[i].requested = expanded[i];
  }

  // --- checkpoint directory + manifest -----------------------------------
  const bool files = !options.out_dir.empty();
  PLURALITY_REQUIRE(files || !options.resume, "sweep: resume requires an out_dir");
  fs::path cells_dir;
  fs::path quarantine_dir;
  fs::path manifest;
  if (files) {
    const fs::path dir(options.out_dir);
    cells_dir = dir / "cells";
    quarantine_dir = cells_dir / "quarantine";
    fs::create_directories(cells_dir);
    manifest = dir / "manifest.json";
    const std::string sweep_json = spec.to_json().to_string();
    if (fs::exists(manifest)) {
      if (options.resume) {
        // Schema skew and corruption both surface here with their own
        // actionable errors (a corrupt manifest means the cell table's
        // provenance is unverifiable — use a fresh out_dir).
        const io::JsonValue stored = io::read_checkpoint_file(manifest.string());
        PLURALITY_REQUIRE(stored.at("sweep").to_string() == sweep_json,
                          "sweep: manifest at " << manifest.string()
                              << " records a DIFFERENT sweep (spec or trial override "
                                 "changed); refusing to resume a mixed grid — use a "
                                 "fresh out_dir");
      } else {
        PLURALITY_REQUIRE(options.force,
                          "sweep: " << manifest.string()
                              << " already exists; pass resume to continue that sweep "
                                 "or force to start over (cell files get overwritten)");
      }
    }
    // A killed run can leave *.tmp staging files (never partial results —
    // the rename is atomic). Sweep them before writing anything new.
    remove_stray_tmp_files(dir);
    remove_stray_tmp_files(cells_dir);
    io::write_checkpoint_file(manifest.string(), manifest_to_json(spec, out.cells));
    out.manifest_path = manifest.string();
    out.failures_path = (dir / "failures.csv").string();
  }

  FaultInjector injector(options.fault_plan, options.out_dir);

  // --- resume: trust verified cells whose payload matches their spec -----
  std::size_t done = 0;
  std::vector<std::size_t> pending;
  std::vector<std::uint32_t> prior_attempts(total, 0);
  pending.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    CellOutcome& cell = out.cells[i];
    if (options.resume) {
      const fs::path path = cells_dir / (cell.id + ".json");
      if (scan_cell_file(path, quarantine_dir, cell) == CellScan::Trusted) {
        cell.status = CellStatus::Resumed;
        cell.resumed = true;
        fs::remove(ledger_path(cells_dir, cell.id));  // stale crash ledger
        ++out.resumed;
        ++done;
        if (options.on_cell) options.on_cell(cell, done, total);
        continue;
      }
      // No trusted result; a surviving ledger records attempts that died
      // with the previous process.
      prior_attempts[i] = read_attempts_ledger(ledger_path(cells_dir, cell.id));
    }
    pending.push_back(i);
  }

  // --- memory preflight ---------------------------------------------------
  const std::uint64_t budget = options.memory_budget_bytes > 0
                                   ? options.memory_budget_bytes
                                   : default_memory_budget_bytes();
#if defined(PLURALITY_HAVE_OPENMP)
  const bool parallel_cells = options.cells_in_parallel;
  const std::uint64_t threads =
      parallel_cells ? static_cast<std::uint64_t>(omp_get_max_threads()) : 1;
#else
  const bool parallel_cells = false;
  const std::uint64_t threads = 1;
#endif

  std::vector<std::size_t> parallel_batch;
  std::vector<std::size_t> serial_batch;
  for (const std::size_t i : pending) {
    CellOutcome& cell = out.cells[i];
    const std::uint64_t estimate = estimate_cell_memory_bytes(cell.requested);
    if (estimate > budget) {
      cell.status = CellStatus::FailedSpec;
      cell.error = "preflight: estimated peak memory " + format_bytes(estimate) +
                   " exceeds the sweep budget " + format_bytes(budget) +
                   " (raise memory_budget_bytes or shrink the cell)";
      ++done;
      if (options.on_cell) options.on_cell(cell, done, total);
    } else if (threads > 1 && estimate > budget / threads) {
      // Would fit alone but not times `threads`: degrade to the serial
      // phase instead of gambling on the allocator.
      serial_batch.push_back(i);
    } else {
      parallel_batch.push_back(i);
    }
  }

  // --- run cells (watchdogged, retried) -----------------------------------
  Watchdog watchdog;

  // Live telemetry: --progress-seconds implies metrics (the global
  // registry unless the caller supplied one). The progress thread reads
  // ONLY registry atomics — never the cell table, which worker threads own.
  obs::MetricsRegistry* metrics =
      options.metrics != nullptr
          ? options.metrics
          : (options.progress_seconds > 0 ? &obs::MetricsRegistry::global() : nullptr);
  std::atomic<bool> progress_stop{false};
  std::thread progress_thread;
  if (options.progress_seconds > 0 && metrics != nullptr) {
    obs::Counter& updates =
        metrics->counter("engine_node_updates_total",
                         "Node state updates (one per node per round) across all trials");
    obs::Counter& started =
        metrics->counter("sweep_cells_started_total", "Cells entering the attempt loop");
    obs::Counter& finished =
        metrics->counter("sweep_cells_finished_total", "Cells run to Done");
    obs::Counter& failed =
        metrics->counter("sweep_cells_failed_total", "Cells with a failed_* verdict");
    const double interval = options.progress_seconds;
    const std::size_t grand_total = total;
    progress_thread = std::thread([&updates, &started, &finished, &failed, &progress_stop,
                                   interval, grand_total] {
      std::uint64_t last_updates = updates.value();
      auto last_time = std::chrono::steady_clock::now();
      while (!progress_stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        const auto now = std::chrono::steady_clock::now();
        const double elapsed = std::chrono::duration<double>(now - last_time).count();
        if (elapsed < interval) continue;
        const std::uint64_t now_updates = updates.value();
        const double rate = static_cast<double>(now_updates - last_updates) / elapsed;
        last_updates = now_updates;
        last_time = now;
        const std::uint64_t s = started.value();
        const std::uint64_t f = finished.value();
        const std::uint64_t x = failed.value();
        std::fprintf(stderr,
                     "[sweep] %llu/%zu done, %llu running, %llu failed | %.3g node-upd/s\n",
                     static_cast<unsigned long long>(f + x), grand_total,
                     static_cast<unsigned long long>(s - (f + x)),
                     static_cast<unsigned long long>(x), rate);
      }
    });
  }

  const auto run_cell = [&](std::size_t i, bool in_parallel_phase) {
    CellOutcome& cell = out.cells[i];
    if (shutdown_requested()) return;  // skipped cells stay Pending (resumable)

    CellRunContext ctx;
    ctx.cells_dir = files ? cells_dir : fs::path();
    ctx.observe = spec.observe;
    ctx.zero_wall_times = options.zero_wall_times;
    ctx.cell_timeout_seconds = options.cell_timeout_seconds;
    ctx.max_retries = options.max_retries;
    ctx.retry_backoff_seconds = options.retry_backoff_seconds;
    ctx.force_serial_trials = in_parallel_phase && parallel_cells;
    ctx.prior_attempts = prior_attempts[i];
    ctx.injector = &injector;
    ctx.watchdog = &watchdog;
    ctx.metrics = metrics;
    run_cell_to_verdict(cell, ctx);

#if defined(PLURALITY_HAVE_OPENMP)
#pragma omp critical(plurality_sweep_progress)
#endif
    {
      ++done;
      if (options.on_cell) options.on_cell(cell, done, total);
    }
  };

#if defined(PLURALITY_HAVE_OPENMP)
  if (parallel_cells) {
#pragma omp parallel for schedule(dynamic, 1)
    for (std::size_t p = 0; p < parallel_batch.size(); ++p) {
      run_cell(parallel_batch[p], true);
    }
  } else {
    for (const std::size_t i : parallel_batch) run_cell(i, false);
  }
#else
  for (const std::size_t i : parallel_batch) run_cell(i, false);
#endif
  // Degraded phase: cells whose estimate does not fit next to siblings run
  // alone, with their spec's own trial parallelism intact.
  for (const std::size_t i : serial_batch) run_cell(i, false);

  if (progress_thread.joinable()) {
    progress_stop.store(true, std::memory_order_release);
    progress_thread.join();
  }

  // --- account statuses ----------------------------------------------------
  bool complete = true;
  for (const CellOutcome& cell : out.cells) {
    switch (cell.status) {
      case CellStatus::Done:
        ++out.ran;
        break;
      case CellStatus::Resumed:
        break;
      case CellStatus::Interrupted:
      case CellStatus::Pending:
        out.interrupted = true;
        complete = false;
        break;
      default:
        ++out.failed;
        complete = false;
        break;
    }
  }
  if (shutdown_requested()) out.interrupted = true;

  // --- failure table + final manifest -------------------------------------
  if (files) {
    // Prune attempts ledgers for cells that reached a clean verdict — a
    // ledger's job ends when its cell's story does. (Covers ledgers left
    // by OTHER processes of this out_dir, e.g. a service worker that died
    // between committing the cell file and removing its ledger.)
    for (const CellOutcome& cell : out.cells) {
      if (cell.status == CellStatus::Done || cell.status == CellStatus::Resumed) {
        fs::remove(ledger_path(cells_dir, cell.id));
      }
    }
    write_failures_csv((fs::path(options.out_dir) / "failures.csv").string(), out.cells);
    io::write_checkpoint_file(manifest.string(), manifest_to_json(spec, out.cells));
  }

  // --- aggregate (complete runs only) --------------------------------------
  if (files && complete) {
    const std::string aggregate = (fs::path(options.out_dir) / "aggregate.csv").string();
    write_aggregate_csv(aggregate, spec, out.cells, options.zero_wall_times);
    out.aggregate_path = aggregate;
  }

  out.wall_seconds = timer.seconds();
  return out;
}

}  // namespace plurality::sweep
