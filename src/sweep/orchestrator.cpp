#include "sweep/orchestrator.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>

#include "core/observer.hpp"
#include "io/checkpoint.hpp"
#include "io/csv.hpp"
#include "rng/philox.hpp"
#include "scenario/scenario.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"
#include "sweep/preflight.hpp"
#include "sweep/watchdog.hpp"

#if defined(PLURALITY_HAVE_OPENMP)
#include <omp.h>
#endif

namespace plurality::sweep {

namespace fs = std::filesystem;

namespace {

/// Stream-family tag for retry-scoped randomness (backoff jitter). Trial
/// streams NEVER derive from it — a retried cell reproduces its
/// first-attempt results bitwise.
constexpr std::uint64_t kRetryStreamTag = 0x7265747279ull;  // "retry"

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

std::string fmt_hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::uint64_t retry_stream_word(std::uint64_t cell_seed, std::uint32_t attempt,
                                std::uint64_t w) {
  return rng::Philox4x32::word(rng::Philox4x32::key_from_seed(cell_seed, kRetryStreamTag),
                               attempt, w);
}

ProbeOptions probe_options(const ObserveSpec& observe, std::uint64_t trials) {
  ProbeOptions options;
  options.trials = trials;
  options.trajectory_capacity = observe.trajectory;
  options.trajectory_stride = observe.trajectory_stride;
  options.track_m_plurality = observe.m_plurality;
  options.m_plurality = observe.m;
  return options;
}

CellMetrics metrics_from_run(const TrialSummary& summary, double wall_seconds,
                             const ProbeObserver* probe, const ObserveSpec& observe) {
  CellMetrics m;
  m.trials = summary.trials;
  m.consensus_count = summary.consensus_count;
  m.plurality_wins = summary.plurality_wins;
  m.round_limit_hits = summary.round_limit_hits;
  m.predicate_stops = summary.predicate_stops;
  m.rounds_count = summary.rounds.count();
  m.consensus_rate = summary.consensus_rate();
  m.win_rate = summary.win_rate();
  if (summary.rounds.count() > 0) {
    m.rounds_mean = summary.rounds.mean();
    m.rounds_min = summary.rounds.min();
    m.rounds_max = summary.rounds.max();
    m.rounds_p50 = summary.rounds_p(0.5);
    m.rounds_p95 = summary.rounds_p(0.95);
  }
  m.wall_seconds = wall_seconds;
  if (probe != nullptr) {
    if (probe->final_plurality_fraction().count() > 0) {
      m.final_fraction_mean = probe->final_plurality_fraction().mean();
      m.final_support_mean = probe->final_support().mean();
      m.final_mono_mean = probe->final_mono_distance().mean();
    }
    if (observe.m_plurality) {
      m.ttm_hits = static_cast<double>(probe->m_plurality_hits());
      if (probe->m_plurality_hits() > 0) {
        m.ttm_p50 = probe->time_to_m_sketch().quantile(0.5);
        m.ttm_p95 = probe->time_to_m_sketch().quantile(0.95);
      }
    }
  }
  return m;
}

/// Reloads the CSV-level metrics from a completed cell payload (resume).
CellMetrics metrics_from_json(const io::JsonValue& doc) {
  CellMetrics m;
  const io::JsonValue& summary = doc.at("summary");
  m.trials = summary.at("trials").as_uint();
  m.consensus_count = summary.at("consensus_count").as_uint();
  m.plurality_wins = summary.at("plurality_wins").as_uint();
  m.round_limit_hits = summary.at("round_limit_hits").as_uint();
  m.predicate_stops = summary.at("predicate_stops").as_uint();
  m.consensus_rate = summary.at("consensus_rate").as_double();
  m.win_rate = summary.at("win_rate").as_double();
  const io::JsonValue& rounds = summary.at("rounds");
  m.rounds_count = rounds.at("count").as_uint();
  if (m.rounds_count > 0) {
    m.rounds_mean = rounds.at("mean").as_double();
    m.rounds_min = rounds.at("min").as_double();
    m.rounds_max = rounds.at("max").as_double();
    m.rounds_p50 = rounds.at("p50").as_double();
    m.rounds_p95 = rounds.at("p95").as_double();
  }
  m.wall_seconds = doc.at("wall_seconds").as_double();
  if (const io::JsonValue* observers = doc.get("observers")) {
    if (const io::JsonValue* ttm = observers->get("m_plurality")) {
      m.ttm_hits = static_cast<double>(ttm->at("hits").as_uint());
      if (const io::JsonValue* p50 = ttm->get("p50")) m.ttm_p50 = p50->as_double();
      if (const io::JsonValue* p95 = ttm->get("p95")) m.ttm_p95 = p95->as_double();
    }
    if (const io::JsonValue* fin = observers->get("final")) {
      m.final_fraction_mean = fin->at("plurality_fraction_mean").as_double();
      m.final_support_mean = fin->at("support_mean").as_double();
      m.final_mono_mean = fin->at("mono_distance_mean").as_double();
    }
  }
  return m;
}

void write_trajectory_csv(const fs::path& path, const ProbeObserver& probe) {
  const fs::path tmp = path.string() + ".tmp";
  {
    io::CsvWriter csv(tmp.string(),
                      {"trial", "round", "plurality_fraction", "support", "mono_distance"});
    for (std::uint64_t trial = 0; trial < probe.options().trials; ++trial) {
      for (const ProbeRow& row : probe.trajectory(trial)) {
        csv.add_row({std::to_string(trial), std::to_string(row.round),
                     fmt_double(row.plurality_fraction),
                     std::to_string(static_cast<std::uint64_t>(row.support)),
                     fmt_double(row.mono_distance)});
      }
    }
  }
  fs::rename(tmp, path);
}

/// Moves a corrupt checkpoint into cells/quarantine/ under a unique name —
/// the bytes are evidence (what corrupted them?), never silently deleted.
std::string quarantine_file(const fs::path& path, const fs::path& quarantine_dir) {
  fs::create_directories(quarantine_dir);
  fs::path target = quarantine_dir / path.filename();
  for (int n = 1; fs::exists(target); ++n) {
    target = quarantine_dir / (path.filename().string() + "." + std::to_string(n));
  }
  fs::rename(path, target);
  return target.string();
}

/// The per-cell attempts ledger survives process deaths: written before
/// each attempt, removed on success/interrupt. A resume finding a ledger
/// but no valid result file knows the process died mid-cell — those
/// attempts count against the retry budget (or the cell would crash-loop
/// under a persistent fault forever).
fs::path ledger_path(const fs::path& cells_dir, const std::string& id) {
  return cells_dir / (id + ".attempts.json");
}

std::uint32_t read_ledger(const fs::path& path) {
  if (!fs::exists(path)) return 0;
  try {
    return static_cast<std::uint32_t>(
        io::read_json_file(path.string()).at("attempts").as_uint());
  } catch (const CheckError&) {
    return 0;  // unreadable ledger: assume nothing, the cell just retries
  }
}

void write_ledger(const fs::path& path, std::uint32_t attempts) {
  io::JsonValue doc = io::JsonValue::object();
  doc.set("attempts", std::uint64_t{attempts});
  io::atomic_write_text(path.string(), doc.to_string());
}

void remove_stray_tmp_files(const fs::path& dir) {
  if (!fs::exists(dir)) return;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".tmp") {
      fs::remove(entry.path());
    }
  }
}

/// Chunked sleep that gives up early on shutdown — a backoff must never
/// outlive a Ctrl-C.
void backoff_sleep(double seconds) {
  const auto start = std::chrono::steady_clock::now();
  const auto budget = std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() - start < budget) {
    if (shutdown_requested()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

}  // namespace

const char* cell_status_name(CellStatus status) {
  switch (status) {
    case CellStatus::Pending: return "pending";
    case CellStatus::Done: return "done";
    case CellStatus::Resumed: return "resumed";
    case CellStatus::FailedTimeout: return "failed_timeout";
    case CellStatus::FailedCrash: return "failed_crash";
    case CellStatus::FailedCorrupt: return "failed_corrupt";
    case CellStatus::FailedSpec: return "failed_spec";
    case CellStatus::Interrupted: return "interrupted";
  }
  return "?";
}

bool cell_status_failed(CellStatus status) {
  switch (status) {
    case CellStatus::FailedTimeout:
    case CellStatus::FailedCrash:
    case CellStatus::FailedCorrupt:
    case CellStatus::FailedSpec:
      return true;
    default:
      return false;
  }
}

io::JsonValue cell_result_to_json(const CellOutcome& outcome) {
  scenario::ScenarioResult result;
  result.resolved = outcome.requested;
  result.resolved.backend = outcome.resolved_backend;
  result.summary = outcome.summary;
  result.wall_seconds = outcome.metrics.wall_seconds;
  io::JsonValue doc = scenario::scenario_result_to_json(result);

  io::JsonValue& cell = doc.set("cell", io::JsonValue::object());
  cell.set("index", std::uint64_t{outcome.index});
  cell.set("id", outcome.id);
  // The PRE-resolution spec string — what resume matches against, so a
  // re-expanded grid recognizes its own cells even through backend=auto.
  cell.set("requested", outcome.requested.to_spec_string());

  if (outcome.attempts > 1) {
    // Retry audit block: how many attempts this result took, and the
    // retry-derived stream tag (keys backoff jitter only — the summary
    // above is bitwise what attempt 1 would have produced).
    io::JsonValue& retry = doc.set("retry", io::JsonValue::object());
    retry.set("attempts", std::uint64_t{outcome.attempts});
    retry.set("stream_tag", outcome.retry_tag);
  }

  const CellMetrics& m = outcome.metrics;
  if (m.ttm_hits >= 0.0 || m.final_fraction_mean >= 0.0) {
    io::JsonValue& observers = doc.set("observers", io::JsonValue::object());
    if (m.ttm_hits >= 0.0) {
      io::JsonValue& ttm = observers.set("m_plurality", io::JsonValue::object());
      ttm.set("hits", static_cast<std::uint64_t>(m.ttm_hits));
      if (m.ttm_hits > 0.0) {
        ttm.set("p50", m.ttm_p50);
        ttm.set("p95", m.ttm_p95);
      }
    }
    if (m.final_fraction_mean >= 0.0) {
      io::JsonValue& fin = observers.set("final", io::JsonValue::object());
      fin.set("plurality_fraction_mean", m.final_fraction_mean);
      fin.set("support_mean", m.final_support_mean);
      fin.set("mono_distance_mean", m.final_mono_mean);
    }
  }
  return doc;
}

std::vector<std::string> aggregate_columns(const SweepSpec& spec) {
  std::vector<std::string> columns = {
      "cell",        "dynamics",       "workload",   "topology",   "adversary",
      "backend",     "engine",         "stop",       "n",          "k",
      "trials",      "seed",           "max_rounds", "consensus_rate",
      "win_rate",    "rounds_mean",    "rounds_p50", "rounds_p95", "rounds_min",
      "rounds_max",  "round_limit_hits", "predicate_stops", "wall_seconds"};
  const bool probes = spec.observe.m_plurality || spec.observe.trajectory > 0;
  if (spec.observe.m_plurality) {
    columns.insert(columns.end(), {"ttm_hits", "ttm_p50", "ttm_p95"});
  }
  if (probes) {
    columns.insert(columns.end(),
                   {"final_fraction_mean", "final_support_mean", "final_mono_mean"});
  }
  return columns;
}

std::vector<std::string> aggregate_row(const SweepSpec& spec, const CellOutcome& outcome) {
  const scenario::ScenarioSpec& s = outcome.requested;
  const CellMetrics& m = outcome.metrics;
  std::vector<std::string> row = {
      outcome.id,
      s.dynamics,
      s.workload,
      s.topology,
      s.adversary,
      outcome.resolved_backend,
      s.engine,
      s.stop,
      std::to_string(s.n),
      std::to_string(s.k),
      std::to_string(m.trials),
      std::to_string(s.seed),
      std::to_string(s.max_rounds),
      fmt_double(m.consensus_rate),
      fmt_double(m.win_rate),
      fmt_double(m.rounds_mean),
      fmt_double(m.rounds_p50),
      fmt_double(m.rounds_p95),
      fmt_double(m.rounds_min),
      fmt_double(m.rounds_max),
      std::to_string(m.round_limit_hits),
      std::to_string(m.predicate_stops),
      fmt_double(m.wall_seconds)};
  const bool probes = spec.observe.m_plurality || spec.observe.trajectory > 0;
  if (spec.observe.m_plurality) {
    row.push_back(fmt_double(m.ttm_hits));
    row.push_back(fmt_double(m.ttm_p50));
    row.push_back(fmt_double(m.ttm_p95));
  }
  if (probes) {
    row.push_back(fmt_double(m.final_fraction_mean));
    row.push_back(fmt_double(m.final_support_mean));
    row.push_back(fmt_double(m.final_mono_mean));
  }
  return row;
}

namespace {

io::JsonValue manifest_payload(const SweepSpec& spec,
                               const std::vector<CellOutcome>& cells) {
  io::JsonValue doc = io::JsonValue::object();
  doc.set("schema_version", std::uint64_t{io::kCheckpointSchema});
  doc.set("sweep", spec.to_json());
  io::JsonValue& cell_list = doc.set("cells", io::JsonValue::array());
  for (const CellOutcome& cell : cells) {
    io::JsonValue& entry = cell_list.push(io::JsonValue::object());
    entry.set("index", std::uint64_t{cell.index});
    entry.set("id", cell.id);
    entry.set("spec", cell.requested.to_spec_string());
    entry.set("status", cell_status_name(cell.status));
    if (cell.attempts > 0) entry.set("attempts", std::uint64_t{cell.attempts});
    if (!cell.error.empty()) entry.set("error", cell.error);
  }
  return doc;
}

}  // namespace

SweepOutcome run_sweep(const SweepSpec& spec_in, const SweepOptions& options) {
  WallTimer timer;
  SweepSpec spec = spec_in;
  if (options.trials_override > 0) {
    for (const SweepAxis& axis : spec.axes) {
      PLURALITY_REQUIRE(axis.field != "trials",
                        "sweep: trials_override cannot combine with a 'trials' axis");
    }
    spec.base.trials = options.trials_override;
  }

  const std::vector<scenario::ScenarioSpec> expanded = spec.expand();
  const std::size_t total = expanded.size();
  const bool probes_on = spec.observe.m_plurality || spec.observe.trajectory > 0;

  SweepOutcome out;
  out.cells.resize(total);
  for (std::size_t i = 0; i < total; ++i) {
    out.cells[i].index = i;
    out.cells[i].id = cell_id(i);
    out.cells[i].requested = expanded[i];
  }

  // --- checkpoint directory + manifest -----------------------------------
  const bool files = !options.out_dir.empty();
  PLURALITY_REQUIRE(files || !options.resume, "sweep: resume requires an out_dir");
  fs::path cells_dir;
  fs::path quarantine_dir;
  fs::path manifest;
  if (files) {
    const fs::path dir(options.out_dir);
    cells_dir = dir / "cells";
    quarantine_dir = cells_dir / "quarantine";
    fs::create_directories(cells_dir);
    manifest = dir / "manifest.json";
    const std::string sweep_json = spec.to_json().to_string();
    if (fs::exists(manifest)) {
      if (options.resume) {
        // Schema skew and corruption both surface here with their own
        // actionable errors (a corrupt manifest means the cell table's
        // provenance is unverifiable — use a fresh out_dir).
        const io::JsonValue stored = io::read_checkpoint_file(manifest.string());
        PLURALITY_REQUIRE(stored.at("sweep").to_string() == sweep_json,
                          "sweep: manifest at " << manifest.string()
                              << " records a DIFFERENT sweep (spec or trial override "
                                 "changed); refusing to resume a mixed grid — use a "
                                 "fresh out_dir");
      } else {
        PLURALITY_REQUIRE(options.force,
                          "sweep: " << manifest.string()
                              << " already exists; pass resume to continue that sweep "
                                 "or force to start over (cell files get overwritten)");
      }
    }
    // A killed run can leave *.tmp staging files (never partial results —
    // the rename is atomic). Sweep them before writing anything new.
    remove_stray_tmp_files(dir);
    remove_stray_tmp_files(cells_dir);
    io::write_checkpoint_file(manifest.string(), manifest_payload(spec, out.cells));
    out.manifest_path = manifest.string();
    out.failures_path = (dir / "failures.csv").string();
  }

  FaultInjector injector(options.fault_plan, options.out_dir);

  // --- resume: trust verified cells whose payload matches their spec -----
  std::size_t done = 0;
  std::vector<std::size_t> pending;
  std::vector<std::uint32_t> prior_attempts(total, 0);
  pending.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    CellOutcome& cell = out.cells[i];
    if (options.resume) {
      const fs::path path = cells_dir / (cell.id + ".json");
      if (fs::exists(path)) {
        bool trusted = false;
        try {
          const io::JsonValue doc = io::read_checkpoint_file(path.string());
          if (doc.at("cell").at("requested").as_string() ==
              cell.requested.to_spec_string()) {
            cell.metrics = metrics_from_json(doc);
            cell.resolved_backend = doc.at("spec").at("backend").as_string();
            if (const io::JsonValue* retry = doc.get("retry")) {
              cell.attempts = static_cast<std::uint32_t>(retry->at("attempts").as_uint());
              cell.retry_tag = retry->at("stream_tag").as_string();
            }
            trusted = true;
          }
          // A verified file for a DIFFERENT spec: not corruption — the
          // grid changed around it (caught above for whole-manifest skew);
          // recompute.
        } catch (const io::CheckpointSchemaError&) {
          throw;  // version skew is a hard, actionable refusal — never silent
        } catch (const CheckError&) {
          // Corrupt (CRC mismatch, truncation, malformed envelope) or a
          // verified envelope with an impossible payload shape: quarantine
          // the bytes as evidence, recompute the cell.
          const std::string moved = quarantine_file(path, quarantine_dir);
          std::fprintf(stderr, "sweep: quarantined corrupt checkpoint %s -> %s\n",
                       path.string().c_str(), moved.c_str());
        }
        if (trusted) {
          cell.status = CellStatus::Resumed;
          cell.resumed = true;
          fs::remove(ledger_path(cells_dir, cell.id));  // stale crash ledger
          ++out.resumed;
          ++done;
          if (options.on_cell) options.on_cell(cell, done, total);
          continue;
        }
      }
      // No trusted result; a surviving ledger records attempts that died
      // with the previous process.
      prior_attempts[i] = read_ledger(ledger_path(cells_dir, cell.id));
    }
    pending.push_back(i);
  }

  // --- memory preflight ---------------------------------------------------
  const std::uint64_t budget = options.memory_budget_bytes > 0
                                   ? options.memory_budget_bytes
                                   : default_memory_budget_bytes();
#if defined(PLURALITY_HAVE_OPENMP)
  const bool parallel_cells = options.cells_in_parallel;
  const std::uint64_t threads =
      parallel_cells ? static_cast<std::uint64_t>(omp_get_max_threads()) : 1;
#else
  const bool parallel_cells = false;
  const std::uint64_t threads = 1;
#endif

  std::vector<std::size_t> parallel_batch;
  std::vector<std::size_t> serial_batch;
  for (const std::size_t i : pending) {
    CellOutcome& cell = out.cells[i];
    const std::uint64_t estimate = estimate_cell_memory_bytes(cell.requested);
    if (estimate > budget) {
      cell.status = CellStatus::FailedSpec;
      cell.error = "preflight: estimated peak memory " + format_bytes(estimate) +
                   " exceeds the sweep budget " + format_bytes(budget) +
                   " (raise memory_budget_bytes or shrink the cell)";
      ++done;
      if (options.on_cell) options.on_cell(cell, done, total);
    } else if (threads > 1 && estimate > budget / threads) {
      // Would fit alone but not times `threads`: degrade to the serial
      // phase instead of gambling on the allocator.
      serial_batch.push_back(i);
    } else {
      parallel_batch.push_back(i);
    }
  }

  // --- run cells (watchdogged, retried) -----------------------------------
  Watchdog watchdog;

  const auto run_cell = [&](std::size_t i, bool in_parallel_phase) {
    CellOutcome& cell = out.cells[i];
    if (shutdown_requested()) return;  // skipped cells stay Pending (resumable)

    const std::string spec_string = cell.requested.to_spec_string();
    const fs::path cell_path = files ? cells_dir / (cell.id + ".json") : fs::path();
    const fs::path ledger = files ? ledger_path(cells_dir, cell.id) : fs::path();

    scenario::ScenarioSpec run_spec = cell.requested;
    if (in_parallel_phase && parallel_cells) {
      // Cells are the parallel unit here; nested trial teams would
      // oversubscribe. Trial results are thread-count invariant, so this
      // changes scheduling only.
      run_spec.parallel = false;
    }

    CancellationToken token;
    std::uint32_t attempt = prior_attempts[i];
    if (attempt > options.max_retries) {
      // The ledger shows this cell already burned its whole budget killing
      // processes — do not run it an (N+2)th time.
      cell.status = CellStatus::FailedCrash;
      cell.attempts = attempt;
      cell.error = "process died during " + std::to_string(attempt) +
                   " attempt(s) (attempts ledger); retry budget exhausted";
      if (files) fs::remove(ledger);  // a future resume starts fresh
    }
    while (cell.status == CellStatus::Pending) {
      ++attempt;
      cell.attempts = attempt;
      if (attempt > 1) {
        cell.retry_tag = fmt_hex64(retry_stream_word(cell.requested.seed, attempt, 0));
      }
      if (files) write_ledger(ledger, attempt);

      token.reset();
      const auto deadline =
          options.cell_timeout_seconds > 0
              ? Watchdog::Clock::now() + std::chrono::duration_cast<Watchdog::Clock::duration>(
                    std::chrono::duration<double>(options.cell_timeout_seconds))
              : Watchdog::Clock::time_point::max();
      const std::uint64_t handle = watchdog.watch(&token, deadline);

      CellStatus failure = CellStatus::Pending;  // Pending = no failure yet
      try {
        injector.at_driver_start(i, cell.id, spec_string, &token);

        std::unique_ptr<ProbeObserver> probe;
        if (probes_on) {
          probe = std::make_unique<ProbeObserver>(probe_options(spec.observe, run_spec.trials));
        }
        const scenario::ScenarioResult result =
            scenario::run_scenario(run_spec, probe.get(), &token);
        if (probe != nullptr) probe->finalize();
        cell.resolved_backend = result.resolved.backend;
        cell.summary = result.summary;
        cell.metrics = metrics_from_run(result.summary,
                                        options.zero_wall_times ? 0.0 : result.wall_seconds,
                                        probe.get(), spec.observe);
        if (files) {
          std::string text = io::checkpoint_envelope_text(cell_result_to_json(cell));
          injector.mutate_checkpoint_text(i, cell.id, spec_string, text);
          injector.at_write_point(i, cell.id, spec_string, CrashPoint::BeforeWrite);
          const fs::path tmp = cell_path.string() + ".tmp";
          {
            std::ofstream out_file(tmp, std::ios::binary | std::ios::trunc);
            out_file << text;
            out_file.flush();
            PLURALITY_REQUIRE(out_file.good(), "sweep: cannot write " << tmp.string());
          }
          injector.at_write_point(i, cell.id, spec_string, CrashPoint::MidWrite);
          fs::rename(tmp, cell_path);
          injector.at_write_point(i, cell.id, spec_string, CrashPoint::AfterWrite);

          // Read-back verification closes the loop: if what landed on disk
          // does not CRC-verify (injected corruption, actual I/O fault),
          // this attempt FAILED even though the driver succeeded.
          try {
            (void)io::read_checkpoint_file(cell_path.string());
          } catch (const io::CheckpointCorruptError& e) {
            const std::string moved = quarantine_file(cell_path, quarantine_dir);
            throw io::CheckpointCorruptError(std::string(e.what()) +
                                             " (quarantined to " + moved + ")");
          }
          if (spec.observe.trajectory > 0 && probe != nullptr) {
            write_trajectory_csv(cells_dir / (cell.id + "_trajectory.csv"), *probe);
          }
        }
        cell.status = CellStatus::Done;
        cell.error.clear();
        if (files) fs::remove(ledger);
      } catch (const CancelledError& e) {
        if (e.reason() == CancellationToken::Reason::kShutdown) {
          // Not a failure: the user asked the whole sweep to stop. Drop
          // the ledger — a clean cancellation is not a crash.
          cell.status = CellStatus::Interrupted;
          cell.error = e.what();
          if (files) fs::remove(ledger);
        } else {
          failure = CellStatus::FailedTimeout;
          cell.error = e.what();
        }
      } catch (const io::CheckpointCorruptError& e) {
        failure = CellStatus::FailedCorrupt;
        cell.error = e.what();
      } catch (const CheckError& e) {
        // Spec/validation errors are deterministic — retrying re-proves them.
        cell.status = CellStatus::FailedSpec;
        cell.error = e.what();
        if (files) fs::remove(ledger);
      } catch (const std::exception& e) {
        failure = CellStatus::FailedCrash;
        cell.error = e.what();
      }
      watchdog.unwatch(handle);

      if (failure == CellStatus::Pending) break;  // success / terminal verdict
      if (shutdown_requested()) {
        // A retryable failure racing a shutdown stays RESUMABLE, not failed.
        cell.status = CellStatus::Interrupted;
        if (files) fs::remove(ledger);
        break;
      }
      if (attempt > options.max_retries) {
        cell.status = failure;
        if (files) fs::remove(ledger);  // a future resume starts fresh
        break;
      }
      // Exponential backoff with a jitter drawn from the retry stream (the
      // ONLY consumer of retry-derived randomness).
      const double jitter =
          static_cast<double>(retry_stream_word(cell.requested.seed, attempt, 1) % 1000) /
          1000.0;
      const std::uint32_t doublings = attempt - 1 < 20 ? attempt - 1 : 20;
      backoff_sleep(options.retry_backoff_seconds *
                    static_cast<double>(std::uint64_t{1} << doublings) * (1.0 + jitter));
    }

#if defined(PLURALITY_HAVE_OPENMP)
#pragma omp critical(plurality_sweep_progress)
#endif
    {
      ++done;
      if (options.on_cell) options.on_cell(cell, done, total);
    }
  };

#if defined(PLURALITY_HAVE_OPENMP)
  if (parallel_cells) {
#pragma omp parallel for schedule(dynamic, 1)
    for (std::size_t p = 0; p < parallel_batch.size(); ++p) {
      run_cell(parallel_batch[p], true);
    }
  } else {
    for (const std::size_t i : parallel_batch) run_cell(i, false);
  }
#else
  for (const std::size_t i : parallel_batch) run_cell(i, false);
#endif
  // Degraded phase: cells whose estimate does not fit next to siblings run
  // alone, with their spec's own trial parallelism intact.
  for (const std::size_t i : serial_batch) run_cell(i, false);

  // --- account statuses ----------------------------------------------------
  bool complete = true;
  for (const CellOutcome& cell : out.cells) {
    switch (cell.status) {
      case CellStatus::Done:
        ++out.ran;
        break;
      case CellStatus::Resumed:
        break;
      case CellStatus::Interrupted:
      case CellStatus::Pending:
        out.interrupted = true;
        complete = false;
        break;
      default:
        ++out.failed;
        complete = false;
        break;
    }
  }
  if (shutdown_requested()) out.interrupted = true;

  // --- failure table + final manifest -------------------------------------
  if (files) {
    const fs::path failures = fs::path(options.out_dir) / "failures.csv";
    const fs::path tmp = failures.string() + ".tmp";
    {
      io::CsvWriter csv(tmp.string(), {"cell", "status", "attempts", "retry_tag", "error"});
      for (const CellOutcome& cell : out.cells) {
        if (!cell_status_failed(cell.status)) continue;
        csv.add_row({cell.id, cell_status_name(cell.status),
                     std::to_string(cell.attempts), cell.retry_tag, cell.error});
      }
    }
    fs::rename(tmp, failures);
    io::write_checkpoint_file(manifest.string(), manifest_payload(spec, out.cells));
  }

  // --- aggregate (complete runs only) --------------------------------------
  if (files && complete) {
    const fs::path aggregate = fs::path(options.out_dir) / "aggregate.csv";
    const fs::path tmp = aggregate.string() + ".tmp";
    {
      io::CsvWriter csv(tmp.string(), aggregate_columns(spec));
      for (CellOutcome& cell : out.cells) {
        if (options.zero_wall_times) cell.metrics.wall_seconds = 0.0;
        csv.add_row(aggregate_row(spec, cell));
      }
    }
    fs::rename(tmp, aggregate);
    out.aggregate_path = aggregate.string();
  }

  out.wall_seconds = timer.seconds();
  return out;
}

}  // namespace plurality::sweep
