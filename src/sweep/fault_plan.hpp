// Deterministic fault injection for the sweep orchestrator.
//
// Every recovery path the orchestrator promises — timeout, retry, crash
// resume, corrupt-checkpoint quarantine — must be exercised by tests and
// CI, not hoped for. A FaultPlan is a declarative, seeded list of faults
// addressed at specific cells of a sweep:
//
//   {
//     "seed": 7,
//     "faults": [
//       {"cell": "cell_00002", "kind": "throw"},
//       {"cell": 3, "kind": "hang", "seconds": 30},
//       {"match": "backend=graph k=8", "kind": "crash", "point": "mid_write"},
//       {"cell": "cell_00005", "kind": "corrupt", "times": 2}
//     ]
//   }
//
// Kinds:
//   throw    the driver throws mid-cell (an in-process crash)
//   hang     the cell stalls (cooperative sleep — simulates a computation
//            that runs past its deadline; returns early once its token or
//            a shutdown request fires, which is exactly when a real
//            watchdogged computation would be abandoned)
//   crash    the PROCESS dies (std::_Exit) at a chosen point around the
//            cell's checkpoint write: "before_write" (result computed,
//            nothing on disk), "mid_write" (tmp written, rename never
//            happens — the atomic-write discipline's worst case), or
//            "after_write" (complete file on disk, bookkeeping unfinished)
//   corrupt  the serialized checkpoint has one payload byte flipped before
//            it hits disk (byte chosen by the plan's seed via Philox, so
//            the corruption is reproducible)
//
// Network kinds (fire only inside the sweep service's worker — the
// in-process orchestrator has no network and ignores them):
//   drop_heartbeat  the worker stops heartbeating for the REST of the
//                   current lease while still computing — the classic
//                   "alive but partitioned" failure. Exercises lease
//                   expiry, reassignment, and the duplicate-completion
//                   race (two workers finishing one cell)
//   stall_conn      the worker's connection stalls for `seconds` right
//                   before it reports completion — a slow/buffering
//                   network path
//   worker_crash    the worker PROCESS dies (std::_Exit, exit code 86)
//                   the moment it accepts a lease — the hard-kill case
//                   masters must survive
//
// Addressing: "cell" takes a cell id ("cell_00002") or a bare index;
// "match" fires on every cell whose expanded spec string contains the
// substring — so faults can target "whatever cell runs k=64 on graph"
// without knowing its index.
//
// Each fault fires at most `times` times (default 1). Firings are
// PERSISTED as marker files under <out_dir>/faults/, so a crash fault
// does not re-kill every resume attempt — after its budget is spent, the
// cell runs clean. (Without an out_dir, counts are in-memory.)
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "io/json.hpp"
#include "support/cancellation.hpp"

namespace plurality::sweep {

/// Exit code of an injected process crash — distinct from every normal
/// exit path so the torture harness can assert the crash actually fired.
inline constexpr int kFaultCrashExitCode = 86;

enum class FaultKind { Throw, Hang, Crash, Corrupt, DropHeartbeat, StallConn, WorkerCrash };
enum class CrashPoint { BeforeWrite, MidWrite, AfterWrite };

struct FaultSpec {
  /// Cell addressing: exactly one of (cell id / index) or match is set.
  std::string cell_id;     // "cell_00002" form; empty if unused
  bool by_index = false;
  std::size_t index = 0;
  std::string match;       // spec-substring form; empty if unused
  FaultKind kind = FaultKind::Throw;
  CrashPoint point = CrashPoint::BeforeWrite;  // crash kind only
  double seconds = 30.0;   // hang kind only
  std::uint32_t times = 1;

  [[nodiscard]] bool matches(std::size_t cell_index, const std::string& id,
                             const std::string& spec_string) const;
};

struct FaultPlan {
  std::uint64_t seed = 1;  // seeds the corrupt-byte choice
  std::vector<FaultSpec> faults;

  [[nodiscard]] bool empty() const { return faults.empty(); }

  /// Strict JSON (unknown keys throw): {"seed": u64?, "faults": [...]}.
  static FaultPlan from_json(const io::JsonValue& doc);
  static FaultPlan from_json_file(const std::string& path);
};

/// Runtime face the orchestrator calls at its injection points. Thread-safe
/// (cells run in parallel); counts persist under <out_dir>/faults/ when an
/// out_dir is given.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, const std::string& out_dir);

  [[nodiscard]] bool empty() const { return plan_.empty(); }

  /// Injection point: cell driver start. Throw faults raise
  /// std::runtime_error here; hang faults sleep (cooperatively watching
  /// `token` and the shutdown flag).
  void at_driver_start(std::size_t index, const std::string& id,
                       const std::string& spec_string, const CancellationToken* token);

  /// Injection point: checkpoint bytes about to be written. Corrupt faults
  /// flip one payload byte of `text` (seeded, reproducible).
  void mutate_checkpoint_text(std::size_t index, const std::string& id,
                              const std::string& spec_string, std::string& text);

  /// Injection point: before / between / after the tmp-write + rename pair.
  /// Crash faults call std::_Exit(kFaultCrashExitCode) — the fired marker
  /// is persisted FIRST, so the next process sees the budget spent.
  void at_write_point(std::size_t index, const std::string& id,
                      const std::string& spec_string, CrashPoint point);

  // --- service-worker injection points (network kinds) -------------------

  /// Injection point: worker accepted a lease. worker_crash faults die
  /// here (std::_Exit(kFaultCrashExitCode), marker persisted first).
  void at_lease_start(std::size_t index, const std::string& id,
                      const std::string& spec_string);

  /// Injection point: worker's heartbeat loop is about to start for a
  /// lease. True = a drop_heartbeat fault fired; the worker suppresses
  /// every heartbeat for the REMAINDER of this lease (while continuing to
  /// compute), so the master sees it as dead and reassigns.
  [[nodiscard]] bool should_drop_heartbeats(std::size_t index, const std::string& id,
                                            const std::string& spec_string);

  /// Injection point: worker about to report a cell's completion. Returns
  /// the stall duration of a fired stall_conn fault (0 = none fired).
  [[nodiscard]] double stall_connection_seconds(std::size_t index, const std::string& id,
                                                const std::string& spec_string);

 private:
  /// True iff fault `fault_index` should fire for this cell now; records
  /// the firing (marker file or in-memory count) before returning true.
  bool arm(std::size_t fault_index, const FaultSpec& fault, const std::string& id);

  FaultPlan plan_;
  std::string fault_dir_;  // empty = in-memory counts only
  std::mutex mutex_;
  std::map<std::string, std::uint32_t> memory_counts_;
};

}  // namespace plurality::sweep
