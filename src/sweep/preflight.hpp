// Arena-size preflight for sweep cells.
//
// A sweep grid can hold one cell whose topology allocates two orders of
// magnitude more than its neighbours (er:0.01 at n=1e6 is a ~10^10-entry
// CSR). Discovering that by OOM-kill mid-sweep loses every in-flight cell
// and — on Linux default overcommit — can take the whole machine with it.
// The orchestrator therefore estimates each cell's peak allocation from
// its RESOLVED spec before running anything:
//
//   estimate > budget            the cell is refused up front (failed_spec;
//                                it would be refused by the allocator
//                                anyway, just less politely)
//   estimate > budget / threads  the cell is forced onto the serial phase
//                                (cells_in_parallel would multiply peaks)
//
// Estimates are deliberately coarse upper bounds (±2x is fine); they only
// have to rank "fits comfortably / fits alone / cannot fit".
#pragma once

#include <cstdint>
#include <string>

#include "scenario/spec.hpp"

namespace plurality::sweep {

/// Upper-bound estimate of one cell's peak heap use in bytes, derived from
/// the resolved backend, n, k, and — for arena-backed graph cells — the
/// topology's edge count. Cells whose topology resolves to the implicit
/// backend are billed for the state arrays only (no CSR arena; the whole
/// point of gossip/implicit cells at n = 1e9). All arithmetic saturates
/// instead of wrapping, so a clique at n = 7e9 estimates "cannot fit"
/// rather than wrapping u64 into "fits". Never throws on a well-formed
/// spec; an unparseable topology argument returns a clique-sized worst
/// case (validation will reject the cell anyway).
[[nodiscard]] std::uint64_t estimate_cell_memory_bytes(const scenario::ScenarioSpec& spec);

/// The default sweep memory budget: ~80% of physical RAM, or 2 GiB when
/// the platform won't say. SweepOptions::memory_budget_bytes overrides.
[[nodiscard]] std::uint64_t default_memory_budget_bytes();

/// Human-readable "1.5 GiB" style rendering for refusal messages.
[[nodiscard]] std::string format_bytes(std::uint64_t bytes);

}  // namespace plurality::sweep
