// Watchdog thread + graceful-shutdown signal plumbing for the sweep
// orchestrator.
//
// The trial drivers' cooperative cancellation check is a single relaxed
// atomic load (support/cancellation.hpp) — deliberately clock-free so the
// hot path pays nothing. Someone therefore has to own the clock: the
// Watchdog is one background thread that wakes every `tick`, fires any
// registered token whose wall-clock deadline passed (Reason::kDeadline),
// and propagates a process-wide shutdown request (Reason::kShutdown) to
// every active token so in-flight cells stop at their next round boundary.
//
// Shutdown: install_shutdown_signal_handlers() routes SIGINT/SIGTERM into
// one async-signal-safe atomic flag. Nothing else happens in the handler —
// the watchdog (and the orchestrator's scheduling loop) poll the flag, let
// in-flight cells finish or cancel cooperatively, flush their atomic
// checkpoint writes, rewrite the manifest, and exit resumable.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "support/cancellation.hpp"

namespace plurality::sweep {

class Watchdog {
 public:
  using Clock = std::chrono::steady_clock;

  explicit Watchdog(std::chrono::milliseconds tick = std::chrono::milliseconds(20));
  ~Watchdog();  // stops and joins the thread; outstanding tokens are left as-is

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Starts watching `token`: cancelled with kDeadline once `deadline`
  /// passes, or with kShutdown when shutdown_requested() turns true.
  /// Pass Clock::time_point::max() for "no deadline, shutdown only".
  /// The token must stay alive until unwatch(). Returns a handle.
  std::uint64_t watch(CancellationToken* token, Clock::time_point deadline);

  /// Stops watching. Idempotent; safe for handles already expired.
  void unwatch(std::uint64_t handle);

 private:
  struct Entry {
    std::uint64_t handle;
    CancellationToken* token;
    Clock::time_point deadline;
  };

  void loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Entry> entries_;
  std::uint64_t next_handle_ = 1;
  bool stopping_ = false;
  std::chrono::milliseconds tick_;
  std::thread thread_;
};

/// Installs SIGINT/SIGTERM handlers that set the shutdown flag (idempotent;
/// only the CLI calls this — library embedders keep their own handlers).
void install_shutdown_signal_handlers();

/// True once a shutdown was requested (signal or request_shutdown()).
[[nodiscard]] bool shutdown_requested();

/// Programmatic shutdown request — what the signal handler does, callable
/// from tests and embedders.
void request_shutdown();

/// Clears the flag so one process can host several sweep runs (tests; a
/// daemon restarting its accept loop).
void reset_shutdown_flag();

}  // namespace plurality::sweep
