// Sweep orchestrator — runs a SweepSpec's whole grid as one resumable job.
//
// Execution model: cells are the parallel unit. The expanded grid is
// scheduled work-stealing across OpenMP threads (schedule(dynamic, 1)), and
// each cell runs its trials sequentially inside its thread (the cell spec's
// `parallel` flag is forced off while cells run in parallel — nested teams
// would oversubscribe, and trial results are thread-count invariant by
// construction, so this changes nothing but the schedule). Every cell's
// randomness derives from its own spec's seed, so WHICH thread runs WHICH
// cell can never affect any result.
//
// Checkpointing: with an out_dir, the orchestrator writes
//
//   <out_dir>/manifest.json             the sweep spec + the cell table
//   <out_dir>/cells/cell_NNNNN.json     one ScenarioResult (+ probes) per cell
//   <out_dir>/cells/cell_NNNNN_trajectory.csv   (observe.trajectory > 0)
//   <out_dir>/aggregate.csv             one row per cell, plot-ready
//
// Cell files are written atomically (tmp + rename), so a killed sweep
// leaves only complete files behind; resume(= SweepOptions::resume) then
// re-expands the grid, trusts cells whose file matches the expected spec,
// and runs only the rest. A manifest whose sweep differs from the current
// spec refuses to resume — silently mixing two grids' cells is how result
// files stop being trustworthy.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/trials.hpp"
#include "sweep/sweep_spec.hpp"

namespace plurality::sweep {

/// Flat per-cell numbers for the aggregate CSV — fillable from a live run
/// or re-read from a completed cell's result file (-1 marks "absent").
struct CellMetrics {
  std::uint64_t trials = 0;
  std::uint64_t consensus_count = 0;
  std::uint64_t plurality_wins = 0;
  std::uint64_t round_limit_hits = 0;
  std::uint64_t predicate_stops = 0;
  std::uint64_t rounds_count = 0;
  double consensus_rate = 0.0;
  double win_rate = 0.0;
  double rounds_mean = -1.0;
  double rounds_min = -1.0;
  double rounds_max = -1.0;
  double rounds_p50 = -1.0;
  double rounds_p95 = -1.0;
  double wall_seconds = 0.0;
  // Probe products (observe.m_plurality / final-state scalars).
  double ttm_hits = -1.0;
  double ttm_p50 = -1.0;
  double ttm_p95 = -1.0;
  double final_fraction_mean = -1.0;
  double final_support_mean = -1.0;
  double final_mono_mean = -1.0;
};

struct CellOutcome {
  std::size_t index = 0;
  std::string id;
  /// The expanded cell spec as requested (backend may still be "auto").
  scenario::ScenarioSpec requested;
  /// Backend the cell actually ran on (echoed from the result).
  std::string resolved_backend;
  /// True when --resume accepted an existing result file instead of
  /// recomputing the cell.
  bool resumed = false;
  CellMetrics metrics;
  /// Full summary — populated for freshly run cells only (resumed cells
  /// reload metrics, not the sketch; summary.trials == 0 marks that).
  TrialSummary summary;
};

struct SweepOptions {
  /// Directory for manifest / cell files / aggregate.csv. Empty = run
  /// purely in memory (no files, no resume) — the bench wrappers' mode.
  std::string out_dir;
  /// Skip cells whose result file exists and matches the expected spec.
  bool resume = false;
  /// Allow starting over inside an out_dir that already has a manifest
  /// (cell files get overwritten). Without resume or force, a populated
  /// out_dir is an error — results must never be clobbered silently.
  bool force = false;
  /// Run cells across OpenMP threads (cells' own trial loops then run
  /// sequentially). Off: cells run one at a time, trials parallel as the
  /// spec says.
  bool cells_in_parallel = true;
  /// CI shrink: override every cell's trial count (0 = use spec values).
  /// Applied BEFORE expansion, so the manifest and resume matching see the
  /// overridden grid (a resume must pass the same override).
  std::uint64_t trials_override = 0;
  /// Called after each cell completes (inside a critical section, in
  /// completion order), e.g. for progress lines.
  std::function<void(const CellOutcome&, std::size_t done, std::size_t total)> on_cell;
};

struct SweepOutcome {
  std::vector<CellOutcome> cells;  // expansion order
  std::size_t ran = 0;
  std::size_t resumed = 0;
  double wall_seconds = 0.0;
  std::string manifest_path;   // empty without out_dir
  std::string aggregate_path;  // empty without out_dir
};

/// Expands, schedules, checkpoints, and aggregates the sweep. Throws
/// CheckError on spec/validation/resume-mismatch errors; if individual
/// cells fail at run time the remaining cells still execute, then one
/// CheckError lists every failed cell (rerun with resume to retry just
/// those).
SweepOutcome run_sweep(const SweepSpec& spec, const SweepOptions& options);

/// The aggregate table for a set of outcomes (one row per cell: resolved
/// spec columns + CellMetrics columns) — what run_sweep writes to
/// aggregate.csv, exposed for the bench wrappers' console reporting.
io::JsonValue cell_result_to_json(const CellOutcome& outcome);

/// CSV header/row serialization shared by run_sweep and the CLI.
std::vector<std::string> aggregate_columns(const SweepSpec& spec);
std::vector<std::string> aggregate_row(const SweepSpec& spec, const CellOutcome& outcome);

}  // namespace plurality::sweep
