// Sweep orchestrator — runs a SweepSpec's whole grid as one resumable,
// fault-tolerant job.
//
// Execution model: cells are the parallel unit. The expanded grid is
// scheduled work-stealing across OpenMP threads (schedule(dynamic, 1)), and
// each cell runs its trials sequentially inside its thread (the cell spec's
// `parallel` flag is forced off while cells run in parallel — nested teams
// would oversubscribe, and trial results are thread-count invariant by
// construction, so this changes nothing but the schedule). Every cell's
// randomness derives from its own spec's seed, so WHICH thread runs WHICH
// cell — or how many times a cell is retried — can never affect any result.
//
// Checkpointing: with an out_dir, the orchestrator writes
//
//   <out_dir>/manifest.json             sweep spec + cell table + statuses
//   <out_dir>/cells/cell_NNNNN.json     one ScenarioResult (+ probes) per cell
//   <out_dir>/cells/cell_NNNNN_trajectory.csv   (observe.trajectory > 0)
//   <out_dir>/cells/quarantine/         corrupt checkpoint files, preserved
//   <out_dir>/aggregate.csv             one row per cell (complete runs only)
//   <out_dir>/failures.csv              one row per failed cell
//
// Manifest and cell files are CRC-stamped checkpoint envelopes
// (io/checkpoint.hpp) written atomically (tmp + rename), so a killed sweep
// leaves only complete files behind. Resume re-expands the grid, verifies
// each cell file's CRC and schema, trusts cells whose payload matches the
// expected spec, QUARANTINES corrupt files (moved aside, never silently
// deleted or trusted), hard-refuses schema skew with an actionable error,
// and runs the rest. A manifest whose sweep differs from the current spec
// refuses to resume — silently mixing two grids' cells is how result files
// stop being trustworthy.
//
// Fault tolerance: each cell attempt runs under a CancellationToken watched
// by a wall-clock watchdog (SweepOptions::cell_timeout_seconds) and the
// process-wide shutdown flag (SIGINT/SIGTERM). Failed attempts are retried
// up to max_retries times with exponential backoff; retries reuse the SAME
// trial seed (results stay bitwise-reproducible) and record a retry-derived
// Philox stream tag in the cell file for audit. Cells that still fail land
// in a four-way taxonomy — failed_timeout / failed_crash / failed_corrupt /
// failed_spec — aggregated into manifest.json and failures.csv; run_sweep
// RETURNS them (it no longer throws on cell failures; callers check
// SweepOutcome::failed). Shutdown cancels in-flight cells at their next
// round boundary, skips pending cells, flushes the manifest, and leaves
// everything resumable.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/trials.hpp"
#include "sweep/fault_plan.hpp"
#include "sweep/sweep_spec.hpp"

namespace plurality::obs {
class MetricsRegistry;
}

namespace plurality::sweep {

/// Where a cell ended up. Pending = never started (shutdown skipped it);
/// Interrupted = cancelled mid-run by shutdown (resumable, not a failure).
enum class CellStatus {
  Pending,
  Done,
  Resumed,
  FailedTimeout,
  FailedCrash,
  FailedCorrupt,
  FailedSpec,
  Interrupted,
};

/// Stable lowercase name ("done", "failed_timeout", ...) — the manifest /
/// failures.csv vocabulary.
[[nodiscard]] const char* cell_status_name(CellStatus status);

/// True for the four failed_* statuses.
[[nodiscard]] bool cell_status_failed(CellStatus status);

/// Flat per-cell numbers for the aggregate CSV — fillable from a live run
/// or re-read from a completed cell's result file (-1 marks "absent").
struct CellMetrics {
  std::uint64_t trials = 0;
  std::uint64_t consensus_count = 0;
  std::uint64_t plurality_wins = 0;
  std::uint64_t round_limit_hits = 0;
  std::uint64_t predicate_stops = 0;
  std::uint64_t rounds_count = 0;
  double consensus_rate = 0.0;
  double win_rate = 0.0;
  double rounds_mean = -1.0;
  double rounds_min = -1.0;
  double rounds_max = -1.0;
  double rounds_p50 = -1.0;
  double rounds_p95 = -1.0;
  double wall_seconds = 0.0;
  // Probe products (observe.m_plurality / final-state scalars).
  double ttm_hits = -1.0;
  double ttm_p50 = -1.0;
  double ttm_p95 = -1.0;
  double final_fraction_mean = -1.0;
  double final_support_mean = -1.0;
  double final_mono_mean = -1.0;
};

struct CellOutcome {
  std::size_t index = 0;
  std::string id;
  /// The expanded cell spec as requested (backend may still be "auto").
  scenario::ScenarioSpec requested;
  /// Backend the cell actually ran on (echoed from the result).
  std::string resolved_backend;
  CellStatus status = CellStatus::Pending;
  /// True when --resume accepted an existing result file instead of
  /// recomputing the cell (== status Resumed).
  bool resumed = false;
  /// Attempts consumed, counting attempts from earlier processes of the
  /// same out_dir (the per-cell attempts ledger survives crashes).
  std::uint32_t attempts = 0;
  /// Retry-derived Philox stream tag (hex), recorded when attempts > 1 —
  /// keys retry-scoped randomness (backoff jitter), NEVER trial streams:
  /// retried cells reproduce first-attempt results bitwise.
  std::string retry_tag;
  /// Last failure message (failed_* / interrupted statuses).
  std::string error;
  CellMetrics metrics;
  /// Full summary — populated for freshly run cells only (resumed cells
  /// reload metrics, not the sketch; summary.trials == 0 marks that).
  TrialSummary summary;
};

struct SweepOptions {
  /// Directory for manifest / cell files / aggregate.csv. Empty = run
  /// purely in memory (no files, no resume) — the bench wrappers' mode.
  std::string out_dir;
  /// Skip cells whose result file exists, CRC-verifies, and matches the
  /// expected spec. Corrupt files are quarantined and recomputed.
  bool resume = false;
  /// Allow starting over inside an out_dir that already has a manifest
  /// (cell files get overwritten). Without resume or force, a populated
  /// out_dir is an error — results must never be clobbered silently.
  bool force = false;
  /// Run cells across OpenMP threads (cells' own trial loops then run
  /// sequentially). Off: cells run one at a time, trials parallel as the
  /// spec says.
  bool cells_in_parallel = true;
  /// CI shrink: override every cell's trial count (0 = use spec values).
  /// Applied BEFORE expansion, so the manifest and resume matching see the
  /// overridden grid (a resume must pass the same override).
  std::uint64_t trials_override = 0;
  /// Per-cell wall-clock deadline, enforced by the watchdog through the
  /// drivers' cooperative cancellation check. 0 = no deadline.
  double cell_timeout_seconds = 0.0;
  /// Retries per cell after a retryable failure (timeout / in-process
  /// crash / corrupt write). failed_spec never retries. Attempts persist
  /// across process deaths via the per-cell ledger file.
  std::uint32_t max_retries = 2;
  /// Base backoff before retry r: base * 2^(r-1), plus seeded jitter.
  double retry_backoff_seconds = 0.05;
  /// Deterministic fault injection (tests / torture CI). Empty = inert.
  FaultPlan fault_plan;
  /// Preflight memory budget in bytes; cells estimated over it are refused
  /// (failed_spec), cells over budget/threads run in the serial phase.
  /// 0 = ~80% of physical RAM.
  std::uint64_t memory_budget_bytes = 0;
  /// Write wall_seconds as 0 everywhere (cell files, aggregate) so two
  /// runs of the same grid produce bitwise-identical artifacts — the
  /// torture harness compares aggregates with cmp(1).
  bool zero_wall_times = false;
  /// Called after each cell completes (inside a critical section, in
  /// completion order), e.g. for progress lines.
  std::function<void(const CellOutcome&, std::size_t done, std::size_t total)> on_cell;
  /// > 0: a progress line every N seconds on stderr (cells done / running
  /// / failed, aggregate node-updates/s) from live registry snapshots —
  /// the replacement for per-cell-completion verbose spam on big grids.
  /// Implies metrics (the global registry when `metrics` is null).
  double progress_seconds = 0.0;
  /// Live telemetry registry threaded into every cell (obs/metrics.hpp).
  /// Null and progress_seconds == 0: metrics fully off (no per-round
  /// observer cost). Results are bitwise-identical either way.
  obs::MetricsRegistry* metrics = nullptr;
};

struct SweepOutcome {
  std::vector<CellOutcome> cells;  // expansion order
  std::size_t ran = 0;             // freshly computed to Done
  std::size_t resumed = 0;
  std::size_t failed = 0;          // any failed_* status
  /// True when a shutdown request stopped the sweep early (some cells
  /// Interrupted / Pending); the out_dir is resumable.
  bool interrupted = false;
  double wall_seconds = 0.0;
  std::string manifest_path;   // empty without out_dir
  std::string aggregate_path;  // empty without out_dir or on incomplete runs
  std::string failures_path;   // empty without out_dir
};

/// Expands, schedules, checkpoints, retries, and aggregates the sweep.
/// Throws CheckError on spec/validation/resume-mismatch errors and
/// CheckpointSchemaError on version skew; per-cell RUNTIME failures do not
/// throw — they land in the returned statuses (check SweepOutcome::failed).
SweepOutcome run_sweep(const SweepSpec& spec, const SweepOptions& options);

/// One cell's result document (the checkpoint payload) — resolved spec +
/// summary + probe scalars + retry audit block.
io::JsonValue cell_result_to_json(const CellOutcome& outcome);

/// CSV header/row serialization shared by run_sweep and the CLI.
std::vector<std::string> aggregate_columns(const SweepSpec& spec);
std::vector<std::string> aggregate_row(const SweepSpec& spec, const CellOutcome& outcome);

/// Manifest checkpoint payload (sweep spec + cell table with statuses) —
/// written by run_sweep and by the sweep service master (plurality_sweepd),
/// so a drained service out_dir resumes under either runner.
io::JsonValue manifest_to_json(const SweepSpec& spec,
                               const std::vector<CellOutcome>& cells);

/// Atomically (tmp + rename) writes failures.csv — one row per failed_*
/// cell. Shared by run_sweep and the service master.
void write_failures_csv(const std::string& path, const std::vector<CellOutcome>& cells);

/// Atomically writes aggregate.csv (one row per cell, expansion order).
/// Call only when every cell is Done/Resumed. zero_wall_times zeroes the
/// wall column so identical grids produce bitwise-identical files.
void write_aggregate_csv(const std::string& path, const SweepSpec& spec,
                         std::vector<CellOutcome>& cells, bool zero_wall_times);

}  // namespace plurality::sweep
