#include "sweep/fault_plan.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

#include "rng/philox.hpp"
#include "support/check.hpp"
#include "sweep/watchdog.hpp"

namespace plurality::sweep {

namespace fs = std::filesystem;

bool FaultSpec::matches(std::size_t cell_index, const std::string& id,
                        const std::string& spec_string) const {
  if (!match.empty()) return spec_string.find(match) != std::string::npos;
  if (by_index) return index == cell_index;
  return cell_id == id;
}

namespace {

FaultKind parse_kind(const std::string& kind) {
  if (kind == "throw") return FaultKind::Throw;
  if (kind == "hang") return FaultKind::Hang;
  if (kind == "crash") return FaultKind::Crash;
  if (kind == "corrupt") return FaultKind::Corrupt;
  if (kind == "drop_heartbeat") return FaultKind::DropHeartbeat;
  if (kind == "stall_conn") return FaultKind::StallConn;
  if (kind == "worker_crash") return FaultKind::WorkerCrash;
  PLURALITY_REQUIRE(false, "fault plan: unknown kind '"
                               << kind
                               << "' (known: throw, hang, crash, corrupt, "
                                  "drop_heartbeat, stall_conn, worker_crash)");
  return FaultKind::Throw;  // unreachable
}

CrashPoint parse_point(const std::string& point) {
  if (point == "before_write") return CrashPoint::BeforeWrite;
  if (point == "mid_write") return CrashPoint::MidWrite;
  if (point == "after_write") return CrashPoint::AfterWrite;
  PLURALITY_REQUIRE(false, "fault plan: unknown crash point '"
                               << point
                               << "' (known: before_write, mid_write, after_write)");
  return CrashPoint::BeforeWrite;  // unreachable
}

const char* kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::Throw: return "throw";
    case FaultKind::Hang: return "hang";
    case FaultKind::Crash: return "crash";
    case FaultKind::Corrupt: return "corrupt";
    case FaultKind::DropHeartbeat: return "drop_heartbeat";
    case FaultKind::StallConn: return "stall_conn";
    case FaultKind::WorkerCrash: return "worker_crash";
  }
  return "?";
}

}  // namespace

FaultPlan FaultPlan::from_json(const io::JsonValue& doc) {
  PLURALITY_REQUIRE(doc.is_object(), "fault plan: top-level value must be an object");
  FaultPlan plan;
  for (const std::string& key : doc.keys()) {
    PLURALITY_REQUIRE(key == "seed" || key == "faults",
                      "fault plan: unknown key '" << key << "' (known: seed, faults)");
  }
  if (const io::JsonValue* seed = doc.get("seed")) plan.seed = seed->as_uint();
  const io::JsonValue* faults = doc.get("faults");
  PLURALITY_REQUIRE(faults != nullptr && faults->is_array(),
                    "fault plan: required key 'faults' must be an array");
  for (std::size_t i = 0; i < faults->size(); ++i) {
    const io::JsonValue& entry = faults->item(i);
    PLURALITY_REQUIRE(entry.is_object(), "fault plan: faults[" << i << "] must be an object");
    FaultSpec fault;
    bool has_cell = false;
    for (const std::string& key : entry.keys()) {
      if (key == "cell") {
        has_cell = true;
        const io::JsonValue& cell = entry.at("cell");
        if (cell.is_string()) {
          fault.cell_id = cell.as_string();
          PLURALITY_REQUIRE(!fault.cell_id.empty(),
                            "fault plan: faults[" << i << "].cell must not be empty");
        } else {
          fault.by_index = true;
          fault.index = static_cast<std::size_t>(cell.as_uint());
        }
      } else if (key == "match") {
        fault.match = entry.at("match").as_string();
        PLURALITY_REQUIRE(!fault.match.empty(),
                          "fault plan: faults[" << i << "].match must not be empty");
      } else if (key == "kind") {
        fault.kind = parse_kind(entry.at("kind").as_string());
      } else if (key == "point") {
        fault.point = parse_point(entry.at("point").as_string());
      } else if (key == "seconds") {
        fault.seconds = entry.at("seconds").as_double();
        PLURALITY_REQUIRE(fault.seconds >= 0,
                          "fault plan: faults[" << i << "].seconds must be >= 0");
      } else if (key == "times") {
        const std::uint64_t times = entry.at("times").as_uint();
        PLURALITY_REQUIRE(times >= 1, "fault plan: faults[" << i << "].times must be >= 1");
        fault.times = static_cast<std::uint32_t>(times);
      } else {
        PLURALITY_REQUIRE(false, "fault plan: faults["
                                     << i << "] has unknown key '" << key
                                     << "' (known: cell, match, kind, point, seconds, "
                                        "times)");
      }
    }
    PLURALITY_REQUIRE(has_cell != !fault.match.empty(),
                      "fault plan: faults[" << i
                                            << "] needs exactly one of 'cell' or 'match'");
    PLURALITY_REQUIRE(entry.contains("kind"),
                      "fault plan: faults[" << i << "] needs a 'kind'");
    plan.faults.push_back(fault);
  }
  return plan;
}

FaultPlan FaultPlan::from_json_file(const std::string& path) {
  return from_json(io::read_json_file(path));
}

FaultInjector::FaultInjector(FaultPlan plan, const std::string& out_dir)
    : plan_(std::move(plan)) {
  if (!plan_.empty() && !out_dir.empty()) {
    fault_dir_ = (fs::path(out_dir) / "faults").string();
    fs::create_directories(fault_dir_);
  }
}

bool FaultInjector::arm(std::size_t fault_index, const FaultSpec& fault,
                        const std::string& id) {
  const std::string key = "f" + std::to_string(fault_index) + "_" + id;
  std::lock_guard<std::mutex> lock(mutex_);
  if (fault_dir_.empty()) {
    std::uint32_t& count = memory_counts_[key];
    if (count >= fault.times) return false;
    ++count;
    return true;
  }
  // Persistent count: one small file per (fault, cell), rewritten before
  // the fault fires — a crash fault must burn its budget BEFORE dying, or
  // every resume re-crashes forever.
  const fs::path marker = fs::path(fault_dir_) / key;
  std::uint32_t count = 0;
  if (std::ifstream in(marker); in.good()) in >> count;
  if (count >= fault.times) return false;
  {
    std::ofstream out(marker, std::ios::trunc);
    out << (count + 1) << "\n";
    out.flush();
    PLURALITY_REQUIRE(out.good(), "fault plan: cannot persist firing marker " << marker);
  }
  return true;
}

void FaultInjector::at_driver_start(std::size_t index, const std::string& id,
                                    const std::string& spec_string,
                                    const CancellationToken* token) {
  for (std::size_t f = 0; f < plan_.faults.size(); ++f) {
    const FaultSpec& fault = plan_.faults[f];
    if (fault.kind != FaultKind::Throw && fault.kind != FaultKind::Hang) continue;
    if (!fault.matches(index, id, spec_string)) continue;
    if (!arm(f, fault, id)) continue;
    if (fault.kind == FaultKind::Throw) {
      throw std::runtime_error("injected fault: driver throw in " + id);
    }
    // Hang: stall in small slices so the watchdog/shutdown path — the very
    // thing this fault exists to exercise — can reclaim the cell.
    const auto start = std::chrono::steady_clock::now();
    const auto budget = std::chrono::duration<double>(fault.seconds);
    while (std::chrono::steady_clock::now() - start < budget) {
      if (token != nullptr && token->stop_requested()) break;
      if (shutdown_requested()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
}

void FaultInjector::mutate_checkpoint_text(std::size_t index, const std::string& id,
                                           const std::string& spec_string,
                                           std::string& text) {
  for (std::size_t f = 0; f < plan_.faults.size(); ++f) {
    const FaultSpec& fault = plan_.faults[f];
    if (fault.kind != FaultKind::Corrupt) continue;
    if (!fault.matches(index, id, spec_string)) continue;
    if (!arm(f, fault, id)) continue;
    PLURALITY_CHECK(!text.empty());
    // Seeded byte choice: reproducible given (plan seed, cell index). Flip
    // inside the payload body (skip the envelope head) so the corruption
    // lands where only the CRC can catch it.
    const std::uint64_t word = rng::Philox4x32::word(
        rng::Philox4x32::key_from_seed(plan_.seed, 0x6661756c74ull /* "fault" */),
        index, 0);
    const std::size_t lo = std::min<std::size_t>(text.size() - 1, text.size() / 2);
    const std::size_t pos = lo + static_cast<std::size_t>(word % (text.size() - lo));
    text[pos] = static_cast<char>(text[pos] ^ 0x20);
  }
}

void FaultInjector::at_write_point(std::size_t index, const std::string& id,
                                   const std::string& spec_string, CrashPoint point) {
  for (std::size_t f = 0; f < plan_.faults.size(); ++f) {
    const FaultSpec& fault = plan_.faults[f];
    if (fault.kind != FaultKind::Crash || fault.point != point) continue;
    if (!fault.matches(index, id, spec_string)) continue;
    if (!arm(f, fault, id)) continue;
    // Simulated power-loss: no unwinding, no atexit, no flushes beyond
    // what already hit the page cache. The marker write above survives
    // (page cache outlives the process).
    std::fprintf(stderr, "injected fault: %s crash at %s in %s\n", kind_name(fault.kind),
                 point == CrashPoint::BeforeWrite  ? "before_write"
                 : point == CrashPoint::MidWrite   ? "mid_write"
                                                   : "after_write",
                 id.c_str());
    std::_Exit(kFaultCrashExitCode);
  }
}

void FaultInjector::at_lease_start(std::size_t index, const std::string& id,
                                   const std::string& spec_string) {
  for (std::size_t f = 0; f < plan_.faults.size(); ++f) {
    const FaultSpec& fault = plan_.faults[f];
    if (fault.kind != FaultKind::WorkerCrash) continue;
    if (!fault.matches(index, id, spec_string)) continue;
    if (!arm(f, fault, id)) continue;
    // Same power-loss semantics as the crash kind — the marker persisted
    // by arm() is the only trace, so the NEXT worker to lease this cell
    // runs it clean.
    std::fprintf(stderr, "injected fault: worker_crash at lease start of %s\n",
                 id.c_str());
    std::_Exit(kFaultCrashExitCode);
  }
}

bool FaultInjector::should_drop_heartbeats(std::size_t index, const std::string& id,
                                           const std::string& spec_string) {
  for (std::size_t f = 0; f < plan_.faults.size(); ++f) {
    const FaultSpec& fault = plan_.faults[f];
    if (fault.kind != FaultKind::DropHeartbeat) continue;
    if (!fault.matches(index, id, spec_string)) continue;
    if (!arm(f, fault, id)) continue;
    std::fprintf(stderr, "injected fault: dropping heartbeats for %s\n", id.c_str());
    return true;
  }
  return false;
}

double FaultInjector::stall_connection_seconds(std::size_t index, const std::string& id,
                                               const std::string& spec_string) {
  for (std::size_t f = 0; f < plan_.faults.size(); ++f) {
    const FaultSpec& fault = plan_.faults[f];
    if (fault.kind != FaultKind::StallConn) continue;
    if (!fault.matches(index, id, spec_string)) continue;
    if (!arm(f, fault, id)) continue;
    std::fprintf(stderr, "injected fault: stalling connection %.3fs before reporting %s\n",
                 fault.seconds, id.c_str());
    return fault.seconds;
  }
  return 0.0;
}

}  // namespace plurality::sweep
