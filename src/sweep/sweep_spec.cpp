#include "sweep/sweep_spec.hpp"

#include <cstdio>
#include <set>
#include <sstream>

#include "support/check.hpp"

namespace plurality::sweep {

namespace {

/// Canonical string for an axis element (JSON axes may carry numbers and
/// booleans; set_field consumes strings).
std::string value_to_string(const std::string& field, const io::JsonValue& value) {
  if (value.is_string()) return value.as_string();
  if (value.is_bool()) return value.as_bool() ? "true" : "false";
  if (value.is_number()) return std::to_string(value.as_uint());
  PLURALITY_REQUIRE(false, "sweep: axis '" << field
                                           << "' elements must be strings, numbers, or "
                                              "booleans");
  return {};  // unreachable
}

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
}

ObserveSpec observe_from_json(const io::JsonValue& doc) {
  PLURALITY_REQUIRE(doc.is_object(), "sweep: 'observe' must be a JSON object");
  ObserveSpec observe;
  for (const auto& key : doc.keys()) {
    if (key == "m_plurality") {
      observe.m_plurality = true;
      observe.m = doc.at(key).as_uint();
    } else if (key == "trajectory") {
      observe.trajectory = doc.at(key).as_uint();
    } else if (key == "trajectory_stride") {
      observe.trajectory_stride = doc.at(key).as_uint();
      PLURALITY_REQUIRE(observe.trajectory_stride >= 1,
                        "sweep: observe.trajectory_stride must be >= 1");
    } else {
      PLURALITY_REQUIRE(false, "sweep: unknown observe field '"
                                   << key << "'; known: m_plurality, trajectory, "
                                   << "trajectory_stride");
    }
  }
  return observe;
}

}  // namespace

std::string cell_id(std::size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "cell_%05zu", index);
  return buf;
}

SweepSpec SweepSpec::parse(const std::string& text) {
  SweepSpec sweep;
  std::istringstream tokens(text);
  std::string token;
  std::set<std::string> seen;
  bool any = false;
  while (tokens >> token) {
    any = true;
    const auto eq = token.find('=');
    PLURALITY_REQUIRE(eq != std::string::npos && eq > 0,
                      "sweep: expected 'key=value[,value...]', got '" << token << "'");
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    PLURALITY_REQUIRE(seen.insert(key).second, "sweep: duplicate field '" << key << "'");
    if (value.find(',') == std::string::npos) {
      sweep.base.set_field(key, value);
      continue;
    }
    SweepAxis axis{key, split_commas(value)};
    for (const std::string& v : axis.values) {
      PLURALITY_REQUIRE(!v.empty(), "sweep: axis '" << key << "' has an empty value "
                                                       "(trailing or doubled comma?)");
    }
    // Probe the field name (and each value's parse) now, on a scratch
    // spec, so a typo'd axis fails before expansion multiplies it.
    for (const std::string& v : axis.values) {
      scenario::ScenarioSpec probe = sweep.base;
      probe.set_field(key, v);
    }
    sweep.axes.push_back(std::move(axis));
  }
  PLURALITY_REQUIRE(any, "sweep: empty sweep string");
  return sweep;
}

SweepSpec SweepSpec::from_json(const io::JsonValue& doc) {
  PLURALITY_REQUIRE(doc.is_object(), "sweep: spec document must be a JSON object");
  SweepSpec sweep;
  for (const auto& key : doc.keys()) {
    if (key == "base") {
      sweep.base = scenario::ScenarioSpec::from_json(doc.at(key));
    } else if (key == "axes") {
      const io::JsonValue& axes = doc.at(key);
      PLURALITY_REQUIRE(axes.is_object(), "sweep: 'axes' must be a JSON object");
      for (const auto& field : axes.keys()) {
        const io::JsonValue& list = axes.at(field);
        PLURALITY_REQUIRE(list.is_array() && list.size() >= 1,
                          "sweep: axis '" << field << "' must be a non-empty array");
        SweepAxis axis{field, {}};
        axis.values.reserve(list.size());
        for (std::size_t i = 0; i < list.size(); ++i) {
          axis.values.push_back(value_to_string(field, list.item(i)));
        }
        sweep.axes.push_back(std::move(axis));
      }
    } else if (key == "observe") {
      sweep.observe = observe_from_json(doc.at(key));
    } else if (key == "per_cell_seeds") {
      sweep.per_cell_seeds = doc.at(key).as_bool();
    } else {
      PLURALITY_REQUIRE(false, "sweep: unknown field '"
                                   << key
                                   << "'; known: base, axes, observe, per_cell_seeds");
    }
  }
  // Field-name typos in axes must fail even before expand(): probe each
  // assignment on a scratch spec.
  for (const SweepAxis& axis : sweep.axes) {
    for (const std::string& v : axis.values) {
      scenario::ScenarioSpec probe = sweep.base;
      probe.set_field(axis.field, v);
    }
  }
  return sweep;
}

SweepSpec SweepSpec::from_json_file(const std::string& path) {
  return from_json(io::read_json_file(path));
}

io::JsonValue SweepSpec::to_json() const {
  io::JsonValue doc = io::JsonValue::object();
  doc.set("base", base.to_json());
  io::JsonValue& axis_doc = doc.set("axes", io::JsonValue::object());
  for (const SweepAxis& axis : axes) {
    io::JsonValue& list = axis_doc.set(axis.field, io::JsonValue::array());
    for (const std::string& v : axis.values) list.push(v);
  }
  io::JsonValue& obs = doc.set("observe", io::JsonValue::object());
  if (observe.m_plurality) obs.set("m_plurality", std::uint64_t{observe.m});
  if (observe.trajectory > 0) {
    obs.set("trajectory", std::uint64_t{observe.trajectory});
    obs.set("trajectory_stride", std::uint64_t{observe.trajectory_stride});
  }
  doc.set("per_cell_seeds", per_cell_seeds);
  return doc;
}

std::size_t SweepSpec::cell_count() const {
  std::size_t count = 1;
  for (const SweepAxis& axis : axes) count *= axis.values.size();
  return count;
}

std::vector<scenario::ScenarioSpec> SweepSpec::expand() const {
  for (const SweepAxis& axis : axes) {
    PLURALITY_REQUIRE(!axis.values.empty(), "sweep: axis '" << axis.field << "' is empty");
  }
  const std::size_t cells = cell_count();
  PLURALITY_REQUIRE(cells <= 100'000,
                    "sweep: grid has " << cells << " cells (cap: 100000); split the sweep");

  bool seed_is_axis = false;
  for (const SweepAxis& axis : axes) seed_is_axis |= axis.field == "seed";

  std::vector<scenario::ScenarioSpec> expanded;
  expanded.reserve(cells);
  for (std::size_t index = 0; index < cells; ++index) {
    scenario::ScenarioSpec spec = base;
    // Row-major decode: last axis varies fastest.
    std::size_t remainder = index;
    for (std::size_t a = axes.size(); a-- > 0;) {
      const SweepAxis& axis = axes[a];
      const std::size_t v = remainder % axis.values.size();
      remainder /= axis.values.size();
      try {
        spec.set_field(axis.field, axis.values[v]);
      } catch (const CheckError& e) {
        PLURALITY_REQUIRE(false, "sweep: cell " << index << " (" << axis.field << "="
                                                << axis.values[v] << "): " << e.what());
      }
    }
    if (per_cell_seeds && !seed_is_axis) {
      // Statistically independent replicas: StreamFactory avalanches the
      // seed, so consecutive integers give unrelated stream families. The
      // derived seed lands in the expanded spec — each cell file remains a
      // complete, standalone-reproducible scenario.
      spec.seed = base.seed + index;
    }
    try {
      spec.validate();
    } catch (const CheckError& e) {
      PLURALITY_REQUIRE(false, "sweep: cell " << index << " of " << cells
                                              << " fails validation: " << e.what()
                                              << "\n  cell spec: " << spec.to_spec_string());
    }
    expanded.push_back(std::move(spec));
  }
  return expanded;
}

}  // namespace plurality::sweep
