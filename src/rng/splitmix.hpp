// SplitMix64 — Steele, Lea & Flood's 64-bit mixer (public domain reference
// algorithm). Used (a) to expand a single user seed into full engine state,
// and (b) as the avalanche mixer behind hash-derived parallel substreams.
#pragma once

#include <cstdint>

namespace plurality::rng {

/// One SplitMix64 step: advances `state` and returns the next output.
constexpr std::uint64_t splitmix64_next(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless avalanche of a single value (the SplitMix64 finalizer).
constexpr std::uint64_t splitmix64_mix(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64_next(s);
}

/// Minimal engine wrapper, handy as a cheap independent generator in tests.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  constexpr result_type operator()() { return splitmix64_next(state_); }

 private:
  std::uint64_t state_;
};

}  // namespace plurality::rng
