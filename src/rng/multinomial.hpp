// Exact Multinomial(n, p_0..p_{k-1}) sampling via conditional binomials.
//
// This is THE inner loop of the count-based simulator: one multinomial draw
// per round replaces n independent per-node updates. Binomial draws over the
// positive-weight categories give the exact joint distribution: X_0 ~
// Bin(n, p_0), then X_1 | X_0 ~ Bin(n - X_0, p_1 / (1 - p_0)), and so on.
//
// Two entry points share one kernel:
//
//   * multinomial()            — writes the counts (classic API); the
//     workspace-free overload allocates scratch and is for one-off callers.
//   * multinomial_accumulate() — ADDS the draws into `inout`, touching only
//     categories that receive mass. The count-based stepper sums per-class
//     multinomials this way without a temporary per-class vector.
//
// The kernel is sparse: it gathers the positive-weight categories once and
// draws only over that support, so a k-category law with nnz positive
// entries costs O(k) scan + O(nnz) binomial draws, and it stops as soon as
// the remaining mass hits zero. This is an *identical distribution AND an
// identical RNG-stream* to the dense conditional-binomial loop, because
// binomial() consumes no randomness when p <= 0, p >= 1, or n == 0 — the
// only categories/iterations the sparse kernel skips. Tests pin this
// equivalence bitwise (tests/core/test_determinism.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rng/philox.hpp"
#include "rng/xoshiro.hpp"
#include "support/types.hpp"

namespace plurality::rng {

/// Reusable scratch for the multinomial kernel (opaque: the layout is an
/// implementation detail of multinomial_accumulate). After the first call
/// at a given k, subsequent calls perform zero heap allocations; buffers
/// only ever grow.
struct MultinomialWorkspace {
  std::vector<std::uint32_t> support;
  std::vector<double> suffix;
  std::vector<double> weights;
};

/// Draws a multinomial sample and ADDS it into `inout` (inout[j] += X_j).
/// `probs` need not be normalized exactly to 1 (kernel formulas carry
/// ~1e-15 float error); it is treated as relative weights with
/// nonnegativity enforced up to -1e-9 slack. The draws sum to n.
/// Template over the generator engine (Xoshiro256pp / PhiloxStream — the
/// counter-based batched mode feeds block-generated Philox uniforms through
/// the identical kernel; instantiations live in multinomial.cpp).
template <class Gen>
void multinomial_accumulate(Gen& gen, count_t n, std::span<const double> probs,
                            std::span<count_t> inout, MultinomialWorkspace& ws);

/// Sparse-law variant: the distribution is given as (states[i], weights[i])
/// pairs with `states` ascending and every omitted category having weight
/// zero. Draws X over the pairs and ADDS inout[states[i]] += X_i. Consumes
/// the same RNG stream as multinomial_accumulate() over the equivalent
/// dense weight vector — this is the O(support) kernel behind stateful
/// count-based stepping.
template <class Gen>
void multinomial_accumulate_indexed(Gen& gen, count_t n,
                                    std::span<const state_t> states,
                                    std::span<const double> weights,
                                    std::span<count_t> inout, MultinomialWorkspace& ws);

/// Draws a multinomial sample. `out` receives the counts, out.size() ==
/// probs.size(), and the counts always sum to n.
template <class Gen>
void multinomial(Gen& gen, count_t n, std::span<const double> probs,
                 std::span<count_t> out, MultinomialWorkspace& ws);

/// Workspace-free overload for one-off callers (allocates scratch).
template <class Gen>
void multinomial(Gen& gen, count_t n, std::span<const double> probs,
                 std::span<count_t> out);

}  // namespace plurality::rng
