// Exact Multinomial(n, p_0..p_{k-1}) sampling via conditional binomials.
//
// This is THE inner loop of the count-based simulator: one multinomial draw
// per round replaces n independent per-node updates. k binomial draws give
// the exact joint distribution: X_0 ~ Bin(n, p_0), then X_1 | X_0 ~
// Bin(n - X_0, p_1 / (1 - p_0)), and so on.
#pragma once

#include <cstdint>
#include <span>

#include "rng/xoshiro.hpp"
#include "support/types.hpp"

namespace plurality::rng {

/// Draws a multinomial sample. `probs` need not be normalized exactly to 1
/// (kernel formulas carry ~1e-15 float error); it is treated as relative
/// weights with nonnegativity enforced up to -1e-9 slack. `out` receives the
/// counts, out.size() == probs.size(), and the counts always sum to n.
void multinomial(Xoshiro256pp& gen, count_t n, std::span<const double> probs,
                 std::span<count_t> out);

}  // namespace plurality::rng
