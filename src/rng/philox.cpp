#include "rng/philox.hpp"

#include "rng/splitmix.hpp"

namespace plurality::rng {

Philox4x32::Key Philox4x32::key_from_seed(std::uint64_t seed, std::uint64_t tag) {
  // Two avalanche rounds over a keyed combination, mirroring
  // StreamFactory::stream's derivation discipline (distinct odd constants
  // keep the (seed, tag) domain separate from xoshiro stream derivation).
  std::uint64_t h = splitmix64_mix(seed ^ 0xc2b2ae3d27d4eb4fULL);
  h = splitmix64_mix(h + 0x9e3779b97f4a7c15ULL * (tag + 1));
  return Key{static_cast<std::uint32_t>(h), static_cast<std::uint32_t>(h >> 32)};
}

template <unsigned R>
void Philox4x32::fill_words(Key key, std::uint64_t domain, std::uint64_t word_lo,
                            std::size_t count, std::uint64_t* out) {
  std::size_t w = 0;
  // Leading odd word: emit only the second half of its block.
  if (count > 0 && (word_lo & 1) != 0) {
    out[w++] = word<R>(key, domain, word_lo);
  }
  // Aligned middle: one block per two words.
  std::uint64_t blk = (word_lo + w) >> 1;
  for (; w + 2 <= count; w += 2, ++blk) {
    const Block b = block<R>(static_cast<std::uint32_t>(blk),
                             static_cast<std::uint32_t>(blk >> 32),
                             static_cast<std::uint32_t>(domain),
                             static_cast<std::uint32_t>(domain >> 32), key);
    out[w] = static_cast<std::uint64_t>(b.v[0]) | (static_cast<std::uint64_t>(b.v[1]) << 32);
    out[w + 1] = static_cast<std::uint64_t>(b.v[2]) | (static_cast<std::uint64_t>(b.v[3]) << 32);
  }
  // Trailing even word: first half of its block.
  if (w < count) {
    out[w] = word<R>(key, domain, word_lo + w);
  }
}

template void Philox4x32::fill_words<Philox4x32::kRounds>(Key, std::uint64_t, std::uint64_t,
                                                          std::size_t, std::uint64_t*);
template void Philox4x32::fill_words<Philox4x32::kCrushRounds>(Key, std::uint64_t,
                                                               std::uint64_t, std::size_t,
                                                               std::uint64_t*);

PhiloxStream::PhiloxStream(std::uint64_t seed, std::uint64_t tag)
    : pos_(kBufferWords),
      next_word_(0),
      key_(Philox4x32::key_from_seed(seed, tag)),
      domain_(kStreamDomain) {}

void PhiloxStream::refill() {
  Philox4x32::fill_words<Philox4x32::kRounds>(key_, domain_, next_word_, kBufferWords,
                                              buffer_.data());
  next_word_ += kBufferWords;
  pos_ = 0;
}

}  // namespace plurality::rng
