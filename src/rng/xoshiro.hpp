// xoshiro256++ — Blackman & Vigna's general-purpose 64-bit generator
// (public-domain reference algorithm, 2019). Chosen over std::mt19937_64 for
// (a) 4x smaller state — one per OpenMP thread / trial stream, (b) ~2x faster
// output, (c) jump()/long_jump() giving 2^128 / 2^192-step disjoint
// subsequences for parallel simulation.
#pragma once

#include <array>
#include <cstdint>

namespace plurality::rng {

class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one word via SplitMix64, per the
  /// reference recommendation (avoids the all-zero state for every seed).
  explicit Xoshiro256pp(std::uint64_t seed = 0xdeadbeefcafef00dULL);

  /// Constructs from an explicit 256-bit state (must not be all zero).
  explicit Xoshiro256pp(const std::array<std::uint64_t, 4>& state);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next 64 uniform random bits.
  result_type operator()() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double next_double() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Advances 2^128 steps: partitions the period into disjoint streams.
  void jump();

  /// Advances 2^192 steps: coarser partition for nested parallelism.
  void long_jump();

  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const { return s_; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int r) {
    return (x << r) | (x >> (64 - r));
  }
  void apply_jump(const std::array<std::uint64_t, 4>& poly);

  std::array<std::uint64_t, 4> s_;
};

}  // namespace plurality::rng
