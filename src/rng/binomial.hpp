// Exact Binomial(n, p) sampling.
//
// The count-based simulator replaces n per-node coin flips with one
// Binomial draw per color per round, so this sampler must be exact for n up
// to 10^9 and fast in both the small-mean and large-mean regimes:
//
//   * n·min(p,1-p) <= kInversionThreshold  →  BINV sequential inversion,
//     O(np) expected time, exact by construction.
//   * otherwise                            →  BTRS, Hörmann's transformed
//     rejection with squeeze (1993), O(1) expected time, exact because it
//     is a rejection method whose acceptance test uses the true pmf ratio
//     (via Stirling tails computed to double precision).
//
// The regime threshold is a pure performance knob (both samplers are exact);
// bench_rng measures the crossover.
//
// Like distributions.hpp, the samplers are templates over the generator
// engine, instantiated for Xoshiro256pp (sequential default) and
// PhiloxStream (counter-based, block-generated uniforms) in binomial.cpp.
#pragma once

#include <cstdint>

#include "rng/philox.hpp"
#include "rng/xoshiro.hpp"

namespace plurality::rng {

/// Expected-time regime switch between inversion and rejection.
inline constexpr double kInversionThreshold = 14.0;

/// Draws Binomial(n, p). p outside [0,1] is clamped.
template <class Gen>
std::uint64_t binomial(Gen& gen, std::uint64_t n, double p);

/// Exposed for targeted testing/benchmarks: inversion sampler.
/// Requires 0 < p <= 0.5.
template <class Gen>
std::uint64_t binomial_inversion(Gen& gen, std::uint64_t n, double p);

/// Exposed for targeted testing/benchmarks: BTRS rejection sampler.
/// Requires 0 < p <= 0.5 and n*p >= 10.
template <class Gen>
std::uint64_t binomial_btrs(Gen& gen, std::uint64_t n, double p);

/// log of the Binomial(n,p) pmf at x (used by exact Markov analysis).
double binomial_log_pmf(std::uint64_t n, double p, std::uint64_t x);

/// Binomial(n,p) pmf at x.
double binomial_pmf(std::uint64_t n, double p, std::uint64_t x);

}  // namespace plurality::rng
