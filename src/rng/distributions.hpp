// Basic exact distributions over a Xoshiro256pp source.
//
// All samplers here are *exact* (rejection-based where needed), never
// approximations: the count-based simulator IS the Markov chain the paper
// analyzes, so distributional error would silently bias every experiment.
#pragma once

#include <cstdint>

#include "rng/xoshiro.hpp"

namespace plurality::rng {

/// Uniform integer in [0, bound) via Lemire's multiply-shift with rejection
/// (Lemire 2019, "Fast Random Integer Generation in an Interval"): the
/// biased fringe of the multiply-shift map is rejected, so every value is
/// EXACTLY equally likely — no modulo bias. This matters because the agent
/// backend draws billions of node samples through this function; even a
/// 2^-11 per-draw bias would be statistically visible at paper scale. The
/// rejection behavior is pinned by tests (worst-case-bound chi-square and
/// an output-for-output replay of the published algorithm in
/// tests/rng/test_distributions.cpp). bound must be nonzero.
std::uint64_t uniform_below(Xoshiro256pp& gen, std::uint64_t bound);

/// Uniform integer in [lo, hi] inclusive.
std::uint64_t uniform_in(Xoshiro256pp& gen, std::uint64_t lo, std::uint64_t hi);

/// Uniform double in [0, 1).
double uniform01(Xoshiro256pp& gen);

/// Bernoulli(p) trial; p is clamped to [0, 1].
bool bernoulli(Xoshiro256pp& gen, double p);

/// Standard normal via the Marsaglia polar method (exact up to double
/// rounding; no tail truncation).
double standard_normal(Xoshiro256pp& gen);

/// Exponential(rate = 1) via inversion.
double standard_exponential(Xoshiro256pp& gen);

/// Fisher–Yates shuffle of a span-like range [first, first + count).
template <typename T>
void shuffle(Xoshiro256pp& gen, T* first, std::size_t count) {
  for (std::size_t i = count; i > 1; --i) {
    std::size_t j = static_cast<std::size_t>(uniform_below(gen, i));
    T tmp = first[i - 1];
    first[i - 1] = first[j];
    first[j] = tmp;
  }
}

}  // namespace plurality::rng
