// Basic exact distributions over a uniform 64-bit generator.
//
// All samplers here are *exact* (rejection-based where needed), never
// approximations: the count-based simulator IS the Markov chain the paper
// analyzes, so distributional error would silently bias every experiment.
//
// Every sampler is a template over the generator engine, instantiated for
// the two engines the library ships (definitions live in distributions.cpp):
//
//   * Xoshiro256pp  — the sequential default; every pre-existing stream
//     (golden trajectories, StreamFactory) runs on it, bit-for-bit as
//     before the generic refactor.
//   * PhiloxStream  — the counter-based engine (rng/philox.hpp) behind the
//     batched stepping modes; same sampler algorithms, different uniform
//     source, so count-based stepping can consume block-generated Philox
//     uniforms with zero sampler divergence.
//
// A `Gen` must provide: result_type = uint64_t, operator()() over the full
// 64-bit range, and next_double() in [0, 1).
#pragma once

#include <cstdint>

#include "rng/philox.hpp"
#include "rng/xoshiro.hpp"

namespace plurality::rng {

/// Uniform integer in [0, bound) via Lemire's multiply-shift with rejection
/// (Lemire 2019, "Fast Random Integer Generation in an Interval"): the
/// biased fringe of the multiply-shift map is rejected, so every value is
/// EXACTLY equally likely — no modulo bias. This matters because the agent
/// backend draws billions of node samples through this function; even a
/// 2^-11 per-draw bias would be statistically visible at paper scale. The
/// rejection behavior is pinned by tests (worst-case-bound chi-square and
/// an output-for-output replay of the published algorithm in
/// tests/rng/test_distributions.cpp). bound must be nonzero.
template <class Gen>
std::uint64_t uniform_below(Gen& gen, std::uint64_t bound);

/// Uniform integer in [lo, hi] inclusive.
template <class Gen>
std::uint64_t uniform_in(Gen& gen, std::uint64_t lo, std::uint64_t hi);

/// Uniform double in [0, 1).
template <class Gen>
double uniform01(Gen& gen);

/// Bernoulli(p) trial; p is clamped to [0, 1].
template <class Gen>
bool bernoulli(Gen& gen, double p);

/// Standard normal via the Marsaglia polar method (exact up to double
/// rounding; no tail truncation).
template <class Gen>
double standard_normal(Gen& gen);

/// Exponential(rate = 1) via inversion.
template <class Gen>
double standard_exponential(Gen& gen);

/// Fisher–Yates shuffle of a span-like range [first, first + count).
template <typename T, class Gen = Xoshiro256pp>
void shuffle(Gen& gen, T* first, std::size_t count) {
  for (std::size_t i = count; i > 1; --i) {
    std::size_t j = static_cast<std::size_t>(uniform_below(gen, i));
    T tmp = first[i - 1];
    first[i - 1] = first[j];
    first[j] = tmp;
  }
}

}  // namespace plurality::rng
