// Reproducible independent random streams for parallel trials.
//
// Trial i of an experiment must see the same randomness whether trials run
// sequentially or across OpenMP threads, and distinct trials must be
// statistically independent. We derive stream i by hashing (master_seed, i)
// through two rounds of SplitMix64 avalanche into a fresh xoshiro seed; the
// probability of any state collision across millions of streams is
// negligible (~m^2 / 2^64 birthday bound on seeds, and even colliding seeds
// would need identical derived 256-bit states).
#pragma once

#include <cstdint>

#include "rng/xoshiro.hpp"

namespace plurality::rng {

class StreamFactory {
 public:
  explicit StreamFactory(std::uint64_t master_seed) : master_seed_(master_seed) {}

  /// The generator for logical stream `index` (trial number, thread id, ...).
  [[nodiscard]] Xoshiro256pp stream(std::uint64_t index) const;

  /// A named sub-factory, e.g. per experiment phase, so adding a new
  /// consumer never perturbs the randomness other consumers observe.
  [[nodiscard]] StreamFactory child(std::uint64_t tag) const;

  [[nodiscard]] std::uint64_t master_seed() const { return master_seed_; }

 private:
  std::uint64_t master_seed_;
};

}  // namespace plurality::rng
