#include "rng/discrete.hpp"

#include <cmath>

#include "rng/distributions.hpp"
#include "support/check.hpp"

namespace plurality::rng {

AliasTable::AliasTable(std::span<const double> weights) {
  const std::size_t k = weights.size();
  PLURALITY_REQUIRE(k >= 1, "AliasTable: empty weight vector");
  double total = 0.0;
  for (double w : weights) {
    PLURALITY_REQUIRE(w >= 0.0, "AliasTable: negative weight");
    total += w;
  }
  PLURALITY_REQUIRE(total > 0.0, "AliasTable: all weights zero");

  normalized_.resize(k);
  for (std::size_t i = 0; i < k; ++i) normalized_[i] = weights[i] / total;

  prob_.assign(k, 0.0);
  alias_.assign(k, 0);

  // Vose's stable partition into "small" (scaled prob < 1) and "large".
  std::vector<double> scaled(k);
  for (std::size_t i = 0; i < k; ++i) scaled[i] = normalized_[i] * static_cast<double>(k);
  std::vector<std::uint32_t> small, large;
  small.reserve(k);
  large.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers are exactly 1 up to rounding.
  for (std::uint32_t l : large) prob_[l] = 1.0;
  for (std::uint32_t s : small) prob_[s] = 1.0;
}

std::uint32_t AliasTable::sample(Xoshiro256pp& gen) const {
  const auto bucket = static_cast<std::uint32_t>(uniform_below(gen, prob_.size()));
  return gen.next_double() < prob_[bucket] ? bucket : alias_[bucket];
}

std::vector<double> zipf_weights(std::size_t k, double theta) {
  PLURALITY_REQUIRE(k >= 1, "zipf_weights: k must be positive");
  PLURALITY_REQUIRE(theta >= 0.0, "zipf_weights: theta must be nonnegative");
  std::vector<double> w(k);
  for (std::size_t i = 0; i < k; ++i) {
    w[i] = std::pow(static_cast<double>(i + 1), -theta);
  }
  return w;
}

void normalize_weights(std::span<double> weights) {
  double total = 0.0;
  for (double w : weights) {
    PLURALITY_REQUIRE(w >= 0.0, "normalize_weights: negative weight");
    total += w;
  }
  PLURALITY_REQUIRE(total > 0.0, "normalize_weights: zero total");
  for (double& w : weights) w /= total;
}

}  // namespace plurality::rng
