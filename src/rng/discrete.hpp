// Weighted discrete sampling (Walker/Vose alias method) and the Zipf
// workload distribution used by the ranking examples.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rng/xoshiro.hpp"

namespace plurality::rng {

/// O(k) construction, O(1) sampling from a fixed discrete distribution.
class AliasTable {
 public:
  /// Builds from relative weights (any positive scale; zeros allowed,
  /// at least one weight must be positive).
  explicit AliasTable(std::span<const double> weights);

  /// Draws an index in [0, size()) with probability proportional to its weight.
  [[nodiscard]] std::uint32_t sample(Xoshiro256pp& gen) const;

  [[nodiscard]] std::size_t size() const { return prob_.size(); }

  /// The normalized probability of index i (for tests).
  [[nodiscard]] double probability(std::size_t i) const { return normalized_[i]; }

 private:
  std::vector<double> prob_;          // acceptance probability per bucket
  std::vector<std::uint32_t> alias_;  // fallback index per bucket
  std::vector<double> normalized_;
};

/// Zipf(theta) relative weights over ranks 1..k: w_i ∝ 1 / (i+1)^theta.
/// theta = 0 is uniform; larger theta is more skewed.
std::vector<double> zipf_weights(std::size_t k, double theta);

/// Normalizes weights in place to sum to 1. Weights must be nonnegative with
/// positive sum.
void normalize_weights(std::span<double> weights);

}  // namespace plurality::rng
