#include "rng/stream.hpp"

#include "rng/splitmix.hpp"

namespace plurality::rng {

Xoshiro256pp StreamFactory::stream(std::uint64_t index) const {
  // Two avalanche rounds over a keyed combination; constants are arbitrary
  // odd numbers to separate the (seed, index) domains.
  std::uint64_t h = splitmix64_mix(master_seed_ ^ 0x9e3779b97f4a7c15ULL);
  h = splitmix64_mix(h + 0x165667b19e3779f9ULL * index + 1);
  return Xoshiro256pp(h);
}

StreamFactory StreamFactory::child(std::uint64_t tag) const {
  std::uint64_t h = splitmix64_mix(master_seed_ + 0xd1b54a32d192ed03ULL * (tag + 1));
  return StreamFactory(h);
}

}  // namespace plurality::rng
