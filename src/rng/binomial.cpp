#include "rng/binomial.hpp"

#include <cmath>

#include "support/check.hpp"

namespace plurality::rng {

namespace {

// Stirling tail delta(k) = log(k!) - [k log k - k + 0.5 log(2 pi k)].
// Exact table for k <= 9, 3-term asymptotic series beyond (error < 1e-14).
double stirling_tail(double k) {
  static constexpr double kTable[] = {
      0.08106146679532726, 0.04134069595540929, 0.02767792568499834,
      0.02079067210376509, 0.01664469118982119, 0.01387612882307075,
      0.01189670994589177, 0.01041126526197209, 0.00925546218271273,
      0.00833056343336287};
  if (k <= 9.0) return kTable[static_cast<int>(k)];
  const double kp1 = k + 1.0;
  const double kp1sq = kp1 * kp1;
  return (1.0 / 12.0 - (1.0 / 360.0 - 1.0 / 1260.0 / kp1sq) / kp1sq) / kp1;
}

}  // namespace

template <class Gen>
std::uint64_t binomial_inversion(Gen& gen, std::uint64_t n, double p) {
  PLURALITY_REQUIRE(p > 0.0 && p <= 0.5, "binomial_inversion requires 0 < p <= 0.5");
  const double q = 1.0 - p;
  const double s = p / q;
  const double a = (static_cast<double>(n) + 1.0) * s;
  const double r0 = std::exp(static_cast<double>(n) * std::log(q));  // q^n
  while (true) {
    double r = r0;
    double u = gen.next_double();
    std::uint64_t x = 0;
    bool overflow = false;
    while (u > r) {
      u -= r;
      ++x;
      if (x > n) {  // accumulated rounding ate the tail mass; retry (rare)
        overflow = true;
        break;
      }
      r *= (a / static_cast<double>(x) - s);
    }
    if (!overflow) return x;
  }
}

template <class Gen>
std::uint64_t binomial_btrs(Gen& gen, std::uint64_t n, double p) {
  PLURALITY_REQUIRE(p > 0.0 && p <= 0.5, "binomial_btrs requires 0 < p <= 0.5");
  const double nd = static_cast<double>(n);
  PLURALITY_REQUIRE(nd * p >= 10.0, "binomial_btrs requires n*p >= 10");
  const double q = 1.0 - p;
  const double r = p / q;
  const double spq = std::sqrt(nd * p * q);
  const double b = 1.15 + 2.53 * spq;
  const double a = -0.0873 + 0.0248 * b + 0.01 * p;
  const double c = nd * p + 0.5;
  const double v_r = 0.92 - 4.2 / b;
  const double alpha = (2.83 + 5.1 / b) * spq;
  const double m = std::floor((nd + 1.0) * p);

  while (true) {
    const double u = gen.next_double() - 0.5;
    double v = gen.next_double();
    const double us = 0.5 - std::fabs(u);
    const double kd = std::floor((2.0 * a / us + b) * u + c);
    if (kd < 0.0 || kd > nd) continue;
    // Squeeze: the bulk of the dome is accepted with one comparison.
    if (us >= 0.07 && v <= v_r) return static_cast<std::uint64_t>(kd);
    // Full acceptance test against the exact pmf ratio.
    v = std::log(v * alpha / (a / (us * us) + b));
    const double upper =
        (m + 0.5) * std::log((m + 1.0) / (r * (nd - m + 1.0))) +
        (nd + 1.0) * std::log((nd - m + 1.0) / (nd - kd + 1.0)) +
        (kd + 0.5) * std::log(r * (nd - kd + 1.0) / (kd + 1.0)) +
        stirling_tail(m) + stirling_tail(nd - m) - stirling_tail(kd) -
        stirling_tail(nd - kd);
    if (v <= upper) return static_cast<std::uint64_t>(kd);
  }
}

template <class Gen>
std::uint64_t binomial(Gen& gen, std::uint64_t n, double p) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  // Exploit symmetry so the samplers only ever see p <= 1/2.
  if (p > 0.5) return n - binomial(gen, n, 1.0 - p);
  if (static_cast<double>(n) * p <= kInversionThreshold) {
    return binomial_inversion(gen, n, p);
  }
  return binomial_btrs(gen, n, p);
}


// The two shipped engines (see binomial.hpp).
template std::uint64_t binomial<Xoshiro256pp>(Xoshiro256pp&, std::uint64_t, double);
template std::uint64_t binomial<PhiloxStream>(PhiloxStream&, std::uint64_t, double);
template std::uint64_t binomial_inversion<Xoshiro256pp>(Xoshiro256pp&, std::uint64_t, double);
template std::uint64_t binomial_inversion<PhiloxStream>(PhiloxStream&, std::uint64_t, double);
template std::uint64_t binomial_btrs<Xoshiro256pp>(Xoshiro256pp&, std::uint64_t, double);
template std::uint64_t binomial_btrs<PhiloxStream>(PhiloxStream&, std::uint64_t, double);

double binomial_log_pmf(std::uint64_t n, double p, std::uint64_t x) {
  PLURALITY_REQUIRE(x <= n, "binomial_log_pmf: x > n");
  if (p <= 0.0) return x == 0 ? 0.0 : -INFINITY;
  if (p >= 1.0) return x == n ? 0.0 : -INFINITY;
  const double nd = static_cast<double>(n);
  const double xd = static_cast<double>(x);
  return std::lgamma(nd + 1.0) - std::lgamma(xd + 1.0) - std::lgamma(nd - xd + 1.0) +
         xd * std::log(p) + (nd - xd) * std::log1p(-p);
}

double binomial_pmf(std::uint64_t n, double p, std::uint64_t x) {
  const double lp = binomial_log_pmf(n, p, x);
  return std::isinf(lp) ? 0.0 : std::exp(lp);
}

}  // namespace plurality::rng
