#include "rng/multinomial.hpp"

#include <algorithm>

#include "rng/binomial.hpp"
#include "support/check.hpp"

namespace plurality::rng {

template <class Gen>
void multinomial_accumulate(Gen& gen, count_t n, std::span<const double> probs,
                            std::span<count_t> inout, MultinomialWorkspace& ws) {
  const std::size_t k = probs.size();
  PLURALITY_REQUIRE(inout.size() == k, "multinomial: out size mismatch");
  PLURALITY_REQUIRE(k >= 1, "multinomial: need at least one category");

  // Gather the positive-weight support (one forward O(k) scan), then build
  // suffix sums over just that support (O(nnz), backward). Dropping
  // zero-weight categories leaves every conditional probability bitwise
  // unchanged (the dense backward suffix recurrence only ever adds 0.0 at
  // those indices) and skips only binomial calls at p == 0, which consume
  // no randomness — so this is stream-identical to the dense loop.
  // Backward suffix sums also keep the conditionals stable: a
  // subtraction-based running remainder loses precision after many
  // categories, suffix sums do not.
  if (ws.support.size() < k) ws.support.resize(k);
  if (ws.suffix.size() < k + 1) ws.suffix.resize(k + 1);
  std::uint32_t* support = ws.support.data();
  double* suffix = ws.suffix.data();
  std::size_t nnz = 0;
  for (std::size_t j = 0; j < k; ++j) {
    const double w = probs[j];
    if (w > 0.0) {
      support[nnz++] = static_cast<std::uint32_t>(j);
    } else {
      PLURALITY_REQUIRE(w > -1e-9, "multinomial: negative weight " << w << " at " << j);
    }
  }
  PLURALITY_REQUIRE(nnz > 0, "multinomial: all weights zero");
  suffix[nnz] = 0.0;
  for (std::size_t i = nnz; i-- > 0;) {
    suffix[i] = suffix[i + 1] + probs[support[i]];
  }

  count_t remaining = n;
  for (std::size_t i = 0; i + 1 < nnz && remaining > 0; ++i) {
    const std::size_t j = support[i];
    double pc = probs[j] / suffix[i];
    if (pc > 1.0) pc = 1.0;
    const count_t draw = binomial(gen, remaining, pc);
    inout[j] += draw;
    remaining -= draw;
  }
  // The last supported category takes whatever mass is left. In the dense
  // loop this happens either via its pc == 1.0 draw (no randomness) or via
  // the final-category assignment, so the streams agree here too.
  inout[support[nnz - 1]] += remaining;
}

template <class Gen>
void multinomial_accumulate_indexed(Gen& gen, count_t n,
                                    std::span<const state_t> states,
                                    std::span<const double> weights,
                                    std::span<count_t> inout, MultinomialWorkspace& ws) {
  const std::size_t m = states.size();
  PLURALITY_REQUIRE(weights.size() == m, "multinomial: states/weights size mismatch");
  PLURALITY_REQUIRE(m >= 1, "multinomial: need at least one category");

  // Compact away zero-weight entries (callers may emit them; the dense
  // kernel skips the matching categories the same way).
  if (ws.support.size() < m) ws.support.resize(m);
  if (ws.weights.size() < m) ws.weights.resize(m);
  if (ws.suffix.size() < m + 1) ws.suffix.resize(m + 1);
  std::uint32_t* support = ws.support.data();
  double* compact = ws.weights.data();
  double* suffix = ws.suffix.data();
  std::size_t nnz = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const double w = weights[i];
    PLURALITY_REQUIRE(states[i] < inout.size(),
                      "multinomial: category " << states[i] << " out of range");
    PLURALITY_REQUIRE(i == 0 || states[i] > states[i - 1],
                      "multinomial: states must be strictly ascending");
    if (w > 0.0) {
      support[nnz] = states[i];
      compact[nnz] = w;
      ++nnz;
    } else {
      PLURALITY_REQUIRE(w > -1e-9, "multinomial: negative weight " << w << " at " << i);
    }
  }
  PLURALITY_REQUIRE(nnz > 0, "multinomial: all weights zero");
  suffix[nnz] = 0.0;
  for (std::size_t i = nnz; i-- > 0;) {
    suffix[i] = suffix[i + 1] + compact[i];
  }

  count_t remaining = n;
  for (std::size_t i = 0; i + 1 < nnz && remaining > 0; ++i) {
    double pc = compact[i] / suffix[i];
    if (pc > 1.0) pc = 1.0;
    const count_t draw = binomial(gen, remaining, pc);
    inout[support[i]] += draw;
    remaining -= draw;
  }
  inout[support[nnz - 1]] += remaining;
}

template <class Gen>
void multinomial(Gen& gen, count_t n, std::span<const double> probs,
                 std::span<count_t> out, MultinomialWorkspace& ws) {
  std::fill(out.begin(), out.end(), count_t{0});
  multinomial_accumulate(gen, n, probs, out, ws);
}

template <class Gen>
void multinomial(Gen& gen, count_t n, std::span<const double> probs,
                 std::span<count_t> out) {
  MultinomialWorkspace ws;
  multinomial(gen, n, probs, out, ws);
}


// The two shipped engines (see multinomial.hpp).
template void multinomial_accumulate<Xoshiro256pp>(Xoshiro256pp&, count_t,
                                                   std::span<const double>,
                                                   std::span<count_t>, MultinomialWorkspace&);
template void multinomial_accumulate<PhiloxStream>(PhiloxStream&, count_t,
                                                   std::span<const double>,
                                                   std::span<count_t>, MultinomialWorkspace&);
template void multinomial_accumulate_indexed<Xoshiro256pp>(Xoshiro256pp&, count_t,
                                                           std::span<const state_t>,
                                                           std::span<const double>,
                                                           std::span<count_t>,
                                                           MultinomialWorkspace&);
template void multinomial_accumulate_indexed<PhiloxStream>(PhiloxStream&, count_t,
                                                           std::span<const state_t>,
                                                           std::span<const double>,
                                                           std::span<count_t>,
                                                           MultinomialWorkspace&);
template void multinomial<Xoshiro256pp>(Xoshiro256pp&, count_t, std::span<const double>,
                                        std::span<count_t>, MultinomialWorkspace&);
template void multinomial<PhiloxStream>(PhiloxStream&, count_t, std::span<const double>,
                                        std::span<count_t>, MultinomialWorkspace&);
template void multinomial<Xoshiro256pp>(Xoshiro256pp&, count_t, std::span<const double>,
                                        std::span<count_t>);
template void multinomial<PhiloxStream>(PhiloxStream&, count_t, std::span<const double>,
                                        std::span<count_t>);

}  // namespace plurality::rng
