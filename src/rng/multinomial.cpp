#include "rng/multinomial.hpp"

#include <vector>

#include "rng/binomial.hpp"
#include "support/check.hpp"

namespace plurality::rng {

void multinomial(Xoshiro256pp& gen, count_t n, std::span<const double> probs,
                 std::span<count_t> out) {
  const std::size_t k = probs.size();
  PLURALITY_REQUIRE(out.size() == k, "multinomial: out size mismatch");
  PLURALITY_REQUIRE(k >= 1, "multinomial: need at least one category");

  // Backward suffix sums keep the conditional probabilities stable: the
  // subtraction-based running remainder loses precision after many
  // categories, suffix sums do not.
  std::vector<double> suffix(k + 1, 0.0);
  for (std::size_t j = k; j-- > 0;) {
    double w = probs[j];
    PLURALITY_REQUIRE(w > -1e-9, "multinomial: negative weight " << w << " at " << j);
    if (w < 0.0) w = 0.0;
    suffix[j] = suffix[j + 1] + w;
  }
  PLURALITY_REQUIRE(suffix[0] > 0.0, "multinomial: all weights zero");

  count_t remaining = n;
  for (std::size_t j = 0; j + 1 < k; ++j) {
    if (remaining == 0 || suffix[j] <= 0.0) {
      out[j] = 0;
      continue;
    }
    double pc = probs[j] <= 0.0 ? 0.0 : probs[j] / suffix[j];
    if (pc > 1.0) pc = 1.0;
    const count_t draw = binomial(gen, remaining, pc);
    out[j] = draw;
    remaining -= draw;
  }
  out[k - 1] = remaining;
}

}  // namespace plurality::rng
