#include "rng/xoshiro.hpp"

#include "rng/splitmix.hpp"
#include "support/check.hpp"

namespace plurality::rng {

Xoshiro256pp::Xoshiro256pp(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64_next(sm);
  // SplitMix64 is a bijection sequence; four consecutive outputs are never
  // all zero, so the state is always valid.
}

Xoshiro256pp::Xoshiro256pp(const std::array<std::uint64_t, 4>& state) : s_(state) {
  PLURALITY_REQUIRE(state[0] | state[1] | state[2] | state[3],
                    "xoshiro256++ state must not be all zero");
}

void Xoshiro256pp::apply_jump(const std::array<std::uint64_t, 4>& poly) {
  std::array<std::uint64_t, 4> acc = {0, 0, 0, 0};
  for (std::uint64_t word : poly) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (1ULL << bit)) {
        acc[0] ^= s_[0];
        acc[1] ^= s_[1];
        acc[2] ^= s_[2];
        acc[3] ^= s_[3];
      }
      (*this)();
    }
  }
  s_ = acc;
}

void Xoshiro256pp::jump() {
  // Characteristic-polynomial constants from the reference implementation.
  apply_jump({0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
              0x39abdc4529b1661cULL});
}

void Xoshiro256pp::long_jump() {
  apply_jump({0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
              0x39109bb02acbe635ULL});
}

}  // namespace plurality::rng
