// Philox4x32 — Salmon, Moraes, Dror & Shaw's counter-based RNG ("Parallel
// random numbers: as easy as 1, 2, 3", SC 2011; the Random123 reference
// algorithm). Unlike xoshiro's sequential state walk, Philox is a pure
// function (counter, key) -> 128 random bits: any word of the stream can be
// produced in any order, by any thread, with no shared state and no
// jump-ahead bookkeeping. That property is what the batched graph engine
// needs — randomness addressed by (seed, round, node, draw) is trivially
// thread-count- and batch-size-invariant — and it makes the generation loop
// embarrassingly parallel, i.e. SIMD-friendly.
//
// Two round counts are used in this library:
//   * kRounds (10) — the Random123 default, pinned here by the published
//     known-answer vectors (tests/rng/test_philox.cpp). PhiloxStream and
//     every quality-paramount consumer use it.
//   * kCrushRounds (7) — the minimum round count reported Crush-resistant
//     (passes TestU01 BigCrush) in Salmon et al., Table 2; 8, 9, 10 only
//     add safety margin. The graph engine's batched sampler uses 7: its
//     per-word cost is on the critical path of every node update, and the
//     statistical battery (tests/graph/test_graph_kernels.cpp) empirically
//     pins each batched kernel's adoption law on top of the BigCrush
//     pedigree. R is a compile-time parameter, so both variants share one
//     implementation and both are KAT-pinned.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace plurality::rng {

class Philox4x32 {
 public:
  /// Random123 default round count (known-answer pinned).
  static constexpr unsigned kRounds = 10;
  /// Crush-resistant minimum per Salmon et al. (2011), Table 2.
  static constexpr unsigned kCrushRounds = 7;

  /// 64-bit key, split into the two 32-bit Philox key words.
  struct Key {
    std::uint32_t k0;
    std::uint32_t k1;
  };

  /// One 128-bit output block (v[0..3] in the reference output order).
  struct Block {
    std::array<std::uint32_t, 4> v;
  };

  /// The bijection: R rounds over counter (c0,c1,c2,c3) under `key`.
  /// Multipliers/Weyl constants are the published Philox4x32 constants.
  template <unsigned R = kRounds>
  static Block block(std::uint32_t c0, std::uint32_t c1, std::uint32_t c2,
                     std::uint32_t c3, Key key) {
    std::uint32_t k0 = key.k0, k1 = key.k1;
    for (unsigned r = 0; r < R; ++r) {
      const std::uint64_t p0 = std::uint64_t{0xD2511F53u} * c0;
      const std::uint64_t p1 = std::uint64_t{0xCD9E8D57u} * c2;
      const std::uint32_t n0 = static_cast<std::uint32_t>(p1 >> 32) ^ c1 ^ k0;
      const std::uint32_t n1 = static_cast<std::uint32_t>(p1);
      const std::uint32_t n2 = static_cast<std::uint32_t>(p0 >> 32) ^ c3 ^ k1;
      const std::uint32_t n3 = static_cast<std::uint32_t>(p0);
      c0 = n0;
      c1 = n1;
      c2 = n2;
      c3 = n3;
      k0 += 0x9E3779B9u;  // golden-ratio Weyl increment
      k1 += 0xBB67AE85u;  // sqrt(3)-1 Weyl increment
    }
    return Block{{c0, c1, c2, c3}};
  }

  /// Derives a Philox key from a 64-bit seed via SplitMix64 avalanche (the
  /// same mixer StreamFactory trusts for stream derivation); `tag` separates
  /// independent key domains of one seed.
  static Key key_from_seed(std::uint64_t seed, std::uint64_t tag = 0);

  /// The canonical u64-word stream of a (key, domain) pair:
  ///
  ///   word w  =  v[2*(w%2)]  |  v[2*(w%2)+1] << 32   of   block(w/2)
  ///
  /// with counter (c0,c1) = 64-bit block index and (c2,c3) = 64-bit
  /// `domain` (the graph engine passes the round number; PhiloxStream passes
  /// its stream constant). Every consumer of Philox words in this library —
  /// scalar or SIMD — reproduces exactly this indexing, so any two
  /// implementations of a consumer are bitwise comparable.
  template <unsigned R = kRounds>
  static std::uint64_t word(Key key, std::uint64_t domain, std::uint64_t w) {
    const std::uint64_t blk = w >> 1;
    const Block b = block<R>(static_cast<std::uint32_t>(blk),
                             static_cast<std::uint32_t>(blk >> 32),
                             static_cast<std::uint32_t>(domain),
                             static_cast<std::uint32_t>(domain >> 32), key);
    const unsigned half = static_cast<unsigned>(w & 1) * 2;
    return static_cast<std::uint64_t>(b.v[half]) |
           (static_cast<std::uint64_t>(b.v[half + 1]) << 32);
  }

  /// Fills out[0..count) with words [word_lo, word_lo + count) of the
  /// (key, domain) stream. Scalar reference implementation; the batched
  /// engine's SIMD generators are pinned bitwise against it.
  template <unsigned R = kRounds>
  static void fill_words(Key key, std::uint64_t domain, std::uint64_t word_lo,
                         std::size_t count, std::uint64_t* out);
};

/// Sequential buffered generator over the Philox word stream — the
/// counter-based sibling of Xoshiro256pp, exposing the same generator
/// interface (operator(), next_double, min/max) so the exact samplers
/// (uniform_below / binomial / multinomial) can run on either engine.
///
/// Words are produced in blocks of kBufferWords by one flat fill loop (the
/// "block-generated uniforms" the count-based batched mode feeds into
/// multinomial_accumulate); the buffer is a fixed in-object array, so the
/// stream allocates nothing, ever.
class PhiloxStream {
 public:
  using result_type = std::uint64_t;
  static constexpr std::size_t kBufferWords = 256;

  /// Counter-domain word of every PhiloxStream (separates the sequential
  /// stream from round-addressed consumers sharing a seed). Public so tests
  /// can pin the stream to its documented word sequence.
  static constexpr std::uint64_t kStreamDomain = 0x53545245414d3634ULL;  // "STREAM64"

  /// `tag` selects one of 2^64 independent streams of the seed (matching
  /// StreamFactory's role for xoshiro streams).
  explicit PhiloxStream(std::uint64_t seed, std::uint64_t tag = 0);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    if (pos_ == kBufferWords) refill();
    return buffer_[pos_++];
  }

  /// Uniform double in [0, 1) with 53 random bits (same construction as
  /// Xoshiro256pp::next_double).
  double next_double() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Total words consumed so far (test/diagnostic hook).
  [[nodiscard]] std::uint64_t words_consumed() const {
    return next_word_ - (kBufferWords - pos_);
  }

 private:
  void refill();

  std::array<std::uint64_t, kBufferWords> buffer_;
  std::size_t pos_;
  std::uint64_t next_word_;  // first word of the NEXT refill
  Philox4x32::Key key_;
  std::uint64_t domain_;
};

}  // namespace plurality::rng
