#include "rng/distributions.hpp"

#include <cmath>

#include "support/check.hpp"

namespace plurality::rng {

template <class Gen>
std::uint64_t uniform_below(Gen& gen, std::uint64_t bound) {
  PLURALITY_REQUIRE(bound != 0, "uniform_below: bound must be positive");
  // Lemire (2019): multiply a 64-bit word by the bound and keep the high
  // half; reject the small biased fringe so every residue is exactly
  // equally likely.
  std::uint64_t x = gen();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = gen();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

template <class Gen>
std::uint64_t uniform_in(Gen& gen, std::uint64_t lo, std::uint64_t hi) {
  PLURALITY_REQUIRE(lo <= hi, "uniform_in: empty range");
  const std::uint64_t span = hi - lo;
  if (span == ~0ULL) return gen();
  return lo + uniform_below(gen, span + 1);
}

template <class Gen>
double uniform01(Gen& gen) {
  return gen.next_double();
}

template <class Gen>
bool bernoulli(Gen& gen, double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return gen.next_double() < p;
}

template <class Gen>
double standard_normal(Gen& gen) {
  // Marsaglia polar method; ~1.27 uniform pairs per normal on average.
  while (true) {
    const double u = 2.0 * gen.next_double() - 1.0;
    const double v = 2.0 * gen.next_double() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

template <class Gen>
double standard_exponential(Gen& gen) {
  // -log(1 - U) with U in [0,1) keeps the argument strictly positive.
  return -std::log1p(-gen.next_double());
}

// The two shipped engines (see distributions.hpp).
template std::uint64_t uniform_below<Xoshiro256pp>(Xoshiro256pp&, std::uint64_t);
template std::uint64_t uniform_below<PhiloxStream>(PhiloxStream&, std::uint64_t);
template std::uint64_t uniform_in<Xoshiro256pp>(Xoshiro256pp&, std::uint64_t, std::uint64_t);
template std::uint64_t uniform_in<PhiloxStream>(PhiloxStream&, std::uint64_t, std::uint64_t);
template double uniform01<Xoshiro256pp>(Xoshiro256pp&);
template double uniform01<PhiloxStream>(PhiloxStream&);
template bool bernoulli<Xoshiro256pp>(Xoshiro256pp&, double);
template bool bernoulli<PhiloxStream>(PhiloxStream&, double);
template double standard_normal<Xoshiro256pp>(Xoshiro256pp&);
template double standard_normal<PhiloxStream>(PhiloxStream&);
template double standard_exponential<Xoshiro256pp>(Xoshiro256pp&);
template double standard_exponential<PhiloxStream>(PhiloxStream&);

}  // namespace plurality::rng
