// Scenario — a compiled, runnable ScenarioSpec.
//
// compile() resolves every name through its registry (dynamics, workload,
// topology, adversary), builds the start configuration (auxiliary states
// appended where the protocol needs them), packs the CSR graph for sparse
// topologies, and fills core's CommonTrialOptions. run() then dispatches
// to the SAME trial drivers every pre-scenario binary used — run_trials on
// the count path, graph::run_graph_trials on the graph path — with
// identical option values, so a spec reproduces the legacy calls' streams
// and TrialSummary bitwise (tests/scenario/test_scenario_equivalence.cpp
// pins this for the backend × engine × adversary grid).
#pragma once

#include <memory>

#include "core/adversary.hpp"
#include "core/dynamics.hpp"
#include "core/trials.hpp"
#include "graph/agent_graph.hpp"
#include "scenario/spec.hpp"

namespace plurality::scenario {

/// StreamFactory child tag reserved for topology construction, so random
/// graphs (regular:<d>, er:<p>) are reproducible per seed without
/// perturbing the trial streams (which derive from the seed directly).
inline constexpr std::uint64_t kTopologyStreamTag = 0x746f706f;  // "topo"

class Scenario {
 public:
  /// Validates `spec` and builds every runtime object. Throws CheckError
  /// with the validation layer's actionable messages.
  static Scenario compile(const ScenarioSpec& spec);

  /// The input spec with "auto" fields resolved (what ran, echoed into
  /// results so a result file is self-describing).
  [[nodiscard]] const ScenarioSpec& spec() const { return spec_; }

  [[nodiscard]] const Dynamics& dynamics() const { return *dynamics_; }
  /// Start configuration in the dynamics' state space (auxiliary states
  /// appended; identical for every trial, matching the legacy binaries).
  [[nodiscard]] const Configuration& start() const { return start_; }
  /// nullptr when the spec says "none".
  [[nodiscard]] const Adversary* adversary() const { return adversary_.get(); }
  /// True when run() dispatches to graph::run_graph_trials.
  [[nodiscard]] bool uses_graph_driver() const { return use_graph_; }
  /// The packed topology; only valid when uses_graph_driver().
  [[nodiscard]] const graph::AgentGraph& graph() const;
  /// The unified option set run() passes to the trial driver (adversary
  /// pointer already wired).
  [[nodiscard]] const CommonTrialOptions& options() const { return options_; }

  /// Runs the scenario's trials and reduces them to the shared summary.
  /// `observer` (optional) is threaded into the trial driver's per-round
  /// probe pipeline (core/observer.hpp) — it never changes the summary
  /// (observer-on == observer-off, bitwise; the sweep orchestrator relies
  /// on this to enrich cells without unpinning them). `cancel` (optional)
  /// is the cooperative cancellation token every driver checks between
  /// rounds; a fired token makes run() throw CancelledError (never a
  /// partial summary) — like the observer, an unfired token changes
  /// nothing, bitwise.
  [[nodiscard]] TrialSummary run(RoundObserver* observer = nullptr,
                                 const CancellationToken* cancel = nullptr) const;

 private:
  Scenario() = default;

  ScenarioSpec spec_;
  std::unique_ptr<Dynamics> dynamics_;
  Configuration start_;
  std::unique_ptr<Adversary> adversary_;
  graph::AgentGraph graph_;
  bool use_graph_ = false;
  CommonTrialOptions options_;
};

/// One scenario execution: the resolved spec, the trial summary, and the
/// wall time the trials took.
struct ScenarioResult {
  ScenarioSpec resolved;
  TrialSummary summary;
  double wall_seconds = 0.0;
};

/// parse -> validate -> compile -> run in one call — the single entry
/// point the simulator CLI, benches, and examples share. `observer` (when
/// given) sees every round of every trial without affecting the result;
/// `cancel` (when given) bounds the run cooperatively — see Scenario::run.
ScenarioResult run_scenario(const ScenarioSpec& spec, RoundObserver* observer = nullptr,
                            const CancellationToken* cancel = nullptr);

/// The result as an ordered JSON document (schema_version 1): the resolved
/// spec echo, the summary counters/rates, round statistics (mean/min/max
/// and p50/p95 where any trial stopped), and timing. Written via the
/// existing src/io writer.
io::JsonValue scenario_result_to_json(const ScenarioResult& result);

}  // namespace plurality::scenario
