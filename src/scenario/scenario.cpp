#include "scenario/scenario.hpp"

#include "core/registry.hpp"
#include "core/runner.hpp"
#include "core/undecided.hpp"
#include "core/workloads.hpp"
#include "graph/graph_trials.hpp"
#include "graph/layout.hpp"
#include "graph/topology_registry.hpp"
#include "rng/stream.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"

namespace plurality::scenario {

const graph::AgentGraph& Scenario::graph() const {
  PLURALITY_REQUIRE(use_graph_, "Scenario::graph: scenario compiled to the count path "
                                "(no packed topology)");
  return graph_;
}

Scenario Scenario::compile(const ScenarioSpec& spec) {
  const std::string backend = spec.resolved_backend();  // validates first

  Scenario compiled;
  compiled.spec_ = spec;
  compiled.spec_.backend = backend;

  compiled.dynamics_ = make_dynamics(spec.dynamics);
  compiled.adversary_ = make_adversary(spec.adversary);

  // Start configuration: the workload in color space, lifted into the
  // dynamics' state space when the protocol carries auxiliary states
  // (the undecided marker is always the last state).
  Configuration start = workloads::parse_workload(spec.workload, spec.n, spec.k);
  if (compiled.dynamics_->num_states(start.k()) > start.k()) {
    start = UndecidedState::extend_with_undecided(start);
  }
  compiled.start_ = std::move(start);

  compiled.use_graph_ = backend == "graph";
  if (compiled.use_graph_) {
    // topology_backend "auto" resolves here (echoed into the resolved spec
    // like `backend` above). Implicit builds are deterministic and
    // arena-free; arena builds draw their randomness from a dedicated
    // stream family so the SAME seed reproduces the same random graph
    // without touching trial streams.
    const std::string topo_backend = spec.resolved_topology_backend();
    compiled.spec_.topology_backend = topo_backend;
    // graph_layout "auto" resolves here too, and the resolved name is
    // echoed alongside topology_backend so results record what actually
    // ran. The layout only relabels ids (equivariance), so the SAME seed
    // still names the same random graph.
    const std::string layout_name = spec.resolved_graph_layout();
    compiled.spec_.graph_layout = layout_name;
    if (topo_backend == "implicit") {
      compiled.graph_ = graph::make_topology_implicit(spec.topology, spec.n);
    } else {
      rng::Xoshiro256pp topo_gen =
          rng::StreamFactory(spec.seed).child(kTopologyStreamTag).stream(0);
      compiled.graph_ = graph::make_topology(spec.topology, spec.n, topo_gen,
                                             graph::parse_graph_layout(layout_name));
    }
  }

  CommonTrialOptions& options = compiled.options_;
  options.trials = spec.trials;
  options.seed = spec.seed;
  options.parallel = spec.parallel;
  options.max_rounds = spec.max_rounds;
  options.mode = spec.engine == "batched"  ? EngineMode::Batched
                 : spec.engine == "push"   ? EngineMode::Push
                                           : EngineMode::Strict;
  options.adversary = compiled.adversary_.get();
  options.shuffle_layout = spec.shuffle_layout;
  options.tile_nodes = spec.tile_nodes;
  options.prefetch_distance = spec.prefetch_distance;
  options.backend = backend == "agent" ? Backend::Agent : Backend::CountBased;

  const StopCondition stop = parse_stop_condition(spec.stop);
  const state_t num_colors = compiled.dynamics_->num_colors(compiled.start_.k());
  switch (stop.kind) {
    case StopCondition::Kind::Consensus:
      break;
    case StopCondition::Kind::MPlurality:
      // Every workload generator puts the plurality on color 0.
      options.stop_predicate = stop_at_m_plurality(stop.value, 0);
      break;
    case StopCondition::Kind::AnyReaches:
      options.stop_predicate = stop_when_any_color_reaches(stop.value, num_colors);
      break;
  }

  return compiled;
}

TrialSummary Scenario::run(RoundObserver* observer,
                           const CancellationToken* cancel) const {
  if (observer == nullptr && cancel == nullptr) {
    if (use_graph_) {
      return graph::run_graph_trials(*dynamics_, graph_, start_, options_);
    }
    return run_trials(*dynamics_, start_, options_);
  }
  CommonTrialOptions extended = options_;
  extended.observer = observer;
  extended.cancel = cancel;
  if (use_graph_) {
    return graph::run_graph_trials(*dynamics_, graph_, start_, extended);
  }
  return run_trials(*dynamics_, start_, extended);
}

ScenarioResult run_scenario(const ScenarioSpec& spec, RoundObserver* observer,
                            const CancellationToken* cancel) {
  const Scenario compiled = Scenario::compile(spec);
  ScenarioResult result;
  result.resolved = compiled.spec();
  WallTimer timer;
  result.summary = compiled.run(observer, cancel);
  result.wall_seconds = timer.seconds();
  return result;
}

io::JsonValue scenario_result_to_json(const ScenarioResult& result) {
  io::JsonValue doc = io::JsonValue::object();
  doc.set("schema_version", 1);
  doc.set("spec", result.resolved.to_json());

  const TrialSummary& summary = result.summary;
  io::JsonValue& out = doc.set("summary", io::JsonValue::object());
  out.set("trials", summary.trials);
  out.set("consensus_count", summary.consensus_count);
  out.set("plurality_wins", summary.plurality_wins);
  out.set("round_limit_hits", summary.round_limit_hits);
  out.set("predicate_stops", summary.predicate_stops);
  out.set("consensus_rate", summary.consensus_rate());
  out.set("win_rate", summary.win_rate());
  const auto ci = summary.win_ci();
  io::JsonValue& win_ci = out.set("win_ci95", io::JsonValue::object());
  win_ci.set("low", ci.low);
  win_ci.set("high", ci.high);
  io::JsonValue& rounds = out.set("rounds", io::JsonValue::object());
  rounds.set("count", summary.rounds.count());
  if (summary.rounds.count() > 0) {
    rounds.set("mean", summary.rounds.mean());
    rounds.set("min", summary.rounds.min());
    rounds.set("max", summary.rounds.max());
    rounds.set("p50", summary.rounds_p(0.5));
    rounds.set("p95", summary.rounds_p(0.95));
    rounds.set("quantiles_exact", summary.round_quantiles.exact());
  }

  doc.set("wall_seconds", result.wall_seconds);
  return doc;
}

}  // namespace plurality::scenario
