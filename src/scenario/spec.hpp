// ScenarioSpec — the declarative face of the whole experiment grid.
//
// The paper's statements quantify over dynamics × k × workload × topology
// × adversary (Becchetti et al., SPAA 2014; the gossip-model follow-up
// arXiv:1407.2565 adds the topology/communication axis). Before this layer
// the grid was reachable only through two divergent APIs (core run_trials
// vs graph::run_graph_trials) that every binary hand-wired. A ScenarioSpec
// names one grid cell declaratively:
//
//   dynamics   registry name            (core/registry.hpp)
//   workload   initial-configuration spec (core/workloads.hpp grammar)
//   topology   topology spec            (graph/topology_registry.hpp grammar)
//   adversary  adversary spec           (core/adversary.hpp grammar)
//   backend    auto | count | agent | graph
//   engine     strict | batched | push  (core/engine_mode.hpp)
//   stop       consensus | m-plurality:<M> | any-reaches:<T>
//   n, k, trials, seed, max_rounds, parallel, shuffle_layout,
//   graph_layout, tile_nodes, prefetch_distance
//
// Specs parse from "key=value" strings or JSON files, validate with
// actionable errors, compile (scenario.hpp) into the right backend, and
// run through the SAME legacy drivers every golden test pins — same spec,
// same streams, bitwise-identical TrialSummary.
#pragma once

#include <string>

#include "io/json.hpp"
#include "support/types.hpp"

namespace plurality::scenario {

struct ScenarioSpec {
  std::string dynamics = "3-majority";
  std::string workload = "balanced";
  std::string topology = "clique";
  std::string adversary = "none";
  /// Trial driver. "auto" resolves at validate()/compile() time: clique
  /// topology + exact adoption law -> "count" (the Θ(k)-per-round exact
  /// backend); any sparse topology -> "graph"; clique without an exact law
  /// -> "agent" under the strict engine, "graph" under batched (the agent
  /// backend has no batched pipeline, the graph engine's implicit clique
  /// does).
  std::string backend = "auto";
  std::string engine = "strict";
  /// Stop condition, checked after each round on top of the always-on
  /// absorption checks:
  ///   "consensus"         color consensus / absorption / round cap only
  ///   "m-plurality:<M>"   all but at most M nodes on color 0 (Corollary 4
  ///                       runs; every workload puts the plurality there)
  ///   "any-reaches:<T>"   some color holds >= T nodes (Theorem 2 runs)
  /// Predicates are count-path only (the graph driver stops on consensus).
  std::string stop = "consensus";
  /// How the graph backend materializes the topology:
  ///   "auto"      implicit whenever the topology has an implicit form and
  ///               it pays off — always for clique/gossip (arena-free by
  ///               construction), for ring/torus/lattice:<d> once
  ///               n >= 2^22 (graph::kImplicitAutoThreshold); arena below
  ///               that (cheap, and keeps the fused SIMD CSR kernels).
  ///   "arena"     force the CSR arena build (caps n at 2^32 - 1 node ids;
  ///               rejects clique/gossip, which have no arena form)
  ///   "implicit"  force arithmetic neighborhoods (clique, gossip, ring,
  ///               torus, lattice:<d> only; no id cap beyond clique/gossip's
  ///               batched sample bound)
  /// Implicit ring/torus/lattice are bitwise-identical to their arena
  /// builds, so this knob never changes results — only memory and the
  /// reachable n. Ignored by the count/agent backends.
  std::string topology_backend = "auto";
  /// Node-id relabeling applied before CSR packing (graph/layout.hpp) —
  /// the locality engine's reordering axis:
  ///   "auto"      per-family rule: rcm for regular:<d>/er:<p>/gnm:<m>,
  ///               degree for edges:<path>, identity everywhere else
  ///   "identity"  keep generator order (the only value clique/gossip take)
  ///   "degree"    ids by descending degree (hubs packed together)
  ///   "rcm"       reverse Cuthill–McKee (bandwidth reduction)
  ///   "hilbert"   space-filling-curve order — torus[:<r>x<c>] only
  ///               (lattice:<d> accepts it as a no-op relabeling)
  /// Performance-only up to node naming: a relabeled run's states, counts,
  /// and TrialSummary are the identity-layout run's mapped through the
  /// permutation (equivariance — tests/graph/test_layout.cpp). Non-identity
  /// layouts need the CSR arena (rejects topology_backend=implicit) and the
  /// per-trial shuffle (rejects shuffle_layout=false).
  std::string graph_layout = "auto";
  count_t n = 10'000;
  state_t k = 3;
  std::uint64_t trials = 20;
  std::uint64_t seed = 1;
  round_t max_rounds = 1'000'000;
  bool parallel = true;
  /// Graph backend only: shuffle the node layout per trial.
  bool shuffle_layout = true;
  /// Graph backend cache-behavior knobs, forwarded as StepTuning
  /// (graph/graph_workspace.hpp). Performance-only: results never depend
  /// on them (pinned by the tuning-invariance tests). tile_nodes 0 =
  /// derive the batched tile from the word budget (caps at 8192);
  /// prefetch_distance 16 = the measured sweet spot, 0 disables prefetch
  /// (caps at 1024).
  std::uint32_t tile_nodes = 0;
  std::uint32_t prefetch_distance = 16;

  /// Parses the compact string form: whitespace-separated "key=value"
  /// tokens over the JSON field names, e.g.
  ///   "dynamics=undecided topology=regular:8 workload=bias:2c n=1e6 k=5
  ///    engine=batched trials=32"
  /// Unknown keys, duplicate keys, and malformed values throw CheckError.
  /// Fields not mentioned keep their defaults. Does NOT validate cross-
  /// field constraints — call validate().
  static ScenarioSpec parse(const std::string& text);

  /// Builds a spec from a parsed JSON object (strict: unknown keys throw,
  /// so a typo cannot silently run the default experiment). Fields not
  /// present keep their defaults.
  static ScenarioSpec from_json(const io::JsonValue& doc);

  /// Applies one `key=value` assignment with the string form's parsing
  /// rules (numeric fields accept "1e6"; unknown keys throw naming the
  /// known fields). This is the sweep layer's expansion hook: an axis is a
  /// field name plus value strings, each applied via set_field.
  void set_field(const std::string& key, const std::string& value);

  /// read_json_file + from_json.
  static ScenarioSpec from_json_file(const std::string& path);

  /// The spec as an ordered JSON object (round-trips through from_json).
  [[nodiscard]] io::JsonValue to_json() const;

  /// The spec in the compact string form (round-trips through parse).
  [[nodiscard]] std::string to_spec_string() const;

  /// Cross-field validation with actionable errors: every name resolves
  /// through its registry, the workload/topology fit (n, k), and the
  /// backend/engine/adversary/stop combination is runnable. Cheap (builds
  /// no graph). Throws CheckError; returns normally iff compile() would
  /// succeed (up to edge-list file contents).
  void validate() const;

  /// The backend "auto" resolves to under this spec's topology, dynamics,
  /// and engine (identity for explicit backends). validate()s first.
  [[nodiscard]] std::string resolved_backend() const;

  /// The topology backend ("arena" or "implicit") this spec's graph would
  /// be built with (identity for explicit values, auto rule above
  /// otherwise). validate()s first. Meaningful only when the trial backend
  /// resolves to "graph".
  [[nodiscard]] std::string resolved_topology_backend() const;

  /// The layout name ("identity"/"degree"/"rcm"/"hilbert") graph_layout
  /// resolves to under this spec's topology (the "auto" per-family rule;
  /// identity for explicit values). validate()s first. Meaningful only when
  /// the trial backend resolves to "graph"; echoed into compiled results.
  [[nodiscard]] std::string resolved_graph_layout() const;
};

/// A parsed `stop` field (shared by validate() and Scenario::compile()).
struct StopCondition {
  enum class Kind { Consensus, MPlurality, AnyReaches } kind = Kind::Consensus;
  count_t value = 0;
};

/// Parses a stop spec ("consensus", "m-plurality:<M>", "any-reaches:<T>");
/// throws CheckError on unknown kinds or malformed thresholds.
StopCondition parse_stop_condition(const std::string& stop);

}  // namespace plurality::scenario
