#include "scenario/spec.hpp"

#include <charconv>
#include <cmath>
#include <set>
#include <sstream>
#include <vector>

#include "core/adversary.hpp"
#include "core/registry.hpp"
#include "core/workloads.hpp"
#include "graph/implicit_topology.hpp"
#include "graph/topology_registry.hpp"
#include "support/check.hpp"
#include "support/specs.hpp"

namespace plurality::scenario {

namespace {

std::uint64_t parse_spec_uint(const std::string& key, const std::string& text) {
  // Accept plain integers and integral scientific notation ("1e6"), the
  // same convention the CLI layer uses for --n.
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec == std::errc() && ptr == text.data() + text.size()) return value;
  try {
    std::size_t pos = 0;
    const double v = std::stod(text, &pos);
    PLURALITY_REQUIRE(pos == text.size() && v >= 0.0 && v == std::floor(v) && v <= 0x1p63,
                      "scenario: '" << key << "' must be a non-negative integer, got '"
                                    << text << "'");
    return static_cast<std::uint64_t>(v);
  } catch (const CheckError&) {
    throw;
  } catch (const std::exception&) {
    PLURALITY_REQUIRE(false, "scenario: '" << key << "' must be a non-negative integer, got '"
                                           << text << "'");
    return 0;  // unreachable
  }
}

bool parse_spec_bool(const std::string& key, const std::string& text) {
  if (text == "true" || text == "1") return true;
  if (text == "false" || text == "0") return false;
  PLURALITY_REQUIRE(false, "scenario: '" << key << "' must be true/false, got '" << text << "'");
  return false;  // unreachable
}

/// Applies one key=value assignment to `spec` (shared by the string and
/// JSON faces so both accept exactly the same field names).
void assign_field(ScenarioSpec& spec, const std::string& key, const io::JsonValue& value) {
  if (key == "dynamics") {
    spec.dynamics = value.as_string();
  } else if (key == "workload") {
    spec.workload = value.as_string();
  } else if (key == "topology") {
    spec.topology = value.as_string();
  } else if (key == "adversary") {
    spec.adversary = value.as_string();
  } else if (key == "backend") {
    spec.backend = value.as_string();
  } else if (key == "engine") {
    spec.engine = value.as_string();
  } else if (key == "stop") {
    spec.stop = value.as_string();
  } else if (key == "topology_backend") {
    spec.topology_backend = value.as_string();
  } else if (key == "n") {
    spec.n = value.as_uint();
  } else if (key == "k") {
    const std::uint64_t k = value.as_uint();
    PLURALITY_REQUIRE(k <= 0xFFFFFFFFULL, "scenario: k = " << k << " exceeds the state width");
    spec.k = static_cast<state_t>(k);
  } else if (key == "trials") {
    spec.trials = value.as_uint();
  } else if (key == "seed") {
    spec.seed = value.as_uint();
  } else if (key == "max_rounds") {
    spec.max_rounds = value.as_uint();
  } else if (key == "parallel") {
    spec.parallel = value.as_bool();
  } else if (key == "shuffle_layout") {
    spec.shuffle_layout = value.as_bool();
  } else {
    PLURALITY_REQUIRE(false,
                      "scenario: unknown field '"
                          << key << "'; known: dynamics, workload, topology, adversary, "
                          << "backend, engine, stop, topology_backend, n, k, trials, "
                          << "seed, max_rounds, parallel, shuffle_layout");
  }
}

/// The backend `spec.backend == "auto"` denotes for an already-constructed
/// dynamics (shared by validate() and resolved_backend() so the constraints
/// below always apply to what will actually run).
std::string resolve_backend_impl(const ScenarioSpec& spec, const Dynamics& dyn) {
  if (spec.backend != "auto") return spec.backend;
  if (!graph::topology_is_clique(spec.topology)) return "graph";
  if (dyn.has_exact_law(dyn.num_states(spec.k))) return "count";
  // No exact law on the clique: a per-agent backend. The core agent
  // backend has no batched pipeline; the graph engine's implicit clique
  // does.
  return spec.engine == "batched" ? "graph" : "agent";
}

/// The topology backend "auto" denotes (shared by validate() and
/// Scenario::compile() so both always agree on what gets built).
std::string resolve_topology_backend_impl(const ScenarioSpec& spec) {
  if (spec.topology_backend != "auto") return spec.topology_backend;
  if (!graph::topology_is_implicit_capable(spec.topology)) return "arena";
  const std::string kind = split_spec(spec.topology).kind;
  // Clique/gossip store nothing either way; report them as implicit.
  if (kind == "clique" || kind == "gossip") return "implicit";
  return spec.n >= graph::kImplicitAutoThreshold ? "implicit" : "arena";
}

}  // namespace

StopCondition parse_stop_condition(const std::string& stop) {
  if (stop == "consensus") return {};
  const auto [kind, arg] = split_spec(stop);
  const bool known = kind == "m-plurality" || kind == "any-reaches";
  PLURALITY_REQUIRE(known, "scenario: unknown stop condition '"
                               << kind << "'; known: consensus, m-plurality:<M>, "
                               << "any-reaches:<T>");
  PLURALITY_REQUIRE(!arg.empty(),
                    "scenario: stop '" << kind << "' needs a threshold, e.g. '" << kind
                                       << ":100'");
  StopCondition parsed;
  parsed.kind =
      kind == "m-plurality" ? StopCondition::Kind::MPlurality : StopCondition::Kind::AnyReaches;
  parsed.value = parse_spec_uint("stop", arg);
  return parsed;
}

void ScenarioSpec::set_field(const std::string& key, const std::string& value) {
  // Route strings through the JSON assignment path. Numeric and boolean
  // fields get their own parse so "n=1e6" works in the string form.
  if (key == "n" || key == "k" || key == "trials" || key == "seed" ||
      key == "max_rounds") {
    assign_field(*this, key, io::JsonValue(parse_spec_uint(key, value)));
  } else if (key == "parallel" || key == "shuffle_layout") {
    assign_field(*this, key, io::JsonValue(parse_spec_bool(key, value)));
  } else {
    assign_field(*this, key, io::JsonValue(value));
  }
}

ScenarioSpec ScenarioSpec::parse(const std::string& text) {
  ScenarioSpec spec;
  std::istringstream tokens(text);
  std::string token;
  std::set<std::string> seen;
  bool any = false;
  while (tokens >> token) {
    any = true;
    const auto eq = token.find('=');
    PLURALITY_REQUIRE(eq != std::string::npos && eq > 0,
                      "scenario: expected 'key=value', got '" << token << "'");
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    PLURALITY_REQUIRE(seen.insert(key).second,
                      "scenario: duplicate field '" << key << "'");
    spec.set_field(key, value);
  }
  PLURALITY_REQUIRE(any, "scenario: empty spec string");
  return spec;
}

ScenarioSpec ScenarioSpec::from_json(const io::JsonValue& doc) {
  PLURALITY_REQUIRE(doc.is_object(), "scenario: spec document must be a JSON object");
  ScenarioSpec spec;
  for (const auto& key : doc.keys()) {
    assign_field(spec, key, doc.at(key));
  }
  return spec;
}

ScenarioSpec ScenarioSpec::from_json_file(const std::string& path) {
  return from_json(io::read_json_file(path));
}

io::JsonValue ScenarioSpec::to_json() const {
  io::JsonValue doc = io::JsonValue::object();
  doc.set("dynamics", dynamics);
  doc.set("workload", workload);
  doc.set("topology", topology);
  doc.set("adversary", adversary);
  doc.set("backend", backend);
  doc.set("engine", engine);
  doc.set("stop", stop);
  doc.set("topology_backend", topology_backend);
  doc.set("n", std::uint64_t{n});
  doc.set("k", std::uint64_t{k});
  doc.set("trials", trials);
  doc.set("seed", seed);
  doc.set("max_rounds", std::uint64_t{max_rounds});
  doc.set("parallel", parallel);
  doc.set("shuffle_layout", shuffle_layout);
  return doc;
}

std::string ScenarioSpec::to_spec_string() const {
  std::ostringstream os;
  os << "dynamics=" << dynamics << " workload=" << workload << " topology=" << topology
     << " adversary=" << adversary << " backend=" << backend << " engine=" << engine
     << " stop=" << stop << " topology_backend=" << topology_backend << " n=" << n
     << " k=" << k << " trials=" << trials
     << " seed=" << seed << " max_rounds=" << max_rounds
     << " parallel=" << (parallel ? "true" : "false")
     << " shuffle_layout=" << (shuffle_layout ? "true" : "false");
  return os.str();
}

std::string ScenarioSpec::resolved_backend() const {
  validate();
  return resolve_backend_impl(*this, *make_dynamics(dynamics));
}

std::string ScenarioSpec::resolved_topology_backend() const {
  validate();
  return resolve_topology_backend_impl(*this);
}

void ScenarioSpec::validate() const {
  // Scalar ranges first so later messages can assume sane sizes.
  PLURALITY_REQUIRE(n >= 1, "scenario: n must be >= 1, got " << n);
  PLURALITY_REQUIRE(k >= 2, "scenario: k must be >= 2 (plurality needs at least two "
                            "colors), got " << k);
  PLURALITY_REQUIRE(k <= n, "scenario: k = " << k << " colors cannot exceed n = " << n
                                             << " nodes");
  PLURALITY_REQUIRE(trials >= 1, "scenario: trials must be >= 1");
  PLURALITY_REQUIRE(max_rounds >= 1, "scenario: max_rounds must be >= 1");

  // Every name must resolve through its registry (each throws its own
  // actionable message naming the known grammar).
  const auto dyn = make_dynamics(dynamics);
  (void)make_adversary(adversary);
  graph::validate_topology_spec(topology, n);
  const Configuration start = workloads::parse_workload(workload, n, k);
  PLURALITY_REQUIRE(start.k() == k,
                    "scenario: workload '" << workload << "' forces k = " << start.k()
                                           << " but the spec says k = " << k
                                           << "; set k accordingly");

  PLURALITY_REQUIRE(engine == "strict" || engine == "batched",
                    "scenario: engine must be 'strict' or 'batched', got '" << engine << "'");
  PLURALITY_REQUIRE(backend == "auto" || backend == "count" || backend == "agent" ||
                        backend == "graph",
                    "scenario: backend must be auto/count/agent/graph, got '" << backend
                                                                              << "'");
  PLURALITY_REQUIRE(topology_backend == "auto" || topology_backend == "arena" ||
                        topology_backend == "implicit",
                    "scenario: topology_backend must be auto/arena/implicit, got '"
                        << topology_backend << "'");
  if (topology_backend == "implicit") {
    PLURALITY_REQUIRE(graph::topology_is_implicit_capable(topology),
                      "scenario: topology '" << topology << "' has no implicit form; "
                      "implicit-capable: clique, gossip, ring, torus[:<r>x<c>], "
                      "lattice:<d>; use topology_backend 'arena' (or 'auto')");
  }
  if (topology_backend == "arena") {
    const std::string topo_kind = split_spec(topology).kind;
    PLURALITY_REQUIRE(topo_kind != "clique" && topo_kind != "gossip",
                      "scenario: topology '" << topology << "' is implicit by "
                      "construction (there is no CSR arena to build); use "
                      "topology_backend 'implicit' or 'auto'");
    PLURALITY_REQUIRE(n <= 4294967295ULL,
                      "scenario: topology_backend 'arena' packs node ids as u32, "
                      "capping n at 4294967295 (got " << n << "); use "
                      "topology_backend 'implicit' (ring, torus, lattice:<d>) or "
                      "topology 'gossip'");
  }

  const bool clique = graph::topology_is_clique(topology);
  const state_t states = dyn->num_states(k);
  if (backend == "count") {
    PLURALITY_REQUIRE(clique, "scenario: backend 'count' models the clique exactly; "
                              "topology '" << topology << "' needs backend 'graph' (or "
                              "'auto')");
    PLURALITY_REQUIRE(dyn->has_exact_law(states),
                      "scenario: dynamics '" << dynamics << "' has no exact adoption law "
                      "at k = " << k << "; use backend 'agent' or 'graph' (or 'auto')");
  }
  if (backend == "agent") {
    PLURALITY_REQUIRE(clique, "scenario: backend 'agent' is the clique sampler; topology '"
                                  << topology << "' needs backend 'graph' (or 'auto')");
  }
  // Constraints that depend on WHICH backend runs apply to the resolved
  // backend, so backend=auto specs can never compile into a driver that
  // rejects them at run time (inside a parallel trial loop, where a throw
  // is fatal).
  const std::string resolved = resolve_backend_impl(*this, *dyn);
  if (resolved == "agent") {
    PLURALITY_REQUIRE(engine == "strict",
                      "scenario: the agent backend has no batched pipeline; use backend "
                      "'graph' (the implicit clique batches) or engine 'strict'");
    PLURALITY_REQUIRE(adversary == "none",
                      "scenario: adversaries need count-level or node-level state, which "
                      "the agent backend does not expose; use backend 'count' (clique) "
                      "or 'graph'");
  }

  const StopCondition stop_spec = parse_stop_condition(stop);
  if (stop_spec.kind != StopCondition::Kind::Consensus) {
    // The graph driver stops on consensus/absorption only; predicates are
    // a count-path feature (where the configuration is the full state).
    PLURALITY_REQUIRE(resolved != "graph", "scenario: stop '" << stop
                                      << "' is count-path only; graph trials stop on "
                                         "consensus (use stop 'consensus')");
    PLURALITY_REQUIRE(stop_spec.kind != StopCondition::Kind::AnyReaches || stop_spec.value <= n,
                      "scenario: any-reaches threshold " << stop_spec.value
                                                         << " exceeds n = " << n);
  }
}

}  // namespace plurality::scenario
