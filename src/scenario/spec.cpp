#include "scenario/spec.hpp"

#include <charconv>
#include <cmath>
#include <set>
#include <sstream>
#include <vector>

#include "core/adversary.hpp"
#include "core/registry.hpp"
#include "core/workloads.hpp"
#include "graph/implicit_topology.hpp"
#include "graph/layout.hpp"
#include "graph/step_push.hpp"
#include "graph/topology_registry.hpp"
#include "support/check.hpp"
#include "support/specs.hpp"

namespace plurality::scenario {

namespace {

std::uint64_t parse_spec_uint(const std::string& key, const std::string& text) {
  // Accept plain integers and integral scientific notation ("1e6"), the
  // same convention the CLI layer uses for --n.
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec == std::errc() && ptr == text.data() + text.size()) return value;
  try {
    std::size_t pos = 0;
    const double v = std::stod(text, &pos);
    PLURALITY_REQUIRE(pos == text.size() && v >= 0.0 && v == std::floor(v) && v <= 0x1p63,
                      "scenario: '" << key << "' must be a non-negative integer, got '"
                                    << text << "'");
    return static_cast<std::uint64_t>(v);
  } catch (const CheckError&) {
    throw;
  } catch (const std::exception&) {
    PLURALITY_REQUIRE(false, "scenario: '" << key << "' must be a non-negative integer, got '"
                                           << text << "'");
    return 0;  // unreachable
  }
}

bool parse_spec_bool(const std::string& key, const std::string& text) {
  if (text == "true" || text == "1") return true;
  if (text == "false" || text == "0") return false;
  PLURALITY_REQUIRE(false, "scenario: '" << key << "' must be true/false, got '" << text << "'");
  return false;  // unreachable
}

/// Applies one key=value assignment to `spec` (shared by the string and
/// JSON faces so both accept exactly the same field names).
void assign_field(ScenarioSpec& spec, const std::string& key, const io::JsonValue& value) {
  if (key == "dynamics") {
    spec.dynamics = value.as_string();
  } else if (key == "workload") {
    spec.workload = value.as_string();
  } else if (key == "topology") {
    spec.topology = value.as_string();
  } else if (key == "adversary") {
    spec.adversary = value.as_string();
  } else if (key == "backend") {
    spec.backend = value.as_string();
  } else if (key == "engine") {
    spec.engine = value.as_string();
  } else if (key == "stop") {
    spec.stop = value.as_string();
  } else if (key == "topology_backend") {
    spec.topology_backend = value.as_string();
  } else if (key == "graph_layout") {
    spec.graph_layout = value.as_string();
  } else if (key == "tile_nodes") {
    const std::uint64_t tile = value.as_uint();
    PLURALITY_REQUIRE(tile <= 0xFFFFFFFFULL,
                      "scenario: tile_nodes = " << tile << " exceeds 32 bits");
    spec.tile_nodes = static_cast<std::uint32_t>(tile);
  } else if (key == "prefetch_distance") {
    const std::uint64_t distance = value.as_uint();
    PLURALITY_REQUIRE(distance <= 0xFFFFFFFFULL,
                      "scenario: prefetch_distance = " << distance << " exceeds 32 bits");
    spec.prefetch_distance = static_cast<std::uint32_t>(distance);
  } else if (key == "n") {
    spec.n = value.as_uint();
  } else if (key == "k") {
    const std::uint64_t k = value.as_uint();
    PLURALITY_REQUIRE(k <= 0xFFFFFFFFULL, "scenario: k = " << k << " exceeds the state width");
    spec.k = static_cast<state_t>(k);
  } else if (key == "trials") {
    spec.trials = value.as_uint();
  } else if (key == "seed") {
    spec.seed = value.as_uint();
  } else if (key == "max_rounds") {
    spec.max_rounds = value.as_uint();
  } else if (key == "parallel") {
    spec.parallel = value.as_bool();
  } else if (key == "shuffle_layout") {
    spec.shuffle_layout = value.as_bool();
  } else {
    PLURALITY_REQUIRE(false,
                      "scenario: unknown field '"
                          << key << "'; known: dynamics, workload, topology, adversary, "
                          << "backend, engine, stop, topology_backend, graph_layout, "
                          << "n, k, trials, seed, max_rounds, parallel, shuffle_layout, "
                          << "tile_nodes, prefetch_distance");
  }
}

/// The backend `spec.backend == "auto"` denotes for an already-constructed
/// dynamics (shared by validate() and resolved_backend() so the constraints
/// below always apply to what will actually run).
std::string resolve_backend_impl(const ScenarioSpec& spec, const Dynamics& dyn) {
  if (spec.backend != "auto") return spec.backend;
  // Push is a graph-engine pipeline (the implicit clique included), so
  // "auto" never routes it to the count/agent drivers.
  if (spec.engine == "push") return "graph";
  if (!graph::topology_is_clique(spec.topology)) return "graph";
  if (dyn.has_exact_law(dyn.num_states(spec.k))) return "count";
  // No exact law on the clique: a per-agent backend. The core agent
  // backend has no batched pipeline; the graph engine's implicit clique
  // does.
  return spec.engine == "batched" ? "graph" : "agent";
}

/// The layout `spec.graph_layout == "auto"` denotes under this spec's
/// topology (shared by validate(), resolved_graph_layout(), and
/// Scenario::compile()). Throws on unknown layout names.
graph::GraphLayout resolve_graph_layout_impl(const ScenarioSpec& spec) {
  if (spec.graph_layout == "auto") return graph::resolve_auto_layout(spec.topology);
  return graph::parse_graph_layout(spec.graph_layout);
}

/// The topology backend "auto" denotes (shared by validate() and
/// Scenario::compile() so both always agree on what gets built).
std::string resolve_topology_backend_impl(const ScenarioSpec& spec) {
  if (spec.topology_backend != "auto") return spec.topology_backend;
  if (!graph::topology_is_implicit_capable(spec.topology)) return "arena";
  const std::string kind = split_spec(spec.topology).kind;
  // Clique/gossip store nothing either way; report them as implicit.
  if (kind == "clique" || kind == "gossip") return "implicit";
  // A non-identity layout relabels node ids, which only the arena stores.
  if (resolve_graph_layout_impl(spec) != graph::GraphLayout::Identity) return "arena";
  return spec.n >= graph::kImplicitAutoThreshold ? "implicit" : "arena";
}

}  // namespace

StopCondition parse_stop_condition(const std::string& stop) {
  if (stop == "consensus") return {};
  const auto [kind, arg] = split_spec(stop);
  const bool known = kind == "m-plurality" || kind == "any-reaches";
  PLURALITY_REQUIRE(known, "scenario: unknown stop condition '"
                               << kind << "'; known: consensus, m-plurality:<M>, "
                               << "any-reaches:<T>");
  PLURALITY_REQUIRE(!arg.empty(),
                    "scenario: stop '" << kind << "' needs a threshold, e.g. '" << kind
                                       << ":100'");
  StopCondition parsed;
  parsed.kind =
      kind == "m-plurality" ? StopCondition::Kind::MPlurality : StopCondition::Kind::AnyReaches;
  parsed.value = parse_spec_uint("stop", arg);
  return parsed;
}

void ScenarioSpec::set_field(const std::string& key, const std::string& value) {
  // Route strings through the JSON assignment path. Numeric and boolean
  // fields get their own parse so "n=1e6" works in the string form.
  if (key == "n" || key == "k" || key == "trials" || key == "seed" ||
      key == "max_rounds" || key == "tile_nodes" || key == "prefetch_distance") {
    assign_field(*this, key, io::JsonValue(parse_spec_uint(key, value)));
  } else if (key == "parallel" || key == "shuffle_layout") {
    assign_field(*this, key, io::JsonValue(parse_spec_bool(key, value)));
  } else {
    assign_field(*this, key, io::JsonValue(value));
  }
}

ScenarioSpec ScenarioSpec::parse(const std::string& text) {
  ScenarioSpec spec;
  std::istringstream tokens(text);
  std::string token;
  std::set<std::string> seen;
  bool any = false;
  while (tokens >> token) {
    any = true;
    const auto eq = token.find('=');
    PLURALITY_REQUIRE(eq != std::string::npos && eq > 0,
                      "scenario: expected 'key=value', got '" << token << "'");
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    PLURALITY_REQUIRE(seen.insert(key).second,
                      "scenario: duplicate field '" << key << "'");
    spec.set_field(key, value);
  }
  PLURALITY_REQUIRE(any, "scenario: empty spec string");
  return spec;
}

ScenarioSpec ScenarioSpec::from_json(const io::JsonValue& doc) {
  PLURALITY_REQUIRE(doc.is_object(), "scenario: spec document must be a JSON object");
  ScenarioSpec spec;
  for (const auto& key : doc.keys()) {
    assign_field(spec, key, doc.at(key));
  }
  return spec;
}

ScenarioSpec ScenarioSpec::from_json_file(const std::string& path) {
  return from_json(io::read_json_file(path));
}

io::JsonValue ScenarioSpec::to_json() const {
  io::JsonValue doc = io::JsonValue::object();
  doc.set("dynamics", dynamics);
  doc.set("workload", workload);
  doc.set("topology", topology);
  doc.set("adversary", adversary);
  doc.set("backend", backend);
  doc.set("engine", engine);
  doc.set("stop", stop);
  doc.set("topology_backend", topology_backend);
  doc.set("graph_layout", graph_layout);
  doc.set("n", std::uint64_t{n});
  doc.set("k", std::uint64_t{k});
  doc.set("trials", trials);
  doc.set("seed", seed);
  doc.set("max_rounds", std::uint64_t{max_rounds});
  doc.set("parallel", parallel);
  doc.set("shuffle_layout", shuffle_layout);
  doc.set("tile_nodes", std::uint64_t{tile_nodes});
  doc.set("prefetch_distance", std::uint64_t{prefetch_distance});
  return doc;
}

std::string ScenarioSpec::to_spec_string() const {
  std::ostringstream os;
  os << "dynamics=" << dynamics << " workload=" << workload << " topology=" << topology
     << " adversary=" << adversary << " backend=" << backend << " engine=" << engine
     << " stop=" << stop << " topology_backend=" << topology_backend
     << " graph_layout=" << graph_layout << " n=" << n
     << " k=" << k << " trials=" << trials
     << " seed=" << seed << " max_rounds=" << max_rounds
     << " parallel=" << (parallel ? "true" : "false")
     << " shuffle_layout=" << (shuffle_layout ? "true" : "false")
     << " tile_nodes=" << tile_nodes << " prefetch_distance=" << prefetch_distance;
  return os.str();
}

std::string ScenarioSpec::resolved_backend() const {
  validate();
  return resolve_backend_impl(*this, *make_dynamics(dynamics));
}

std::string ScenarioSpec::resolved_topology_backend() const {
  validate();
  return resolve_topology_backend_impl(*this);
}

std::string ScenarioSpec::resolved_graph_layout() const {
  validate();
  return graph::graph_layout_name(resolve_graph_layout_impl(*this));
}

void ScenarioSpec::validate() const {
  // Scalar ranges first so later messages can assume sane sizes.
  PLURALITY_REQUIRE(n >= 1, "scenario: n must be >= 1, got " << n);
  PLURALITY_REQUIRE(k >= 2, "scenario: k must be >= 2 (plurality needs at least two "
                            "colors), got " << k);
  PLURALITY_REQUIRE(k <= n, "scenario: k = " << k << " colors cannot exceed n = " << n
                                             << " nodes");
  PLURALITY_REQUIRE(trials >= 1, "scenario: trials must be >= 1");
  PLURALITY_REQUIRE(max_rounds >= 1, "scenario: max_rounds must be >= 1");

  // Every name must resolve through its registry (each throws its own
  // actionable message naming the known grammar).
  const auto dyn = make_dynamics(dynamics);
  (void)make_adversary(adversary);
  graph::validate_topology_spec(topology, n);
  const Configuration start = workloads::parse_workload(workload, n, k);
  PLURALITY_REQUIRE(start.k() == k,
                    "scenario: workload '" << workload << "' forces k = " << start.k()
                                           << " but the spec says k = " << k
                                           << "; set k accordingly");

  PLURALITY_REQUIRE(engine == "strict" || engine == "batched" || engine == "push",
                    "scenario: engine must be 'strict', 'batched', or 'push', got '"
                        << engine << "'");
  PLURALITY_REQUIRE(backend == "auto" || backend == "count" || backend == "agent" ||
                        backend == "graph",
                    "scenario: backend must be auto/count/agent/graph, got '" << backend
                                                                              << "'");
  PLURALITY_REQUIRE(topology_backend == "auto" || topology_backend == "arena" ||
                        topology_backend == "implicit",
                    "scenario: topology_backend must be auto/arena/implicit, got '"
                        << topology_backend << "'");
  if (topology_backend == "implicit") {
    PLURALITY_REQUIRE(graph::topology_is_implicit_capable(topology),
                      "scenario: topology '" << topology << "' has no implicit form; "
                      "implicit-capable: clique, gossip, ring, torus[:<r>x<c>], "
                      "lattice:<d>; use topology_backend 'arena' (or 'auto')");
  }
  // The layout axis: resolve first (throws on unknown names), then check
  // the combinations that cannot build or would contradict each other.
  const graph::GraphLayout layout = resolve_graph_layout_impl(*this);
  if (layout != graph::GraphLayout::Identity) {
    const std::string topo_kind = split_spec(topology).kind;
    PLURALITY_REQUIRE(topo_kind != "clique" && topo_kind != "gossip",
                      "scenario: graph_layout '" << graph_layout << "' cannot change "
                      "locality on topology '" << topology << "' — uniform sampling "
                      "touches every node regardless of order; use graph_layout "
                      "'identity' (or 'auto')");
    PLURALITY_REQUIRE(topology_backend != "implicit",
                      "scenario: graph_layout '" << graph_layout << "' relabels node "
                      "ids, which only the CSR arena stores; implicit topologies "
                      "compute neighbors from the id itself — set topology_backend "
                      "'arena' (or 'auto') or graph_layout 'identity'");
    if (layout == graph::GraphLayout::Hilbert) {
      PLURALITY_REQUIRE(topo_kind == "torus" || topo_kind == "lattice",
                        "scenario: graph_layout 'hilbert' orders a 2-D grid; topology '"
                            << topology << "' has no grid shape — use 'rcm', 'degree', "
                            "or 'auto'");
    }
    PLURALITY_REQUIRE(n <= 4294967295ULL,
                      "scenario: graph_layout '" << graph_layout << "' builds a u32 "
                      "permutation over the CSR arena, capping n at 4294967295 (got "
                          << n << ")");
    PLURALITY_REQUIRE(shuffle_layout,
                      "scenario: shuffle_layout=false pins the deterministic block "
                      "layout, but graph_layout '" << graph_layout << "' (resolved '"
                          << graph::graph_layout_name(layout) << "') permutes the node "
                      "ids underneath it — the two contradict; set shuffle_layout=true "
                      "or graph_layout='identity'");
  }
  PLURALITY_REQUIRE(tile_nodes <= 8192,
                    "scenario: tile_nodes caps at 8192 (the batched engine's per-tile "
                    "word budget), got " << tile_nodes << "; 0 derives the tile "
                    "automatically");
  PLURALITY_REQUIRE(prefetch_distance <= 1024,
                    "scenario: prefetch_distance caps at 1024 (beyond L2's pending-miss "
                    "capacity it only pollutes), got " << prefetch_distance
                        << "; 0 disables software prefetch");
  if (topology_backend == "arena") {
    const std::string topo_kind = split_spec(topology).kind;
    PLURALITY_REQUIRE(topo_kind != "clique" && topo_kind != "gossip",
                      "scenario: topology '" << topology << "' is implicit by "
                      "construction (there is no CSR arena to build); use "
                      "topology_backend 'implicit' or 'auto'");
    PLURALITY_REQUIRE(n <= 4294967295ULL,
                      "scenario: topology_backend 'arena' packs node ids as u32, "
                      "capping n at 4294967295 (got " << n << "); use "
                      "topology_backend 'implicit' (ring, torus, lattice:<d>) or "
                      "topology 'gossip'");
  }

  const bool clique = graph::topology_is_clique(topology);
  const state_t states = dyn->num_states(k);
  if (backend == "count") {
    PLURALITY_REQUIRE(clique, "scenario: backend 'count' models the clique exactly; "
                              "topology '" << topology << "' needs backend 'graph' (or "
                              "'auto')");
    PLURALITY_REQUIRE(dyn->has_exact_law(states),
                      "scenario: dynamics '" << dynamics << "' has no exact adoption law "
                      "at k = " << k << "; use backend 'agent' or 'graph' (or 'auto')");
  }
  if (backend == "agent") {
    PLURALITY_REQUIRE(clique, "scenario: backend 'agent' is the clique sampler; topology '"
                                  << topology << "' needs backend 'graph' (or 'auto')");
  }
  // Constraints that depend on WHICH backend runs apply to the resolved
  // backend, so backend=auto specs can never compile into a driver that
  // rejects them at run time (inside a parallel trial loop, where a throw
  // is fatal).
  const std::string resolved = resolve_backend_impl(*this, *dyn);
  if (engine == "push") {
    PLURALITY_REQUIRE(resolved == "graph",
                      "scenario: engine 'push' is a graph-engine pipeline, but this "
                      "spec resolves to backend '" << resolved << "'; set backend "
                      "'graph' (or 'auto')");
    PLURALITY_REQUIRE(graph::push_has_kernel(*dyn),
                      "scenario: engine 'push' covers the arity-1 dynamics (voter, "
                      "undecided); dynamics '" << dynamics << "' samples more than one "
                      "neighbor per round — use engine 'batched' or 'strict'");
    PLURALITY_REQUIRE(n <= 4294967295ULL,
                      "scenario: engine 'push' packs (source, dest) node-id pairs into "
                      "64 bits, capping n at 4294967295 (got " << n << "); use engine "
                      "'batched'");
  }
  if (resolved == "agent") {
    PLURALITY_REQUIRE(engine == "strict",
                      "scenario: the agent backend has no batched pipeline; use backend "
                      "'graph' (the implicit clique batches) or engine 'strict'");
    PLURALITY_REQUIRE(adversary == "none",
                      "scenario: adversaries need count-level or node-level state, which "
                      "the agent backend does not expose; use backend 'count' (clique) "
                      "or 'graph'");
  }

  const StopCondition stop_spec = parse_stop_condition(stop);
  if (stop_spec.kind != StopCondition::Kind::Consensus) {
    // The graph driver stops on consensus/absorption only; predicates are
    // a count-path feature (where the configuration is the full state).
    PLURALITY_REQUIRE(resolved != "graph", "scenario: stop '" << stop
                                      << "' is count-path only; graph trials stop on "
                                         "consensus (use stop 'consensus')");
    PLURALITY_REQUIRE(stop_spec.kind != StopCondition::Kind::AnyReaches || stop_spec.value <= n,
                      "scenario: any-reaches threshold " << stop_spec.value
                                                         << " exceeds n = " << n);
  }
}

}  // namespace plurality::scenario
