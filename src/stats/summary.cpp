#include "stats/summary.hpp"

#include <cmath>

#include "support/check.hpp"

namespace plurality::stats {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double OnlineStats::mean() const {
  PLURALITY_REQUIRE(n_ > 0, "OnlineStats::mean on empty accumulator");
  return mean_;
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::sem() const {
  PLURALITY_REQUIRE(n_ > 0, "OnlineStats::sem on empty accumulator");
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double OnlineStats::min() const {
  PLURALITY_REQUIRE(n_ > 0, "OnlineStats::min on empty accumulator");
  return min_;
}

double OnlineStats::max() const {
  PLURALITY_REQUIRE(n_ > 0, "OnlineStats::max on empty accumulator");
  return max_;
}

double OnlineStats::ci95_halfwidth() const { return 1.959963984540054 * sem(); }

OnlineStats summarize(std::span<const double> values) {
  OnlineStats acc;
  for (double v : values) acc.add(v);
  return acc;
}

ProportionCi wilson_interval(std::uint64_t successes, std::uint64_t trials, double z) {
  PLURALITY_REQUIRE(trials > 0, "wilson_interval: zero trials");
  PLURALITY_REQUIRE(successes <= trials, "wilson_interval: successes > trials");
  const double n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (phat + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n)) / denom;
  return {phat, std::max(0.0, center - half), std::min(1.0, center + half)};
}

}  // namespace plurality::stats
