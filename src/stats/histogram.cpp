#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/check.hpp"
#include "support/format.hpp"

namespace plurality::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  PLURALITY_REQUIRE(hi > lo, "Histogram: hi must exceed lo");
  PLURALITY_REQUIRE(bins >= 1, "Histogram: need at least one bin");
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
}

std::uint64_t Histogram::bin_count(std::size_t i) const {
  PLURALITY_REQUIRE(i < counts_.size(), "Histogram: bin index out of range");
  return counts_[i];
}

double Histogram::bin_low(std::size_t i) const {
  PLURALITY_REQUIRE(i < counts_.size(), "Histogram: bin index out of range");
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t i) const { return bin_low(i) + (hi_ - lo_) / static_cast<double>(counts_.size()); }

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        std::llround(static_cast<double>(counts_[i]) * static_cast<double>(width) /
                     static_cast<double>(peak)));
    os << pad_left(format_sig(bin_low(i), 3), 10) << " | " << std::string(bar, '#')
       << ' ' << counts_[i] << '\n';
  }
  if (underflow_ != 0) os << "  underflow: " << underflow_ << '\n';
  if (overflow_ != 0) os << "  overflow:  " << overflow_ << '\n';
  return os.str();
}

}  // namespace plurality::stats
