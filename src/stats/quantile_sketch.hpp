// Bounded-memory quantile estimation for trial-round distributions.
//
// TrialSummary used to keep EVERY stopped trial's round count in a vector
// so the reporting layer could compute p50/p95 — unbounded growth once the
// sweep orchestrator runs tens of thousands of trials per cell. The sketch
// caps that: below `exact_capacity` observations it stores the samples
// verbatim (insertion order preserved, quantiles exact); above it, it
// degrades to uniform reservoir sampling over the stream (Vitter's
// Algorithm R), so memory stays O(capacity) while quantile estimates keep
// the ~1/sqrt(capacity) accuracy the reporting layer needs.
//
// Determinism: the reservoir's replacement randomness comes from a private
// SplitMix64 state seeded by a fixed constant — NEVER from a trial stream —
// so attaching quantile tracking to a run cannot perturb simulation
// randomness, and the same insertion sequence always yields the same
// sketch. Min/max are tracked exactly regardless of mode.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace plurality::stats {

class QuantileSketch {
 public:
  /// Default switch-over point from exact samples to the reservoir; chosen
  /// so an idle sketch costs at most ~32 KiB while keeping p95 estimates
  /// within ~1.5% rank error (see docs/performance.md).
  static constexpr std::size_t kDefaultExactCapacity = 4096;

  explicit QuantileSketch(std::size_t exact_capacity = kDefaultExactCapacity);

  void add(double x);

  /// Total observations (not the held-sample count).
  [[nodiscard]] std::uint64_t count() const { return count_; }

  /// True while every observation is still held verbatim (quantiles exact).
  [[nodiscard]] bool exact() const { return count_ <= capacity_; }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Exact min/max over ALL observations (kept outside the reservoir).
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// q-th quantile (R type-7 over the held samples). Exact below capacity,
  /// a reservoir estimate above; q = 0 / q = 1 return the exactly-tracked
  /// min()/max() and interior estimates are clamped into that range.
  /// Requires count() > 0.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }

  /// The held samples in insertion order (all of them while exact(); the
  /// current reservoir afterwards). Exposed so exact-mode consumers — the
  /// bitwise trial-stream pins, CSV dumps of raw samples — keep working.
  [[nodiscard]] std::span<const double> samples() const { return samples_; }

 private:
  std::size_t capacity_;
  std::uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t rng_state_;
  std::vector<double> samples_;
};

}  // namespace plurality::stats
