// Streaming and batch summary statistics for experiment aggregation.
#pragma once

#include <cstdint>
#include <span>

namespace plurality::stats {

/// Welford's online accumulator: numerically stable single-pass mean and
/// variance, plus extrema. Mergeable (parallel reduction over trials).
class OnlineStats {
 public:
  void add(double x);

  /// Merges another accumulator (Chan et al. parallel formula).
  void merge(const OnlineStats& other);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than 2 observations.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Standard error of the mean.
  [[nodiscard]] double sem() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return mean() * static_cast<double>(n_); }

  /// Normal-approximation 95% confidence half-width around the mean.
  [[nodiscard]] double ci95_halfwidth() const;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Convenience: accumulates a whole span.
OnlineStats summarize(std::span<const double> values);

/// Wilson score interval for a binomial proportion (successes out of trials)
/// — used for "plurality wins" rates where counts are small or extreme.
struct ProportionCi {
  double estimate;
  double low;
  double high;
};
ProportionCi wilson_interval(std::uint64_t successes, std::uint64_t trials,
                             double z = 1.959963984540054);

}  // namespace plurality::stats
