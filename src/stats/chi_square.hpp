// Chi-square goodness-of-fit and homogeneity tests.
//
// These back the statistical assertions the test suite makes about the RNG
// substrate and about the equivalence of the two simulation backends: the
// agent-level and count-based steppers must be draws from the same
// distribution, which we test by binning outcomes and comparing.
#pragma once

#include <cstdint>
#include <span>

namespace plurality::stats {

struct ChiSquareResult {
  double statistic;
  double dof;
  double p_value;
};

/// Observed counts vs expected probabilities (expected probs need not be
/// normalized; bins with expected count below `min_expected` are pooled
/// into their neighbor to keep the asymptotic distribution valid).
ChiSquareResult chi_square_gof(std::span<const std::uint64_t> observed,
                               std::span<const double> expected_probs,
                               double min_expected = 5.0);

/// Two-sample homogeneity test: are two observed count vectors draws from
/// the same (unknown) distribution?
ChiSquareResult chi_square_two_sample(std::span<const std::uint64_t> a,
                                      std::span<const std::uint64_t> b,
                                      double min_expected = 5.0);

}  // namespace plurality::stats
