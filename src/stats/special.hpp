// Special functions implemented from scratch (no external math deps):
// regularized incomplete gamma (series + continued fraction), normal CDF,
// and chi-square CDF/SF built on them. Used by the goodness-of-fit tests
// that validate the RNG substrate and the backend-equivalence properties.
#pragma once

namespace plurality::stats {

/// Regularized lower incomplete gamma P(a, x) = γ(a,x)/Γ(a), a > 0, x >= 0.
double gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double gamma_q(double a, double x);

/// Standard normal CDF Φ(z).
double normal_cdf(double z);

/// Standard normal survival function 1 - Φ(z).
double normal_sf(double z);

/// Chi-square CDF with `dof` degrees of freedom at statistic x.
double chi_square_cdf(double x, double dof);

/// Chi-square upper tail (p-value of a GOF statistic).
double chi_square_sf(double x, double dof);

}  // namespace plurality::stats
