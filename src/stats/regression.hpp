// Ordinary least squares in one variable — used to fit measured convergence
// times against the paper's predicted scalings (e.g. T vs k·log n) and report
// slope + R².
#pragma once

#include <span>

namespace plurality::stats {

struct LinearFit {
  double intercept;
  double slope;
  double r_squared;
};

/// Fits y ≈ intercept + slope · x. Needs at least 2 points with distinct x.
LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

/// Fits y ≈ slope · x through the origin (for pure proportionality checks).
LinearFit proportional_fit(std::span<const double> x, std::span<const double> y);

}  // namespace plurality::stats
