// Quantiles of finite samples (linear interpolation, R type-7 convention).
#pragma once

#include <span>
#include <vector>

namespace plurality::stats {

/// q-th quantile (q in [0,1]) of the sample; copies and sorts internally.
double quantile(std::span<const double> values, double q);

/// Several quantiles sharing one sort.
std::vector<double> quantiles(std::span<const double> values, std::span<const double> qs);

/// Median shortcut.
double median(std::span<const double> values);

}  // namespace plurality::stats
