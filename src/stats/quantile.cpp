#include "stats/quantile.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace plurality::stats {

namespace {

double quantile_sorted(std::span<const double> sorted, double q) {
  PLURALITY_REQUIRE(q >= 0.0 && q <= 1.0, "quantile: q must be in [0,1]");
  const std::size_t n = sorted.size();
  if (n == 1) return sorted[0];
  const double pos = q * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = std::min(lo + 1, n - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

double quantile(std::span<const double> values, double q) {
  PLURALITY_REQUIRE(!values.empty(), "quantile: empty sample");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return quantile_sorted(sorted, q);
}

std::vector<double> quantiles(std::span<const double> values, std::span<const double> qs) {
  PLURALITY_REQUIRE(!values.empty(), "quantiles: empty sample");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) out.push_back(quantile_sorted(sorted, q));
  return out;
}

double median(std::span<const double> values) { return quantile(values, 0.5); }

}  // namespace plurality::stats
