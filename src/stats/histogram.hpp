// Fixed-bin histogram with ASCII rendering for quick-look distributions in
// example programs and experiment logs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace plurality::stats {

class Histogram {
 public:
  /// Bins [lo, hi) into `bins` equal-width buckets; values outside the range
  /// are counted in underflow/overflow.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const;
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double bin_low(std::size_t i) const;
  [[nodiscard]] double bin_high(std::size_t i) const;

  /// Multi-line ASCII bar rendering (one line per bin).
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace plurality::stats
