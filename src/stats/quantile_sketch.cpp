#include "stats/quantile_sketch.hpp"

#include <algorithm>

#include "stats/quantile.hpp"
#include "support/check.hpp"

namespace plurality::stats {

namespace {

/// SplitMix64 step (same mixer as rng/splitmix.hpp, duplicated here so the
/// stats layer stays independent of the simulation RNG headers).
std::uint64_t splitmix_next(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Unbiased uniform index in [0, bound) via the 64x64->128 high-multiply
/// (bias <= bound / 2^64 — negligible for reservoir bookkeeping).
std::uint64_t uniform_index(std::uint64_t& state, std::uint64_t bound) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(splitmix_next(state)) * bound) >> 64);
}

}  // namespace

QuantileSketch::QuantileSketch(std::size_t exact_capacity)
    : capacity_(exact_capacity),
      // Fixed private seed: the sketch must be deterministic per insertion
      // sequence and independent of every simulation stream.
      rng_state_(0x5EEDC0DEDA7A5EEDULL) {
  PLURALITY_REQUIRE(exact_capacity >= 2,
                    "QuantileSketch: capacity must be >= 2, got " << exact_capacity);
}

void QuantileSketch::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  if (samples_.size() < capacity_) {
    samples_.push_back(x);
  } else {
    // Algorithm R: the incoming element replaces a uniform slot with
    // probability capacity / (count + 1), keeping the reservoir a uniform
    // sample of everything seen.
    const std::uint64_t j = uniform_index(rng_state_, count_ + 1);
    if (j < capacity_) samples_[j] = x;
  }
  ++count_;
}

double QuantileSketch::min() const {
  PLURALITY_REQUIRE(count_ > 0, "QuantileSketch::min: empty sketch");
  return min_;
}

double QuantileSketch::max() const {
  PLURALITY_REQUIRE(count_ > 0, "QuantileSketch::max: empty sketch");
  return max_;
}

double QuantileSketch::quantile(double q) const {
  PLURALITY_REQUIRE(count_ > 0, "QuantileSketch::quantile: empty sketch");
  // Endpoints come from the exact extreme tracking — the reservoir may
  // have dropped the true min/max.
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const double value = stats::quantile(samples_, q);
  // Interior estimates likewise stay inside the observed range.
  return std::clamp(value, min_, max_);
}

}  // namespace plurality::stats
