#include "stats/chi_square.hpp"

#include <vector>

#include "stats/special.hpp"
#include "support/check.hpp"

namespace plurality::stats {

namespace {

// Pools adjacent cells until every expected count reaches the floor;
// standard practice to keep the chi-square approximation honest.
void pool_cells(std::vector<double>& expected, std::vector<double>& observed,
                double min_expected) {
  std::vector<double> pe, po;
  double accum_e = 0.0, accum_o = 0.0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    accum_e += expected[i];
    accum_o += observed[i];
    if (accum_e >= min_expected) {
      pe.push_back(accum_e);
      po.push_back(accum_o);
      accum_e = accum_o = 0.0;
    }
  }
  if (accum_e > 0.0 || accum_o > 0.0) {
    if (!pe.empty()) {
      pe.back() += accum_e;
      po.back() += accum_o;
    } else {
      pe.push_back(accum_e);
      po.push_back(accum_o);
    }
  }
  expected.swap(pe);
  observed.swap(po);
}

}  // namespace

ChiSquareResult chi_square_gof(std::span<const std::uint64_t> observed,
                               std::span<const double> expected_probs,
                               double min_expected) {
  PLURALITY_REQUIRE(observed.size() == expected_probs.size(),
                    "chi_square_gof: size mismatch");
  PLURALITY_REQUIRE(observed.size() >= 2, "chi_square_gof: need at least 2 cells");
  std::uint64_t total = 0;
  for (auto o : observed) total += o;
  PLURALITY_REQUIRE(total > 0, "chi_square_gof: no observations");
  double prob_total = 0.0;
  for (double p : expected_probs) {
    PLURALITY_REQUIRE(p >= 0.0, "chi_square_gof: negative expected probability");
    prob_total += p;
  }
  PLURALITY_REQUIRE(prob_total > 0.0, "chi_square_gof: zero expected mass");

  std::vector<double> expected(observed.size());
  std::vector<double> obs(observed.size());
  for (std::size_t i = 0; i < observed.size(); ++i) {
    expected[i] = static_cast<double>(total) * expected_probs[i] / prob_total;
    obs[i] = static_cast<double>(observed[i]);
  }
  pool_cells(expected, obs, min_expected);
  PLURALITY_REQUIRE(expected.size() >= 2,
                    "chi_square_gof: pooling left fewer than 2 cells — "
                    "increase sample size");

  double stat = 0.0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const double diff = obs[i] - expected[i];
    stat += diff * diff / expected[i];
  }
  const double dof = static_cast<double>(expected.size() - 1);
  return {stat, dof, chi_square_sf(stat, dof)};
}

ChiSquareResult chi_square_two_sample(std::span<const std::uint64_t> a,
                                      std::span<const std::uint64_t> b,
                                      double min_expected) {
  PLURALITY_REQUIRE(a.size() == b.size(), "chi_square_two_sample: size mismatch");
  PLURALITY_REQUIRE(a.size() >= 2, "chi_square_two_sample: need at least 2 cells");
  double na = 0, nb = 0;
  for (auto v : a) na += static_cast<double>(v);
  for (auto v : b) nb += static_cast<double>(v);
  PLURALITY_REQUIRE(na > 0 && nb > 0, "chi_square_two_sample: empty sample");

  // Contingency-table statistic with cells pooled on the pooled expectation.
  std::vector<double> ea(a.size()), oa(a.size()), eb(a.size()), ob(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double row = static_cast<double>(a[i]) + static_cast<double>(b[i]);
    ea[i] = row * na / (na + nb);
    eb[i] = row * nb / (na + nb);
    oa[i] = static_cast<double>(a[i]);
    ob[i] = static_cast<double>(b[i]);
  }
  // Pool identically on both rows: pool based on min of the two expectations.
  std::vector<double> pea, poa, peb, pob;
  double ae = 0, ao = 0, be = 0, bo = 0;
  for (std::size_t i = 0; i < ea.size(); ++i) {
    ae += ea[i];
    ao += oa[i];
    be += eb[i];
    bo += ob[i];
    if (ae >= min_expected && be >= min_expected) {
      pea.push_back(ae);
      poa.push_back(ao);
      peb.push_back(be);
      pob.push_back(bo);
      ae = ao = be = bo = 0;
    }
  }
  if ((ae > 0 || be > 0) && !pea.empty()) {
    pea.back() += ae;
    poa.back() += ao;
    peb.back() += be;
    pob.back() += bo;
  } else if (ae > 0 || be > 0) {
    pea.push_back(ae);
    poa.push_back(ao);
    peb.push_back(be);
    pob.push_back(bo);
  }
  PLURALITY_REQUIRE(pea.size() >= 2,
                    "chi_square_two_sample: pooling left fewer than 2 cells");

  double stat = 0.0;
  for (std::size_t i = 0; i < pea.size(); ++i) {
    if (pea[i] > 0) stat += (poa[i] - pea[i]) * (poa[i] - pea[i]) / pea[i];
    if (peb[i] > 0) stat += (pob[i] - peb[i]) * (pob[i] - peb[i]) / peb[i];
  }
  const double dof = static_cast<double>(pea.size() - 1);
  return {stat, dof, chi_square_sf(stat, dof)};
}

}  // namespace plurality::stats
