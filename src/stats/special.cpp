#include "stats/special.hpp"

#include <cmath>
#include <limits>

#include "support/check.hpp"

namespace plurality::stats {

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-15;

// Series expansion of P(a,x); converges fast for x < a + 1.
double gamma_p_series(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Lentz continued fraction for Q(a,x); converges fast for x >= a + 1.
double gamma_q_cont_fraction(double a, double x) {
  const double tiny = std::numeric_limits<double>::min() / kEpsilon;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double gamma_p(double a, double x) {
  PLURALITY_REQUIRE(a > 0.0, "gamma_p: a must be positive");
  PLURALITY_REQUIRE(x >= 0.0, "gamma_p: x must be nonnegative");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_cont_fraction(a, x);
}

double gamma_q(double a, double x) {
  PLURALITY_REQUIRE(a > 0.0, "gamma_q: a must be positive");
  PLURALITY_REQUIRE(x >= 0.0, "gamma_q: x must be nonnegative");
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_cont_fraction(a, x);
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double normal_sf(double z) { return 0.5 * std::erfc(z / std::sqrt(2.0)); }

double chi_square_cdf(double x, double dof) {
  PLURALITY_REQUIRE(dof > 0.0, "chi_square_cdf: dof must be positive");
  if (x <= 0.0) return 0.0;
  return gamma_p(dof / 2.0, x / 2.0);
}

double chi_square_sf(double x, double dof) {
  PLURALITY_REQUIRE(dof > 0.0, "chi_square_sf: dof must be positive");
  if (x <= 0.0) return 1.0;
  return gamma_q(dof / 2.0, x / 2.0);
}

}  // namespace plurality::stats
