#include "stats/regression.hpp"

#include <cmath>

#include "support/check.hpp"

namespace plurality::stats {

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  PLURALITY_REQUIRE(x.size() == y.size(), "linear_fit: size mismatch");
  PLURALITY_REQUIRE(x.size() >= 2, "linear_fit: need at least 2 points");
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  PLURALITY_REQUIRE(sxx > 0.0, "linear_fit: all x identical");
  const double slope = sxy / sxx;
  const double intercept = my - slope * mx;
  double r2 = 1.0;
  if (syy > 0.0) {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double resid = y[i] - (intercept + slope * x[i]);
      ss_res += resid * resid;
    }
    r2 = 1.0 - ss_res / syy;
  }
  return {intercept, slope, r2};
}

LinearFit proportional_fit(std::span<const double> x, std::span<const double> y) {
  PLURALITY_REQUIRE(x.size() == y.size(), "proportional_fit: size mismatch");
  PLURALITY_REQUIRE(!x.empty(), "proportional_fit: empty sample");
  double sxx = 0, sxy = 0, syy = 0, sy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
    sy += y[i];
  }
  PLURALITY_REQUIRE(sxx > 0.0, "proportional_fit: all x zero");
  const double slope = sxy / sxx;
  const double my = sy / static_cast<double>(x.size());
  double ss_tot = 0.0, ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    ss_tot += (y[i] - my) * (y[i] - my);
    const double resid = y[i] - slope * x[i];
    ss_res += resid * resid;
  }
  const double r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return {0.0, slope, r2};
}

}  // namespace plurality::stats
