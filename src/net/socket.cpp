#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace plurality::net {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void throw_errno(const std::string& op) {
  throw NetError(op + ": " + std::strerror(errno));
}

Clock::time_point deadline_from(double timeout_seconds) {
  return Clock::now() + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(timeout_seconds));
}

/// Remaining milliseconds before `deadline`, clamped to [0, int-max] for
/// poll(2); returns 0 once the deadline has passed.
int remaining_ms(Clock::time_point deadline) {
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now());
  if (left.count() <= 0) return 0;
  if (left.count() > 3'600'000) return 3'600'000;  // cap one poll at an hour
  return static_cast<int>(left.count());
}

/// poll() one fd for `events`, honoring the deadline. Returns true when the
/// fd is ready, false on deadline expiry. EINTR rechecks the clock and
/// retries (a signal mid-poll must not extend the budget).
bool poll_one(int fd, short events, Clock::time_point deadline, const std::string& op) {
  for (;;) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = events;
    const int rc = ::poll(&pfd, 1, remaining_ms(deadline));
    if (rc > 0) return true;
    if (rc == 0) return false;  // timed out
    if (errno == EINTR) {
      if (Clock::now() >= deadline) return false;
      continue;
    }
    throw_errno(op + ": poll");
  }
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    throw NetError("net: cannot parse address '" + host +
                   "' (numeric IPv4 or localhost only)");
  }
  return addr;
}

}  // namespace

TcpConnection::TcpConnection(TcpConnection&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

TcpConnection& TcpConnection::operator=(TcpConnection&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

void TcpConnection::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

void TcpConnection::send_all(std::string_view data, double timeout_seconds) {
  if (fd_ < 0) throw NetError("net send: connection is closed");
  const auto deadline = deadline_from(timeout_seconds);
  std::size_t sent = 0;
  while (sent < data.size()) {
    if (!poll_one(fd_, POLLOUT, deadline, "net send")) {
      throw NetError("net send: timed out after sending " + std::to_string(sent) + " of " +
                     std::to_string(data.size()) + " bytes");
    }
    const ssize_t n =
        ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) continue;
    throw_errno("net send");
  }
}

bool TcpConnection::take_buffered_line(std::string& line) {
  const std::size_t pos = buffer_.find('\n');
  if (pos == std::string::npos) {
    if (buffer_.size() > kMaxLineBytes) {
      throw NetError("net recv: line exceeds " + std::to_string(kMaxLineBytes) +
                     " bytes without a terminator");
    }
    return false;
  }
  line.assign(buffer_, 0, pos);
  buffer_.erase(0, pos + 1);
  return true;
}

bool TcpConnection::fill_from_socket() {
  if (fd_ < 0) return false;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), MSG_DONTWAIT);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof(chunk)) return true;
      continue;  // possibly more queued
    }
    if (n == 0) return false;  // peer closed
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;  // reset/errored: the connection is dead
  }
}

bool TcpConnection::recv_line(std::string& line, double timeout_seconds) {
  if (fd_ < 0) throw NetError("net recv: connection is closed");
  const auto deadline = deadline_from(timeout_seconds);
  for (;;) {
    if (take_buffered_line(line)) return true;
    if (!poll_one(fd_, POLLIN, deadline, "net recv")) {
      throw NetError("net recv: timed out waiting for a line");
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      // Clean close at a line boundary is the peer's normal goodbye; a
      // close mid-line means the last message was truncated.
      if (buffer_.empty()) return false;
      throw NetError("net recv: peer closed mid-line (" + std::to_string(buffer_.size()) +
                     " unterminated bytes)");
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    throw_errno("net recv");
  }
}

TcpConnection connect_tcp(const std::string& host, std::uint16_t port,
                          double timeout_seconds) {
  const sockaddr_in addr = make_addr(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("net connect: socket");
  TcpConnection conn(fd);  // owns the fd from here on

  // Nonblocking connect + poll gives the deadline; flip back to blocking
  // after (all later I/O is poll-guarded anyway).
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) throw_errno("net connect");
  if (rc != 0) {
    if (!poll_one(fd, POLLOUT, deadline_from(timeout_seconds), "net connect")) {
      throw NetError("net connect: timed out reaching " + host + ":" +
                     std::to_string(port));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      throw_errno("net connect: getsockopt");
    }
    if (err != 0) {
      throw NetError("net connect: " + host + ":" + std::to_string(port) + ": " +
                     std::strerror(err));
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return conn;
}

TcpListener::TcpListener(const std::string& host, std::uint16_t port, int backlog) {
  sockaddr_in addr = make_addr(host, port);
  // The listener itself is NONBLOCKING: accept_nonblocking() is called in
  // a drain-until-empty loop from the master's event loop, and a blocking
  // listener would wedge that loop on the accept after the last pending
  // connection. Accepted connections come back blocking (their I/O is
  // poll-guarded).
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_errno("net listen: socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("net listen: bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd_, backlog) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("net listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    throw_errno("net listen: getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

TcpConnection TcpListener::accept(double timeout_seconds) {
  if (!poll_one(fd_, POLLIN, deadline_from(timeout_seconds), "net accept")) {
    return TcpConnection();
  }
  return accept_nonblocking();
}

TcpConnection TcpListener::accept_nonblocking() {
  for (;;) {
    const int fd = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return TcpConnection(fd);
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
      return TcpConnection();
    }
    throw_errno("net accept");
  }
}

}  // namespace plurality::net
