// Hand-rolled POSIX TCP sockets with wall-clock deadlines, for the sweep
// service (src/service/).
//
// The master/worker protocol is line-delimited JSON over TCP; everything a
// distributed sweep needs from the network layer is "listen", "connect",
// "send these bytes before the deadline", and "give me the next
// newline-terminated line before the deadline". No third-party deps, no
// async framework: blocking sockets guarded by poll(2), so every blocking
// call has a bounded wall-clock cost and EINTR (the daemon's SIGTERM) wakes
// it immediately.
//
// Failure discipline: every network failure is a thrown NetError naming
// the operation — the service layer maps them onto its lease/reassignment
// machinery (a worker that cannot reach the master degrades to
// local-orchestrator mode; a master that cannot reach a worker expires the
// lease). A clean peer close is NOT an error on reads: recv_line returns
// false so callers can distinguish "worker went away" from "socket broke".
//
// Writes use MSG_NOSIGNAL, so a peer reset surfaces as EPIPE -> NetError
// instead of killing the process with SIGPIPE.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace plurality::net {

/// Any socket-layer failure (connect refused, timeout, reset, oversized
/// frame). what() names the operation and the errno text.
class NetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Upper bound on one protocol line — a lease message is < 1 KiB, so
/// anything near this is a corrupt or hostile peer, not a big message.
inline constexpr std::size_t kMaxLineBytes = 1 << 20;

/// One connected TCP stream, move-only; closes its fd on destruction.
/// Reads are line-buffered: bytes beyond the first '\n' stay in the
/// connection's buffer for the next recv_line / take_buffered_line call.
class TcpConnection {
 public:
  TcpConnection() = default;           // invalid (fd -1)
  explicit TcpConnection(int fd) : fd_(fd) {}
  ~TcpConnection() { close(); }

  TcpConnection(TcpConnection&& other) noexcept;
  TcpConnection& operator=(TcpConnection&& other) noexcept;
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  void close();

  /// Sends all of `data`, polling for writability so the total wall time
  /// never exceeds `timeout_seconds`. Throws NetError on error, timeout,
  /// or peer reset.
  void send_all(std::string_view data, double timeout_seconds);

  /// Fills `line` with the next newline-terminated line (the '\n' is
  /// consumed, not included). Returns false on a clean EOF at a line
  /// boundary (peer closed); throws NetError on timeout, error, EOF
  /// mid-line, or a line exceeding kMaxLineBytes.
  bool recv_line(std::string& line, double timeout_seconds);

  // --- poll-loop face (the master's event loop owns its own poll(2)) ----

  /// Reads whatever is available RIGHT NOW into the line buffer without
  /// blocking. Returns false when the peer has closed or the socket
  /// errored (the connection is dead); true otherwise (including "nothing
  /// available"). Throws NetError only on an oversized buffered line.
  bool fill_from_socket();

  /// Pops one complete buffered line if present (no socket I/O).
  bool take_buffered_line(std::string& line);

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// Connects to host:port (numeric IPv4 dotted quad or "localhost") with a
/// connect deadline. Throws NetError on failure or timeout.
[[nodiscard]] TcpConnection connect_tcp(const std::string& host, std::uint16_t port,
                                        double timeout_seconds);

/// A listening IPv4 socket. Binding port 0 picks an ephemeral port;
/// port() reports the bound one (how tests and --port-file avoid races).
class TcpListener {
 public:
  TcpListener(const std::string& host, std::uint16_t port, int backlog = 16);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Waits up to `timeout_seconds` for a connection. Returns an invalid
  /// TcpConnection on timeout; throws NetError on listener failure.
  [[nodiscard]] TcpConnection accept(double timeout_seconds);

  /// Accepts without blocking (for poll loops that already know the
  /// listener is readable). Invalid connection when none is pending.
  [[nodiscard]] TcpConnection accept_nonblocking();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace plurality::net
