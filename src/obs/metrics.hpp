// Live telemetry: a lock-free metrics registry for the engine, the sweep
// orchestrator, and the sweep service.
//
// The paper's measurements are offline curves; running them at production
// scale (1e9-node gossip cells taking minutes per round) needs ONLINE
// telemetry: how many rounds per second is this cell doing, which trials
// are in flight, is the plurality fraction moving. This registry is that
// channel, built so that switching it on cannot perturb what it measures:
//
//  * Hot-path writes (Counter::add, Gauge::set, Histogram::observe) touch
//    one relaxed atomic in a per-thread shard — no locks, no allocation,
//    no RNG. Observed runs stay bitwise-identical to unobserved runs
//    (tests/obs pins this on the backend × engine grid) and warm rounds
//    stay at zero heap traffic (tests/alloc).
//  * Registration (counter()/gauge()/histogram()) takes a mutex and may
//    allocate; callers resolve handles ONCE up front and keep references
//    (the registry never relocates a registered metric).
//  * snapshot() sums the shards into a plain-data MetricsSnapshot that can
//    be merged across registries/processes, rendered as Prometheus-style
//    text exposition, or serialized through src/io JSON.
//
// Shard discipline: each thread hashes to one of kMetricShards slots (ids
// assigned on first use, round-robin), shards are cache-line separated, and
// readers sum with relaxed loads — totals are exact once writers quiesce
// and monotonically catch up while they run.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "io/json.hpp"

namespace plurality::obs {

/// Label set of one metric instance ({{"cell","cell_00017"}, ...}). Order
/// is preserved in exposition output; (name, labels) identifies a metric.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Per-thread shard count. Power of two; threads beyond it share slots
/// (still correct, just contended).
inline constexpr std::size_t kMetricShards = 16;

/// Index of the calling thread's shard (assigned round-robin on first use).
[[nodiscard]] std::size_t metric_shard_index() noexcept;

/// Monotonically increasing counter, sharded per thread.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    shards_[metric_shard_index()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// Last-write-wins scalar. set() is one relaxed store; concurrent writers
/// race benignly (monitoring semantics, not accounting).
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bound histogram (Prometheus bucket semantics: bounds are upper
/// edges, +Inf implicit). Bucket counts are sharded per thread; the sum is
/// a per-shard CAS-add (uncontended in the common case).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bound counts (NON-cumulative; exposition cumulates), +Inf last.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] double sum() const noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept;

 private:
  struct alignas(64) Shard {
    std::atomic<double> sum{0.0};
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts;
  };
  std::vector<double> bounds_;  ///< ascending upper bounds
  std::array<Shard, kMetricShards> shards_;
};

/// Plain-data copy of one metric at snapshot time.
struct MetricSample {
  enum class Kind { Counter, Gauge, Histogram };
  std::string name;
  std::string help;
  Labels labels;
  Kind kind = Kind::Counter;
  std::uint64_t counter = 0;  ///< Kind::Counter
  double gauge = 0.0;         ///< Kind::Gauge
  // Kind::Histogram (buckets are per-bound, +Inf last, NON-cumulative).
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;
  double sum = 0.0;
  std::uint64_t count = 0;
};

/// A point-in-time copy of a registry, safe to merge, serialize, and ship.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;  ///< registration order

  [[nodiscard]] const MetricSample* find(const std::string& name,
                                         const Labels& labels = {}) const;

  /// Folds `other` in: counters and histograms add (matching name+labels;
  /// unmatched samples append), gauges take `other`'s value — merging a
  /// NEWER snapshot over an older one keeps last-write-wins semantics.
  void merge(const MetricsSnapshot& other);

  /// Prometheus text exposition: "# HELP" / "# TYPE" per family, then
  /// name{label="v"} value lines in registration order.
  [[nodiscard]] std::string to_exposition_text() const;

  /// Compact-JSON form ({"schema":1,"metrics":[...]}); round-trips through
  /// from_json.
  [[nodiscard]] io::JsonValue to_json() const;
  static MetricsSnapshot from_json(const io::JsonValue& doc);
};

/// Named registry of counters/gauges/histograms. Registration is
/// idempotent: the same (name, labels) returns the same object, so
/// independent layers can share one handle.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, const std::string& help = "",
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help = "",
               const Labels& labels = {});
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& help = "", const Labels& labels = {});

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// The process-wide registry — what the CLI tools, the orchestrator's
  /// progress line, and the service worker's heartbeat share.
  static MetricsRegistry& global();

 private:
  struct Entry {
    std::string name;
    std::string help;
    Labels labels;
    MetricSample::Kind kind;
    std::unique_ptr<Counter> c;
    std::unique_ptr<Gauge> g;
    std::unique_ptr<Histogram> h;
  };
  Entry& find_or_create(const std::string& name, const std::string& help,
                        const Labels& labels, MetricSample::Kind kind);

  mutable std::mutex mu_;  ///< registration + snapshot only, never the hot path
  std::vector<std::unique_ptr<Entry>> entries_;  ///< registration order, stable addresses
};

/// Resident set size of this process in bytes (Linux /proc/self/statm;
/// 0 where unavailable) — the worker's heartbeat progress block reports it.
[[nodiscard]] std::uint64_t current_rss_bytes();

}  // namespace plurality::obs
