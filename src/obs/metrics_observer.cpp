#include "obs/metrics_observer.hpp"

#include "obs/trace.hpp"

namespace plurality::obs {

EngineMetrics::EngineMetrics(MetricsRegistry& registry)
    : rounds_total(registry.counter("engine_rounds_total",
                                    "Materialized dynamics rounds across all trials")),
      node_updates_total(registry.counter(
          "engine_node_updates_total",
          "Node state updates (one per node per round) across all trials")),
      trials_started_total(
          registry.counter("engine_trials_started_total", "Trials begun by the drivers")),
      trials_finished_total(registry.counter("engine_trials_finished_total",
                                             "Trials run to a stop reason")),
      plurality_fraction(registry.gauge("engine_plurality_fraction",
                                        "Plurality fraction of the last observed round")),
      support_size(registry.gauge("engine_support_size",
                                  "Colors with support in the last observed round")),
      current_trial(registry.gauge("engine_current_trial",
                                   "Trial index of the last observed round")),
      current_round(registry.gauge("engine_current_round",
                                   "Round number of the last observed round")),
      trial_rounds(registry.histogram(
          "engine_trial_rounds",
          {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 5000, 20000, 100000},
          "Rounds per finished trial")) {}

MetricsObserver::MetricsObserver(MetricsRegistry& registry, RoundObserver* inner)
    : m_(registry), inner_(inner) {}

namespace {
/// Trial-span start time. Observer calls for one trial come from one
/// thread, in order, and each thread runs one trial at a time, so a
/// thread_local pairs begin_trial with its end_trial without allocating.
thread_local double t_trial_start_us = -1.0;
}  // namespace

void MetricsObserver::begin_trial(std::uint64_t trial, const Configuration& start,
                                  state_t num_colors) {
  m_.trials_started_total.add(1);
  m_.current_trial.set(static_cast<double>(trial));
  if (TraceRecorder::global().enabled()) {
    t_trial_start_us = TraceRecorder::now_us();
  }
  if (inner_ != nullptr) inner_->begin_trial(trial, start, num_colors);
}

void MetricsObserver::observe_round(std::uint64_t trial, round_t round,
                                    const Configuration& config, state_t num_colors) {
  const count_t n = config.n();
  const count_t cmax = config.plurality_count(num_colors);
  state_t support = 0;
  for (state_t j = 0; j < num_colors; ++j) support += config.at(j) > 0 ? 1 : 0;

  m_.rounds_total.add(1);
  m_.node_updates_total.add(static_cast<std::uint64_t>(n));
  m_.plurality_fraction.set(static_cast<double>(cmax) / static_cast<double>(n));
  m_.support_size.set(static_cast<double>(support));
  m_.current_trial.set(static_cast<double>(trial));
  m_.current_round.set(static_cast<double>(round));

  if (inner_ != nullptr) inner_->observe_round(trial, round, config, num_colors);
}

void MetricsObserver::end_trial(std::uint64_t trial, StopReason reason, round_t rounds,
                                const Configuration& final, state_t num_colors) {
  m_.trials_finished_total.add(1);
  m_.trial_rounds.observe(static_cast<double>(rounds));
  if (TraceRecorder::global().enabled() && t_trial_start_us >= 0.0) {
    TraceRecorder::global().record("trial", "engine", t_trial_start_us,
                                   TraceRecorder::now_us() - t_trial_start_us,
                                   "trial " + std::to_string(trial));
    t_trial_start_us = -1.0;
  }
  if (inner_ != nullptr) inner_->end_trial(trial, reason, rounds, final, num_colors);
}

}  // namespace plurality::obs
