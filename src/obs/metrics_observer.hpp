// MetricsObserver — live engine telemetry riding the RoundObserver
// pipeline (core/observer.hpp).
//
// Feeds the standard engine metric set (rounds, node updates, current
// plurality fraction / support size, trial lifecycle) from every
// materialized round into a MetricsRegistry, and forwards each callback to
// an optional inner observer so the sweep's ProbeObserver keeps working
// unchanged underneath it.
//
// It obeys the full observer contract: reads the materialized
// configuration only, draws no RNG (metrics-on runs are bitwise-identical
// to metrics-off — tests/obs pins the backend × engine grid), allocates
// nothing per round (every registry handle is resolved at construction;
// tests/alloc pins warm observed rounds at zero heap traffic), and writes
// only sharded/atomic slots, so OpenMP-parallel trials need no locks.
#pragma once

#include "core/observer.hpp"
#include "obs/metrics.hpp"

namespace plurality::obs {

/// Handles to the standard engine metric set, resolved once so per-round
/// updates never touch the registry lock. Shareable: several observers
/// (parallel cells) may feed the same registry concurrently.
struct EngineMetrics {
  explicit EngineMetrics(MetricsRegistry& registry);

  Counter& rounds_total;
  Counter& node_updates_total;
  Counter& trials_started_total;
  Counter& trials_finished_total;
  Gauge& plurality_fraction;
  Gauge& support_size;
  Gauge& current_trial;
  Gauge& current_round;
  Histogram& trial_rounds;
};

class MetricsObserver final : public RoundObserver {
 public:
  /// `inner` (optional, borrowed) receives every callback after the
  /// metrics update — how a sweep cell stacks this on its ProbeObserver.
  explicit MetricsObserver(MetricsRegistry& registry, RoundObserver* inner = nullptr);

  void begin_trial(std::uint64_t trial, const Configuration& start,
                   state_t num_colors) override;
  void observe_round(std::uint64_t trial, round_t round, const Configuration& config,
                     state_t num_colors) override;
  void end_trial(std::uint64_t trial, StopReason reason, round_t rounds,
                 const Configuration& final, state_t num_colors) override;

 private:
  EngineMetrics m_;
  RoundObserver* inner_;
};

}  // namespace plurality::obs
