#include "obs/metrics.hpp"

#include <unistd.h>

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "support/check.hpp"

namespace plurality::obs {

namespace {

/// Shortest round-trip formatting (same as the JSON writer) so exposition
/// goldens are stable across platforms.
std::string fmt_number(double v) {
  PLURALITY_REQUIRE(std::isfinite(v), "metrics: non-finite sample value " << v);
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  PLURALITY_CHECK(ec == std::errc());
  return std::string(buf, ptr);
}

/// Prometheus label-value escaping: backslash, double quote, newline.
void append_escaped(std::string& out, const std::string& v) {
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

void append_label_block(std::string& out, const Labels& labels) {
  if (labels.empty()) return;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    append_escaped(out, v);
    out += '"';
  }
  out += '}';
}

/// Registry key: name + serialized labels (labels are order-preserving, so
/// the same declaration site always produces the same key).
std::string metric_key(const std::string& name, const Labels& labels) {
  std::string key = name;
  append_label_block(key, labels);
  return key;
}

const char* kind_name(MetricSample::Kind kind) {
  switch (kind) {
    case MetricSample::Kind::Counter: return "counter";
    case MetricSample::Kind::Gauge: return "gauge";
    case MetricSample::Kind::Histogram: return "histogram";
  }
  return "counter";
}

MetricSample::Kind kind_from_name(const std::string& name) {
  if (name == "gauge") return MetricSample::Kind::Gauge;
  if (name == "histogram") return MetricSample::Kind::Histogram;
  PLURALITY_REQUIRE(name == "counter", "metrics: unknown sample kind '" << name << "'");
  return MetricSample::Kind::Counter;
}

}  // namespace

std::size_t metric_shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return idx;
}

// --- Histogram -------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  PLURALITY_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
                    "metrics: histogram bounds must be ascending");
  for (Shard& s : shards_) {
    s.counts = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    for (std::size_t b = 0; b <= bounds_.size(); ++b) s.counts[b].store(0);
  }
}

void Histogram::observe(double v) noexcept {
  // Linear scan: engine histograms have ~a dozen bounds and this is
  // per-trial, not per-round.
  std::size_t b = 0;
  while (b < bounds_.size() && v > bounds_[b]) ++b;
  Shard& s = shards_[metric_shard_index()];
  s.counts[b].fetch_add(1, std::memory_order_relaxed);
  double sum = s.sum.load(std::memory_order_relaxed);
  while (!s.sum.compare_exchange_weak(sum, sum + v, std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
  for (const Shard& s : shards_) {
    for (std::size_t b = 0; b < out.size(); ++b) {
      out[b] += s.counts[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

double Histogram::sum() const noexcept {
  double total = 0.0;
  for (const Shard& s : shards_) total += s.sum.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) {
    for (std::size_t b = 0; b <= bounds_.size(); ++b) {
      total += s.counts[b].load(std::memory_order_relaxed);
    }
  }
  return total;
}

// --- MetricsRegistry -------------------------------------------------------

MetricsRegistry::Entry& MetricsRegistry::find_or_create(const std::string& name,
                                                        const std::string& help,
                                                        const Labels& labels,
                                                        MetricSample::Kind kind) {
  const std::string key = metric_key(name, labels);
  for (const auto& entry : entries_) {
    if (metric_key(entry->name, entry->labels) != key) continue;
    PLURALITY_REQUIRE(entry->kind == kind, "metrics: '" << key << "' re-registered as a "
                                                        << kind_name(kind) << " (was "
                                                        << kind_name(entry->kind) << ")");
    return *entry;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = help;
  entry->labels = labels;
  entry->kind = kind;
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& MetricsRegistry::counter(const std::string& name, const std::string& help,
                                  const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = find_or_create(name, help, labels, MetricSample::Kind::Counter);
  if (!entry.c) entry.c = std::make_unique<Counter>();
  return *entry.c;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = find_or_create(name, help, labels, MetricSample::Kind::Gauge);
  if (!entry.g) entry.g = std::make_unique<Gauge>();
  return *entry.g;
}

Histogram& MetricsRegistry::histogram(const std::string& name, std::vector<double> bounds,
                                      const std::string& help, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = find_or_create(name, help, labels, MetricSample::Kind::Histogram);
  if (!entry.h) entry.h = std::make_unique<Histogram>(std::move(bounds));
  return *entry.h;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.samples.reserve(entries_.size());
  for (const auto& entry : entries_) {
    MetricSample s;
    s.name = entry->name;
    s.help = entry->help;
    s.labels = entry->labels;
    s.kind = entry->kind;
    switch (entry->kind) {
      case MetricSample::Kind::Counter:
        s.counter = entry->c->value();
        break;
      case MetricSample::Kind::Gauge:
        s.gauge = entry->g->value();
        break;
      case MetricSample::Kind::Histogram:
        s.bounds = entry->h->bounds();
        s.buckets = entry->h->bucket_counts();
        s.sum = entry->h->sum();
        s.count = entry->h->count();
        break;
    }
    snap.samples.push_back(std::move(s));
  }
  return snap;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

// --- MetricsSnapshot -------------------------------------------------------

const MetricSample* MetricsSnapshot::find(const std::string& name,
                                          const Labels& labels) const {
  const std::string key = metric_key(name, labels);
  for (const MetricSample& s : samples) {
    if (metric_key(s.name, s.labels) == key) return &s;
  }
  return nullptr;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const MetricSample& theirs : other.samples) {
    const std::string key = metric_key(theirs.name, theirs.labels);
    MetricSample* mine = nullptr;
    for (MetricSample& s : samples) {
      if (metric_key(s.name, s.labels) == key) {
        mine = &s;
        break;
      }
    }
    if (mine == nullptr) {
      samples.push_back(theirs);
      continue;
    }
    PLURALITY_REQUIRE(mine->kind == theirs.kind,
                      "metrics: merge kind mismatch for '" << key << "'");
    switch (theirs.kind) {
      case MetricSample::Kind::Counter:
        mine->counter += theirs.counter;
        break;
      case MetricSample::Kind::Gauge:
        mine->gauge = theirs.gauge;
        break;
      case MetricSample::Kind::Histogram:
        PLURALITY_REQUIRE(mine->bounds == theirs.bounds,
                          "metrics: merge bound mismatch for '" << key << "'");
        for (std::size_t b = 0; b < mine->buckets.size(); ++b) {
          mine->buckets[b] += theirs.buckets[b];
        }
        mine->sum += theirs.sum;
        mine->count += theirs.count;
        break;
    }
  }
}

std::string MetricsSnapshot::to_exposition_text() const {
  // Group samples by family: Prometheus allows each family's TYPE header
  // exactly once, with every sample of the family under it, so interleaved
  // registration order (e.g. two per-cell families filled row by row) must
  // not leak into the document. Families keep first-appearance order and
  // samples keep snapshot order within their family.
  std::vector<std::size_t> order;
  order.reserve(samples.size());
  std::vector<bool> grouped(samples.size(), false);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (grouped[i]) continue;
    for (std::size_t j = i; j < samples.size(); ++j) {
      if (!grouped[j] && samples[j].name == samples[i].name) {
        grouped[j] = true;
        order.push_back(j);
      }
    }
  }
  std::string out;
  std::string last_family;
  for (const std::size_t idx : order) {
    const MetricSample& s = samples[idx];
    if (s.name != last_family) {
      last_family = s.name;
      if (!s.help.empty()) {
        out += "# HELP " + s.name + " " + s.help + "\n";
      }
      out += "# TYPE " + s.name + " ";
      out += kind_name(s.kind);
      out += '\n';
    }
    switch (s.kind) {
      case MetricSample::Kind::Counter:
        out += s.name;
        append_label_block(out, s.labels);
        out += ' ' + std::to_string(s.counter) + '\n';
        break;
      case MetricSample::Kind::Gauge:
        out += s.name;
        append_label_block(out, s.labels);
        out += ' ' + fmt_number(s.gauge) + '\n';
        break;
      case MetricSample::Kind::Histogram: {
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < s.buckets.size(); ++b) {
          cumulative += s.buckets[b];
          Labels le = s.labels;
          le.emplace_back("le", b < s.bounds.size() ? fmt_number(s.bounds[b]) : "+Inf");
          out += s.name + "_bucket";
          append_label_block(out, le);
          out += ' ' + std::to_string(cumulative) + '\n';
        }
        out += s.name + "_sum";
        append_label_block(out, s.labels);
        out += ' ' + fmt_number(s.sum) + '\n';
        out += s.name + "_count";
        append_label_block(out, s.labels);
        out += ' ' + std::to_string(s.count) + '\n';
        break;
      }
    }
  }
  return out;
}

io::JsonValue MetricsSnapshot::to_json() const {
  io::JsonValue doc = io::JsonValue::object();
  doc.set("schema", std::uint64_t{1});
  io::JsonValue& list = doc.set("metrics", io::JsonValue::array());
  for (const MetricSample& s : samples) {
    io::JsonValue m = io::JsonValue::object();
    m.set("name", s.name);
    if (!s.help.empty()) m.set("help", s.help);
    m.set("kind", std::string(kind_name(s.kind)));
    if (!s.labels.empty()) {
      io::JsonValue& labels = m.set("labels", io::JsonValue::object());
      for (const auto& [k, v] : s.labels) labels.set(k, v);
    }
    switch (s.kind) {
      case MetricSample::Kind::Counter:
        m.set("value", s.counter);
        break;
      case MetricSample::Kind::Gauge:
        m.set("value", s.gauge);
        break;
      case MetricSample::Kind::Histogram: {
        io::JsonValue& bounds = m.set("bounds", io::JsonValue::array());
        for (const double b : s.bounds) bounds.push(io::JsonValue(b));
        io::JsonValue& buckets = m.set("buckets", io::JsonValue::array());
        for (const std::uint64_t c : s.buckets) buckets.push(io::JsonValue(c));
        m.set("sum", s.sum);
        m.set("count", s.count);
        break;
      }
    }
    list.push(std::move(m));
  }
  return doc;
}

MetricsSnapshot MetricsSnapshot::from_json(const io::JsonValue& doc) {
  PLURALITY_REQUIRE(doc.at("schema").as_uint() == 1,
                    "metrics: unsupported snapshot schema "
                        << doc.at("schema").as_uint());
  MetricsSnapshot snap;
  const io::JsonValue& list = doc.at("metrics");
  for (std::size_t i = 0; i < list.size(); ++i) {
    const io::JsonValue& m = list.item(i);
    MetricSample s;
    s.name = m.at("name").as_string();
    if (const io::JsonValue* help = m.get("help")) s.help = help->as_string();
    s.kind = kind_from_name(m.at("kind").as_string());
    if (const io::JsonValue* labels = m.get("labels")) {
      for (const std::string& k : labels->keys()) {
        s.labels.emplace_back(k, labels->at(k).as_string());
      }
    }
    switch (s.kind) {
      case MetricSample::Kind::Counter:
        s.counter = m.at("value").as_uint();
        break;
      case MetricSample::Kind::Gauge:
        s.gauge = m.at("value").as_double();
        break;
      case MetricSample::Kind::Histogram: {
        const io::JsonValue& bounds = m.at("bounds");
        for (std::size_t b = 0; b < bounds.size(); ++b) {
          s.bounds.push_back(bounds.item(b).as_double());
        }
        const io::JsonValue& buckets = m.at("buckets");
        for (std::size_t b = 0; b < buckets.size(); ++b) {
          s.buckets.push_back(buckets.item(b).as_uint());
        }
        s.sum = m.at("sum").as_double();
        s.count = m.at("count").as_uint();
        break;
      }
    }
    snap.samples.push_back(std::move(s));
  }
  return snap;
}

std::uint64_t current_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long total = 0;
  unsigned long long resident = 0;
  const int got = std::fscanf(f, "%llu %llu", &total, &resident);
  std::fclose(f);
  if (got != 2) return 0;
  return resident * static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
}

}  // namespace plurality::obs
