#include "obs/trace.hpp"

#include <unistd.h>

#include <chrono>
#include <fstream>

#include "support/check.hpp"

namespace plurality::obs {

double TraceRecorder::now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

TraceRecorder::ThreadBuffer& TraceRecorder::buffer_for_this_thread() {
  // One buffer per (recorder, thread). The thread_local holds a shared_ptr
  // so the buffer outlives whichever of the two — thread or recorder dump —
  // finishes first.
  thread_local std::shared_ptr<ThreadBuffer> buffer;
  thread_local const TraceRecorder* owner = nullptr;
  if (owner != this) {
    buffer = std::make_shared<ThreadBuffer>();
    owner = this;
    std::lock_guard<std::mutex> lock(mu_);
    buffer->events.reserve(256);
    buffers_.push_back(buffer);
  }
  return *buffer;
}

void TraceRecorder::record(const char* name, const char* category, double start_us,
                           double duration_us, std::string arg) {
  if (!enabled()) return;
  ThreadBuffer& buf = buffer_for_this_thread();
  std::lock_guard<std::mutex> lock(buf.mu);
  static std::atomic<std::uint32_t> next_tid{0};
  thread_local const std::uint32_t tid = next_tid.fetch_add(1, std::memory_order_relaxed);
  buf.events.push_back(Event{name, category, start_us, duration_us, tid, std::move(arg)});
}

io::JsonValue TraceRecorder::to_json() const {
  io::JsonValue doc = io::JsonValue::object();
  io::JsonValue& events = doc.set("traceEvents", io::JsonValue::array());
  const std::uint64_t pid = static_cast<std::uint64_t>(::getpid());
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
  }
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mu);
    for (const Event& e : buf->events) {
      io::JsonValue ev = io::JsonValue::object();
      ev.set("name", std::string(e.name));
      ev.set("cat", std::string(e.category));
      ev.set("ph", "X");
      ev.set("ts", e.start_us);
      ev.set("dur", e.duration_us);
      ev.set("pid", pid);
      ev.set("tid", std::uint64_t{e.tid});
      if (!e.arg.empty()) {
        io::JsonValue& args = ev.set("args", io::JsonValue::object());
        args.set("detail", e.arg);
      }
      events.push(std::move(ev));
    }
  }
  return doc;
}

void TraceRecorder::write(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << to_json().to_string();
  PLURALITY_REQUIRE(out.good(), "trace: cannot write " << path);
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder recorder;
  return recorder;
}

TraceSpan::TraceSpan(const char* name, const char* category, std::string arg)
    : name_(name), category_(category), arg_(std::move(arg)) {
  if (TraceRecorder::global().enabled()) {
    armed_ = true;
    start_us_ = TraceRecorder::now_us();
  }
}

TraceSpan::~TraceSpan() {
  if (!armed_) return;
  const double end_us = TraceRecorder::now_us();
  TraceRecorder::global().record(name_, category_, start_us_, end_us - start_us_,
                                 std::move(arg_));
}

}  // namespace plurality::obs
