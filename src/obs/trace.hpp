// Lightweight scoped trace spans, dumped as Chrome trace-event JSON.
//
// Where metrics (obs/metrics.hpp) answer "how fast", spans answer "where
// did the time go": one complete event per cell attempt, trial, checkpoint
// write, or lease round-trip, viewable on a shared timeline in
// chrome://tracing / Perfetto (docs/observability.md has the recipe).
//
// Recording discipline:
//  * Off by default. A disabled recorder costs one relaxed load per span
//    site; no clocks are read, no buffers touched — the production default
//    pays nothing.
//  * Enabled, each thread appends to its own buffer (registered once per
//    thread, guarded by a per-buffer mutex that only the dump ever
//    contends). Spans are coarse (cell/trial/IO granularity, never
//    per-round), so buffer growth is off the measured hot path.
//  * Span names are string literals by contract; the optional `arg` (cell
//    id, worker name) is an owned string shown as the event's args.detail.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "io/json.hpp"

namespace plurality::obs {

class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds on the steady clock (the trace's shared timebase).
  [[nodiscard]] static double now_us();

  /// Appends one complete event ("ph":"X") to the calling thread's buffer.
  /// `name` and `category` must be string literals (stored by pointer).
  void record(const char* name, const char* category, double start_us, double duration_us,
              std::string arg = {});

  /// All recorded events as {"traceEvents":[...]} (chrome://tracing loads
  /// this directly). Safe to call while other threads keep recording.
  [[nodiscard]] io::JsonValue to_json() const;

  /// Writes to_json() to `path` (indented; best-effort caller handles IO).
  void write(const std::string& path) const;

  /// The process-wide recorder --trace-out enables and dumps.
  static TraceRecorder& global();

 private:
  struct Event {
    const char* name;
    const char* category;
    double start_us;
    double duration_us;
    std::uint32_t tid;
    std::string arg;
  };
  struct ThreadBuffer {
    std::mutex mu;  ///< owner-thread appends vs. dump reads
    std::vector<Event> events;
  };
  ThreadBuffer& buffer_for_this_thread();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  ///< guards the buffer list, not the buffers
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

/// RAII span: construction reads the clock, destruction records — iff the
/// recorder was enabled when the span opened.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "sweep",
                     std::string arg = {});
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  std::string arg_;
  double start_us_ = 0.0;
  bool armed_ = false;
};

}  // namespace plurality::obs
