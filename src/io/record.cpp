#include "io/record.hpp"

#include "support/format.hpp"

namespace plurality::io {

ExperimentRecord::ExperimentRecord(std::string id, std::string title,
                                   std::string paper_result)
    : id_(std::move(id)), title_(std::move(title)), paper_result_(std::move(paper_result)) {}

void ExperimentRecord::add(const std::string& key, const std::string& value) {
  fields_.emplace_back(key, value);
}

void ExperimentRecord::set_expectation(std::string text) { expectation_ = std::move(text); }

void ExperimentRecord::print(std::ostream& os) const {
  const std::string rule(78, '=');
  os << rule << '\n'
     << "[" << id_ << "] " << title_ << '\n'
     << "Reproduces: " << paper_result_ << '\n';
  std::size_t width = 0;
  for (const auto& [k, v] : fields_) width = std::max(width, k.size());
  for (const auto& [k, v] : fields_) {
    os << "  " << pad_right(k + ':', width + 1) << ' ' << v << '\n';
  }
  if (!expectation_.empty()) os << "Paper expectation: " << expectation_ << '\n';
  os << rule << '\n';
}

}  // namespace plurality::io
