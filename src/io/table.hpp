// Aligned console tables — every bench binary reports its experiment in the
// same paper-style tabular format.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace plurality::io {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Cell helpers: convert-and-append builder for the current row.
  class RowBuilder {
   public:
    explicit RowBuilder(Table& table) : table_(table) {}
    ~RowBuilder();
    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

    RowBuilder& cell(const std::string& text);
    RowBuilder& cell(const char* text);
    RowBuilder& cell(double v, int sig_digits = 4);
    RowBuilder& cell(std::uint64_t v);
    RowBuilder& cell(std::int64_t v);
    RowBuilder& cell(int v);
    RowBuilder& percent(double fraction, int decimals = 1);

   private:
    friend class Table;
    Table& table_;
    std::vector<std::string> cells_;
  };

  /// Starts a builder; the row is committed when the builder is destroyed.
  RowBuilder row();

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& headers() const { return headers_; }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Renders with column separators and a header rule.
  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace plurality::io
