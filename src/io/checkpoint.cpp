#include "io/checkpoint.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "io/crc32.hpp"

namespace plurality::io {

namespace {

[[noreturn]] void corrupt(const std::string& path, const std::string& why) {
  throw CheckpointCorruptError("checkpoint: " + path + " is corrupt — " + why);
}

}  // namespace

std::string checkpoint_envelope_text(const JsonValue& payload, std::uint32_t schema) {
  const std::string canonical = payload.to_string();
  JsonValue envelope = JsonValue::object();
  envelope.set("checkpoint_schema", static_cast<std::uint64_t>(schema));
  envelope.set("crc32", crc32_hex(crc32(canonical)));
  // Embedding re-serializes the payload at depth 1 (different indentation
  // than `canonical`) — harmless, because verification always re-derives
  // the canonical form from the parsed payload, never from file bytes.
  JsonValue payload_copy = parse_json(canonical);
  envelope.set("payload", std::move(payload_copy));
  return envelope.to_string();
}

void atomic_write_text(const std::string& path, const std::string& text) {
  namespace fs = std::filesystem;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    PLURALITY_REQUIRE(out.good(), "checkpoint: cannot open '" << tmp << "' for writing");
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    out.flush();
    PLURALITY_REQUIRE(out.good(), "checkpoint: write to '" << tmp << "' failed");
  }
  fs::rename(tmp, path);
}

void write_checkpoint_file(const std::string& path, const JsonValue& payload,
                           std::uint32_t schema) {
  atomic_write_text(path, checkpoint_envelope_text(payload, schema));
}

JsonValue verify_checkpoint_text(const std::string& text, const std::string& path,
                                 std::uint32_t expected_schema) {
  JsonValue doc;
  try {
    doc = parse_json(text);
  } catch (const CheckError& e) {
    corrupt(path, std::string("unparseable (") + e.what() + ")");
  }
  if (!doc.is_object()) corrupt(path, "top-level value is not an object");

  if (!doc.contains("checkpoint_schema")) {
    if (doc.contains("schema_version")) {
      // Recognizably the pre-envelope (v1) format: version skew, not rot.
      throw CheckpointSchemaError(
          "checkpoint: " + path +
          " is a pre-integrity (schema 1) file; this build reads checkpoint schema " +
          std::to_string(expected_schema) +
          " — rerun the sweep into a fresh out_dir (or delete the stale file to "
          "recompute that cell)");
    }
    corrupt(path, "missing checkpoint_schema / not a checkpoint envelope");
  }

  std::uint64_t schema = 0;
  try {
    schema = doc.at("checkpoint_schema").as_uint();
  } catch (const CheckError&) {
    corrupt(path, "checkpoint_schema is not an integer");
  }
  if (schema != expected_schema) {
    throw CheckpointSchemaError(
        "checkpoint: " + path + " has checkpoint_schema " + std::to_string(schema) +
        " but this build reads schema " + std::to_string(expected_schema) +
        " — it was written by a different version; use a fresh out_dir or delete "
        "the file to recompute");
  }

  if (!doc.contains("crc32") || !doc.at("crc32").is_string()) {
    corrupt(path, "missing crc32 stamp");
  }
  std::uint32_t stamped = 0;
  if (!parse_crc32_hex(doc.at("crc32").as_string(), stamped)) {
    corrupt(path, "malformed crc32 stamp '" + doc.at("crc32").as_string() + "'");
  }
  if (!doc.contains("payload")) corrupt(path, "missing payload");

  const std::string canonical = doc.at("payload").to_string();
  const std::uint32_t actual = crc32(canonical);
  if (actual != stamped) {
    corrupt(path, "crc32 mismatch (stamped " + doc.at("crc32").as_string() +
                      ", content hashes to " + crc32_hex(actual) + ")");
  }
  return parse_json(canonical);
}

JsonValue read_checkpoint_file(const std::string& path, std::uint32_t expected_schema) {
  std::ifstream in(path, std::ios::binary);
  PLURALITY_REQUIRE(in.good(), "checkpoint: cannot open '" << path << "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  PLURALITY_REQUIRE(!in.bad(), "checkpoint: read from '" << path << "' failed");
  return verify_checkpoint_text(buffer.str(), path, expected_schema);
}

}  // namespace plurality::io
