#include "io/csv.hpp"

#include "support/check.hpp"

namespace plurality::io {

CsvWriter::CsvWriter() = default;

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> columns)
    : active_(true), columns_(columns.size()), out_(path) {
  PLURALITY_REQUIRE(out_.good(), "CsvWriter: cannot open '" << path << "'");
  PLURALITY_REQUIRE(!columns.empty(), "CsvWriter: need at least one column");
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(columns[i]);
  }
  out_ << '\n';
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  if (!active_) return;
  PLURALITY_REQUIRE(cells.size() == columns_,
                    "CsvWriter: row width " << cells.size() << " != header width "
                                            << columns_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  out_.flush();
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace plurality::io
