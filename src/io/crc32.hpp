// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for checkpoint
// integrity stamping.
//
// The sweep orchestrator trusts checkpoint files across process deaths —
// a bit-flipped or truncated cell file must be *detected*, not silently
// loaded into aggregate.csv (src/io/checkpoint.hpp wraps every checkpoint
// in a CRC envelope). CRC-32 is the right tool here: this is an integrity
// check against storage/truncation faults, not an authenticity check
// against an adversary, and the table-driven implementation costs ~1 ns/B
// on files that take milliseconds of simulation to produce.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace plurality::io {

/// Incremental face: crc32(b, update(a)) == crc32(concat(a, b), kCrc32Init)
/// after finalizing. Callers hashing one buffer should use crc32() below.
inline constexpr std::uint32_t kCrc32Init = 0xFFFFFFFFu;

/// Folds `len` bytes into a running (pre-inverted) CRC state.
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t state, const void* data,
                                         std::size_t len);

/// Final XOR of the running state (the standard output transformation).
[[nodiscard]] inline std::uint32_t crc32_finalize(std::uint32_t state) {
  return state ^ 0xFFFFFFFFu;
}

/// One-shot CRC-32 of a buffer ("123456789" -> 0xCBF43926, the check value
/// every published CRC-32 table lists).
[[nodiscard]] inline std::uint32_t crc32(std::string_view data) {
  return crc32_finalize(crc32_update(kCrc32Init, data.data(), data.size()));
}

/// Fixed-width lowercase hex of a CRC ("cbf43926") — the form the
/// checkpoint envelope stores.
[[nodiscard]] std::string crc32_hex(std::uint32_t crc);

/// Parses crc32_hex output back (strictly 8 lowercase/uppercase hex
/// digits); returns false on anything else instead of throwing — the
/// caller treats a malformed stamp as corruption, not a usage error.
[[nodiscard]] bool parse_crc32_hex(std::string_view text, std::uint32_t& out);

}  // namespace plurality::io
