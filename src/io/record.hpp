// Experiment header records: every bench binary announces what it
// reproduces (paper result id, workload, parameters, expectation) in a
// uniform block so EXPERIMENTS.md can be cross-checked against raw output.
#pragma once

#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace plurality::io {

class ExperimentRecord {
 public:
  /// `id` is the DESIGN.md experiment id (e.g. "E1"); `paper_result` the
  /// paper statement being reproduced (e.g. "Theorem 1 / Corollary 1").
  ExperimentRecord(std::string id, std::string title, std::string paper_result);

  /// Adds a parameter/metadata line.
  void add(const std::string& key, const std::string& value);

  /// One-sentence statement of what the paper predicts the table should show.
  void set_expectation(std::string text);

  void print(std::ostream& os) const;

 private:
  std::string id_;
  std::string title_;
  std::string paper_result_;
  std::string expectation_;
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace plurality::io
