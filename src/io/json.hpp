// Minimal JSON document builder AND strict parser for machine-readable
// experiment input/output.
//
// The throughput benchmarks emit JSON (BENCH_throughput.json) so CI and
// trend tooling can parse results without scraping tables, and the
// scenario layer reads ScenarioSpec files and committed BENCH baselines
// back in. One ordered value tree with correct string escaping and
// shortest-round-trip number formatting, no external deps. The parser is
// strict: exactly one RFC 8259 document, no trailing garbage, no duplicate
// object keys, no NaN/Inf — every rejection names the byte offset.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace plurality::io {

/// One JSON value (null / bool / number / string / array / object).
/// Objects preserve insertion order so emitted files diff cleanly.
class JsonValue {
 public:
  JsonValue() : kind_(Kind::Null) {}
  JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}               // NOLINT(runtime/explicit)
  JsonValue(double v) : kind_(Kind::Double), double_(v) {}         // NOLINT(runtime/explicit)
  JsonValue(std::uint64_t v) : kind_(Kind::Uint), uint_(v) {}      // NOLINT(runtime/explicit)
  JsonValue(std::int64_t v) : kind_(Kind::Int), int_(v) {}         // NOLINT(runtime/explicit)
  JsonValue(int v) : kind_(Kind::Int), int_(v) {}                  // NOLINT(runtime/explicit)
  JsonValue(const char* s) : kind_(Kind::String), string_(s) {}    // NOLINT(runtime/explicit)
  JsonValue(std::string s) : kind_(Kind::String), string_(std::move(s)) {}  // NOLINT

  static JsonValue array() { return JsonValue(Kind::Array); }
  static JsonValue object() { return JsonValue(Kind::Object); }

  /// Appends to an array (must be an array); returns the stored element.
  JsonValue& push(JsonValue value);

  /// Sets a key on an object (must be an object); returns the stored value.
  JsonValue& set(const std::string& key, JsonValue value);

  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::Bool; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::String; }
  [[nodiscard]] bool is_number() const {
    return kind_ == Kind::Double || kind_ == Kind::Uint || kind_ == Kind::Int;
  }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }
  [[nodiscard]] std::size_t size() const { return items_.size(); }

  // ---- reader face (used on parsed documents; throws CheckError with the
  // offending kind/key on type mismatches so spec errors are actionable) --

  [[nodiscard]] bool as_bool() const;
  /// Any numeric kind, widened.
  [[nodiscard]] double as_double() const;
  /// Integral numbers only (Uint, non-negative Int, or a Double that is
  /// exactly a non-negative integer — JSON has one number type).
  [[nodiscard]] std::uint64_t as_uint() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Object lookup. contains() on non-objects is false; at() requires the
  /// key to exist.
  [[nodiscard]] bool contains(const std::string& key) const;
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  /// get(): contains() ? &at() : nullptr.
  [[nodiscard]] const JsonValue* get(const std::string& key) const;
  /// Object keys in insertion (= document) order.
  [[nodiscard]] const std::vector<std::string>& keys() const { return keys_; }

  /// Array element access (bounds-checked).
  [[nodiscard]] const JsonValue& item(std::size_t index) const;

  /// Serializes with 2-space indentation (indent = current depth).
  void write(std::ostream& os, int indent = 0) const;

  /// The serialized document plus a trailing newline.
  [[nodiscard]] std::string to_string() const;

  /// Single-line serialization (no indentation or inter-token newlines; no
  /// trailing newline) — the framing the net layer's line-delimited JSON
  /// protocol needs. String content is escaped as always, so the output is
  /// newline-free by construction. Parses back to the same document.
  void write_compact(std::ostream& os) const;
  [[nodiscard]] std::string to_compact_string() const;

 private:
  enum class Kind { Null, Bool, Double, Uint, Int, String, Array, Object };
  explicit JsonValue(Kind kind) : kind_(kind) {}

  Kind kind_;
  bool bool_ = false;
  double double_ = 0.0;
  std::uint64_t uint_ = 0;
  std::int64_t int_ = 0;
  std::string string_;
  // Array elements, or object values (keys_ parallel) — unique_ptr keeps
  // the recursive type sized.
  std::vector<std::string> keys_;
  std::vector<std::unique_ptr<JsonValue>> items_;
};

/// Writes `value` to `path` (throws CheckError on I/O failure).
void write_json_file(const std::string& path, const JsonValue& value);

/// Parses exactly one JSON document from `text` (throws CheckError with a
/// byte offset on any syntax error, duplicate object key, or trailing
/// non-whitespace). Numbers parse as Uint / Int when written integral and
/// in range, Double otherwise — so parse(emit(doc)) reproduces the writer's
/// kinds for everything the writer can emit.
JsonValue parse_json(const std::string& text);

/// Reads and parses `path` (throws CheckError on I/O or parse failure,
/// naming the file).
JsonValue read_json_file(const std::string& path);

}  // namespace plurality::io
