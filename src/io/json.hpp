// Minimal JSON document builder for machine-readable benchmark output.
//
// The throughput benchmarks emit JSON (BENCH_throughput.json) so CI and
// trend tooling can parse results without scraping tables. This is a
// writer, not a parser: a small ordered value tree with correct string
// escaping and shortest-round-trip number formatting, no external deps.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace plurality::io {

/// One JSON value (null / bool / number / string / array / object).
/// Objects preserve insertion order so emitted files diff cleanly.
class JsonValue {
 public:
  JsonValue() : kind_(Kind::Null) {}
  JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}               // NOLINT(runtime/explicit)
  JsonValue(double v) : kind_(Kind::Double), double_(v) {}         // NOLINT(runtime/explicit)
  JsonValue(std::uint64_t v) : kind_(Kind::Uint), uint_(v) {}      // NOLINT(runtime/explicit)
  JsonValue(std::int64_t v) : kind_(Kind::Int), int_(v) {}         // NOLINT(runtime/explicit)
  JsonValue(int v) : kind_(Kind::Int), int_(v) {}                  // NOLINT(runtime/explicit)
  JsonValue(const char* s) : kind_(Kind::String), string_(s) {}    // NOLINT(runtime/explicit)
  JsonValue(std::string s) : kind_(Kind::String), string_(std::move(s)) {}  // NOLINT

  static JsonValue array() { return JsonValue(Kind::Array); }
  static JsonValue object() { return JsonValue(Kind::Object); }

  /// Appends to an array (must be an array); returns the stored element.
  JsonValue& push(JsonValue value);

  /// Sets a key on an object (must be an object); returns the stored value.
  JsonValue& set(const std::string& key, JsonValue value);

  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }
  [[nodiscard]] std::size_t size() const { return items_.size(); }

  /// Serializes with 2-space indentation (indent = current depth).
  void write(std::ostream& os, int indent = 0) const;

  /// The serialized document plus a trailing newline.
  [[nodiscard]] std::string to_string() const;

 private:
  enum class Kind { Null, Bool, Double, Uint, Int, String, Array, Object };
  explicit JsonValue(Kind kind) : kind_(kind) {}

  Kind kind_;
  bool bool_ = false;
  double double_ = 0.0;
  std::uint64_t uint_ = 0;
  std::int64_t int_ = 0;
  std::string string_;
  // Array elements, or object values (keys_ parallel) — unique_ptr keeps
  // the recursive type sized.
  std::vector<std::string> keys_;
  std::vector<std::unique_ptr<JsonValue>> items_;
};

/// Writes `value` to `path` (throws CheckError on I/O failure).
void write_json_file(const std::string& path, const JsonValue& value);

}  // namespace plurality::io
