// CSV emission for experiment results (machine-readable companion to the
// console tables; plotting scripts consume these).
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace plurality::io {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row immediately.
  CsvWriter(const std::string& path, std::vector<std::string> columns);

  /// No-op writer (when the user did not pass --csv).
  CsvWriter();

  /// Whether rows will actually be written anywhere.
  [[nodiscard]] bool active() const { return active_; }

  void add_row(const std::vector<std::string>& cells);

  /// RFC-4180 style escaping of one field.
  static std::string escape(const std::string& field);

 private:
  bool active_ = false;
  std::size_t columns_ = 0;
  std::ofstream out_;
};

}  // namespace plurality::io
