#include "io/json.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>

#include "support/check.hpp"

namespace plurality::io {

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (c < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[c >> 4] << hex[c & 0xf];
        } else {
          os << raw;
        }
    }
  }
  os << '"';
}

void write_double(std::ostream& os, double v) {
  // JSON has no NaN/Inf; benchmarks that divide by a zero elapsed time
  // should not silently emit an invalid document.
  PLURALITY_REQUIRE(std::isfinite(v), "json: non-finite number " << v);
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  PLURALITY_CHECK(ec == std::errc());
  os.write(buf, ptr - buf);
}

void indent_to(std::ostream& os, int depth) {
  for (int i = 0; i < depth; ++i) os << "  ";
}

}  // namespace

JsonValue& JsonValue::push(JsonValue value) {
  PLURALITY_REQUIRE(kind_ == Kind::Array, "JsonValue::push: not an array");
  items_.push_back(std::make_unique<JsonValue>(std::move(value)));
  return *items_.back();
}

JsonValue& JsonValue::set(const std::string& key, JsonValue value) {
  PLURALITY_REQUIRE(kind_ == Kind::Object, "JsonValue::set: not an object");
  keys_.push_back(key);
  items_.push_back(std::make_unique<JsonValue>(std::move(value)));
  return *items_.back();
}

void JsonValue::write(std::ostream& os, int indent) const {
  switch (kind_) {
    case Kind::Null: os << "null"; break;
    case Kind::Bool: os << (bool_ ? "true" : "false"); break;
    case Kind::Double: write_double(os, double_); break;
    case Kind::Uint: os << uint_; break;
    case Kind::Int: os << int_; break;
    case Kind::String: write_escaped(os, string_); break;
    case Kind::Array: {
      if (items_.empty()) {
        os << "[]";
        break;
      }
      os << "[\n";
      for (std::size_t i = 0; i < items_.size(); ++i) {
        indent_to(os, indent + 1);
        items_[i]->write(os, indent + 1);
        if (i + 1 < items_.size()) os << ',';
        os << '\n';
      }
      indent_to(os, indent);
      os << ']';
      break;
    }
    case Kind::Object: {
      if (items_.empty()) {
        os << "{}";
        break;
      }
      os << "{\n";
      for (std::size_t i = 0; i < items_.size(); ++i) {
        indent_to(os, indent + 1);
        write_escaped(os, keys_[i]);
        os << ": ";
        items_[i]->write(os, indent + 1);
        if (i + 1 < items_.size()) os << ',';
        os << '\n';
      }
      indent_to(os, indent);
      os << '}';
      break;
    }
  }
}

std::string JsonValue::to_string() const {
  std::ostringstream os;
  write(os, 0);
  os << '\n';
  return os.str();
}

void write_json_file(const std::string& path, const JsonValue& value) {
  std::ofstream out(path);
  PLURALITY_REQUIRE(out.good(), "json: cannot open '" << path << "' for writing");
  out << value.to_string();
  out.flush();
  PLURALITY_REQUIRE(out.good(), "json: write to '" << path << "' failed");
}

}  // namespace plurality::io
