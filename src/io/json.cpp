#include "io/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string_view>

#include "support/check.hpp"

namespace plurality::io {

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (c < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[c >> 4] << hex[c & 0xf];
        } else {
          os << raw;
        }
    }
  }
  os << '"';
}

void write_double(std::ostream& os, double v) {
  // JSON has no NaN/Inf; benchmarks that divide by a zero elapsed time
  // should not silently emit an invalid document.
  PLURALITY_REQUIRE(std::isfinite(v), "json: non-finite number " << v);
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  PLURALITY_CHECK(ec == std::errc());
  os.write(buf, ptr - buf);
}

void indent_to(std::ostream& os, int depth) {
  for (int i = 0; i < depth; ++i) os << "  ";
}

}  // namespace

namespace {

const char* kind_name(int kind) {
  static const char* names[] = {"null", "bool", "double", "uint", "int", "string", "array", "object"};
  return names[kind];
}

}  // namespace

bool JsonValue::as_bool() const {
  PLURALITY_REQUIRE(kind_ == Kind::Bool,
                    "json: expected bool, got " << kind_name(static_cast<int>(kind_)));
  return bool_;
}

double JsonValue::as_double() const {
  switch (kind_) {
    case Kind::Double: return double_;
    case Kind::Uint: return static_cast<double>(uint_);
    case Kind::Int: return static_cast<double>(int_);
    default:
      PLURALITY_REQUIRE(false,
                        "json: expected number, got " << kind_name(static_cast<int>(kind_)));
      return 0.0;  // unreachable
  }
}

std::uint64_t JsonValue::as_uint() const {
  switch (kind_) {
    case Kind::Uint: return uint_;
    case Kind::Int:
      PLURALITY_REQUIRE(int_ >= 0, "json: expected non-negative integer, got " << int_);
      return static_cast<std::uint64_t>(int_);
    case Kind::Double: {
      // Tolerate integral doubles ("1e6" is a natural way to write n).
      PLURALITY_REQUIRE(double_ >= 0.0 && double_ == std::floor(double_) &&
                            double_ <= 0x1p63,
                        "json: expected non-negative integer, got " << double_);
      return static_cast<std::uint64_t>(double_);
    }
    default:
      PLURALITY_REQUIRE(false,
                        "json: expected integer, got " << kind_name(static_cast<int>(kind_)));
      return 0;  // unreachable
  }
}

std::int64_t JsonValue::as_int() const {
  switch (kind_) {
    case Kind::Int: return int_;
    case Kind::Uint:
      PLURALITY_REQUIRE(uint_ <= static_cast<std::uint64_t>(INT64_MAX),
                        "json: integer " << uint_ << " overflows int64");
      return static_cast<std::int64_t>(uint_);
    case Kind::Double:
      PLURALITY_REQUIRE(double_ == std::floor(double_) && double_ >= -0x1p63 &&
                            double_ < 0x1p63,
                        "json: expected integer, got " << double_);
      return static_cast<std::int64_t>(double_);
    default:
      PLURALITY_REQUIRE(false,
                        "json: expected integer, got " << kind_name(static_cast<int>(kind_)));
      return 0;  // unreachable
  }
}

const std::string& JsonValue::as_string() const {
  PLURALITY_REQUIRE(kind_ == Kind::String,
                    "json: expected string, got " << kind_name(static_cast<int>(kind_)));
  return string_;
}

bool JsonValue::contains(const std::string& key) const {
  if (kind_ != Kind::Object) return false;
  for (const auto& k : keys_) {
    if (k == key) return true;
  }
  return false;
}

const JsonValue* JsonValue::get(const std::string& key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (keys_[i] == key) return items_[i].get();
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  PLURALITY_REQUIRE(kind_ == Kind::Object,
                    "json: at('" << key << "') on " << kind_name(static_cast<int>(kind_)));
  const JsonValue* value = get(key);
  PLURALITY_REQUIRE(value != nullptr, "json: missing key '" << key << "'");
  return *value;
}

const JsonValue& JsonValue::item(std::size_t index) const {
  PLURALITY_REQUIRE(kind_ == Kind::Array,
                    "json: item(" << index << ") on " << kind_name(static_cast<int>(kind_)));
  PLURALITY_REQUIRE(index < items_.size(),
                    "json: index " << index << " out of range (size " << items_.size() << ")");
  return *items_[index];
}

JsonValue& JsonValue::push(JsonValue value) {
  PLURALITY_REQUIRE(kind_ == Kind::Array, "JsonValue::push: not an array");
  items_.push_back(std::make_unique<JsonValue>(std::move(value)));
  return *items_.back();
}

JsonValue& JsonValue::set(const std::string& key, JsonValue value) {
  PLURALITY_REQUIRE(kind_ == Kind::Object, "JsonValue::set: not an object");
  keys_.push_back(key);
  items_.push_back(std::make_unique<JsonValue>(std::move(value)));
  return *items_.back();
}

void JsonValue::write(std::ostream& os, int indent) const {
  switch (kind_) {
    case Kind::Null: os << "null"; break;
    case Kind::Bool: os << (bool_ ? "true" : "false"); break;
    case Kind::Double: write_double(os, double_); break;
    case Kind::Uint: os << uint_; break;
    case Kind::Int: os << int_; break;
    case Kind::String: write_escaped(os, string_); break;
    case Kind::Array: {
      if (items_.empty()) {
        os << "[]";
        break;
      }
      os << "[\n";
      for (std::size_t i = 0; i < items_.size(); ++i) {
        indent_to(os, indent + 1);
        items_[i]->write(os, indent + 1);
        if (i + 1 < items_.size()) os << ',';
        os << '\n';
      }
      indent_to(os, indent);
      os << ']';
      break;
    }
    case Kind::Object: {
      if (items_.empty()) {
        os << "{}";
        break;
      }
      os << "{\n";
      for (std::size_t i = 0; i < items_.size(); ++i) {
        indent_to(os, indent + 1);
        write_escaped(os, keys_[i]);
        os << ": ";
        items_[i]->write(os, indent + 1);
        if (i + 1 < items_.size()) os << ',';
        os << '\n';
      }
      indent_to(os, indent);
      os << '}';
      break;
    }
  }
}

std::string JsonValue::to_string() const {
  std::ostringstream os;
  write(os, 0);
  os << '\n';
  return os.str();
}

void JsonValue::write_compact(std::ostream& os) const {
  switch (kind_) {
    case Kind::Null: os << "null"; break;
    case Kind::Bool: os << (bool_ ? "true" : "false"); break;
    case Kind::Double: write_double(os, double_); break;
    case Kind::Uint: os << uint_; break;
    case Kind::Int: os << int_; break;
    case Kind::String: write_escaped(os, string_); break;
    case Kind::Array: {
      os << '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) os << ',';
        items_[i]->write_compact(os);
      }
      os << ']';
      break;
    }
    case Kind::Object: {
      os << '{';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) os << ',';
        write_escaped(os, keys_[i]);
        os << ':';
        items_[i]->write_compact(os);
      }
      os << '}';
      break;
    }
  }
}

std::string JsonValue::to_compact_string() const {
  std::ostringstream os;
  write_compact(os);
  return os.str();
}

namespace {

/// Recursive-descent parser over the whole text (documents here are specs
/// and bench baselines — small; no streaming needed). Strictness knobs are
/// not optional: duplicate keys, trailing garbage, and non-finite numbers
/// are always errors, because a silently shadowed spec field would run the
/// wrong experiment.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue value = parse_value(0);
    skip_ws();
    PLURALITY_REQUIRE(pos_ == text_.size(),
                      "json parse: trailing garbage at offset " << pos_);
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    PLURALITY_REQUIRE(false, "json parse: " << what << " at offset " << pos_);
    std::abort();  // unreachable
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect(char c) {
    if (eof() || peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t len = std::strlen(literal);
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting deeper than 64 levels");
    if (eof()) fail("unexpected end of input");
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue();
        fail("invalid literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    JsonValue object = JsonValue::object();
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return object;
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      PLURALITY_REQUIRE(!object.contains(key),
                        "json parse: duplicate key '" << key << "' at offset " << pos_);
      skip_ws();
      expect(':');
      skip_ws();
      object.set(key, parse_value(depth + 1));
      skip_ws();
      if (eof()) fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return object;
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    JsonValue array = JsonValue::array();
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return array;
    }
    while (true) {
      skip_ws();
      array.push(parse_value(depth + 1));
      skip_ws();
      if (eof()) fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return array;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (eof()) fail("unterminated string");
      const char raw = text_[pos_++];
      const auto c = static_cast<unsigned char>(raw);
      if (raw == '"') return out;
      if (c < 0x20) fail("unescaped control character in string");
      if (raw != '\\') {
        out.push_back(raw);
        continue;
      }
      if (eof()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_utf8(parse_hex4(), out); break;
        default: fail("invalid escape");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      if (eof()) fail("unterminated \\u escape");
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape digit");
      }
    }
    return code;
  }

  void append_utf8(unsigned code, std::string& out) {
    // Surrogate pairs: a high surrogate must be followed by \uDC00-\uDFFF.
    if (code >= 0xD800 && code <= 0xDBFF) {
      if (!consume_literal("\\u")) fail("high surrogate without low surrogate");
      const unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired low surrogate");
    }
    const auto out_byte = [&out](unsigned byte) { out.push_back(static_cast<char>(byte)); };
    if (code < 0x80) {
      out_byte(code);
    } else if (code < 0x800) {
      out_byte(0xC0 | (code >> 6));
      out_byte(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out_byte(0xE0 | (code >> 12));
      out_byte(0x80 | ((code >> 6) & 0x3F));
      out_byte(0x80 | (code & 0x3F));
    } else {
      out_byte(0xF0 | (code >> 18));
      out_byte(0x80 | ((code >> 12) & 0x3F));
      out_byte(0x80 | ((code >> 6) & 0x3F));
      out_byte(0x80 | (code & 0x3F));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) fail("invalid number");
    if (peek() == '0') {
      ++pos_;  // no leading zeros
    } else {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    bool integral = true;
    if (!eof() && peek() == '.') {
      integral = false;
      ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) fail("invalid fraction");
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) fail("invalid exponent");
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    const std::string_view token(text_.data() + start, pos_ - start);
    if (integral) {
      // Preserve the writer's Uint/Int kinds where the value fits.
      if (token[0] == '-') {
        std::int64_t value = 0;
        const auto [ptr, ec] =
            std::from_chars(token.data(), token.data() + token.size(), value);
        if (ec == std::errc() && ptr == token.data() + token.size()) return JsonValue(value);
      } else {
        std::uint64_t value = 0;
        const auto [ptr, ec] =
            std::from_chars(token.data(), token.data() + token.size(), value);
        if (ec == std::errc() && ptr == token.data() + token.size()) return JsonValue(value);
      }
      // Out-of-range integers fall through to double (lossy but defined).
    }
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size() || !std::isfinite(value)) {
      fail("invalid number");
    }
    return JsonValue(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

JsonValue read_json_file(const std::string& path) {
  std::ifstream in(path);
  PLURALITY_REQUIRE(in.good(), "json: cannot open '" << path << "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  PLURALITY_REQUIRE(!in.bad(), "json: read from '" << path << "' failed");
  try {
    return parse_json(buffer.str());
  } catch (const CheckError& e) {
    PLURALITY_REQUIRE(false, "json: while parsing '" << path << "': " << e.what());
    throw;  // unreachable
  }
}

void write_json_file(const std::string& path, const JsonValue& value) {
  std::ofstream out(path);
  PLURALITY_REQUIRE(out.good(), "json: cannot open '" << path << "' for writing");
  out << value.to_string();
  out.flush();
  PLURALITY_REQUIRE(out.good(), "json: write to '" << path << "' failed");
}

}  // namespace plurality::io
