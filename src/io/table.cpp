#include "io/table.hpp"

#include <algorithm>
#include <sstream>

#include "support/check.hpp"
#include "support/format.hpp"

namespace plurality::io {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  PLURALITY_REQUIRE(!headers_.empty(), "Table: need at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  PLURALITY_REQUIRE(cells.size() == headers_.size(),
                    "Table: row has " << cells.size() << " cells, expected "
                                      << headers_.size());
  rows_.push_back(std::move(cells));
}

Table::RowBuilder::~RowBuilder() { table_.add_row(std::move(cells_)); }

Table::RowBuilder& Table::RowBuilder::cell(const std::string& text) {
  cells_.push_back(text);
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(const char* text) {
  cells_.emplace_back(text);
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(double v, int sig_digits) {
  cells_.push_back(format_sig(v, sig_digits));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(std::uint64_t v) {
  cells_.push_back(format_count(v));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(std::int64_t v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(int v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::percent(double fraction, int decimals) {
  cells_.push_back(format_percent(fraction, decimals));
  return *this;
}

Table::RowBuilder Table::row() { return RowBuilder(*this); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << pad_left(cells[c], widths[c]) << " |";
    }
    os << '\n';
  };
  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace plurality::io
