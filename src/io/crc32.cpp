#include "io/crc32.hpp"

#include <array>

namespace plurality::io {

namespace {

/// The reflected-polynomial byte table, computed once at load time.
constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32_update(std::uint32_t state, const void* data, std::size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    state = kTable[(state ^ bytes[i]) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

std::string crc32_hex(std::uint32_t crc) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[crc & 0xFu];
    crc >>= 4;
  }
  return out;
}

bool parse_crc32_hex(std::string_view text, std::uint32_t& out) {
  if (text.size() != 8) return false;
  std::uint32_t value = 0;
  for (const char c : text) {
    std::uint32_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint32_t>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<std::uint32_t>(c - 'A') + 10;
    } else {
      return false;
    }
    value = (value << 4) | digit;
  }
  out = value;
  return true;
}

}  // namespace plurality::io
