// CRC-stamped, schema-versioned checkpoint files.
//
// The sweep orchestrator's resume path used to trust any cell file that
// parsed — a bit-flipped digit would be loaded into aggregate.csv as a
// legitimate result, and an old-format file was indistinguishable from a
// corrupt one. Every checkpoint (cell results, the sweep manifest) is now
// written as an integrity envelope:
//
//   {
//     "checkpoint_schema": 2,
//     "crc32": "cbf43926",          // CRC-32 of payload.to_string()
//     "payload": { ...document... }
//   }
//
// The CRC is computed over the payload's own canonical serialization
// (src/io/json.hpp's writer is deterministic and parse∘emit is the
// identity on everything it emits), so a reader re-serializes the parsed
// payload and compares. Any flip that changes payload *content* changes
// the canonical bytes and is caught; flips confined to inter-token
// whitespace canonicalize away and are harmless by construction.
//
// Readers throw two DISTINCT error types so callers can route them
// differently (the orchestrator quarantines corruption but hard-refuses
// version skew with an actionable message):
//   CheckpointCorruptError  — unparseable, truncated, malformed envelope,
//                             or CRC mismatch: the bytes cannot be trusted.
//   CheckpointSchemaError   — a well-formed envelope (or a recognizable
//                             pre-envelope file) whose schema version is
//                             not the one this binary reads/writes.
#pragma once

#include <cstdint>
#include <string>

#include "io/json.hpp"
#include "support/check.hpp"

namespace plurality::io {

/// The checkpoint envelope schema this build reads and writes. Version 1
/// is the pre-envelope format (bare payload with a top-level
/// "schema_version"); version 2 added the CRC envelope.
inline constexpr std::uint32_t kCheckpointSchema = 2;

/// File bytes that cannot be trusted (truncated, bit-flipped, duplicate
/// keys, CRC mismatch, malformed envelope).
class CheckpointCorruptError : public CheckError {
 public:
  using CheckError::CheckError;
};

/// A structurally sound checkpoint from a different schema version —
/// refusing it is a compatibility decision, not a corruption verdict.
class CheckpointSchemaError : public CheckError {
 public:
  using CheckError::CheckError;
};

/// Serializes `payload` into the envelope text (CRC stamped) — exposed
/// separately from write_checkpoint_file so the orchestrator can stage the
/// bytes itself (its fault-injection hooks corrupt/crash between the
/// serialize, tmp-write, and rename steps).
[[nodiscard]] std::string checkpoint_envelope_text(const JsonValue& payload,
                                                   std::uint32_t schema = kCheckpointSchema);

/// Writes `text` to `path` atomically: tmp file + flush + rename, so a
/// crash at any instant leaves either the old file or the new one, never a
/// prefix. Throws CheckError on I/O failure.
void atomic_write_text(const std::string& path, const std::string& text);

/// checkpoint_envelope_text + atomic_write_text.
void write_checkpoint_file(const std::string& path, const JsonValue& payload,
                           std::uint32_t schema = kCheckpointSchema);

/// Parses, schema-checks, and CRC-verifies `text` (as read from `path`,
/// which is only used in error messages). Returns the verified payload.
/// Throws CheckpointSchemaError / CheckpointCorruptError as documented
/// above; a pre-envelope file (top-level "schema_version") is reported as
/// schema skew, not corruption.
[[nodiscard]] JsonValue verify_checkpoint_text(const std::string& text,
                                               const std::string& path,
                                               std::uint32_t expected_schema = kCheckpointSchema);

/// Reads `path` and returns its verified payload. I/O failures (missing /
/// unreadable file) throw plain CheckError — "file absent" is the caller's
/// normal recompute path, not corruption.
[[nodiscard]] JsonValue read_checkpoint_file(const std::string& path,
                                             std::uint32_t expected_schema = kCheckpointSchema);

}  // namespace plurality::io
