#include "graph/layout.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numeric>

#include "support/check.hpp"
#include "support/specs.hpp"

namespace plurality::graph {
namespace {

// Interleaves the low 32 bits of x into the even bit positions.
std::uint64_t spread_bits(std::uint64_t x) {
  x &= 0xffffffffULL;
  x = (x | (x << 16)) & 0x0000ffff0000ffffULL;
  x = (x | (x << 8)) & 0x00ff00ff00ff00ffULL;
  x = (x | (x << 4)) & 0x0f0f0f0f0f0f0f0fULL;
  x = (x | (x << 2)) & 0x3333333333333333ULL;
  x = (x | (x << 1)) & 0x5555555555555555ULL;
  return x;
}

// Morton (Z-order) key of grid cell (r, c).
std::uint64_t morton_key(std::uint64_t r, std::uint64_t c) {
  return (spread_bits(r) << 1) | spread_bits(c);
}

// Index of cell (x=column, y=row) along the Hilbert curve of a side x side
// grid (side a power of two). Classic iterative quadrant-rotation walk.
std::uint64_t hilbert_d(std::uint64_t side, std::uint64_t x, std::uint64_t y) {
  std::uint64_t d = 0;
  for (std::uint64_t s = side / 2; s > 0; s /= 2) {
    const std::uint64_t rx = (x & s) ? 1 : 0;
    const std::uint64_t ry = (y & s) ? 1 : 0;
    d += s * s * ((3 * rx) ^ ry);
    if (ry == 0) {
      if (rx == 1) {
        x = s - 1 - x;
        y = s - 1 - y;
      }
      std::swap(x, y);
    }
  }
  return d;
}

// Ranks `order` (a visit sequence of all node ids) into new_of form.
std::vector<std::uint32_t> invert_order(const std::vector<std::uint32_t>& order) {
  std::vector<std::uint32_t> new_of(order.size());
  for (std::uint32_t pos = 0; pos < order.size(); ++pos) {
    new_of[order[pos]] = pos;
  }
  return new_of;
}

}  // namespace

GraphLayout parse_graph_layout(const std::string& name) {
  if (name == "identity") return GraphLayout::Identity;
  if (name == "degree") return GraphLayout::Degree;
  if (name == "rcm") return GraphLayout::Rcm;
  if (name == "hilbert") return GraphLayout::Hilbert;
  PLURALITY_REQUIRE(false, "unknown graph_layout '" << name
                    << "' (expected identity, degree, rcm, or hilbert)");
}

const char* graph_layout_name(GraphLayout layout) {
  switch (layout) {
    case GraphLayout::Identity: return "identity";
    case GraphLayout::Degree: return "degree";
    case GraphLayout::Rcm: return "rcm";
    case GraphLayout::Hilbert: return "hilbert";
  }
  return "identity";
}

GraphLayout resolve_auto_layout(const std::string& topology_spec) {
  const std::string kind = split_spec(topology_spec).kind;
  if (kind == "regular" || kind == "er" || kind == "gnm") {
    return GraphLayout::Rcm;
  }
  if (kind == "edges") {
    return GraphLayout::Degree;
  }
  // clique, gossip, ring, torus, lattice: identity keeps the arena ==
  // implicit bitwise contract (and ring/torus/lattice builder numbering is
  // already banded/blocked enough that reordering buys nothing by default).
  return GraphLayout::Identity;
}

std::vector<std::uint32_t> degree_permutation(const Topology& topo) {
  PLURALITY_REQUIRE(topo.kind() == Topology::Kind::Explicit,
                    "degree layout requires an explicit topology");
  const count_t n = topo.num_nodes();
  PLURALITY_REQUIRE(n <= 0xFFFFFFFFULL, "degree layout: n exceeds u32 ids");
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0U);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return topo.degree(a) > topo.degree(b);
                   });
  return invert_order(order);
}

std::vector<std::uint32_t> rcm_permutation(const Topology& topo) {
  PLURALITY_REQUIRE(topo.kind() == Topology::Kind::Explicit,
                    "rcm layout requires an explicit topology");
  const count_t n = topo.num_nodes();
  PLURALITY_REQUIRE(n <= 0xFFFFFFFFULL, "rcm layout: n exceeds u32 ids");

  // Seeds in (degree ascending, id ascending) order; walking this list and
  // skipping visited nodes starts each component at a min-degree node.
  std::vector<std::uint32_t> seeds(n);
  std::iota(seeds.begin(), seeds.end(), 0U);
  std::stable_sort(seeds.begin(), seeds.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return topo.degree(a) < topo.degree(b);
                   });

  std::vector<std::uint32_t> order;
  order.reserve(n);
  std::vector<bool> visited(n, false);
  std::vector<std::uint32_t> frontier;
  for (const std::uint32_t seed : seeds) {
    if (visited[seed]) continue;
    visited[seed] = true;
    order.push_back(seed);
    // Plain queue walk over `order` itself: nodes appended become the BFS
    // queue, so no separate deque is needed.
    for (std::size_t head = order.size() - 1; head < order.size(); ++head) {
      const std::uint32_t v = order[head];
      frontier.clear();
      for (const count_t u : topo.neighbors(v)) {
        if (!visited[u]) {
          visited[u] = true;
          frontier.push_back(static_cast<std::uint32_t>(u));
        }
      }
      std::stable_sort(frontier.begin(), frontier.end(),
                       [&](std::uint32_t a, std::uint32_t b) {
                         return topo.degree(a) < topo.degree(b);
                       });
      order.insert(order.end(), frontier.begin(), frontier.end());
    }
  }
  std::reverse(order.begin(), order.end());
  return invert_order(order);
}

std::vector<std::uint32_t> hilbert_permutation(count_t rows, count_t cols) {
  const count_t n = rows * cols;
  PLURALITY_REQUIRE(rows > 0 && cols > 0 && n <= 0xFFFFFFFFULL,
                    "hilbert layout: invalid grid " << rows << "x" << cols);
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0U);
  const bool square_pow2 =
      rows == cols && (rows & (rows - 1)) == 0;
  if (square_pow2) {
    std::vector<std::uint32_t> new_of(n);
    for (count_t r = 0; r < rows; ++r) {
      for (count_t c = 0; c < cols; ++c) {
        new_of[r * cols + c] =
            static_cast<std::uint32_t>(hilbert_d(rows, c, r));
      }
    }
    return new_of;
  }
  // Rectangular / non-power-of-two grids: Morton keys are not contiguous,
  // but SORTING by them still yields a recursively blocked order.
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return morton_key(a / cols, a % cols) <
                            morton_key(b / cols, b % cols);
                   });
  return invert_order(order);
}

std::uint64_t graph_bandwidth(const Topology& topo,
                              std::span<const std::uint32_t> new_of) {
  PLURALITY_REQUIRE(topo.kind() == Topology::Kind::Explicit,
                    "graph_bandwidth requires an explicit topology");
  std::uint64_t bw = 0;
  for (count_t v = 0; v < topo.num_nodes(); ++v) {
    const std::uint64_t a = new_of.empty() ? v : new_of[v];
    for (const count_t u : topo.neighbors(v)) {
      const std::uint64_t b = new_of.empty() ? u : new_of[u];
      bw = std::max(bw, a > b ? a - b : b - a);
    }
  }
  return bw;
}

double average_edge_distance(const Topology& topo,
                             std::span<const std::uint32_t> new_of) {
  PLURALITY_REQUIRE(topo.kind() == Topology::Kind::Explicit,
                    "average_edge_distance requires an explicit topology");
  double sum = 0.0;
  std::uint64_t arcs = 0;
  for (count_t v = 0; v < topo.num_nodes(); ++v) {
    const double a = static_cast<double>(new_of.empty() ? v : new_of[v]);
    for (const count_t u : topo.neighbors(v)) {
      const double b = static_cast<double>(new_of.empty() ? u : new_of[u]);
      sum += std::abs(a - b);
      ++arcs;
    }
  }
  return arcs == 0 ? 0.0 : sum / static_cast<double>(arcs);
}

}  // namespace plurality::graph
