#include "graph/implicit_topology.hpp"

#include "support/check.hpp"

namespace plurality::graph {

ImplicitTopology ImplicitTopology::gossip(std::uint64_t n) {
  PLURALITY_REQUIRE(n >= 1, "ImplicitTopology::gossip: need at least one node");
  ImplicitTopology t;
  t.family = Family::Gossip;
  t.n = n;
  t.degree = n;
  return t;
}

ImplicitTopology ImplicitTopology::ring(std::uint64_t n) {
  PLURALITY_REQUIRE(n >= 3, "ImplicitTopology::ring: need n >= 3");
  ImplicitTopology t;
  t.family = Family::Ring;
  t.n = n;
  t.degree = 2;
  return t;
}

ImplicitTopology ImplicitTopology::torus(std::uint64_t rows, std::uint64_t cols) {
  PLURALITY_REQUIRE(rows >= 3 && cols >= 3, "ImplicitTopology::torus: need sides >= 3");
  ImplicitTopology t;
  t.family = Family::Torus;
  t.n = rows * cols;
  t.rows = rows;
  t.cols = cols;
  t.degree = 4;
  return t;
}

ImplicitTopology ImplicitTopology::lattice(std::uint64_t n, std::uint64_t d) {
  PLURALITY_REQUIRE(d >= 2 && d % 2 == 0,
                    "ImplicitTopology::lattice: degree must be even and >= 2, got " << d);
  PLURALITY_REQUIRE(n >= d + 2, "ImplicitTopology::lattice: degree " << d
                                    << " needs n >= " << d + 2 << ", got " << n);
  ImplicitTopology t;
  t.family = Family::Lattice;
  t.n = n;
  t.half = d / 2;
  t.degree = d;
  return t;
}

}  // namespace plurality::graph
