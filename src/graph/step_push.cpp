#include "graph/step_push.hpp"

#include <algorithm>
#include <array>
#include <type_traits>

#include "core/undecided.hpp"
#include "core/voter.hpp"
#include "graph/agent_graph.hpp"
#include "graph/batched_simd.hpp"
#include "graph/kernels.hpp"
#include "graph/kernels_batched.hpp"
#include "rng/philox.hpp"
#include "support/check.hpp"

#if defined(PLURALITY_HAVE_OPENMP)
#include <omp.h>
#endif

namespace plurality::graph {

namespace kb = kernels_batched;

namespace {

constexpr unsigned kPushBucketShift = 20;
static_assert(kPushBucketNodes == (std::size_t{1} << kPushBucketShift),
              "bucket shift and bucket size must agree");

/// Phase-A word-buffer length: 16 KiB per thread, stack-resident like the
/// batched engine's tile arenas.
constexpr std::size_t kPushWordBlock = 2048;

// --- Push rules: the arity-1 laws, post-gather arithmetic only. ---------
// apply(own, states, seen) must equal the batched rule's apply() on the
// same sample — that identity is what makes push == batched bitwise.

struct PushVoter {
  /// Voter ignores the destination's own state, so phase C can skip the
  /// nodes[v] load entirely.
  static constexpr bool kNeedsOwn = false;
  static state_t apply(state_t, state_t, state_t seen) { return seen; }
};

struct PushUndecided {
  static constexpr bool kNeedsOwn = true;
  static state_t apply(state_t own, state_t states, state_t seen) {
    const state_t undecided = states - 1;
    const state_t colored_next =
        kernels::select((seen == own) | (seen == undecided), own, undecided);
    return kernels::select(own == undecided, seen, colored_next);
  }
};

/// The four-phase scatter round. `source_of(i, word)` converts node i's
/// Philox word into its sampled source id — per topology, the exact
/// composition the batched samplers use (scale_word against i's bound,
/// then i's neighbor row), so phase A reproduces the batched pull draw
/// word for word.
template <class Rule, typename TNode, class SourceOf>
void push_sweep(const TNode* nodes, state_t* out, TNode* mirror_out, std::size_t n,
                state_t k, const std::uint32_t* orig, rng::Philox4x32::Key key,
                std::uint64_t round, GraphStepWorkspace& ws,
                SourceOf&& source_of) {
  const std::size_t chunk_size = (n + kGraphChunks - 1) / kGraphChunks;
  const std::size_t buckets = (n + kPushBucketNodes - 1) / kPushBucketNodes;
  std::uint32_t* src = ws.push_src.data();
  std::uint64_t* pairs = ws.push_pairs.data();
  // hist is chunk-major (hist[chunk * buckets + bucket]): phase A/B then
  // touch one contiguous `buckets`-entry row per thread.
  std::uint64_t* hist = ws.push_hist.data();
  std::fill(hist, hist + static_cast<std::size_t>(kGraphChunks) * buckets,
            std::uint64_t{0});

  // Phase A: draw every node's source (sequential streams: the Philox word,
  // the neighbor row, and src[] are all walked in node order) + histogram
  // by source bucket. Words are block-generated like the batched engine's
  // pass 1 (SIMD fill when the host supports it, bitwise-pinned to the
  // scalar fill); a relabeled graph addresses each word by original id —
  // non-contiguous, so it keeps the scalar per-word path.
  const simd::Ops* ops = simd::detect();
  const auto fill = (ops != nullptr && ops->fill_words != nullptr)
                        ? ops->fill_words
                        : &rng::Philox4x32::fill_words<kb::kSamplerRounds>;
#if defined(PLURALITY_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
  for (unsigned chunk = 0; chunk < kGraphChunks; ++chunk) {
    const std::size_t lo = static_cast<std::size_t>(chunk) * chunk_size;
    const std::size_t hi = std::min(n, lo + chunk_size);
    std::uint64_t* h = hist + static_cast<std::size_t>(chunk) * buckets;
    std::array<std::uint64_t, kPushWordBlock> wbuf;
    for (std::size_t base = lo; base < hi; base += kPushWordBlock) {
      const std::size_t nb = std::min(kPushWordBlock, hi - base);
      if (orig == nullptr) {
        fill(key, round, base, nb, wbuf.data());
      } else {
        for (std::size_t i = 0; i < nb; ++i) {
          wbuf[i] = rng::Philox4x32::word<kb::kSamplerRounds>(key, round,
                                                              orig[base + i]);
        }
      }
      for (std::size_t i = 0; i < nb; ++i) {
        const std::uint32_t u = source_of(base + i, wbuf[i]);
        src[base + i] = u;
        ++h[u >> kPushBucketShift];
      }
    }
  }

  // Exclusive prefix over cells in (bucket, chunk) order: cell (b, c)'s
  // cursor points at its slot range inside bucket b. The layout is fully
  // determined by the histogram — no thread-order dependence anywhere.
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < buckets; ++b) {
    for (unsigned c = 0; c < kGraphChunks; ++c) {
      std::uint64_t& cell = hist[static_cast<std::size_t>(c) * buckets + b];
      const std::uint64_t count = cell;
      cell = total;
      total += count;
    }
  }
  PLURALITY_CHECK(total == n);

  // Phase B: place (source, dest) pairs at the deterministic cursors. Each
  // (bucket, chunk) cell is advanced only by its own chunk's thread, and
  // dests within a cell land in ascending order.
#if defined(PLURALITY_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
  for (unsigned chunk = 0; chunk < kGraphChunks; ++chunk) {
    const std::size_t lo = static_cast<std::size_t>(chunk) * chunk_size;
    const std::size_t hi = std::min(n, lo + chunk_size);
    std::uint64_t* h = hist + static_cast<std::size_t>(chunk) * buckets;
    for (std::size_t i = lo; i < hi; ++i) {
      const std::uint32_t u = src[i];
      const std::uint64_t pos = h[u >> kPushBucketShift]++;
      pairs[pos] = (static_cast<std::uint64_t>(u) << 32) | i;
    }
  }

  // Phase C: scatter-apply per bucket. All of a bucket's gathers hit one
  // kPushBucketNodes window of the state array (cache-resident), and each
  // dest id occurs exactly once across all buckets, so the writes are
  // race-free. Dests ascend within each (bucket, chunk) run, so the
  // own-loads and next-state writes are quasi-sequential too. Dynamic
  // schedule: bucket populations vary (≈ binomial around n/buckets), and
  // the output is position-determined, so stealing cannot change results.
#if defined(PLURALITY_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic)
#endif
  for (unsigned b = 0; b < static_cast<unsigned>(buckets); ++b) {
    // After phase B every cell cursor sits at its END; bucket b's range is
    // [end of bucket b-1, end of its own last cell (chunk kGraphChunks-1)].
    const std::size_t last_row = static_cast<std::size_t>(kGraphChunks - 1) * buckets;
    const std::uint64_t lo = b == 0 ? 0 : hist[last_row + b - 1];
    const std::uint64_t hi = hist[last_row + b];
    for (std::uint64_t pos = lo; pos < hi; ++pos) {
      const std::uint64_t pr = pairs[pos];
      const std::uint32_t u = static_cast<std::uint32_t>(pr >> 32);
      const std::uint32_t v = static_cast<std::uint32_t>(pr);
      const state_t own =
          Rule::kNeedsOwn ? static_cast<state_t>(nodes[v]) : state_t{0};
      const state_t next = Rule::apply(own, k, static_cast<state_t>(nodes[u]));
      if (out != nullptr) out[v] = next;
      if constexpr (!std::is_same_v<TNode, state_t>) {
        mirror_out[v] = static_cast<TNode>(next);
      }
    }
  }
}

/// Topology dispatch + byte-mirror handling + count reduction — the outer
/// shell shared with step_batched_all, minus the tile pipeline.
template <class Rule>
void step_push_all(const AgentGraph& graph, Configuration& config,
                   const rng::StreamFactory& streams, round_t round,
                   GraphStepWorkspace& ws) {
  const std::size_t n = graph.num_nodes();
  const state_t k = config.k();
  const rng::Philox4x32::Key key =
      rng::Philox4x32::key_from_seed(streams.master_seed(), kb::kBatchedKeyTag);
  const std::uint32_t* orig =
      graph.is_relabeled() ? graph.orig_of().data() : nullptr;
  const std::size_t chunk_size = (n + kGraphChunks - 1) / kGraphChunks;
  const bool complete = graph.is_complete();
  const bool implicit = graph.is_implicit();
  const bool regular =
      !complete && !implicit && graph.min_degree() == graph.max_degree();
  count_t* partials = ws.partials.data();
  state_t* out = ws.bytes_only ? nullptr : ws.scratch.data();
  ws.prepare_push(n);

  const auto sweep = [&](auto nodes_ptr, auto* mirror_out) {
    using TNode = std::remove_const_t<std::remove_pointer_t<decltype(nodes_ptr)>>;
    if (complete) {
      push_sweep<Rule>(nodes_ptr, out, mirror_out, n, k, orig, key, round, ws,
                       [n](std::size_t, std::uint64_t x) {
                         return kb::scale_word(x, n);
                       });
    } else if (implicit) {
      const ImplicitTopology topo = graph.implicit_topology();
      push_sweep<Rule>(nodes_ptr, out, mirror_out, n, k, orig, key, round, ws,
                       [topo](std::size_t i, std::uint64_t x) {
                         return static_cast<std::uint32_t>(
                             topo.neighbor(i, kb::scale_word(x, topo.degree)));
                       });
    } else if (regular) {
      const std::uint32_t* neighbors = graph.neighbors();
      const std::uint64_t degree = graph.min_degree();
      push_sweep<Rule>(nodes_ptr, out, mirror_out, n, k, orig, key, round, ws,
                       [neighbors, degree](std::size_t i, std::uint64_t x) {
                         return neighbors[i * degree + kb::scale_word(x, degree)];
                       });
    } else {
      const std::uint64_t* offsets = graph.offsets();
      const std::uint32_t* neighbors = graph.neighbors();
      push_sweep<Rule>(nodes_ptr, out, mirror_out, n, k, orig, key, round, ws,
                       [offsets, neighbors](std::size_t i, std::uint64_t x) {
                         const std::uint64_t off = offsets[i];
                         return neighbors[off +
                                          kb::scale_word(x, offsets[i + 1] - off)];
                       });
    }

    // Count pass over the published states, on the fixed chunk grid.
    const auto* published = mirror_out != nullptr
                                ? static_cast<const TNode*>(mirror_out)
                                : reinterpret_cast<const TNode*>(out);
#if defined(PLURALITY_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
    for (unsigned chunk = 0; chunk < kGraphChunks; ++chunk) {
      const std::size_t lo = static_cast<std::size_t>(chunk) * chunk_size;
      const std::size_t hi = std::min(n, lo + chunk_size);
      count_t* local = partials + static_cast<std::size_t>(chunk) * k;
      std::fill(local, local + k, count_t{0});
      if (lo < hi) kb::count_tile(published, lo, hi - lo, k, local);
    }
  };

  if (k <= 256) {
    // Byte-mirror path (same rationale as strict/batched: phase C's window
    // gathers touch a 4x denser array; values identical either way).
    std::uint8_t* mirror = ws.nodes8.data();
    if (!ws.bytes_only && !ws.mirror_fresh) {
      const state_t* nodes = ws.nodes.data();
#if defined(PLURALITY_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
      for (unsigned chunk = 0; chunk < kGraphChunks; ++chunk) {
        const std::size_t lo = static_cast<std::size_t>(chunk) * chunk_size;
        const std::size_t hi = std::min(n, lo + chunk_size);
        for (std::size_t i = lo; i < hi; ++i) {
          mirror[i] = static_cast<std::uint8_t>(nodes[i]);
        }
      }
    }
    sweep(static_cast<const std::uint8_t*>(mirror), ws.scratch8.data());
    ws.nodes8.swap(ws.scratch8);
    ws.mirror_fresh = true;
  } else {
    state_t* no_mirror = nullptr;
    sweep(static_cast<const state_t*>(ws.nodes.data()), no_mirror);
  }

  ws.nodes.swap(ws.scratch);  // no-op (both empty) in bytes-only mode
  std::fill(ws.counts.begin(), ws.counts.end(), count_t{0});
  for (unsigned chunk = 0; chunk < kGraphChunks; ++chunk) {
    const count_t* local = ws.partials.data() + static_cast<std::size_t>(chunk) * k;
    for (state_t j = 0; j < k; ++j) ws.counts[j] += local[j];
  }
  config.assign_counts(ws.counts);
}

}  // namespace

bool push_has_kernel(const Dynamics& dynamics) {
  return dynamic_cast<const Voter*>(&dynamics) != nullptr ||
         dynamic_cast<const UndecidedState*>(&dynamics) != nullptr;
}

void step_graph_push(const Dynamics& dynamics, const AgentGraph& graph,
                     Configuration& config, const rng::StreamFactory& streams,
                     round_t round, GraphStepWorkspace& ws,
                     const StepTuning& tuning) {
  (void)tuning;  // no tile/prefetch knobs: every phase streams sequentially
  const count_t n = graph.num_nodes();
  PLURALITY_REQUIRE(config.n() == n, "step_graph_push: configuration has "
                                         << config.n() << " nodes but graph has " << n);
  PLURALITY_REQUIRE(ws.state_size() == n,
                    "step_graph_push: workspace holds "
                        << ws.state_size() << " node states for " << n
                        << " nodes — call load_nodes first");
  PLURALITY_REQUIRE(graph.is_complete() || graph.min_degree() >= 1,
                    "step_graph_push: isolated vertices cannot sample");
  PLURALITY_REQUIRE(n <= 0xffffffffULL,
                    "step_graph_push: node ids must fit 32 bits (n=" << n << ")");
  ws.prepare(n, config.k());

  if (dynamic_cast<const Voter*>(&dynamics) != nullptr) {
    step_push_all<PushVoter>(graph, config, streams, round, ws);
  } else if (dynamic_cast<const UndecidedState*>(&dynamics) != nullptr) {
    step_push_all<PushUndecided>(graph, config, streams, round, ws);
  } else {
    PLURALITY_CHECK_MSG(false, "step_graph_push: dynamics '"
                                   << dynamics.name()
                                   << "' has no push kernel (see push_has_kernel)");
  }
}

}  // namespace plurality::graph
