#include "graph/graph_trials.hpp"

#include <algorithm>
#include <atomic>

#include "core/observer.hpp"
#include "rng/distributions.hpp"
#include "support/check.hpp"

#if defined(PLURALITY_HAVE_OPENMP)
#include <omp.h>
#endif

namespace plurality::graph {

namespace {
std::atomic<int> g_bytes_only_override{-1};
}  // namespace

bool graph_bytes_only_auto(count_t n, state_t k, bool has_adversary) {
  const bool eligible = k <= 256 && !has_adversary;
  const int mode = g_bytes_only_override.load(std::memory_order_relaxed);
  if (mode == 0) return false;
  if (mode == 1) return eligible;
  return eligible && n >= kBytesOnlyAutoThreshold;
}

void set_graph_bytes_only_override(int mode) {
  g_bytes_only_override.store(mode, std::memory_order_relaxed);
}

void corrupt_nodes(const Adversary& adversary, Configuration& config,
                   state_t num_colors, round_t round, rng::Xoshiro256pp& gen,
                   GraphStepWorkspace& ws) {
  const state_t k = config.k();
  PLURALITY_REQUIRE(!ws.bytes_only,
                    "corrupt_nodes: adversaries edit the u32 node array; the "
                    "bytes-only memory mode never auto-enables with one wired in");
  PLURALITY_REQUIRE(ws.nodes.size() == config.n(),
                    "corrupt_nodes: workspace/config node count mismatch");
  ws.prepare_adversary(k);
  std::copy(config.counts().begin(), config.counts().end(), ws.adv_before.begin());

  // The strategy plays its count-level move first; everything below makes
  // the node array agree with it.
  adversary.corrupt(config, num_colors, round, gen);

  std::uint64_t total_victims = 0;
  ws.adv_offset[0] = 0;
  for (state_t j = 0; j < k; ++j) {
    const count_t now = config.at(j);
    const count_t before = ws.adv_before[j];
    ws.adv_take[j] = before > now ? before - now : 0;
    total_victims += ws.adv_take[j];
    ws.adv_offset[j + 1] = total_victims;
  }
  if (total_victims == 0) return;
  ws.adv_victims.resize(total_victims);
  std::fill(ws.adv_seen.begin(), ws.adv_seen.end(), count_t{0});

  // One-pass per-color reservoir sampling: after the scan, each demoted
  // color's victim block holds a uniform random subset of its nodes.
  const std::size_t n = ws.nodes.size();
  for (std::size_t i = 0; i < n; ++i) {
    const state_t c = ws.nodes[i];
    const count_t take = ws.adv_take[c];
    if (take == 0) continue;
    const count_t seen = ws.adv_seen[c]++;
    if (seen < take) {
      ws.adv_victims[ws.adv_offset[c] + seen] = i;
    } else {
      const std::uint64_t r = rng::uniform_below(gen, seen + 1);
      if (r < take) ws.adv_victims[ws.adv_offset[c] + r] = i;
    }
  }

  ws.mirror_fresh = false;  // node states change below; the byte mirror is stale

  // Hand the victims (in demoted-color block order) their new states.
  std::size_t cursor = 0;
  for (state_t j = 0; j < k; ++j) {
    const count_t now = config.at(j);
    const count_t before = ws.adv_before[j];
    if (now <= before) continue;
    for (count_t g = 0; g < now - before; ++g) {
      ws.nodes[ws.adv_victims[cursor++]] = j;
    }
  }
  PLURALITY_CHECK(cursor == total_victims);
}

TrialSummary run_graph_trials(const Dynamics& dynamics, const AgentGraph& graph,
                              const ConfigFactory& factory,
                              const CommonTrialOptions& options) {
  PLURALITY_REQUIRE(options.trials > 0, "run_graph_trials: need at least one trial");
  PLURALITY_REQUIRE(graph.is_complete() || graph.min_degree() >= 1,
                    "run_graph_trials: isolated vertices cannot sample");
  PLURALITY_REQUIRE(options.backend == Backend::CountBased && !options.stop_predicate,
                    "run_graph_trials: backend/stop_predicate are count-path options; "
                    "leave them defaulted for graph trials");

  const rng::StreamFactory streams(options.seed);
  TrialOutcomes outcomes(options.trials, options.exact_round_samples);
  const StepTuning tuning{options.tile_nodes, options.prefetch_distance};

  const auto body = [&](std::uint64_t trial, GraphStepWorkspace& ws) {
    // Trial stream family: `gen` feeds the start factory and the adversary;
    // the child factory feeds layout + stepping (so wiring an adversary in
    // never perturbs the protocol's own randomness).
    rng::Xoshiro256pp gen = streams.stream(trial);
    const rng::StreamFactory trial_streams = streams.child(trial);

    Configuration config = factory(trial, gen);
    PLURALITY_REQUIRE(config.n() == graph.num_nodes(),
                      "run_graph_trials: factory configuration has "
                          << config.n() << " nodes but graph has "
                          << graph.num_nodes());
    const state_t num_colors = dynamics.num_colors(config.k());
    const state_t initial_plurality = config.plurality(num_colors);

    ws.bytes_only = graph_bytes_only_auto(config.n(), config.k(),
                                          options.adversary != nullptr);
    ws.prepare(config.n(), config.k());
    load_nodes(config, options.shuffle_layout, trial_streams, ws, &graph);

    RoundObserver* const observer = options.observer;
    if (observer != nullptr) observer->begin_trial(trial, config, num_colors);

    StopReason reason = StopReason::RoundLimit;
    round_t rounds = 0;
    bool won = false;
    if (config.color_consensus(num_colors)) {
      reason = StopReason::ColorConsensus;
      won = initial_plurality == config.plurality(num_colors);
    } else {
      for (round_t r = 1; r <= options.max_rounds; ++r) {
        if (options.cancel != nullptr && options.cancel->stop_requested()) {
          // Cooperative between-rounds stop; the driver throws after the
          // parallel region joins, so this trial's record is discarded.
          reason = StopReason::Cancelled;
          rounds = r - 1;
          break;
        }
        step_graph(dynamics, graph, config, trial_streams, r - 1, ws, options.mode,
                   tuning);
        if (options.adversary != nullptr) {
          corrupt_nodes(*options.adversary, config, num_colors, r, gen, ws);
        }
        if (observer != nullptr) observer->observe_round(trial, r, config, num_colors);
        if (config.color_consensus(num_colors)) {
          reason = StopReason::ColorConsensus;
          rounds = r;
          won = config.plurality(num_colors) == initial_plurality;
          break;
        }
        if (config.monochromatic()) {
          // All mass in one non-color state (e.g. all-undecided).
          reason = StopReason::NonColorAbsorbed;
          rounds = r;
          break;
        }
      }
    }
    if (observer != nullptr) {
      observer->end_trial(trial, reason,
                          reason == StopReason::RoundLimit ? options.max_rounds : rounds,
                          config, num_colors);
    }
    outcomes.record(trial, reason, won, rounds);
  };

#if defined(PLURALITY_HAVE_OPENMP)
  if (options.parallel) {
#pragma omp parallel
    {
      GraphStepWorkspace ws;
#pragma omp for schedule(dynamic)
      for (std::uint64_t trial = 0; trial < options.trials; ++trial) body(trial, ws);
    }
  } else {
    GraphStepWorkspace ws;
    for (std::uint64_t trial = 0; trial < options.trials; ++trial) body(trial, ws);
  }
#else
  GraphStepWorkspace ws;
  for (std::uint64_t trial = 0; trial < options.trials; ++trial) body(trial, ws);
#endif

  // Outside the OpenMP region, where throwing is safe: a fired token means
  // at least one trial stopped mid-run, so the whole summary is invalid.
  if (options.cancel != nullptr && options.cancel->stop_requested()) {
    throw CancelledError(options.cancel->reason());
  }

  return outcomes.summarize();
}

TrialSummary run_graph_trials(const Dynamics& dynamics, const AgentGraph& graph,
                              const Configuration& start,
                              const CommonTrialOptions& options) {
  return run_graph_trials(
      dynamics, graph,
      [&start](std::uint64_t, rng::Xoshiro256pp&) { return start; }, options);
}

}  // namespace plurality::graph
