// Implicit topologies: neighborhoods as pure functions of the node id.
//
// The CSR arena (agent_graph.hpp) caps the graph engine twice over: node
// ids must fit 32 bits, and the arena itself is O(arcs) bytes of RAM. But
// the paper grid's structured topologies — ring, torus, circulant
// d-regular lattice — and the gossip/uniform-pull model of the follow-up
// paper (arXiv:1407.2565) need no stored adjacency at all: neighbor j of
// node v is arithmetic on v. An ImplicitTopology descriptor carries that
// arithmetic; the stepping kernels (kernels.hpp strict, kernels_batched.hpp
// batched) call neighbor(v, idx) instead of gathering from the arena, so
// total simulation state collapses to the node-state arrays — at n = 10^9
// with byte-wide states that is ~2 GB instead of a ~16 GB arena plus
// 10 GB of workspace.
//
// THE NEIGHBOR ORDER IS A BITWISE CONTRACT: for every family with an arena
// twin (ring, torus, lattice), neighbor(v, idx) returns EXACTLY the id at
// AgentGraph::neighbors_of(v)[idx] of the arena-backed build — the order
// in which Topology::from_edges encounters v's incident edges in the
// builder's emission sequence (builders.cpp). The strict and batched
// samplers draw the same index either way, so implicit and arena runs are
// bitwise-identical at any n where both exist
// (tests/graph/test_implicit_topology.cpp pins this per family and mode).
#pragma once

#include <cstdint>

#include "support/types.hpp"

namespace plurality::graph {

/// Auto-resolution threshold of the scenario layer's topology_backend:
/// implicit-capable topologies at n >= this compile to the implicit path
/// (no arena); below it the arena build is cheap and keeps the fused SIMD
/// regular-CSR kernels in play.
inline constexpr count_t kImplicitAutoThreshold = count_t{1} << 22;

struct ImplicitTopology {
  enum class Family : std::uint8_t {
    None = 0,  ///< arena-backed graph (no implicit descriptor)
    Gossip,    ///< uniform pull over the whole population, self included
    Ring,      ///< cycle C_n
    Torus,     ///< rows x cols wrap-around grid (4-regular)
    Lattice,   ///< circulant: v ~ v +- j (mod n) for j = 1..degree/2
  };

  Family family = Family::None;
  std::uint64_t n = 0;
  std::uint64_t rows = 0;  ///< Torus only
  std::uint64_t cols = 0;  ///< Torus only
  std::uint64_t half = 0;  ///< Lattice only: degree / 2
  /// Per-node sampling bound: n for Gossip (self included — the paper's
  /// clique model), 2 / 4 / d otherwise.
  std::uint64_t degree = 0;

  [[nodiscard]] bool implicit() const { return family != Family::None; }

  /// Neighbor `idx` (0 <= idx < degree) of node v, in the arena twin's CSR
  /// order (see the header comment). Gossip has no arena twin; its
  /// "adjacency" is the identity over [0, n).
  [[nodiscard]] std::uint64_t neighbor(std::uint64_t v, std::uint64_t idx) const {
    switch (family) {
      case Family::Gossip:
        return idx;
      case Family::Ring:
        // cycle(n) emits edge (v, v+1 mod n) in v order, so node 0 meets
        // edge (0,1) before (n-1,0) and every other node meets its
        // predecessor edge first.
        if (v == 0) return idx == 0 ? 1 : n - 1;
        return idx == 0 ? v - 1 : (v + 1 == n ? 0 : v + 1);
      case Family::Torus: {
        // torus(rows, cols) emits, per cell in row-major order, the right
        // edge then the down edge. A node's incident-edge order (hence its
        // CSR row order) therefore depends on which of its up/left
        // neighbors wrapped past it in the emission sequence.
        const std::uint64_t r = v / cols;
        const std::uint64_t c = v % cols;
        const std::uint64_t up = (r == 0 ? rows - 1 : r - 1) * cols + c;
        const std::uint64_t down = (r + 1 == rows ? 0 : r + 1) * cols + c;
        const std::uint64_t left = r * cols + (c == 0 ? cols - 1 : c - 1);
        const std::uint64_t right = r * cols + (c + 1 == cols ? 0 : c + 1);
        if (r > 0 && c > 0) {
          const std::uint64_t order[4] = {up, left, right, down};
          return order[idx];
        }
        if (r > 0) {  // c == 0: the left edge is emitted later in this row
          const std::uint64_t order[4] = {up, right, down, left};
          return order[idx];
        }
        if (c > 0) {  // r == 0: the up edge is emitted in the last row
          const std::uint64_t order[4] = {left, right, down, up};
          return order[idx];
        }
        const std::uint64_t order[4] = {right, down, left, up};
        return order[idx];
      }
      case Family::Lattice: {
        // circulant_lattice(n, d) emits edges (v, v+j mod n) with j as the
        // outer loop: ring j contributes the pair (v-j, v+j) to node v,
        // predecessor edge first unless it wrapped (v < j).
        const std::uint64_t j = idx / 2 + 1;
        if (v >= j) {
          if ((idx & 1) == 0) return v - j;
          const std::uint64_t s = v + j;
          return s >= n ? s - n : s;
        }
        return (idx & 1) == 0 ? v + j : v + n - j;
      }
      case Family::None:
        break;
    }
    return 0;  // unreachable for a well-formed descriptor
  }

  static ImplicitTopology gossip(std::uint64_t n);
  static ImplicitTopology ring(std::uint64_t n);
  static ImplicitTopology torus(std::uint64_t rows, std::uint64_t cols);
  /// Circulant lattice on n nodes, even degree d with 2 <= d <= n - 2.
  static ImplicitTopology lattice(std::uint64_t n, std::uint64_t d);
};

}  // namespace plurality::graph
