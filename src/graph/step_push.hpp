// The push-mode (EngineMode::Push) graph stepper — the scatter formulation
// of the batched pull law for arity-1 dynamics.
//
// A pull round of an arity-1 dynamics (voter, undecided-state) makes one
// random gather per node: v adopts f(state[u]) for a u sampled from v's
// neighborhood. At large n those gathers are the engine's wall — every load
// misses cache (docs/performance.md). The push stepper executes the SAME
// law source-major instead of destination-major:
//
//   A. sample: every node v draws its source u with the EXACT batched
//      Philox addressing (word w(0, v), scale_word against v's degree,
//      v's neighbor row) — a sequential streaming pass;
//   B. bin: (u, v) pairs are placed into buckets of kPushBucketNodes
//      source ids at deterministic cursors — two more streaming passes
//      (histogram + placement);
//   C. scatter-apply: per bucket, read state[u] — now confined to one
//      L2-resident window of the state array (1 MiB of byte mirror) — and
//      write v's next state. Each v appears exactly once, so the writes
//      are race-free.
//
// The random working set per phase-C bin is a cache-resident window instead
// of the whole array: gathers that missed DRAM now hit L2. The price is
// streaming 12 bytes/node of pair buffers (ws.push_src + ws.push_pairs),
// profitable exactly when n is far beyond cache — the regime the ROADMAP's
// open item names.
//
// BITWISE CONTRACT: phase A consumes word-for-word the batched pipeline's
// randomness (same key, same round domain, same w(0, i) = i addressing —
// orig id on relabeled graphs — same scale_word), and phase C applies the
// same rule arithmetic. A push round therefore produces BIT-IDENTICAL
// states, counts, and summaries to the batched round — pinned by
// tests/graph/test_layout.cpp's push-vs-batched battery (the
// golden-trajectory machinery's cross-engine analogue). Thread-count
// invariance holds by the fixed chunk/bucket grids and deterministic
// placement cursors (TSan-covered in CI).
#pragma once

#include "core/configuration.hpp"
#include "core/dynamics.hpp"
#include "graph/graph_workspace.hpp"
#include "rng/stream.hpp"
#include "support/types.hpp"

namespace plurality::graph {

class AgentGraph;

/// True when `dynamics` has a push kernel: the arity-1 laws (voter,
/// undecided-state). Arity >= 2 rules need all of a node's samples
/// together, which the source-major execution order cannot provide.
[[nodiscard]] bool push_has_kernel(const Dynamics& dynamics);

/// One synchronous push round. Same externally observable contract as
/// step_graph_batched — and bitwise-identical results to it (see the
/// header comment). Requires push_has_kernel(dynamics) and n < 2^32 (ids
/// are packed two to a word in the pair buffer).
void step_graph_push(const Dynamics& dynamics, const AgentGraph& graph,
                     Configuration& config, const rng::StreamFactory& streams,
                     round_t round, GraphStepWorkspace& ws,
                     const StepTuning& tuning = {});

}  // namespace plurality::graph
