// Fused per-dynamics stepping kernels for the CSR graph engine.
//
// The pre-refactor per-node stepper pays, for every node: an out-of-line
// Topology::neighbors() call (two checked branches + span construction),
// one out-of-line rng::uniform_below() call per sample, and a virtual
// Dynamics::apply_rule() dispatch. At n = 10^5..10^7 nodes per round those
// call boundaries dominate the actual rule work. The kernels here fuse
// sampling + rule into one inlined loop over raw CSR pointers.
//
// THE CONTRACT IS BITWISE: every kernel must consume the generator exactly
// like the frozen reference path (arity sequential uniform_below draws,
// then any rule-internal draws), and produce the same states. The golden
// trajectory suite (tests/graph/test_graph_determinism.cpp) pins new vs
// reference round by round, and the chi-square battery
// (tests/graph/test_graph_kernels.cpp) pins each kernel's per-node adoption
// frequencies to the exact dynamics law. Any RNG reordering fails loudly.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <type_traits>

#include "core/dynamics.hpp"
#include "graph/implicit_topology.hpp"
#include "rng/xoshiro.hpp"
#include "support/types.hpp"

namespace plurality::graph::kernels {

/// Inline clone of rng::uniform_below — Lemire's multiply-shift with
/// rejection, bit-for-bit the published algorithm (same draws, same
/// outputs; pinned against rng::uniform_below by test). Duplicated here so
/// the per-sample draw inlines into the kernel loop instead of crossing a
/// translation unit per sample; `bound` is a positive node/neighbor count
/// by construction.
inline std::uint64_t uniform_below(rng::Xoshiro256pp& gen, std::uint64_t bound) {
  std::uint64_t x = gen();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) [[unlikely]] {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = gen();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

// --- Samplers: where one node's h draws come from. ---------------------

/// Clique (implicit complete graph): uniform over all n nodes, self
/// included — the paper's sampling model. TNode is the storage width of
/// the sampled-state array: state_t, or a narrower per-round shadow (the
/// engine keeps a uint8_t mirror when the state space fits one byte so the
/// random sample loads stay L1-resident); the VALUES are identical either
/// way, so the storage width never affects results.
/// Every sampler also exposes addr(gen): draw the SAME index the call form
/// would, but return the gather ADDRESS instead of loading it. The windowed
/// drivers below use it to split "draw + prefetch" from "load + rule" —
/// operator() is defined as *addr(gen), so the two forms cannot drift.
template <typename TNode>
struct CompleteSampler {
  const TNode* nodes;
  std::uint64_t n;
  const TNode* addr(rng::Xoshiro256pp& gen) const {
    return nodes + uniform_below(gen, n);
  }
  state_t operator()(rng::Xoshiro256pp& gen) const { return *addr(gen); }
};

/// Explicit CSR neighborhood: uniform with repetition over one node's
/// packed neighbor list.
template <typename TNode>
struct CsrSampler {
  const TNode* nodes;
  const std::uint32_t* neighbors;
  std::uint64_t degree;
  const TNode* addr(rng::Xoshiro256pp& gen) const {
    return nodes + neighbors[uniform_below(gen, degree)];
  }
  state_t operator()(rng::Xoshiro256pp& gen) const { return *addr(gen); }
};

/// Implicit neighborhood: the neighbor id is arithmetic on the node id
/// (implicit_topology.hpp) instead of an arena load. Draws the SAME
/// uniform_below(gen, degree) index the CSR sampler would and
/// ImplicitTopology::neighbor reproduces the arena twin's row order, so
/// runs are bitwise-identical to the arena-backed graph.
template <typename TNode>
struct ImplicitSampler {
  const TNode* nodes;
  const ImplicitTopology* topo;
  std::uint64_t v;
  const TNode* addr(rng::Xoshiro256pp& gen) const {
    return nodes + topo->neighbor(v, uniform_below(gen, topo->degree));
  }
  state_t operator()(rng::Xoshiro256pp& gen) const { return *addr(gen); }
};

// --- Rules: inlined clones of each Dynamics::apply_rule. ----------------
// Signature: (own state, state-space size, sampler, gen) -> next state.
// Sample draws are sequenced exactly as the reference path's sample loop.

/// Branch-free select: `take_first ? x : y` as pure ALU ops. The rules'
/// outcomes flip on random sample equalities (a ~50/50 coin each node), so
/// a conditional branch here mispredicts constantly — measured at ~8 ns
/// per node on the majority kernel, more than the three RNG draws cost
/// together. A ternary is NOT equivalent: compilers routinely emit it as a
/// branch.
inline state_t select(bool take_first, state_t x, state_t y) {
  return y ^ ((y ^ x) & (state_t{0} - static_cast<state_t>(take_first)));
}

// Rules whose post-gather work consumes NO generator randomness declare
// kArity + combine(own, states, samples): combine is the whole rule once
// the kArity samples are in hand, so the windowed drivers below can run
// all of a window's draws first (prefetching each gather address) and the
// loads + rule after — same draw order, same values, bitwise-identical.
// Rules with mid-node draws (TwoChoices' tie coin, HPlurality's tie pick,
// GenericRule's virtual body) stay call-form-only and take the unwindowed
// per-node loop.

/// ThreeMajority::apply_rule — majority of three, first on all-distinct.
/// Collapsed to one select: the rule returns b exactly when b == c != a;
/// every other case returns a.
struct MajorityRule {
  static constexpr unsigned kArity = 3;
  static state_t combine(state_t, state_t, const state_t* s) {
    return select((s[1] == s[2]) & (s[0] != s[1]), s[1], s[0]);
  }
  template <class Sampler>
  state_t operator()(state_t own, state_t states, const Sampler& sample,
                     rng::Xoshiro256pp& gen) const {
    state_t s[kArity];
    s[0] = sample(gen);
    s[1] = sample(gen);
    s[2] = sample(gen);
    return combine(own, states, s);
  }
};

/// Voter::apply_rule — adopt the single sample.
struct VoterRule {
  static constexpr unsigned kArity = 1;
  static state_t combine(state_t, state_t, const state_t* s) { return s[0]; }
  template <class Sampler>
  state_t operator()(state_t, state_t, const Sampler& sample,
                     rng::Xoshiro256pp& gen) const {
    return sample(gen);
  }
};

/// TwoChoices::apply_rule — two samples, uniform tie-break. The tie draw is
/// rng::bernoulli(gen, 0.5) inlined (one next_double comparison).
struct TwoChoicesRule {
  template <class Sampler>
  state_t operator()(state_t, state_t, const Sampler& sample,
                     rng::Xoshiro256pp& gen) const {
    const state_t a = sample(gen);
    const state_t b = sample(gen);
    if (a == b) return a;
    return gen.next_double() < 0.5 ? a : b;
  }
};

/// UndecidedState::apply_rule — one sample; colored nodes back off on
/// conflict, undecided nodes adopt what they see. Branch-free selects.
struct UndecidedRule {
  static constexpr unsigned kArity = 1;
  static state_t combine(state_t own, state_t states, const state_t* s) {
    const state_t undecided = states - 1;
    const state_t seen = s[0];
    const state_t colored_next =
        select((seen == own) | (seen == undecided), own, undecided);
    return select(own == undecided, seen, colored_next);
  }
  template <class Sampler>
  state_t operator()(state_t own, state_t states, const Sampler& sample,
                     rng::Xoshiro256pp& gen) const {
    const state_t s[1] = {sample(gen)};
    return combine(own, states, s);
  }
};

/// Branch-free median: clamp c into [min(a,b), max(a,b)].
inline state_t median_of_three(state_t a, state_t b, state_t c) {
  const state_t lo = select(a < b, a, b);
  const state_t hi = select(a < b, b, a);
  const state_t clamped = select(c < lo, lo, c);
  return select(clamped > hi, hi, clamped);
}

/// MedianDynamics::apply_rule — median of three samples.
struct MedianRule {
  static constexpr unsigned kArity = 3;
  static state_t combine(state_t, state_t, const state_t* s) {
    return median_of_three(s[0], s[1], s[2]);
  }
  template <class Sampler>
  state_t operator()(state_t own, state_t states, const Sampler& sample,
                     rng::Xoshiro256pp& gen) const {
    state_t s[kArity];
    s[0] = sample(gen);
    s[1] = sample(gen);
    s[2] = sample(gen);
    return combine(own, states, s);
  }
};

/// MedianOwnTwo::apply_rule — median of own value and two samples.
struct MedianOwnTwoRule {
  static constexpr unsigned kArity = 2;
  static state_t combine(state_t own, state_t, const state_t* s) {
    return median_of_three(own, s[0], s[1]);
  }
  template <class Sampler>
  state_t operator()(state_t own, state_t states, const Sampler& sample,
                     rng::Xoshiro256pp& gen) const {
    state_t s[kArity];
    s[0] = sample(gen);
    s[1] = sample(gen);
    return combine(own, states, s);
  }
};

/// HPlurality::apply_rule — h samples, plurality with uniform tie-break
/// (the tie draw is uniform_below over the tied colors, consumed only when
/// there IS a tie — identical to the virtual rule).
struct HPluralityRule {
  unsigned h;
  template <class Sampler>
  state_t operator()(state_t, state_t, const Sampler& sample,
                     rng::Xoshiro256pp& gen) const {
    state_t distinct[64];
    unsigned counts[64];
    unsigned num_distinct = 0;
    for (unsigned s = 0; s < h; ++s) {
      const state_t v = sample(gen);
      bool found = false;
      for (unsigned i = 0; i < num_distinct; ++i) {
        if (distinct[i] == v) {
          ++counts[i];
          found = true;
          break;
        }
      }
      if (!found) {
        distinct[num_distinct] = v;
        counts[num_distinct] = 1;
        ++num_distinct;
      }
    }
    unsigned best = 0;
    for (unsigned i = 0; i < num_distinct; ++i) {
      if (counts[i] > best) best = counts[i];
    }
    unsigned ties = 0;
    for (unsigned i = 0; i < num_distinct; ++i) ties += (counts[i] == best);
    std::uint64_t pick = ties == 1 ? 0 : uniform_below(gen, ties);
    for (unsigned i = 0; i < num_distinct; ++i) {
      if (counts[i] == best) {
        if (pick == 0) return distinct[i];
        --pick;
      }
    }
    return distinct[0];  // unreachable: some color attains `best`
  }
};

/// Fallback for dynamics without a fused kernel (rule tables, future
/// protocols): sample into a stack buffer, then one virtual apply_rule —
/// the reference path's per-node shape minus the allocations and the
/// out-of-line sampling.
struct GenericRule {
  const Dynamics* dynamics;
  unsigned arity;
  template <class Sampler>
  state_t operator()(state_t own, state_t states, const Sampler& sample,
                     rng::Xoshiro256pp& gen) const {
    state_t buffer[64];
    for (unsigned s = 0; s < arity; ++s) buffer[s] = sample(gen);
    return dynamics->apply_rule(own, std::span<const state_t>(buffer, arity),
                                states, gen);
  }
};

// --- Chunk drivers. -----------------------------------------------------

/// Publishes one node's next state: the state_t scratch (null in the
/// bytes-only memory mode, where the byte mirror is the whole state); the
/// byte mirror's double buffer too when the sweep runs on the narrow
/// mirror (next round then reuses it with no refresh pass).
template <typename TNode>
inline void publish(state_t* out, TNode* mirror_out, count_t* local, std::size_t i,
                    state_t next) {
  if (out != nullptr) out[i] = next;
  if constexpr (!std::is_same_v<TNode, state_t>) {
    mirror_out[i] = static_cast<TNode>(next);
  }
  ++local[next];
}

/// One node of an implicit-complete chunk.
template <class Rule, typename TNode>
inline void step_one_complete(const Rule& rule, const TNode* nodes, state_t* out,
                              TNode* mirror_out, count_t* local, std::size_t i,
                              std::uint64_t n, state_t states, rng::Xoshiro256pp& gen) {
  const CompleteSampler<TNode> sample{nodes, n};
  publish(out, mirror_out, local, i, rule(nodes[i], states, sample, gen));
}

/// One node of an explicit-CSR chunk.
template <class Rule, typename TNode>
inline void step_one_csr(const Rule& rule, const TNode* nodes, state_t* out,
                         TNode* mirror_out, count_t* local, std::size_t i,
                         const std::uint64_t* offsets, const std::uint32_t* neighbors,
                         state_t states, rng::Xoshiro256pp& gen) {
  const std::uint64_t off = offsets[i];
  const CsrSampler<TNode> sample{nodes, neighbors + off, offsets[i + 1] - off};
  publish(out, mirror_out, local, i, rule(nodes[i], states, sample, gen));
}

/// Detects the windowable-rule contract (kArity + combine, no post-gather
/// randomness) at compile time.
template <class Rule>
inline constexpr bool is_windowable_rule = requires(const state_t* s) {
  { Rule::kArity } -> std::convertible_to<unsigned>;
  { Rule::combine(state_t{}, state_t{}, s) } -> std::same_as<state_t>;
};

/// Largest per-window node count of the strict prefetch driver. The window
/// lives in a stack address buffer (kMaxPrefetchWindow * kArity pointers,
/// 1.5 KiB at arity 3); prefetch distances beyond it clamp here — by then
/// every miss in the window is already in flight, so more buys nothing.
inline constexpr unsigned kMaxPrefetchWindow = 64;

/// Shared windowed chunk body: per window of up to `prefetch` nodes, draw
/// all gather addresses in the exact legacy order (issuing a software
/// prefetch per address), then load + combine + publish. The draw sequence
/// against `gen` is untouched — uniform_below calls in the same order with
/// the same bounds — and combine IS the rule's post-gather arithmetic, so
/// results are bitwise-identical to the unwindowed loop for every
/// windowable rule (pinned by the golden-trajectory suite, which runs at
/// the default prefetch distance, and by test_layout's prefetch=0 cross).
/// `sampler_for(i)` yields the node's sampler (any of the three above).
template <class Rule, typename TNode, class SamplerFor>
inline void run_chunk_nodes(const Rule& rule, const TNode* __restrict nodes,
                            state_t* __restrict out, TNode* __restrict mirror_out,
                            count_t* __restrict local, std::size_t lo, std::size_t hi,
                            state_t states, rng::Xoshiro256pp& gen, unsigned prefetch,
                            SamplerFor&& sampler_for) {
  if constexpr (is_windowable_rule<Rule>) {
    if (prefetch > 0) {
      const std::size_t window = std::min(prefetch, kMaxPrefetchWindow);
      const TNode* addr[kMaxPrefetchWindow * Rule::kArity];
      for (std::size_t base = lo; base < hi; base += window) {
        const std::size_t nb = std::min(window, hi - base);
        for (std::size_t i = 0; i < nb; ++i) {
          const auto sample = sampler_for(base + i);
          for (unsigned a = 0; a < Rule::kArity; ++a) {
            const TNode* p = sample.addr(gen);
            addr[i * Rule::kArity + a] = p;
            __builtin_prefetch(p, 0, 3);
          }
        }
        for (std::size_t i = 0; i < nb; ++i) {
          state_t s[Rule::kArity];
          for (unsigned a = 0; a < Rule::kArity; ++a) {
            s[a] = static_cast<state_t>(*addr[i * Rule::kArity + a]);
          }
          publish(out, mirror_out, local, base + i,
                  Rule::combine(static_cast<state_t>(nodes[base + i]), states, s));
        }
      }
      return;
    }
  }
  for (std::size_t i = lo; i < hi; ++i) {
    const auto sample = sampler_for(i);
    publish(out, mirror_out, local, i,
            rule(static_cast<state_t>(nodes[i]), states, sample, gen));
  }
}

/// Steps nodes [lo, hi) of the implicit complete graph.
template <class Rule, typename TNode>
inline void run_chunk_complete(const Rule& rule, const TNode* __restrict nodes,
                               state_t* __restrict out, TNode* __restrict mirror_out,
                               count_t* __restrict local, std::size_t lo,
                               std::size_t hi, std::uint64_t n, state_t states,
                               rng::Xoshiro256pp& gen, unsigned prefetch = 0) {
  run_chunk_nodes(rule, nodes, out, mirror_out, local, lo, hi, states, gen, prefetch,
                  [&](std::size_t) { return CompleteSampler<TNode>{nodes, n}; });
}

/// Steps nodes [lo, hi) of an explicit CSR graph.
template <class Rule, typename TNode>
inline void run_chunk_csr(const Rule& rule, const TNode* __restrict nodes,
                          state_t* __restrict out, TNode* __restrict mirror_out,
                          count_t* __restrict local, std::size_t lo, std::size_t hi,
                          const std::uint64_t* __restrict offsets,
                          const std::uint32_t* __restrict neighbors, state_t states,
                          rng::Xoshiro256pp& gen, unsigned prefetch = 0) {
  run_chunk_nodes(rule, nodes, out, mirror_out, local, lo, hi, states, gen, prefetch,
                  [&](std::size_t i) {
                    const std::uint64_t off = offsets[i];
                    return CsrSampler<TNode>{nodes, neighbors + off,
                                             offsets[i + 1] - off};
                  });
}

/// Steps nodes [lo, hi) of an implicit topology (ring/torus/lattice
/// descriptors): neighbor ids computed from the node id, no arena at all.
/// Bitwise-equal to run_chunk_csr/run_chunk_regular on the arena twin
/// (same index draws, same neighbor order — see implicit_topology.hpp).
template <class Rule, typename TNode>
inline void run_chunk_implicit(const Rule& rule, const TNode* __restrict nodes,
                               state_t* __restrict out, TNode* __restrict mirror_out,
                               count_t* __restrict local, std::size_t lo,
                               std::size_t hi, const ImplicitTopology& topo,
                               state_t states, rng::Xoshiro256pp& gen,
                               unsigned prefetch = 0) {
  run_chunk_nodes(rule, nodes, out, mirror_out, local, lo, hi, states, gen, prefetch,
                  [&](std::size_t i) { return ImplicitSampler<TNode>{nodes, &topo, i}; });
}

/// Steps nodes [lo, hi) of a degree-uniform CSR graph (cycle, torus,
/// random-regular — the common sparse benchmarks): node i's neighbor row
/// starts at i*degree, so the offset loads disappear and the sample bound
/// is loop-invariant. Produces exactly what run_chunk_csr would (offsets
/// of a regular graph ARE i*degree); only the address arithmetic changes.
template <class Rule, typename TNode>
inline void run_chunk_regular(const Rule& rule, const TNode* __restrict nodes,
                              state_t* __restrict out, TNode* __restrict mirror_out,
                              count_t* __restrict local, std::size_t lo, std::size_t hi,
                              const std::uint32_t* __restrict neighbors,
                              std::uint64_t degree, state_t states,
                              rng::Xoshiro256pp& gen, unsigned prefetch = 0) {
  run_chunk_nodes(rule, nodes, out, mirror_out, local, lo, hi, states, gen, prefetch,
                  [&](std::size_t i) {
                    return CsrSampler<TNode>{nodes, neighbors + i * degree, degree};
                  });
}

}  // namespace plurality::graph::kernels
