// AVX2 kernel table of the batched pipeline — the half-width port of
// batched_simd_avx512.cpp (8 nodes per step instead of 16; blends replace
// mask registers, byte-shuffles replace vpmovdb). Same bitwise contract:
// identical Philox words, identical bounded-bias conversion, identical rule
// algebra as the scalar pipeline. Selected by simd::detect() on hosts with
// AVX2 but not the AVX-512 subset we target.
#include "graph/batched_simd.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include "graph/batched_simd_common.hpp"
#include "graph/kernels_batched.hpp"

namespace plurality::graph::simd {
namespace {

namespace kb = graph::kernels_batched;
constexpr unsigned kR = kb::kSamplerRounds;

constexpr std::uint64_t kM0 = 0xD2511F53ULL;
constexpr std::uint64_t kM1 = 0xCD9E8D57ULL;
constexpr std::uint32_t kW0 = 0x9E3779B9u;
constexpr std::uint32_t kW1 = 0xBB67AE85u;

struct Pair {
  __m256i a;
  __m256i b;
};

/// kR rounds over blocks blk..blk+3 (4 u64 lanes; A = c1:c0, B = c3:c2).
inline Pair philox_pair(std::uint64_t blk, std::uint64_t domain, rng::Philox4x32::Key key) {
  const __m256i m0 = _mm256_set1_epi64x(static_cast<long long>(kM0));
  const __m256i m1 = _mm256_set1_epi64x(static_cast<long long>(kM1));
  __m256i a = _mm256_add_epi64(_mm256_set1_epi64x(static_cast<long long>(blk)),
                               _mm256_setr_epi64x(0, 1, 2, 3));
  __m256i b = _mm256_set1_epi64x(static_cast<long long>(domain));
  std::uint32_t k0 = key.k0, k1 = key.k1;
  for (unsigned r = 0; r < kR; ++r) {
    const __m256i key0 = _mm256_set1_epi64x(static_cast<long long>(std::uint64_t{k0}));
    const __m256i key1 = _mm256_set1_epi64x(static_cast<long long>(std::uint64_t{k1}));
    const __m256i p0 = _mm256_mul_epu32(m0, a);
    const __m256i p1 = _mm256_mul_epu32(m1, b);
    const __m256i na = _mm256_or_si256(
        _mm256_slli_epi64(p1, 32),
        _mm256_xor_si256(_mm256_xor_si256(_mm256_srli_epi64(p1, 32),
                                          _mm256_srli_epi64(a, 32)),
                         key0));
    const __m256i nb = _mm256_or_si256(
        _mm256_slli_epi64(p0, 32),
        _mm256_xor_si256(_mm256_xor_si256(_mm256_srli_epi64(p0, 32),
                                          _mm256_srli_epi64(b, 32)),
                         key1));
    a = na;
    b = nb;
    k0 += kW0;
    k1 += kW1;
  }
  return Pair{a, b};
}

/// Pair -> stream-ordered words 2b..2b+3 and 2b+4..2b+7.
inline void emit_pair(const Pair& p, __m256i& words_lo, __m256i& words_hi) {
  const __m256i u0 = _mm256_unpacklo_epi64(p.a, p.b);  // A0 B0 | A2 B2
  const __m256i u1 = _mm256_unpackhi_epi64(p.a, p.b);  // A1 B1 | A3 B3
  words_lo = _mm256_permute2x128_si256(u0, u1, 0x20);  // A0 B0 A1 B1
  words_hi = _mm256_permute2x128_si256(u0, u1, 0x31);  // A2 B2 A3 B3
}

void fill_words_avx2(rng::Philox4x32::Key key, std::uint64_t domain,
                     std::uint64_t word_lo, std::size_t count, std::uint64_t* out) {
  std::size_t w = 0;
  if (count > 0 && (word_lo & 1) != 0) {
    out[w++] = rng::Philox4x32::word<kR>(key, domain, word_lo);
  }
  for (; w + 8 <= count; w += 8) {
    const Pair p = philox_pair((word_lo + w) >> 1, domain, key);
    __m256i lo, hi;
    emit_pair(p, lo, hi);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + w), lo);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + w + 4), hi);
  }
  if (w < count) {
    rng::Philox4x32::fill_words<kR>(key, domain, word_lo + w, count - w, out + w);
  }
}

/// (word * bound) >> 64 over two word ymms (8 u64 lanes) -> 8 u32 indices.
inline __m256i scale8(const __m256i& wlo, const __m256i& whi, const __m256i& bound64) {
  const auto high32 = [&](const __m256i& words) {
    const __m256i lo = _mm256_mul_epu32(words, bound64);
    const __m256i hi = _mm256_mul_epu32(_mm256_srli_epi64(words, 32), bound64);
    return _mm256_srli_epi64(_mm256_add_epi64(hi, _mm256_srli_epi64(lo, 32)), 32);
  };
  const __m256i idx0 = high32(wlo);  // dwords [x0 0 x1 0 | x2 0 x3 0]
  const __m256i idx1 = high32(whi);
  const __m256i pick = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
  const __m256i c0 = _mm256_permutevar8x32_epi32(idx0, pick);  // [x0..x3 | x0..x3]
  const __m256i c1 = _mm256_permutevar8x32_epi32(idx1, pick);
  return _mm256_permute2x128_si256(c0, c1, 0x20);  // [x0..x3 y0..y3]
}

inline __m256i plane_indices(const FusedArgs& args, unsigned s, std::uint64_t node0) {
  const std::uint64_t w0 = static_cast<std::uint64_t>(s) * args.n_pad + node0;
  const Pair p = philox_pair(w0 >> 1, args.round, args.key);
  __m256i wlo, whi;
  emit_pair(p, wlo, whi);
  return scale8(wlo, whi, _mm256_set1_epi64x(static_cast<long long>(args.bound)));
}

template <bool Complete>
inline __m256i gather8(const FusedArgs& args, const __m256i& idx, std::uint64_t node0) {
  __m256i target;
  if constexpr (Complete) {
    target = idx;
  } else {
    const __m256i lane = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    const __m256i node = _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(node0)), lane);
    const __m256i addr = _mm256_add_epi32(
        _mm256_mullo_epi32(node, _mm256_set1_epi32(static_cast<int>(args.bound))), idx);
    target = _mm256_i32gather_epi32(reinterpret_cast<const int*>(args.neighbors), addr, 4);
  }
  return _mm256_and_si256(
      _mm256_i32gather_epi32(reinterpret_cast<const int*>(args.nodes8), target, 1),
      _mm256_set1_epi32(0xff));
}

/// Packs 8 u32 lane values (< 256) into 8 bytes.
inline void store_bytes8(std::uint8_t* dst, const __m256i& v) {
  const __m256i shuf = _mm256_setr_epi8(0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1,
                                        -1, -1, -1, 0, 4, 8, 12, -1, -1, -1, -1, -1, -1,
                                        -1, -1, -1, -1, -1, -1);
  const __m256i packed = _mm256_shuffle_epi8(v, shuf);
  const std::uint32_t lo =
      static_cast<std::uint32_t>(_mm_cvtsi128_si32(_mm256_castsi256_si128(packed)));
  const std::uint32_t hi =
      static_cast<std::uint32_t>(_mm_cvtsi128_si32(_mm256_extracti128_si256(packed, 1)));
  std::uint64_t out = static_cast<std::uint64_t>(lo) | (static_cast<std::uint64_t>(hi) << 32);
  __builtin_memcpy(dst, &out, 8);
}

/// Branch-free select in ymm lanes: mask ? x : y with full-lane masks.
inline __m256i blend_mask(const __m256i& mask, const __m256i& x, const __m256i& y) {
  return _mm256_blendv_epi8(y, x, mask);
}

template <class Tag, bool Complete>
void fused_kernel(const FusedArgs& args) {
  std::uint64_t i = args.base;
  const std::uint64_t end = args.base + args.count;
  while (i < end && (i & 7) != 0) fused_scalar_node<Tag>(args, i++);
  for (; i + 8 <= end; i += 8) {
    __m256i next;
    if constexpr (std::is_same_v<Tag, MajorityTag>) {
      const __m256i a = gather8<Complete>(args, plane_indices(args, 0, i), i);
      const __m256i b = gather8<Complete>(args, plane_indices(args, 1, i), i);
      const __m256i c = gather8<Complete>(args, plane_indices(args, 2, i), i);
      const __m256i take_b = _mm256_andnot_si256(_mm256_cmpeq_epi32(a, b),
                                                 _mm256_cmpeq_epi32(b, c));
      next = blend_mask(take_b, b, a);
    } else if constexpr (std::is_same_v<Tag, VoterTag>) {
      next = gather8<Complete>(args, plane_indices(args, 0, i), i);
    } else {
      const __m256i seen = gather8<Complete>(args, plane_indices(args, 0, i), i);
      const __m256i own = _mm256_cvtepu8_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(args.nodes8 + i)));
      const __m256i undecided = _mm256_set1_epi32(static_cast<int>(args.states - 1));
      const __m256i keep = _mm256_or_si256(_mm256_cmpeq_epi32(seen, own),
                                           _mm256_cmpeq_epi32(seen, undecided));
      const __m256i colored = blend_mask(keep, own, undecided);
      const __m256i isund = _mm256_cmpeq_epi32(own, undecided);
      next = blend_mask(isund, seen, colored);
    }
    if (args.out32 != nullptr) {  // absent in bytes-only mode
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(args.out32 + i), next);
    }
    store_bytes8(args.out8 + i, next);
  }
  while (i < end) fused_scalar_node<Tag>(args, i++);
}

void count_u8_avx2(const std::uint8_t* data, std::size_t lo, std::size_t hi, state_t k,
                   count_t* local) {
  for (state_t j = 0; j < k; ++j) {
    const __m256i needle = _mm256_set1_epi8(static_cast<char>(j));
    count_t c = 0;
    std::size_t i = lo;
    for (; i + 32 <= hi; i += 32) {
      const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
      c += static_cast<count_t>(__builtin_popcount(static_cast<std::uint32_t>(
          _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, needle)))));
    }
    for (; i < hi; ++i) c += (data[i] == static_cast<std::uint8_t>(j));
    local[j] += c;
  }
}

const Ops kAvx2Ops = {
    "avx2",
    &fill_words_avx2,
    &fused_kernel<MajorityTag, false>,
    &fused_kernel<VoterTag, false>,
    &fused_kernel<UndecidedTag, false>,
    &fused_kernel<MajorityTag, true>,
    &fused_kernel<VoterTag, true>,
    &fused_kernel<UndecidedTag, true>,
    &count_u8_avx2,
};

}  // namespace

const Ops* avx2_ops() { return &kAvx2Ops; }

}  // namespace plurality::graph::simd

#endif  // __AVX2__
