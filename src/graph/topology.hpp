// Sparse-topology substrate (extension beyond the paper's clique).
//
// The paper analyzes the clique; its related work ([1] Abdullah–Draief,
// [20] Peleg) and open questions concern general graphs. This module gives
// the same dynamics a neighbor-sampling semantics: each node draws its h
// samples uniformly (with repetition) from its own neighbor list instead of
// the whole population. The clique is represented implicitly (sampling
// uniform over [n], matching the core model exactly) so it costs no memory.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/types.hpp"

namespace plurality::graph {

/// Compressed-sparse-row undirected graph. For Kind::CompleteImplicit the
/// adjacency arrays are empty and sampling is uniform over all nodes
/// (including self, matching the paper's clique model).
class Topology {
 public:
  enum class Kind { CompleteImplicit, Explicit };

  /// Implicit complete graph on n nodes.
  static Topology complete(count_t n);

  /// Explicit graph from an edge list (undirected; both directions stored).
  /// Self-loops and parallel edges are allowed (sampling semantics).
  static Topology from_edges(count_t n,
                             std::span<const std::pair<count_t, count_t>> edges);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] count_t num_nodes() const { return n_; }

  /// Number of stored directed arcs (2x undirected edge count).
  [[nodiscard]] std::uint64_t num_arcs() const { return adjacency_.size(); }

  [[nodiscard]] count_t degree(count_t v) const;

  [[nodiscard]] std::span<const count_t> neighbors(count_t v) const;

  /// Min/max degree over all nodes (0 for implicit complete: see degree()).
  [[nodiscard]] count_t min_degree() const;
  [[nodiscard]] count_t max_degree() const;

  /// True if the graph is connected (implicit complete is always connected;
  /// BFS otherwise). Isolated vertices make it disconnected.
  [[nodiscard]] bool connected() const;

 private:
  Topology(Kind kind, count_t n) : kind_(kind), n_(n) {}

  Kind kind_;
  count_t n_;
  std::vector<std::uint64_t> offsets_;  // size n+1 for Explicit
  std::vector<count_t> adjacency_;
};

}  // namespace plurality::graph
