// Graph relabeling layouts — the locality engine's build-time pass.
//
// The gather working set of a stepping round is the span of node ids a
// node's samples touch. On the CSR engine that span is decided once, at
// graph build, by the node numbering: random constructions (configuration
// model, G(n,m)) hand out ids that scatter every neighborhood across the
// whole state array, so each of the ~arity gathers per node update is a
// cold random load (docs/performance.md measured ~0.45–0.7 ns each — the
// engine's wall). Relabeling the nodes BEFORE CSR packing shrinks that
// span:
//
//   * degree  — hubs first (degree descending, id ascending on ties): the
//     ids most often gathered land in one hot prefix of the state array.
//     The right default for skewed degree distributions (edge lists).
//   * rcm     — reverse Cuthill–McKee: BFS from a minimum-degree node per
//     component, neighbors visited in increasing-degree order, the whole
//     order reversed. The classic bandwidth-minimization heuristic; on
//     near-uniform random graphs (random-regular, ER/GNM) it converts
//     "anywhere in [0, n)" gathers into "within a band" gathers.
//   * hilbert — space-filling-curve order for grid arenas (torus): nodes
//     that are close on the grid get close ids, so the 4-neighborhood of a
//     row-major torus (spread over ~2*cols ids) collapses into a compact
//     2-D block. True Hilbert curve when the grid is a square power of
//     two, Morton (Z-order) sort otherwise.
//
// A permutation is expressed as new_of[orig] = new id. AgentGraph packs a
// relabeled CSR from (Topology, new_of) and REMEMBERS the inverse map, so
// both engines can address randomness by ORIGINAL id — that is what makes
// a relabeled run equal the original run mapped through the permutation
// (the permutation-equivariance contract, tests/graph/test_layout.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/topology.hpp"
#include "support/types.hpp"

namespace plurality::graph {

/// Build-time node relabeling applied before CSR packing (scenario spec
/// field `graph_layout`; "auto" resolves per topology family — see
/// resolve_auto_layout).
enum class GraphLayout : std::uint8_t { Identity, Degree, Rcm, Hilbert };

/// Parses "identity" / "degree" / "rcm" / "hilbert" ("auto" is a scenario-
/// layer concept and is rejected here). Throws CheckError on unknown names.
GraphLayout parse_graph_layout(const std::string& name);

/// The canonical lowercase name of a layout.
const char* graph_layout_name(GraphLayout layout);

/// The layout `graph_layout=auto` denotes for a topology spec string:
/// rcm for the random families (regular, er, gnm), degree for edge lists,
/// identity for everything with an implicit form (clique, gossip, ring,
/// torus, lattice — identity preserves the arena == implicit bitwise
/// contract and the implicit auto threshold).
GraphLayout resolve_auto_layout(const std::string& topology_spec);

/// Degree ordering: new id = rank under (degree descending, id ascending).
/// Returns new_of (size n).
std::vector<std::uint32_t> degree_permutation(const Topology& topo);

/// Reverse Cuthill–McKee: per component, BFS from a minimum-degree seed
/// with neighbors enqueued in (degree ascending, id ascending) order; the
/// concatenated visit order is reversed. Returns new_of (size n).
std::vector<std::uint32_t> rcm_permutation(const Topology& topo);

/// Space-filling-curve order of a rows x cols grid whose row-major cell
/// (r, c) has node id r*cols + c (the torus builder's numbering). Square
/// power-of-two grids follow the true Hilbert curve; everything else falls
/// back to Morton (Z-order) sort, which still blocks 2-D neighborhoods.
/// Returns new_of (size rows*cols).
std::vector<std::uint32_t> hilbert_permutation(count_t rows, count_t cols);

/// Bandwidth of the relabeled graph: max |new_of[u] - new_of[v]| over all
/// arcs. Pass an empty span for the identity labeling. The locality metric
/// the RCM unit test pins (lower = tighter gather bands).
std::uint64_t graph_bandwidth(const Topology& topo,
                              std::span<const std::uint32_t> new_of = {});

/// Mean |new_of[u] - new_of[v]| over all arcs (same conventions as
/// graph_bandwidth) — the average-case sibling of the max-based bandwidth,
/// used to quantify Hilbert's win on grids (where the max is pinned by the
/// wrap-around edges either way).
double average_edge_distance(const Topology& topo,
                             std::span<const std::uint32_t> new_of = {});

}  // namespace plurality::graph
