// Stage-split batched stepping kernels for the CSR graph engine
// (EngineMode::Batched).
//
// The strict kernels (kernels.hpp) interleave, per sample, one scalar
// xoshiro draw with a dependent neighbor gather — the hot loop is
// serialized on the generator's state chain. The batched pipeline removes
// that serialization by making randomness COUNTER-BASED and processing a
// tile of nodes in flat passes over workspace arenas:
//
//   pass 1 (generate): block-fill the tile's Philox words — every word is
//     an independent function of (key, round, word index), so the loop has
//     no loop-carried dependency and vectorizes;
//   pass 2 (index): convert words to neighbor indices with the branch-free
//     bounded-bias Lemire high-multiply (no rejection loop — see
//     scale_word below for the documented bias bound);
//   pass 3 (gather): pull the sampled states out of the node array
//     (byte mirror when k <= 256), with software prefetch ahead of the
//     random loads;
//   pass 4 (apply): the same arithmetic mask-select rules as the strict
//     kernels, now reading pre-gathered samples — a flat loop with no
//     RNG calls at all.
//
// step_batched.cpp drives these passes (and supplies fused SIMD variants
// of passes 1–3 for the hottest rule/topology combinations — bitwise
// identical to the scalar passes here, pinned by test).
//
// RANDOMNESS ADDRESSING (the batched-mode contract, pinned by the
// batch-size/thread-count invariance tests):
//
//   With n_pad = n rounded up to a multiple of 64, sample s of node i in
//   round r reads u64 word  w(s, i) = s * n_pad + i  of the Philox stream
//   (rng/philox.hpp word indexing) keyed by the trial seed with the round
//   number as the counter domain. Tie-break word t of node i reads
//   w(arity + t, i). Every node therefore owns an order-free stream slot —
//   results cannot depend on chunking, tiling, or thread count.
//
// Distribution contract: Batched is equivalent to Strict IN DISTRIBUTION,
// not bitwise (different generator, rejection-free index conversion). The
// chi-square battery (tests/graph/test_graph_kernels.cpp) pins every
// batched kernel to the exact adoption law, and cross-mode consensus-time
// tests (tests/graph/test_graph_batched.cpp) pin the modes against each
// other.
#pragma once

#include <cstdint>

#include "graph/kernels.hpp"
#include "rng/philox.hpp"
#include "support/types.hpp"

namespace plurality::graph::kernels_batched {

/// Philox round count of the batched sampler: the Crush-resistant minimum
/// (7, Salmon et al. 2011 Table 2) rather than the conservative default 10
/// — generation cost sits on the critical path of every node update, and
/// the statistical battery re-checks every kernel's law on top of the
/// BigCrush pedigree. KAT-pinned in tests/rng/test_philox.cpp.
inline constexpr unsigned kSamplerRounds = rng::Philox4x32::kCrushRounds;

/// u64 words a tile may stage in ws.batch_words: bounds arena footprint
/// (64 KiB of words) so tiles stay cache-resident. The tile node count is
/// derived from it: tile_nodes = kBatchedWordBudget / words_per_node,
/// rounded down to a multiple of 64 (SIMD-friendly), floored at 64.
inline constexpr std::size_t kBatchedWordBudget = 8192;

/// Domain-separation tag for the batched engine's Philox key (vs any other
/// consumer of the same master seed).
inline constexpr std::uint64_t kBatchedKeyTag = 0x6261746368ULL;  // "batch"

/// Node-index padding of the word layout: s * pad64(n) + i keeps every
/// sample plane 64-aligned, so one tile's words are SIMD-runnable for all
/// sample indices simultaneously.
constexpr std::uint64_t pad64(std::uint64_t n) { return (n + 63) & ~std::uint64_t{63}; }

constexpr std::size_t tile_nodes_for(unsigned words_per_node) {
  const std::size_t raw = kBatchedWordBudget / (words_per_node == 0 ? 1 : words_per_node);
  const std::size_t aligned = raw & ~std::size_t{63};
  return aligned < 64 ? 64 : aligned;
}

/// Branch-free bounded-bias index conversion — the vector-path variant of
/// Lemire's method: idx = floor(x * bound / 2^64) for a uniform 64-bit x,
/// computed with two 32-bit multiplies so it maps onto SIMD lanes (the
/// `__uint128_t` form does not). Requires bound < 2^32 (node ids are 32-bit
/// by AgentGraph's construction).
///
/// BIAS BOUND: without the rejection loop, value v occurs with probability
/// floor-or-ceil(2^64 / bound) / 2^64, i.e. relative bias at most
/// bound / 2^64 per draw (< 2^-32 for any representable bound, and EXACTLY
/// zero when bound divides 2^64 — every power-of-two degree). At 10^12
/// draws the worst-case aggregate deviation is still orders of magnitude
/// below statistical resolution, which is why the vector path may skip the
/// rejection loop that the strict kernels keep.
inline std::uint32_t scale_word(std::uint64_t x, std::uint64_t bound) {
  const std::uint64_t lo = (x & 0xffffffffULL) * bound;
  const std::uint64_t hi = (x >> 32) * bound;
  return static_cast<std::uint32_t>((hi + (lo >> 32)) >> 32);
}

// --- Batched rules: pass-4 functors over pre-gathered samples. ----------
// apply(own, states, samples, stride, ties): sample s at samples[s*stride],
// tie word t at ties[t*stride]. All rules reuse kernels::select — the same
// arithmetic mask-select lesson as the strict kernels (a branch on sample
// equality mispredicts every other node).

struct BatchedMajority {
  static constexpr unsigned kArity = 3;
  static constexpr unsigned kTieWords = 0;
  template <typename TS>
  state_t apply(state_t, state_t, const TS* s, std::size_t stride,
                const std::uint64_t*) const {
    const state_t a = s[0];
    const state_t b = s[stride];
    const state_t c = s[2 * stride];
    return kernels::select((b == c) & (a != b), b, a);
  }
};

struct BatchedVoter {
  static constexpr unsigned kArity = 1;
  static constexpr unsigned kTieWords = 0;
  template <typename TS>
  state_t apply(state_t, state_t, const TS* s, std::size_t,
                const std::uint64_t*) const {
    return s[0];
  }
};

/// Two-choices tie-break: the strict path draws a double and compares to
/// 0.5; here the coin is the tie word's top bit (same fair Bernoulli, one
/// pre-generated word — consumed whether or not the samples tie, which is
/// what keeps the stream addressing static).
struct BatchedTwoChoices {
  static constexpr unsigned kArity = 2;
  static constexpr unsigned kTieWords = 1;
  template <typename TS>
  state_t apply(state_t, state_t, const TS* s, std::size_t stride,
                const std::uint64_t* ties) const {
    const state_t a = s[0];
    const state_t b = s[stride];
    const bool coin = (ties[0] >> 63) != 0;
    return kernels::select((a == b) | coin, a, b);
  }
};

struct BatchedUndecided {
  static constexpr unsigned kArity = 1;
  static constexpr unsigned kTieWords = 0;
  template <typename TS>
  state_t apply(state_t own, state_t states, const TS* s, std::size_t,
                const std::uint64_t*) const {
    const state_t undecided = states - 1;
    const state_t seen = s[0];
    const state_t colored_next =
        kernels::select((seen == own) | (seen == undecided), own, undecided);
    return kernels::select(own == undecided, seen, colored_next);
  }
};

struct BatchedMedian {
  static constexpr unsigned kArity = 3;
  static constexpr unsigned kTieWords = 0;
  template <typename TS>
  state_t apply(state_t, state_t, const TS* s, std::size_t stride,
                const std::uint64_t*) const {
    return kernels::median_of_three(s[0], s[stride], s[2 * stride]);
  }
};

struct BatchedMedianOwnTwo {
  static constexpr unsigned kArity = 2;
  static constexpr unsigned kTieWords = 0;
  template <typename TS>
  state_t apply(state_t own, state_t, const TS* s, std::size_t stride,
                const std::uint64_t*) const {
    return kernels::median_of_three(own, s[0], s[stride]);
  }
};

/// h-plurality with a pre-generated tie word: the uniform pick over the
/// tied colors is scale_word(tie, ties) — bounded-bias like every other
/// vector-path conversion (bias <= ties / 2^64, ties <= 64).
struct BatchedHPlurality {
  unsigned h;
  static constexpr unsigned kTieWords = 1;
  template <typename TS>
  state_t apply(state_t, state_t, const TS* s, std::size_t stride,
                const std::uint64_t* ties) const {
    state_t distinct[64];
    unsigned counts[64];
    unsigned num_distinct = 0;
    for (unsigned j = 0; j < h; ++j) {
      const state_t v = s[j * stride];
      bool found = false;
      for (unsigned i = 0; i < num_distinct; ++i) {
        if (distinct[i] == v) {
          ++counts[i];
          found = true;
          break;
        }
      }
      if (!found) {
        distinct[num_distinct] = v;
        counts[num_distinct] = 1;
        ++num_distinct;
      }
    }
    unsigned best = 0;
    for (unsigned i = 0; i < num_distinct; ++i) {
      if (counts[i] > best) best = counts[i];
    }
    unsigned num_ties = 0;
    for (unsigned i = 0; i < num_distinct; ++i) num_ties += (counts[i] == best);
    std::uint32_t pick = num_ties == 1 ? 0 : scale_word(ties[0], num_ties);
    for (unsigned i = 0; i < num_distinct; ++i) {
      if (counts[i] == best) {
        if (pick == 0) return distinct[i];
        --pick;
      }
    }
    return distinct[0];  // unreachable: some color attains `best`
  }
};

// --- Samplers: pass 2/3 topology policies. ------------------------------

/// Implicit complete graph: bound n, identity adjacency (self included).
template <typename TS>
struct BatchedCompleteSampler {
  const TS* nodes;
  std::uint64_t n;
  std::uint64_t bound(std::size_t) const { return n; }
  TS state(std::size_t, std::uint32_t idx) const { return nodes[idx]; }
  const TS* prefetch_target(std::size_t, std::uint32_t idx) const { return nodes + idx; }
};

/// Degree-uniform CSR graph: row i starts at i*degree.
template <typename TS>
struct BatchedRegularSampler {
  const TS* nodes;
  const std::uint32_t* neighbors;
  std::uint64_t degree;
  std::uint64_t bound(std::size_t) const { return degree; }
  TS state(std::size_t node, std::uint32_t idx) const {
    return nodes[neighbors[node * degree + idx]];
  }
  const TS* prefetch_target(std::size_t node, std::uint32_t idx) const {
    return nodes + neighbors[node * degree + idx];
  }
};

/// Implicit topology (ring/torus/lattice descriptors): neighbor ids are
/// arithmetic on the node id (implicit_topology.hpp), no arena gather.
/// Same scale_word(x, degree) index draws as the CSR samplers and the
/// descriptor reproduces the arena twin's row order, so batched runs are
/// bitwise-identical to the arena-backed graph.
template <typename TS>
struct BatchedImplicitSampler {
  const TS* nodes;
  ImplicitTopology topo;
  std::uint64_t bound(std::size_t) const { return topo.degree; }
  TS state(std::size_t node, std::uint32_t idx) const {
    return nodes[topo.neighbor(node, idx)];
  }
  const TS* prefetch_target(std::size_t node, std::uint32_t idx) const {
    return nodes + topo.neighbor(node, idx);
  }
};

/// General CSR graph (per-node offsets and degrees).
template <typename TS>
struct BatchedCsrSampler {
  const TS* nodes;
  const std::uint64_t* offsets;
  const std::uint32_t* neighbors;
  std::uint64_t bound(std::size_t node) const { return offsets[node + 1] - offsets[node]; }
  TS state(std::size_t node, std::uint32_t idx) const {
    return nodes[neighbors[offsets[node] + idx]];
  }
  const TS* prefetch_target(std::size_t node, std::uint32_t idx) const {
    return nodes + neighbors[offsets[node] + idx];
  }
};

// --- Pass 4 + counting of the stage-split tile pipeline. ----------------
// Passes 1-3 (fill, convert, gather) are driven by step_batched.cpp's
// batched_chunk — ONE copy, with the fill stage swapped for a SIMD
// implementation when the host has one; only the rule application and the
// class count live here because every rule/topology combination shares
// them verbatim.

/// Pass 4: apply the rule over the tile's gathered planes and publish into
/// the state_t scratch (null in the bytes-only memory mode, where the byte
/// mirror is the whole state) + byte mirror when TS is byte-wide.
template <class Rule, typename TNode, typename TS>
inline void apply_tile(const Rule& rule, unsigned arity, const TNode* nodes,
                       state_t* out, TNode* mirror_out, state_t states,
                       std::size_t base, std::size_t nb, const TS* sample_states,
                       std::size_t plane_stride, const std::uint64_t* tie_words) {
  for (std::size_t i = 0; i < nb; ++i) {
    // Planes are node-major per tile: sample s of node i at [s*stride + i].
    const state_t next = rule.apply(static_cast<state_t>(nodes[base + i]), states,
                                    sample_states + i, plane_stride, tie_words + i);
    if (out != nullptr) out[base + i] = next;
    if constexpr (!std::is_same_v<TNode, state_t>) {
      mirror_out[base + i] = static_cast<TNode>(next);
    }
  }
  (void)arity;
}

/// Class-count pass over the published tile (k <= 8 uses a per-class
/// compare sweep the compiler vectorizes; larger k a plain histogram).
template <typename T>
inline void count_tile(const T* out, std::size_t base, std::size_t nb, state_t k,
                       count_t* local) {
  if (k <= 8) {
    for (state_t j = 0; j < k; ++j) {
      count_t c = 0;
      for (std::size_t i = 0; i < nb; ++i) {
        c += (out[base + i] == static_cast<T>(j));
      }
      local[j] += c;
    }
  } else {
    for (std::size_t i = 0; i < nb; ++i) ++local[out[base + i]];
  }
}

}  // namespace plurality::graph::kernels_batched
