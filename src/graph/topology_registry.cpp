#include "graph/topology_registry.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <numeric>
#include <sstream>
#include <utility>

#include "graph/builders.hpp"
#include "graph/implicit_topology.hpp"
#include "support/check.hpp"
#include "support/specs.hpp"

namespace plurality::graph {

namespace {

/// The CSR arena packs neighbor ids as u32, and the batched clique/gossip
/// sampler's index conversion (scale_word) needs its bound < 2^32 — both
/// cap n at this value on their respective paths.
constexpr count_t kU32Max = 4294967295ULL;

/// Arena-backed topologies stop here; the named escape hatches do not.
void require_arena_ids(const std::string& spec, count_t n) {
  PLURALITY_REQUIRE(n <= kU32Max,
                    "topology '" << spec << "': node ids are 32-bit in the CSR "
                    "arena, so n is capped at 4294967295 (got " << n << "); for "
                    "larger populations use an implicit topology — 'ring', "
                    "'torus', 'lattice:<d>' (with topology_backend=implicit or "
                    "auto) have no id cap");
}

std::uint64_t parse_uint_field(const std::string& text, const std::string& spec,
                               const char* what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  PLURALITY_REQUIRE(ec == std::errc() && ptr == text.data() + text.size(),
                    "topology '" << spec << "': " << what
                                 << " must be an unsigned integer, got '" << text << "'");
  return value;
}

double parse_double_field(const std::string& text, const std::string& spec,
                          const char* what) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(text, &pos);
    PLURALITY_REQUIRE(pos == text.size(), "topology '" << spec << "': trailing garbage in "
                                                       << what << " '" << text << "'");
    return v;
  } catch (const CheckError&) {
    throw;
  } catch (const std::exception&) {
    PLURALITY_REQUIRE(false, "topology '" << spec << "': " << what
                                          << " must be a number, got '" << text << "'");
    return 0.0;  // unreachable
  }
}

/// rows x cols for "torus" (square) and "torus:<r>x<c>".
std::pair<count_t, count_t> torus_shape(const std::string& arg, const std::string& spec,
                                        count_t n) {
  count_t rows = 0, cols = 0;
  if (arg.empty()) {
    const auto side = static_cast<count_t>(std::llround(std::sqrt(static_cast<double>(n))));
    PLURALITY_REQUIRE(side * side == n,
                      "topology 'torus': n = " << n << " is not a perfect square; "
                      << "use 'torus:<r>x<c>' with r*c == n");
    rows = cols = side;
  } else {
    const auto x = arg.find('x');
    PLURALITY_REQUIRE(x != std::string::npos,
                      "topology '" << spec << "': expected 'torus:<r>x<c>'");
    rows = parse_uint_field(arg.substr(0, x), spec, "rows");
    cols = parse_uint_field(arg.substr(x + 1), spec, "cols");
    // 128-bit product: r*c must not silently wrap u64 before the comparison.
    const auto product = static_cast<__uint128_t>(rows) * cols;
    PLURALITY_REQUIRE(product == n, "topology '" << spec << "': " << rows << "x" << cols
                                                 << " does not match n = " << n);
  }
  PLURALITY_REQUIRE(rows >= 3 && cols >= 3,
                    "topology '" << spec << "': torus sides must be >= 3 (got " << rows
                                 << "x" << cols << ")");
  return {rows, cols};
}

count_t lattice_degree(const std::string& arg, const std::string& spec, count_t n) {
  PLURALITY_REQUIRE(!arg.empty(),
                    "topology 'lattice': needs an even degree, e.g. 'lattice:8'");
  const count_t d = parse_uint_field(arg, spec, "degree");
  PLURALITY_REQUIRE(d >= 2 && d % 2 == 0,
                    "topology '" << spec << "': degree must be even and >= 2, got " << d);
  PLURALITY_REQUIRE(n >= d + 2, "topology '" << spec << "': degree " << d
                                             << " needs n >= " << d + 2 << ", got " << n);
  return d;
}

count_t regular_degree(const std::string& arg, const std::string& spec, count_t n) {
  PLURALITY_REQUIRE(!arg.empty(), "topology 'regular': needs a degree, e.g. 'regular:8'");
  const count_t d = parse_uint_field(arg, spec, "degree");
  PLURALITY_REQUIRE(d >= 1, "topology '" << spec << "': degree must be >= 1");
  PLURALITY_REQUIRE(d < n, "topology '" << spec << "': degree " << d
                                        << " needs more than " << n << " nodes");
  PLURALITY_REQUIRE((d * n) % 2 == 0,
                    "topology '" << spec << "': the configuration model needs d*n even "
                    << "(d = " << d << ", n = " << n << ")");
  return d;
}

std::uint64_t er_edges(const std::string& arg, const std::string& spec, count_t n) {
  PLURALITY_REQUIRE(!arg.empty(), "topology 'er': needs an edge probability, e.g. 'er:0.001'");
  const double p = parse_double_field(arg, spec, "edge probability");
  PLURALITY_REQUIRE(p > 0.0 && p <= 1.0,
                    "topology '" << spec << "': edge probability must be in (0, 1], got " << p);
  PLURALITY_REQUIRE(n >= 2, "topology '" << spec << "': needs n >= 2");
  const double pairs = 0.5 * static_cast<double>(n) * static_cast<double>(n - 1);
  const auto m = static_cast<std::uint64_t>(std::llround(p * pairs));
  PLURALITY_REQUIRE(m >= 1, "topology '" << spec << "': p = " << p << " rounds to zero edges"
                                         << " at n = " << n << "; raise p");
  return m;
}

std::vector<std::pair<count_t, count_t>> read_edge_list(const std::string& path,
                                                        count_t n) {
  std::ifstream in(path);
  PLURALITY_REQUIRE(in.good(), "topology 'edges': cannot open '" << path << "'");
  std::vector<std::pair<count_t, count_t>> edges;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    count_t u = 0, v = 0;
    PLURALITY_REQUIRE(static_cast<bool>(fields >> u >> v),
                      "topology 'edges': '" << path << "' line " << line_no
                                            << ": expected 'u v', got '" << line << "'");
    std::string rest;
    PLURALITY_REQUIRE(!(fields >> rest), "topology 'edges': '" << path << "' line "
                                                               << line_no
                                                               << ": trailing garbage");
    PLURALITY_REQUIRE(u < n && v < n, "topology 'edges': '" << path << "' line " << line_no
                                                            << ": node id out of range "
                                                            << "(n = " << n << ")");
    edges.emplace_back(u, v);
  }
  PLURALITY_REQUIRE(!edges.empty(), "topology 'edges': '" << path << "' has no edges");
  return edges;
}

std::uint64_t gnm_edges(const std::string& arg, const std::string& spec, count_t n) {
  PLURALITY_REQUIRE(!arg.empty(), "topology 'gnm': needs an edge count, e.g. 'gnm:4000000'");
  const std::uint64_t m = parse_uint_field(arg, spec, "edge count");
  PLURALITY_REQUIRE(m >= 1, "topology '" << spec << "': edge count must be >= 1");
  PLURALITY_REQUIRE(n >= 2, "topology '" << spec << "': needs n >= 2");
  const double pairs = 0.5 * static_cast<double>(n) * static_cast<double>(n - 1);
  PLURALITY_REQUIRE(static_cast<double>(m) <= pairs,
                    "topology '" << spec << "': " << m << " distinct edges do not fit "
                                 << "n = " << n << " nodes");
  return m;
}

constexpr const char* kUnknownMessage =
    "; known: clique, gossip, ring, torus[:<r>x<c>], lattice:<d>, regular:<d>, "
    "er:<p>, gnm:<m>, edges:<path>";

}  // namespace

bool topology_is_clique(const std::string& spec) { return spec == "clique"; }

bool topology_is_implicit_capable(const std::string& spec) {
  const auto [kind, arg] = split_spec(spec);
  (void)arg;
  return kind == "clique" || kind == "gossip" || kind == "ring" || kind == "torus" ||
         kind == "lattice";
}

void validate_topology_spec(const std::string& spec, count_t n) {
  PLURALITY_REQUIRE(n >= 1, "topology '" << spec << "': n must be >= 1");
  const auto [kind, arg] = split_spec(spec);
  if (kind == "clique") {
    PLURALITY_REQUIRE(arg.empty(), "topology 'clique' takes no argument");
    PLURALITY_REQUIRE(n <= kU32Max,
                      "topology 'clique': the batched engine's sample bound is n "
                      "itself and must fit 32 bits (got " << n << ")");
    return;
  }
  if (kind == "gossip") {
    PLURALITY_REQUIRE(arg.empty(), "topology 'gossip' takes no argument");
    PLURALITY_REQUIRE(n <= kU32Max,
                      "topology 'gossip': the batched engine's sample bound is n "
                      "itself and must fit 32 bits (got " << n << ")");
    return;
  }
  if (kind == "ring") {
    PLURALITY_REQUIRE(arg.empty(), "topology 'ring' takes no argument");
    PLURALITY_REQUIRE(n >= 3, "topology 'ring': needs n >= 3, got " << n);
    return;
  }
  if (kind == "torus") {
    (void)torus_shape(arg, spec, n);
    return;
  }
  if (kind == "lattice") {
    (void)lattice_degree(arg, spec, n);
    return;
  }
  if (kind == "regular") {
    require_arena_ids(spec, n);
    (void)regular_degree(arg, spec, n);
    return;
  }
  if (kind == "er") {
    require_arena_ids(spec, n);
    (void)er_edges(arg, spec, n);
    return;
  }
  if (kind == "gnm") {
    require_arena_ids(spec, n);
    (void)gnm_edges(arg, spec, n);
    return;
  }
  if (kind == "edges") {
    require_arena_ids(spec, n);
    PLURALITY_REQUIRE(!arg.empty(), "topology 'edges': needs a file path, e.g. "
                                    "'edges:graph.txt'");
    const std::ifstream probe(arg);
    PLURALITY_REQUIRE(probe.good(), "topology 'edges': cannot open '" << arg << "'");
    return;
  }
  PLURALITY_REQUIRE(false, "unknown topology '" << kind << "'" << kUnknownMessage);
}

AgentGraph make_topology(const std::string& spec, count_t n, rng::Xoshiro256pp& gen,
                         GraphLayout layout) {
  const auto [kind, arg] = split_spec(spec);
  // Relabel-then-pack for the layouts that apply to any explicit topology;
  // Hilbert needs a grid shape, so only the torus/lattice branches accept it.
  const auto pack = [&, &kind = kind](const Topology& topology) {
    switch (layout) {
      case GraphLayout::Identity:
        return AgentGraph::from_topology(topology);
      case GraphLayout::Degree:
        return AgentGraph::from_topology(topology, degree_permutation(topology));
      case GraphLayout::Rcm:
        return AgentGraph::from_topology(topology, rcm_permutation(topology));
      case GraphLayout::Hilbert:
        break;
    }
    PLURALITY_REQUIRE(false, "topology '" << kind << "': graph_layout=hilbert needs "
                      "a 2-D grid; only torus[:<r>x<c>] and lattice:<d> accept it");
    return AgentGraph();  // unreachable
  };
  if (kind == "clique") {
    PLURALITY_REQUIRE(arg.empty(), "topology 'clique' takes no argument");
    PLURALITY_REQUIRE(layout == GraphLayout::Identity,
                      "topology 'clique' samples uniformly over all nodes; a layout "
                      "permutation cannot change its locality (use graph_layout="
                      "identity or auto)");
    return AgentGraph::complete(n);
  }
  if (kind == "gossip") {
    PLURALITY_REQUIRE(arg.empty(), "topology 'gossip' takes no argument");
    PLURALITY_REQUIRE(layout == GraphLayout::Identity,
                      "topology 'gossip' samples uniformly over all nodes; a layout "
                      "permutation cannot change its locality (use graph_layout="
                      "identity or auto)");
    PLURALITY_REQUIRE(n <= kU32Max,
                      "topology 'gossip': the batched engine's sample bound is n "
                      "itself and must fit 32 bits (got " << n << ")");
    return AgentGraph::implicit(ImplicitTopology::gossip(n));
  }
  if (kind == "ring") {
    PLURALITY_REQUIRE(arg.empty(), "topology 'ring' takes no argument");
    require_arena_ids(spec, n);
    return pack(cycle(n));
  }
  if (kind == "torus") {
    const auto [rows, cols] = torus_shape(arg, spec, n);
    require_arena_ids(spec, n);
    if (layout == GraphLayout::Hilbert) {
      return AgentGraph::from_topology(torus(rows, cols),
                                       hilbert_permutation(rows, cols));
    }
    return pack(torus(rows, cols));
  }
  if (kind == "lattice") {
    const count_t d = lattice_degree(arg, spec, n);
    require_arena_ids(spec, n);
    if (layout == GraphLayout::Hilbert) {
      // The circulant lattice is already bandwidth-optimal in natural order:
      // store the identity permutation so the run still goes through the
      // relabeled-engine semantics (the equivariance baseline).
      std::vector<std::uint32_t> identity(n);
      std::iota(identity.begin(), identity.end(), std::uint32_t{0});
      return AgentGraph::from_topology(circulant_lattice(n, d), identity);
    }
    return pack(circulant_lattice(n, d));
  }
  if (kind == "regular") {
    require_arena_ids(spec, n);
    const count_t d = regular_degree(arg, spec, n);
    return pack(random_regular(n, d, gen));
  }
  if (kind == "er") {
    require_arena_ids(spec, n);
    const std::uint64_t m = er_edges(arg, spec, n);
    return pack(erdos_renyi(n, m, gen, /*patch_isolated=*/true));
  }
  if (kind == "gnm") {
    require_arena_ids(spec, n);
    const std::uint64_t m = gnm_edges(arg, spec, n);
    return pack(erdos_renyi(n, m, gen, /*patch_isolated=*/true));
  }
  if (kind == "edges") {
    require_arena_ids(spec, n);
    PLURALITY_REQUIRE(!arg.empty(), "topology 'edges': needs a file path, e.g. "
                                    "'edges:graph.txt'");
    const auto edges = read_edge_list(arg, n);
    if (layout != GraphLayout::Identity) {
      return pack(Topology::from_edges(n, edges));
    }
    return AgentGraph::from_edges(n, edges);
  }
  PLURALITY_REQUIRE(false, "unknown topology '" << kind << "'" << kUnknownMessage);
  return AgentGraph();  // unreachable
}

AgentGraph make_topology_implicit(const std::string& spec, count_t n) {
  const auto [kind, arg] = split_spec(spec);
  if (kind == "clique") {
    PLURALITY_REQUIRE(arg.empty(), "topology 'clique' takes no argument");
    return AgentGraph::complete(n);
  }
  if (kind == "gossip") {
    PLURALITY_REQUIRE(arg.empty(), "topology 'gossip' takes no argument");
    PLURALITY_REQUIRE(n <= kU32Max,
                      "topology 'gossip': the batched engine's sample bound is n "
                      "itself and must fit 32 bits (got " << n << ")");
    return AgentGraph::implicit(ImplicitTopology::gossip(n));
  }
  if (kind == "ring") {
    PLURALITY_REQUIRE(arg.empty(), "topology 'ring' takes no argument");
    return AgentGraph::implicit(ImplicitTopology::ring(n));
  }
  if (kind == "torus") {
    const auto [rows, cols] = torus_shape(arg, spec, n);
    return AgentGraph::implicit(ImplicitTopology::torus(rows, cols));
  }
  if (kind == "lattice") {
    const count_t d = lattice_degree(arg, spec, n);
    return AgentGraph::implicit(ImplicitTopology::lattice(n, d));
  }
  PLURALITY_REQUIRE(false, "topology '" << spec << "' has no implicit form; "
                    "implicit-capable: clique, gossip, ring, torus[:<r>x<c>], "
                    "lattice:<d>");
  return AgentGraph();  // unreachable
}

std::vector<std::string> topology_names() {
  return {"clique", "gossip", "ring", "torus", "torus:<r>x<c>", "lattice:<d>",
          "regular:<d>", "er:<p>", "gnm:<m>", "edges:<path>"};
}

}  // namespace plurality::graph
