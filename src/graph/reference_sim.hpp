// The pre-refactor per-node graph stepper, kept FROZEN as the bitwise
// ground truth for the CSR engine (the graph-layer analogue of
// step_count_based_reference): same hash-derived (round, chunk) streams,
// same sampling order, per-round allocations and all. Do not optimize it —
// tests/graph/test_graph_determinism.cpp pins the fast engine against it
// round by round and on golden fixed-seed trajectories, and bench_graphs
// reports the engine's speedup over it as a measured number.
#pragma once

#include <vector>

#include "core/configuration.hpp"
#include "core/dynamics.hpp"
#include "graph/topology.hpp"
#include "rng/stream.hpp"
#include "support/types.hpp"

namespace plurality::graph {

class ReferenceGraphSimulation {
 public:
  ReferenceGraphSimulation(const Dynamics& dynamics, const Topology& topology,
                           const Configuration& start, std::uint64_t seed,
                           bool shuffle_layout = true);

  void step();

  [[nodiscard]] const Configuration& configuration() const { return config_; }
  [[nodiscard]] round_t round() const { return round_; }
  [[nodiscard]] const std::vector<state_t>& states() const { return nodes_; }

  round_t run_to_consensus(round_t max_rounds);

  static constexpr unsigned kChunks = 64;

 private:
  const Dynamics& dynamics_;
  const Topology& topology_;
  Configuration config_;
  std::vector<state_t> nodes_;
  std::vector<state_t> scratch_;
  rng::StreamFactory streams_;
  round_t round_ = 0;
};

}  // namespace plurality::graph
