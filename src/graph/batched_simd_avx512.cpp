// AVX-512 kernel table of the batched pipeline. Compiled with
// -mavx512f/dq/bw/vl (CMake adds the flags only when the compiler supports
// them; the whole file additionally self-guards on the macros so a build
// without the flags produces an empty TU). Never entered unless
// simd::detect() saw the ISA at runtime.
//
// BITWISE CONTRACT: every function here must reproduce the scalar pipeline
// exactly — the same Philox words (Philox4x32::fill_words<kSamplerRounds>
// order), the same bounded-bias conversion (kernels_batched::scale_word),
// the same rule algebra. tests/graph/test_graph_batched.cpp pins the engine
// with SIMD on vs off; any lane-order slip fails loudly.
//
// Philox layout in registers: one "pair" is two zmm of eight 64-bit lanes —
// A holds (c1:c0) and B holds (c3:c2) of blocks b..b+7, so after R rounds A
// IS u64 words {2b, 2b+2, ...} (v0 | v1<<32) and B the matching odd words
// (v2 | v3<<32); one interleave emits 16 stream-ordered words. The per-round
// math stays in 64-bit lanes: vpmuludq gives hi:lo of the 32x32 product in
// one instruction, and a ternlog merges the three-way XOR.
#include "graph/batched_simd.hpp"

#if defined(__AVX512F__) && defined(__AVX512DQ__) && defined(__AVX512BW__) && \
    defined(__AVX512VL__)

#include <immintrin.h>

#include "graph/batched_simd_common.hpp"
#include "graph/kernels_batched.hpp"

namespace plurality::graph::simd {
namespace {

namespace kb = graph::kernels_batched;
constexpr unsigned kR = kb::kSamplerRounds;

constexpr std::uint64_t kM0 = 0xD2511F53ULL;
constexpr std::uint64_t kM1 = 0xCD9E8D57ULL;
constexpr std::uint32_t kW0 = 0x9E3779B9u;
constexpr std::uint32_t kW1 = 0xBB67AE85u;

struct Pair {
  __m512i a;  // words 2b, 2b+2, ... (after emit ordering)
  __m512i b;
};

/// R rounds over blocks blk..blk+7 of (key, domain).
inline Pair philox_pair(std::uint64_t blk, std::uint64_t domain, rng::Philox4x32::Key key) {
  const __m512i m0 = _mm512_set1_epi64(static_cast<long long>(kM0));
  const __m512i m1 = _mm512_set1_epi64(static_cast<long long>(kM1));
  __m512i a = _mm512_add_epi64(_mm512_set1_epi64(static_cast<long long>(blk)),
                               _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7));
  __m512i b = _mm512_set1_epi64(static_cast<long long>(domain));
  std::uint32_t k0 = key.k0, k1 = key.k1;
  for (unsigned r = 0; r < kR; ++r) {
    const __m512i key0 = _mm512_set1_epi64(static_cast<long long>(std::uint64_t{k0}));
    const __m512i key1 = _mm512_set1_epi64(static_cast<long long>(std::uint64_t{k1}));
    const __m512i p0 = _mm512_mul_epu32(m0, a);  // hi0:lo0 of M0 * c0
    const __m512i p1 = _mm512_mul_epu32(m1, b);  // hi1:lo1 of M1 * c2
    // A' = (lo1 << 32) | (hi1 ^ c1 ^ k0);  B' = (lo0 << 32) | (hi0 ^ c3 ^ k1)
    const __m512i na = _mm512_or_si512(
        _mm512_slli_epi64(p1, 32),
        _mm512_ternarylogic_epi64(_mm512_srli_epi64(p1, 32), _mm512_srli_epi64(a, 32),
                                  key0, 0x96));
    const __m512i nb = _mm512_or_si512(
        _mm512_slli_epi64(p0, 32),
        _mm512_ternarylogic_epi64(_mm512_srli_epi64(p0, 32), _mm512_srli_epi64(b, 32),
                                  key1, 0x96));
    a = na;
    b = nb;
    k0 += kW0;
    k1 += kW1;
  }
  return Pair{a, b};
}

/// Reorders a pair into stream order: out lanes = words 2b..2b+15 of the
/// stream (A lane t = word 2(b+t), B lane t = word 2(b+t)+1).
inline void emit_pair(const Pair& p, __m512i& words_lo, __m512i& words_hi) {
  const __m512i u0 = _mm512_unpacklo_epi64(p.a, p.b);  // A0 B0 A2 B2 A4 B4 A6 B6
  const __m512i u1 = _mm512_unpackhi_epi64(p.a, p.b);  // A1 B1 A3 B3 A5 B5 A7 B7
  const __m512i v0 = _mm512_shuffle_i64x2(u0, u1, 0x44);  // A0 B0 A2 B2 | A1 B1 A3 B3
  const __m512i v1 = _mm512_shuffle_i64x2(u0, u1, 0xEE);  // A4 B4 A6 B6 | A5 B5 A7 B7
  const __m512i ord = _mm512_setr_epi64(0, 1, 4, 5, 2, 3, 6, 7);
  words_lo = _mm512_permutexvar_epi64(ord, v0);  // words 2b .. 2b+7
  words_hi = _mm512_permutexvar_epi64(ord, v1);  // words 2b+8 .. 2b+15
}

void fill_words_avx512(rng::Philox4x32::Key key, std::uint64_t domain,
                       std::uint64_t word_lo, std::size_t count, std::uint64_t* out) {
  std::size_t w = 0;
  // Scalar head up to an even word boundary.
  if (count > 0 && (word_lo & 1) != 0) {
    out[w++] = rng::Philox4x32::word<kR>(key, domain, word_lo);
  }
  // 16 words per pair.
  for (; w + 16 <= count; w += 16) {
    const Pair p = philox_pair((word_lo + w) >> 1, domain, key);
    __m512i lo, hi;
    emit_pair(p, lo, hi);
    _mm512_storeu_si512(reinterpret_cast<__m512i*>(out + w), lo);
    _mm512_storeu_si512(reinterpret_cast<__m512i*>(out + w + 8), hi);
  }
  // Scalar tail.
  if (w < count) {
    rng::Philox4x32::fill_words<kR>(key, domain, word_lo + w, count - w, out + w);
  }
}

/// (word * bound) >> 64 for two word zmms (16 u64 lanes total) -> 16 u32
/// indices. bound < 2^32.
inline __m512i scale16(const __m512i& wlo, const __m512i& whi, const __m512i& bound64) {
  const __m512i lo0 = _mm512_mul_epu32(wlo, bound64);
  const __m512i hi0 = _mm512_mul_epu32(_mm512_srli_epi64(wlo, 32), bound64);
  const __m512i idx0 =
      _mm512_srli_epi64(_mm512_add_epi64(hi0, _mm512_srli_epi64(lo0, 32)), 32);
  const __m512i lo1 = _mm512_mul_epu32(whi, bound64);
  const __m512i hi1 = _mm512_mul_epu32(_mm512_srli_epi64(whi, 32), bound64);
  const __m512i idx1 =
      _mm512_srli_epi64(_mm512_add_epi64(hi1, _mm512_srli_epi64(lo1, 32)), 32);
  return _mm512_inserti64x4(_mm512_castsi256_si512(_mm512_cvtepi64_epi32(idx0)),
                            _mm512_cvtepi64_epi32(idx1), 1);
}

/// Generates the 16 u32 indices of sample plane `s` for nodes
/// [node0, node0+16) (node0 such that the plane's words start block-even).
inline __m512i plane_indices(const FusedArgs& args, unsigned s, std::uint64_t node0) {
  const std::uint64_t w0 = static_cast<std::uint64_t>(s) * args.n_pad + node0;
  const Pair p = philox_pair(w0 >> 1, args.round, args.key);
  __m512i wlo, whi;
  emit_pair(p, wlo, whi);
  const __m512i bound64 = _mm512_set1_epi64(static_cast<long long>(args.bound));
  return scale16(wlo, whi, bound64);
}

/// Gathers the sampled states (u32-widened) for 16 indices: through the
/// neighbor row on regular graphs, directly on the complete graph. The
/// byte mirror is padded (GraphStepWorkspace::prepare) so the u32 loads at
/// nodes8 + id stay in bounds.
template <bool Complete>
inline __m512i gather16(const FusedArgs& args, const __m512i& idx, std::uint64_t node0) {
  const __m512i ff = _mm512_set1_epi32(0xff);
  __m512i target;
  if constexpr (Complete) {
    target = idx;
  } else {
    const __m512i lane = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
    const __m512i node =
        _mm512_add_epi32(_mm512_set1_epi32(static_cast<int>(node0)), lane);
    const __m512i addr = _mm512_add_epi32(
        _mm512_mullo_epi32(node, _mm512_set1_epi32(static_cast<int>(args.bound))), idx);
    target = _mm512_i32gather_epi32(addr, reinterpret_cast<const int*>(args.neighbors), 4);
  }
  return _mm512_and_si512(
      _mm512_i32gather_epi32(target, reinterpret_cast<const int*>(args.nodes8), 1), ff);
}

template <class Tag, bool Complete>
void fused_kernel(const FusedArgs& args) {
  std::uint64_t i = args.base;
  const std::uint64_t end = args.base + args.count;
  // Scalar head until the word index (== node index in plane 0) is 16-aligned;
  // n_pad is 64-aligned so every plane is then pair-aligned simultaneously.
  while (i < end && (i & 15) != 0) fused_scalar_node<Tag>(args, i++);
  for (; i + 16 <= end; i += 16) {
    __m512i next;
    if constexpr (std::is_same_v<Tag, MajorityTag>) {
      const __m512i a = gather16<Complete>(args, plane_indices(args, 0, i), i);
      const __m512i b = gather16<Complete>(args, plane_indices(args, 1, i), i);
      const __m512i c = gather16<Complete>(args, plane_indices(args, 2, i), i);
      // select((b == c) & (a != b), b, a)
      const __mmask16 take_b =
          _mm512_cmpeq_epi32_mask(b, c) & _mm512_cmpneq_epi32_mask(a, b);
      next = _mm512_mask_blend_epi32(take_b, a, b);
    } else if constexpr (std::is_same_v<Tag, VoterTag>) {
      next = gather16<Complete>(args, plane_indices(args, 0, i), i);
    } else {
      const __m512i seen = gather16<Complete>(args, plane_indices(args, 0, i), i);
      const __m512i own = _mm512_cvtepu8_epi32(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(args.nodes8 + i)));
      const __m512i undecided = _mm512_set1_epi32(static_cast<int>(args.states - 1));
      const __mmask16 keep = _mm512_cmpeq_epi32_mask(seen, own) |
                             _mm512_cmpeq_epi32_mask(seen, undecided);
      const __m512i colored = _mm512_mask_blend_epi32(keep, undecided, own);
      const __mmask16 isund = _mm512_cmpeq_epi32_mask(own, undecided);
      next = _mm512_mask_blend_epi32(isund, colored, seen);
    }
    if (args.out32 != nullptr) {  // absent in bytes-only mode
      _mm512_storeu_si512(reinterpret_cast<__m512i*>(args.out32 + i), next);
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(args.out8 + i), _mm512_cvtepi32_epi8(next));
  }
  while (i < end) fused_scalar_node<Tag>(args, i++);
}

void count_u8_avx512(const std::uint8_t* data, std::size_t lo, std::size_t hi, state_t k,
                     count_t* local) {
  for (state_t j = 0; j < k; ++j) {
    const __m512i needle = _mm512_set1_epi8(static_cast<char>(j));
    count_t c = 0;
    std::size_t i = lo;
    for (; i + 64 <= hi; i += 64) {
      const __m512i v = _mm512_loadu_si512(reinterpret_cast<const __m512i*>(data + i));
      c += static_cast<count_t>(__builtin_popcountll(
          static_cast<std::uint64_t>(_mm512_cmpeq_epi8_mask(v, needle))));
    }
    for (; i < hi; ++i) c += (data[i] == static_cast<std::uint8_t>(j));
    local[j] += c;
  }
}

const Ops kAvx512Ops = {
    "avx512",
    &fill_words_avx512,
    &fused_kernel<MajorityTag, false>,
    &fused_kernel<VoterTag, false>,
    &fused_kernel<UndecidedTag, false>,
    &fused_kernel<MajorityTag, true>,
    &fused_kernel<VoterTag, true>,
    &fused_kernel<UndecidedTag, true>,
    &count_u8_avx512,
};

}  // namespace

const Ops* avx512_ops() { return &kAvx512Ops; }

}  // namespace plurality::graph::simd

#endif  // AVX512 macros
