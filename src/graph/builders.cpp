#include "graph/builders.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>
#include <vector>

#include "rng/distributions.hpp"
#include "support/check.hpp"

namespace plurality::graph {

Topology cycle(count_t n) {
  PLURALITY_REQUIRE(n >= 3, "cycle: need n >= 3");
  std::vector<std::pair<count_t, count_t>> edges;
  edges.reserve(n);
  for (count_t v = 0; v < n; ++v) edges.emplace_back(v, (v + 1) % n);
  return Topology::from_edges(n, edges);
}

Topology torus(count_t rows, count_t cols) {
  PLURALITY_REQUIRE(rows >= 3 && cols >= 3, "torus: need rows, cols >= 3");
  const count_t n = rows * cols;
  std::vector<std::pair<count_t, count_t>> edges;
  edges.reserve(2 * n);
  auto id = [cols](count_t r, count_t c) { return r * cols + c; };
  for (count_t r = 0; r < rows; ++r) {
    for (count_t c = 0; c < cols; ++c) {
      edges.emplace_back(id(r, c), id(r, (c + 1) % cols));
      edges.emplace_back(id(r, c), id((r + 1) % rows, c));
    }
  }
  return Topology::from_edges(n, edges);
}

Topology circulant_lattice(count_t n, count_t d) {
  PLURALITY_REQUIRE(d >= 2 && d % 2 == 0,
                    "circulant_lattice: degree must be even and >= 2, got " << d);
  PLURALITY_REQUIRE(n >= d + 2,
                    "circulant_lattice: degree " << d << " needs n >= " << d + 2
                                                 << ", got " << n);
  // Edge emission order (j outer, v inner) is the implicit-topology
  // contract: ImplicitTopology::neighbor reproduces the resulting CSR row
  // order arithmetically, so do not reorder these loops.
  const count_t half = d / 2;
  std::vector<std::pair<count_t, count_t>> edges;
  edges.reserve(static_cast<std::size_t>(n) * half);
  for (count_t j = 1; j <= half; ++j) {
    for (count_t v = 0; v < n; ++v) {
      const count_t u = v + j >= n ? v + j - n : v + j;
      edges.emplace_back(v, u);
    }
  }
  return Topology::from_edges(n, edges);
}

Topology random_regular(count_t n, count_t d, rng::Xoshiro256pp& gen) {
  PLURALITY_REQUIRE(n >= 2 && d >= 1, "random_regular: need n >= 2, d >= 1");
  PLURALITY_REQUIRE((n * d) % 2 == 0, "random_regular: n*d must be even");
  PLURALITY_REQUIRE(d < n, "random_regular: d must be below n");

  // Steger–Wormald incremental pairing: repeatedly match two random free
  // stubs, rejecting matches that would create a self-loop or a parallel
  // edge. For d = o(sqrt n) the process gets stuck only with small
  // probability, in which case we restart from scratch.
  for (int attempt = 0; attempt < 256; ++attempt) {
    std::vector<count_t> stubs;
    stubs.reserve(n * d);
    for (count_t v = 0; v < n; ++v) {
      for (count_t i = 0; i < d; ++i) stubs.push_back(v);
    }
    std::vector<std::pair<count_t, count_t>> edges;
    edges.reserve(stubs.size() / 2);
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(stubs.size());
    bool stuck = false;
    while (!stubs.empty()) {
      bool matched = false;
      for (int tries = 0; tries < 200; ++tries) {
        const std::size_t i = rng::uniform_below(gen, stubs.size());
        std::size_t j = rng::uniform_below(gen, stubs.size() - 1);
        if (j >= i) ++j;
        const count_t u = stubs[i], v = stubs[j];
        if (u == v) continue;
        const std::uint64_t key = std::min(u, v) * n + std::max(u, v);
        if (seen.count(key)) continue;
        seen.insert(key);
        edges.emplace_back(u, v);
        // Swap-pop both stubs (larger index first keeps i/j valid).
        const std::size_t hi = std::max(i, j), lo = std::min(i, j);
        stubs[hi] = stubs.back();
        stubs.pop_back();
        stubs[lo] = stubs.back();
        stubs.pop_back();
        matched = true;
        break;
      }
      if (!matched) {
        stuck = true;
        break;
      }
    }
    if (!stuck) return Topology::from_edges(n, edges);
  }
  PLURALITY_CHECK_MSG(false, "random_regular: failed to build a simple graph "
                             "(n=" << n << ", d=" << d << "); d too close to n?");
  return Topology::complete(n);  // unreachable
}

Topology erdos_renyi(count_t n, std::uint64_t m, rng::Xoshiro256pp& gen,
                     bool patch_isolated) {
  PLURALITY_REQUIRE(n >= 2, "erdos_renyi: need n >= 2");
  const std::uint64_t max_edges = n * (n - 1) / 2;
  PLURALITY_REQUIRE(m <= max_edges, "erdos_renyi: m exceeds the edge universe");
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(m * 2);
  std::vector<std::pair<count_t, count_t>> edges;
  edges.reserve(m);
  while (edges.size() < m) {
    const count_t u = rng::uniform_below(gen, n);
    const count_t v = rng::uniform_below(gen, n);
    if (u == v) continue;
    const std::uint64_t key = std::min(u, v) * n + std::max(u, v);
    if (chosen.insert(key).second) edges.emplace_back(u, v);
  }
  if (patch_isolated) {
    std::vector<std::uint8_t> has_edge(n, 0);
    for (const auto& [u, v] : edges) {
      has_edge[u] = 1;
      has_edge[v] = 1;
    }
    for (count_t v = 0; v < n; ++v) {
      if (has_edge[v]) continue;
      count_t u = v;
      while (u == v) u = rng::uniform_below(gen, n);
      edges.emplace_back(v, u);
    }
  }
  return Topology::from_edges(n, edges);
}

}  // namespace plurality::graph
