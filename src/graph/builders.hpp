// Standard topology generators for the sparse-graph extension experiments
// (E13): structured graphs (cycle, torus) and random graphs (d-regular via
// the configuration model, Erdős–Rényi G(n, m)).
#pragma once

#include "graph/topology.hpp"
#include "rng/xoshiro.hpp"

namespace plurality::graph {

/// Cycle C_n (n >= 3).
Topology cycle(count_t n);

/// rows x cols torus grid (4-regular, wrap-around; rows, cols >= 3).
Topology torus(count_t rows, count_t cols);

/// Circulant d-regular lattice: v ~ v +- j (mod n) for j = 1..d/2 (d even,
/// 2 <= d <= n - 2). d = 2 is exactly cycle(n). The arena twin of
/// ImplicitTopology::lattice — edge emission order is part of the implicit
/// engine's bitwise contract (implicit_topology.hpp).
Topology circulant_lattice(count_t n, count_t d);

/// Random d-regular multigraph via the configuration model: d*n stubs
/// paired uniformly (d*n must be even). Self-loops and parallel edges are
/// re-paired with bounded retries; a handful may survive for tiny n, which
/// only perturbs sampling weights marginally.
Topology random_regular(count_t n, count_t d, rng::Xoshiro256pp& gen);

/// Erdős–Rényi G(n, m): m distinct edges (no self-loops) chosen uniformly.
/// With `patch_isolated`, every degree-0 vertex is afterwards attached to a
/// uniform random partner (adding a few edges beyond m) so that sampling
/// dynamics are well-defined on every node.
Topology erdos_renyi(count_t n, std::uint64_t m, rng::Xoshiro256pp& gen,
                     bool patch_isolated = false);

}  // namespace plurality::graph
