// Frozen pre-refactor implementation — see reference_sim.hpp. This is the
// seed tree's GraphSimulation verbatim (only the class name changed); the
// determinism suite depends on every RNG draw here staying put.
#include "graph/reference_sim.hpp"

#include <array>

#include "rng/distributions.hpp"
#include "support/check.hpp"

#if defined(PLURALITY_HAVE_OPENMP)
#include <omp.h>
#endif

namespace plurality::graph {

ReferenceGraphSimulation::ReferenceGraphSimulation(const Dynamics& dynamics,
                                                   const Topology& topology,
                                                   const Configuration& start,
                                                   std::uint64_t seed,
                                                   bool shuffle_layout)
    : dynamics_(dynamics), topology_(topology), config_(start), streams_(seed) {
  PLURALITY_REQUIRE(start.n() == topology.num_nodes(),
                    "ReferenceGraphSimulation: configuration has " << start.n()
                        << " nodes but topology has " << topology.num_nodes());
  PLURALITY_REQUIRE(topology.kind() == Topology::Kind::CompleteImplicit ||
                        topology.min_degree() >= 1,
                    "ReferenceGraphSimulation: isolated vertices cannot sample");
  nodes_.reserve(start.n());
  for (state_t j = 0; j < start.k(); ++j) {
    nodes_.insert(nodes_.end(), start.at(j), j);
  }
  if (shuffle_layout) {
    rng::Xoshiro256pp gen = streams_.stream(~0ULL);  // reserved layout stream
    rng::shuffle(gen, nodes_.data(), nodes_.size());
  }
  scratch_.resize(nodes_.size());
}

void ReferenceGraphSimulation::step() {
  const std::size_t n = nodes_.size();
  const state_t k = config_.k();
  const unsigned arity = dynamics_.sample_arity();
  PLURALITY_CHECK_MSG(arity <= 64, "graph backend supports sample arity <= 64");
  const bool complete = topology_.kind() == Topology::Kind::CompleteImplicit;

  const std::size_t chunk_size = (n + kChunks - 1) / kChunks;
  std::array<std::vector<count_t>, kChunks> partial_counts;

#if defined(PLURALITY_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
  for (unsigned chunk = 0; chunk < kChunks; ++chunk) {
    const std::size_t lo = static_cast<std::size_t>(chunk) * chunk_size;
    const std::size_t hi = std::min(n, lo + chunk_size);
    std::vector<count_t> local(k, 0);
    if (lo < hi) {
      rng::Xoshiro256pp gen = streams_.stream(round_ * kChunks + chunk);
      state_t sample[64];
      for (std::size_t i = lo; i < hi; ++i) {
        if (complete) {
          for (unsigned s = 0; s < arity; ++s) {
            sample[s] = nodes_[rng::uniform_below(gen, n)];
          }
        } else {
          const auto neigh = topology_.neighbors(i);
          for (unsigned s = 0; s < arity; ++s) {
            sample[s] = nodes_[neigh[rng::uniform_below(gen, neigh.size())]];
          }
        }
        const state_t next = dynamics_.apply_rule(
            nodes_[i], std::span<const state_t>(sample, arity), k, gen);
        scratch_[i] = next;
        ++local[next];
      }
    }
    partial_counts[chunk] = std::move(local);
  }

  nodes_.swap(scratch_);
  Configuration next = Configuration::zeros(k);
  for (const auto& local : partial_counts) {
    if (local.empty()) continue;
    for (state_t j = 0; j < k; ++j) next.set(j, next.at(j) + local[j]);
  }
  config_ = std::move(next);
  ++round_;
}

round_t ReferenceGraphSimulation::run_to_consensus(round_t max_rounds) {
  const state_t num_colors = dynamics_.num_colors(config_.k());
  for (round_t r = 1; r <= max_rounds; ++r) {
    step();
    if (config_.color_consensus(num_colors)) return r;
  }
  return max_rounds;
}

}  // namespace plurality::graph
