#include "graph/topology.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace plurality::graph {

Topology Topology::complete(count_t n) {
  PLURALITY_REQUIRE(n >= 1, "Topology::complete: need at least one node");
  return Topology(Kind::CompleteImplicit, n);
}

Topology Topology::from_edges(count_t n,
                              std::span<const std::pair<count_t, count_t>> edges) {
  PLURALITY_REQUIRE(n >= 1, "Topology::from_edges: need at least one node");
  Topology topo(Kind::Explicit, n);
  std::vector<std::uint64_t> degree(n, 0);
  for (const auto& [u, v] : edges) {
    PLURALITY_REQUIRE(u < n && v < n, "Topology::from_edges: endpoint out of range");
    ++degree[u];
    if (u != v) ++degree[v];
  }
  topo.offsets_.assign(n + 1, 0);
  for (count_t v = 0; v < n; ++v) topo.offsets_[v + 1] = topo.offsets_[v] + degree[v];
  topo.adjacency_.resize(topo.offsets_[n]);
  std::vector<std::uint64_t> cursor(topo.offsets_.begin(), topo.offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    topo.adjacency_[cursor[u]++] = v;
    if (u != v) topo.adjacency_[cursor[v]++] = u;
  }
  return topo;
}

count_t Topology::degree(count_t v) const {
  PLURALITY_REQUIRE(v < n_, "Topology::degree: node out of range");
  if (kind_ == Kind::CompleteImplicit) return n_;  // self included, clique model
  return offsets_[v + 1] - offsets_[v];
}

std::span<const count_t> Topology::neighbors(count_t v) const {
  PLURALITY_REQUIRE(kind_ == Kind::Explicit,
                    "Topology::neighbors: implicit complete graph has no list");
  PLURALITY_REQUIRE(v < n_, "Topology::neighbors: node out of range");
  return {adjacency_.data() + offsets_[v],
          static_cast<std::size_t>(offsets_[v + 1] - offsets_[v])};
}

count_t Topology::min_degree() const {
  if (kind_ == Kind::CompleteImplicit) return n_;
  count_t best = degree(0);
  for (count_t v = 1; v < n_; ++v) best = std::min(best, degree(v));
  return best;
}

count_t Topology::max_degree() const {
  if (kind_ == Kind::CompleteImplicit) return n_;
  count_t best = degree(0);
  for (count_t v = 1; v < n_; ++v) best = std::max(best, degree(v));
  return best;
}

bool Topology::connected() const {
  if (kind_ == Kind::CompleteImplicit) return true;
  if (n_ == 0) return false;
  std::vector<std::uint8_t> seen(n_, 0);
  std::vector<count_t> stack = {0};
  seen[0] = 1;
  count_t visited = 1;
  while (!stack.empty()) {
    const count_t v = stack.back();
    stack.pop_back();
    for (count_t u : neighbors(v)) {
      if (!seen[u]) {
        seen[u] = 1;
        ++visited;
        stack.push_back(u);
      }
    }
  }
  return visited == n_;
}

}  // namespace plurality::graph
