// High-throughput agent simulation on arbitrary topologies.
//
// Three pieces, mirroring the count-based engine's discipline (PR 1):
//
//  * AgentGraph — an immutable CSR-packed graph: one contiguous arena
//    holding the n+1 offsets followed by the 32-bit neighbor ids, so a
//    round's neighbor walks are sequential loads from a single allocation.
//    The clique is represented implicitly (no adjacency memory; sampling
//    uniform over [n] including self, matching the paper's model exactly).
//
//  * GraphStepWorkspace (graph_workspace.hpp) — all per-round scratch:
//    double-buffered node-state arrays, per-chunk partial counts. Warm
//    rounds perform zero heap allocations.
//
//  * step_graph()/load_nodes() — the OpenMP-chunked stepper: kGraphChunks
//    fixed chunks with one hash-derived RNG stream per (round, chunk)
//    (thread-count invariant), fused per-dynamics kernels (kernels.hpp)
//    with a virtual-dispatch fallback for unregistered dynamics.
//
// The stepper is pinned BITWISE to the frozen pre-refactor implementation
// (reference_sim.hpp): same streams, same sampling order, same states,
// round by round — see tests/graph/test_graph_determinism.cpp.
// GraphSimulation keeps the original convenience API on top of the engine;
// on Topology::complete it reproduces the clique model exactly and is
// property-tested against the core backends.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/configuration.hpp"
#include "core/dynamics.hpp"
#include "graph/graph_workspace.hpp"
#include "graph/implicit_topology.hpp"
#include "graph/topology.hpp"
#include "rng/stream.hpp"
#include "support/types.hpp"

namespace plurality::graph {

/// Immutable CSR graph in a single contiguous arena.
///
/// Layout: arena_[0 .. n] are the 64-bit adjacency offsets; the 32-bit
/// neighbor ids are packed into the remaining words (two per u64). Node
/// count is capped at 2^32 - 1 so ids fit the packed width; offsets stay
/// 64-bit, so arc counts are unbounded. For Kind-complete graphs the arena
/// is empty and sampling is uniform over all n nodes (self included).
class AgentGraph {
 public:
  /// Empty graph; only useful as a move-assignment target.
  AgentGraph() = default;

  /// Implicit complete graph on n >= 1 nodes.
  static AgentGraph complete(count_t n);

  /// Arena-free graph over an ImplicitTopology descriptor: the kernels
  /// compute neighbor ids from the node id instead of gathering from the
  /// CSR arena, so memory is O(1) and node ids are not bound by the
  /// arena's 32-bit packing. A Gossip descriptor yields the implicit
  /// complete graph (is_complete() true) — uniform pull over the whole
  /// population is exactly the clique sampling model.
  static AgentGraph implicit(const ImplicitTopology& topo);

  /// Packs an explicit (or implicit-complete) Topology.
  static AgentGraph from_topology(const Topology& topology);

  /// Packs an explicit Topology RELABELED by `new_of` (new_of[orig] = new
  /// id, a permutation of [0, n)): the CSR row of new id i holds
  /// new_of[u] for each u in topology.neighbors(orig_of(i)), in the
  /// original row order. The inverse map is retained (orig_of()) so the
  /// engines can address per-node randomness by ORIGINAL id — the basis of
  /// the layout permutation-equivariance contract (src/graph/layout.hpp).
  /// Always marks the graph relabeled, even for the identity permutation
  /// (the engines' relabeled RNG addressing differs from the default
  /// path's, so "relabeled with identity" is the equivariance baseline).
  static AgentGraph from_topology(const Topology& topology,
                                  std::span<const std::uint32_t> new_of);

  /// Builds from an undirected edge list (both directions stored), via
  /// Topology::from_edges' CSR construction.
  static AgentGraph from_edges(count_t n,
                               std::span<const std::pair<count_t, count_t>> edges);

  [[nodiscard]] bool is_complete() const { return complete_; }
  [[nodiscard]] count_t num_nodes() const { return n_; }

  /// True when neighbors are computed (ring/torus/lattice descriptors),
  /// false for arena-backed and complete/gossip graphs (which have their
  /// own dedicated sampling path).
  [[nodiscard]] bool is_implicit() const {
    return implicit_.family != ImplicitTopology::Family::None && !complete_;
  }
  /// The descriptor (family None on arena-backed graphs; family Gossip on
  /// gossip-built complete graphs).
  [[nodiscard]] const ImplicitTopology& implicit_topology() const { return implicit_; }

  /// Stored directed arcs (2x undirected edge count; 0 for the implicit
  /// complete graph).
  [[nodiscard]] std::uint64_t num_arcs() const { return arcs_; }

  /// Degree in the sampling model: n (self included) on the implicit
  /// complete graph, the stored neighbor count otherwise.
  [[nodiscard]] count_t degree(count_t v) const;

  /// Min/max degree over all nodes (computed once at build time).
  [[nodiscard]] count_t min_degree() const { return min_degree_; }
  [[nodiscard]] count_t max_degree() const { return max_degree_; }

  /// Raw CSR views for the kernels; only valid for explicit graphs. The
  /// neighbor pointer is derived from the arena on the fly (rather than
  /// cached) so the implicitly generated copy/move operations can never
  /// leave a pointer into another instance's arena.
  [[nodiscard]] const std::uint64_t* offsets() const { return arena_.data(); }
  [[nodiscard]] const std::uint32_t* neighbors() const {
    return reinterpret_cast<const std::uint32_t*>(arena_.data() + n_ + 1);
  }

  [[nodiscard]] std::span<const std::uint32_t> neighbors_of(count_t v) const;

  /// Bytes held by the arena (memory-model accounting for the docs/bench).
  [[nodiscard]] std::size_t arena_bytes() const { return arena_.size() * sizeof(std::uint64_t); }

  /// True when the graph was packed through the relabeling overload of
  /// from_topology. Relabeled graphs are always arena-backed (never
  /// complete/implicit) by construction.
  [[nodiscard]] bool is_relabeled() const { return !orig_of_.empty(); }

  /// The inverse permutation of a relabeled graph: orig_of()[new id] =
  /// original Topology id. Empty for non-relabeled graphs.
  [[nodiscard]] std::span<const std::uint32_t> orig_of() const { return orig_of_; }

 private:
  count_t n_ = 0;
  bool complete_ = false;
  std::uint64_t arcs_ = 0;
  count_t min_degree_ = 0;
  count_t max_degree_ = 0;
  ImplicitTopology implicit_{};
  std::vector<std::uint64_t> arena_;
  std::vector<std::uint32_t> orig_of_;  // empty unless relabeled
};

/// Reserved StreamFactory index for the layout shuffle (kept distinct from
/// every (round, chunk) stepping stream).
inline constexpr std::uint64_t kLayoutStream = ~0ULL;

/// Domain-separation tag ("relab") of the strict engine's per-node streams
/// on relabeled graphs: node with original id o steps round r with
/// streams.child(kRelabelStreamTag).child(r).stream(o). Addressing the
/// stream by ORIGINAL id is what makes strict runs permutation-equivariant
/// in the layout (states/counts of a relabeled run are the identity-
/// relabeled run's mapped through the permutation — see layout.hpp).
inline constexpr std::uint64_t kRelabelStreamTag = 0x72656c6162ULL;

/// (Re)initializes ws.nodes from a configuration: state j laid out at(j)
/// times in node-id order, then shuffled with streams.stream(kLayoutStream)
/// when `shuffle_layout` (node position matters on sparse graphs, unlike
/// the clique). Allocation-free once ws has seen this n.
///
/// When `graph` is relabeled, the block assignment + shuffle are staged in
/// ORIGINAL id space (consuming the stream identically) and then permuted
/// into the new numbering: the relabeled trial starts from exactly the
/// permuted image of the identity-labeled trial's initial state.
void load_nodes(const Configuration& start, bool shuffle_layout,
                const rng::StreamFactory& streams, GraphStepWorkspace& ws,
                const AgentGraph* graph = nullptr);

/// One synchronous round over `graph`: every node draws sample_arity()
/// states from its neighborhood (uniform with repetition) and applies the
/// dynamics' rule. Reads and advances ws.nodes (double-buffered through
/// ws.scratch) and publishes the new counts into `config`. Zero heap
/// allocations once ws is warm.
///
/// `mode` selects the stepping pipeline (see EngineMode in
/// graph_workspace.hpp). Strict (default): randomness from
/// streams.stream(round * kGraphChunks + chunk), bitwise-pinned to the
/// frozen reference — identical results for any thread count. Batched:
/// counter-based Philox keyed by streams.master_seed() with per-(round,
/// node, draw) addressing — identical results for any thread count, chunk
/// grid, or batch size; equivalent to Strict in distribution, not bitwise.
/// Push: the scatter formulation of the batched pipeline for arity-1
/// dynamics (voter, undecided-state) — bitwise identical to Batched.
/// Dynamics without a batched kernel (rule tables) silently run Strict;
/// Push without a push kernel silently runs Batched (then Strict).
/// `tuning` carries the cache-behavior knobs (tile size, prefetch
/// distance); it never changes results, only speed.
void step_graph(const Dynamics& dynamics, const AgentGraph& graph,
                Configuration& config, const rng::StreamFactory& streams,
                round_t round, GraphStepWorkspace& ws,
                EngineMode mode = EngineMode::Strict,
                const StepTuning& tuning = {});

/// Convenience wrapper owning graph + workspace + round counter — the
/// original GraphSimulation API, now backed by the CSR engine.
class GraphSimulation {
 public:
  /// `start` assigns states by laying out start.at(j) nodes of state j in
  /// node-id order; pass `shuffle_layout = true` to randomize the
  /// assignment. Packs `topology` into an owned AgentGraph. `mode` picks
  /// the stepping pipeline (see step_graph).
  GraphSimulation(const Dynamics& dynamics, const Topology& topology,
                  const Configuration& start, std::uint64_t seed,
                  bool shuffle_layout = true, EngineMode mode = EngineMode::Strict);

  /// Borrowing variant: steps over a caller-owned CSR graph (no packing
  /// cost; the graph must outlive the simulation).
  GraphSimulation(const Dynamics& dynamics, const AgentGraph& graph,
                  const Configuration& start, std::uint64_t seed,
                  bool shuffle_layout = true, EngineMode mode = EngineMode::Strict);

  // Non-copyable/movable: graph_ may point at owned_graph_, and a copied
  // or moved-from instance would leave it aimed at the source object.
  // (Factory-return call sites still work via guaranteed copy elision.)
  GraphSimulation(const GraphSimulation&) = delete;
  GraphSimulation& operator=(const GraphSimulation&) = delete;

  /// One synchronous round of neighbor sampling + rule application.
  void step();

  /// Installs cache-behavior tuning (tile size, prefetch distance) for all
  /// subsequent steps. Performance-only: results are unaffected.
  void set_tuning(const StepTuning& tuning) { tuning_ = tuning; }

  [[nodiscard]] const Configuration& configuration() const { return config_; }
  [[nodiscard]] round_t round() const { return round_; }
  [[nodiscard]] const std::vector<state_t>& states() const { return ws_.nodes; }
  [[nodiscard]] const AgentGraph& graph() const { return *graph_; }

  /// Runs until color consensus or `max_rounds`; returns rounds used, or
  /// max_rounds if no consensus was reached.
  round_t run_to_consensus(round_t max_rounds);

  static constexpr unsigned kChunks = kGraphChunks;

 private:
  void init(const Configuration& start, bool shuffle_layout);

  const Dynamics& dynamics_;
  AgentGraph owned_graph_;        // empty when borrowing
  const AgentGraph* graph_;
  Configuration config_;
  GraphStepWorkspace ws_;
  rng::StreamFactory streams_;
  round_t round_ = 0;
  EngineMode mode_ = EngineMode::Strict;
  StepTuning tuning_{};
};

}  // namespace plurality::graph
