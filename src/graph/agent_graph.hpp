// Agent simulation on an arbitrary topology: like core's AgentSimulation,
// but each node samples from its own neighborhood (uniform with repetition)
// instead of the whole population. On Topology::complete this reproduces
// the paper's clique model exactly (uniform over all n nodes, self
// included), which is property-tested against the core backends.
#pragma once

#include <vector>

#include "core/configuration.hpp"
#include "core/dynamics.hpp"
#include "graph/topology.hpp"
#include "rng/stream.hpp"
#include "support/types.hpp"

namespace plurality::graph {

class GraphSimulation {
 public:
  /// `start` assigns states by laying out start.at(j) nodes of state j in
  /// node-id order; pass `shuffle_layout = true` to randomize the
  /// assignment (node position matters on sparse graphs, unlike the
  /// clique).
  GraphSimulation(const Dynamics& dynamics, const Topology& topology,
                  const Configuration& start, std::uint64_t seed,
                  bool shuffle_layout = true);

  /// One synchronous round of neighbor sampling + rule application.
  void step();

  [[nodiscard]] const Configuration& configuration() const { return config_; }
  [[nodiscard]] round_t round() const { return round_; }
  [[nodiscard]] const std::vector<state_t>& states() const { return nodes_; }

  /// Runs until color consensus or `max_rounds`; returns rounds used, or
  /// max_rounds if no consensus was reached.
  round_t run_to_consensus(round_t max_rounds);

  static constexpr unsigned kChunks = 64;

 private:
  const Dynamics& dynamics_;
  const Topology& topology_;
  Configuration config_;
  std::vector<state_t> nodes_;
  std::vector<state_t> scratch_;
  rng::StreamFactory streams_;
  round_t round_ = 0;
};

}  // namespace plurality::graph
