#include "graph/step_batched.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <type_traits>

#include "core/hplurality.hpp"
#include "core/majority.hpp"
#include "core/median.hpp"
#include "core/undecided.hpp"
#include "core/voter.hpp"
#include "graph/agent_graph.hpp"
#include "graph/batched_simd.hpp"
#include "graph/kernels_batched.hpp"
#include "support/check.hpp"

#if defined(PLURALITY_HAVE_OPENMP)
#include <omp.h>
#endif

namespace plurality::graph {

namespace kb = kernels_batched;

namespace {

std::atomic<bool> g_simd_enabled{true};
std::atomic<std::size_t> g_tile_override{0};

const simd::Ops* active_ops() {
  if (!g_simd_enabled.load(std::memory_order_relaxed)) return nullptr;
  return simd::detect();
}

/// Stack-resident tile arenas of the stage-split pipeline: bounded by
/// kBatchedWordBudget, so they are cache-warm, per-thread by construction
/// (each OpenMP chunk body owns its own), and contribute nothing to the
/// zero-allocation budget of warm rounds. Elements are deliberately left
/// uninitialized — every pass fully overwrites the range it reads.
template <typename TS>
struct TileArenas {
  std::array<std::uint64_t, kb::kBatchedWordBudget + 2> words;
  std::array<std::uint32_t, kb::kBatchedWordBudget> index;
  std::array<TS, kb::kBatchedWordBudget> states;
};

/// Selects the fused SIMD kernel for (Rule, Sampler) when one exists.
template <class Rule, class Sampler, typename TS>
auto fused_kernel(const simd::Ops* ops) -> void (*)(const simd::FusedArgs&) {
  if (ops == nullptr) return nullptr;
  if constexpr (!std::is_same_v<TS, std::uint8_t>) {
    return nullptr;
  } else if constexpr (std::is_same_v<Sampler, kb::BatchedRegularSampler<std::uint8_t>>) {
    if constexpr (std::is_same_v<Rule, kb::BatchedMajority>) return ops->fused_regular_majority;
    if constexpr (std::is_same_v<Rule, kb::BatchedVoter>) return ops->fused_regular_voter;
    if constexpr (std::is_same_v<Rule, kb::BatchedUndecided>) return ops->fused_regular_undecided;
    return nullptr;
  } else if constexpr (std::is_same_v<Sampler, kb::BatchedCompleteSampler<std::uint8_t>>) {
    if constexpr (std::is_same_v<Rule, kb::BatchedMajority>) return ops->fused_complete_majority;
    if constexpr (std::is_same_v<Rule, kb::BatchedVoter>) return ops->fused_complete_voter;
    if constexpr (std::is_same_v<Rule, kb::BatchedUndecided>) return ops->fused_complete_undecided;
    return nullptr;
  } else {
    return nullptr;
  }
}

/// The stage-split pipeline for one chunk [lo, hi): tile loop over the
/// four passes of kernels_batched.hpp, with the fused SIMD kernel taking
/// the whole chunk when one applies.
template <class Rule, class Sampler, typename TNode>
void batched_chunk(const Rule& rule, unsigned arity, unsigned tie_words,
                   rng::Philox4x32::Key key, std::uint64_t round, std::uint64_t n_pad,
                   const Sampler& sampler, const TNode* nodes, state_t* out,
                   TNode* mirror_out, state_t states, std::size_t lo, std::size_t hi,
                   const simd::Ops* ops, const simd::FusedArgs* fused_proto,
                   count_t* local, state_t k, const StepTuning& tuning,
                   const std::uint32_t* orig) {
  if constexpr (std::is_same_v<TNode, std::uint8_t>) {
    if (fused_proto != nullptr) {
      const auto fused = fused_kernel<Rule, Sampler, TNode>(ops);
      if (fused != nullptr) {
        simd::FusedArgs args = *fused_proto;
        args.base = lo;
        args.count = hi - lo;
        fused(args);
        // Fused kernels publish out8/out32; counting happens here.
        if (ops->count_u8 != nullptr && k <= 16) {
          ops->count_u8(mirror_out, lo, hi, k, local);
        } else {
          kb::count_tile(mirror_out, lo, hi - lo, k, local);
        }
        return;
      }
    }
  }

  const std::size_t wpn = arity + tie_words;
  // Tile-size precedence: spec/CLI tuning, then the test override, then the
  // word-budget derivation. Any value yields the same results (the word
  // addressing is per-node, not per-tile).
  std::size_t tile = tuning.tile_nodes;
  if (tile == 0) tile = g_tile_override.load(std::memory_order_relaxed);
  if (tile == 0) tile = kb::tile_nodes_for(static_cast<unsigned>(wpn));
  tile = std::min(tile, kb::kBatchedWordBudget / wpn);
  PLURALITY_CHECK(tile >= 1);
  const std::size_t prefetch_ahead = tuning.prefetch_distance;

  const auto fill = (ops != nullptr && ops->fill_words != nullptr)
                        ? ops->fill_words
                        : &rng::Philox4x32::fill_words<kb::kSamplerRounds>;

  TileArenas<TNode> arena;
  std::uint64_t* words = arena.words.data();
  std::uint32_t* index = arena.index.data();
  TNode* st = arena.states.data();

  for (std::size_t base = lo; base < hi; base += tile) {
    const std::size_t nb = std::min(tile, hi - base);
    for (unsigned s = 0; s < arity; ++s) {
      std::uint64_t* plane_words = words + static_cast<std::size_t>(s) * tile;
      std::uint32_t* plane_index = index + static_cast<std::size_t>(s) * tile;
      TNode* plane_states = st + static_cast<std::size_t>(s) * tile;
      // Pass 1: block-generate the plane's Philox words. On a relabeled
      // graph each node's word is addressed by its ORIGINAL id (a scattered
      // per-word fill instead of the contiguous block fill): node new-id i
      // then consumes exactly the words its pre-relabel twin would, which
      // is what makes batched results layout-invariant.
      if (orig == nullptr) {
        fill(key, round, static_cast<std::uint64_t>(s) * n_pad + base, nb, plane_words);
      } else {
        for (std::size_t i = 0; i < nb; ++i) {
          plane_words[i] = rng::Philox4x32::word<kb::kSamplerRounds>(
              key, round, static_cast<std::uint64_t>(s) * n_pad + orig[base + i]);
        }
      }
      // Pass 2: branch-free bounded-bias index conversion.
      for (std::size_t i = 0; i < nb; ++i) {
        plane_index[i] = kb::scale_word(plane_words[i], sampler.bound(base + i));
      }
      // Pass 3: gather sampled states, prefetching ahead of the random loads.
      for (std::size_t i = 0; i < nb; ++i) {
        if (prefetch_ahead != 0 && i + prefetch_ahead < nb) {
          __builtin_prefetch(sampler.prefetch_target(base + i + prefetch_ahead,
                                                     plane_index[i + prefetch_ahead]),
                             0, 3);
        }
        plane_states[i] = sampler.state(base + i, plane_index[i]);
      }
    }
    std::uint64_t* tie_base = words + static_cast<std::size_t>(arity) * tile;
    for (unsigned t = 0; t < tie_words; ++t) {
      if (orig == nullptr) {
        fill(key, round, (static_cast<std::uint64_t>(arity) + t) * n_pad + base, nb,
             tie_base + static_cast<std::size_t>(t) * tile);
      } else {
        std::uint64_t* tw = tie_base + static_cast<std::size_t>(t) * tile;
        for (std::size_t i = 0; i < nb; ++i) {
          tw[i] = rng::Philox4x32::word<kb::kSamplerRounds>(
              key, round,
              (static_cast<std::uint64_t>(arity) + t) * n_pad + orig[base + i]);
        }
      }
    }
    // Pass 4: apply the rule; publish into scratch (+ mirror).
    kb::apply_tile(rule, arity, nodes, out, mirror_out, states, base, nb, st, tile,
                   tie_words > 0 ? tie_base : words);
    if constexpr (std::is_same_v<TNode, std::uint8_t>) {
      if (ops != nullptr && ops->count_u8 != nullptr && k <= 16) {
        ops->count_u8(mirror_out, base, base + nb, k, local);
        continue;
      }
      kb::count_tile(mirror_out, base, nb, k, local);
    } else {
      kb::count_tile(out + base, 0, nb, k, local);
    }
  }
}

/// Chunk grid + topology dispatch shared by every rule. Mirrors the strict
/// path's step_all_chunks: same kGraphChunks grid, per-chunk partials,
/// identical publish semantics — only the randomness and inner pipeline
/// differ.
template <class Rule>
void step_batched_all(const Rule& rule, unsigned arity, unsigned tie_words,
                      const AgentGraph& graph, Configuration& config,
                      const rng::StreamFactory& streams, round_t round,
                      GraphStepWorkspace& ws, const StepTuning& tuning) {
  const std::size_t n = graph.num_nodes();
  const state_t k = config.k();
  const std::uint64_t n_pad = kb::pad64(n);
  const std::uint32_t* orig =
      graph.is_relabeled() ? graph.orig_of().data() : nullptr;
  const rng::Philox4x32::Key key =
      rng::Philox4x32::key_from_seed(streams.master_seed(), kb::kBatchedKeyTag);
  const std::size_t chunk_size = (n + kGraphChunks - 1) / kGraphChunks;
  const bool complete = graph.is_complete();
  const bool implicit = graph.is_implicit();
  const bool regular =
      !complete && !implicit && graph.min_degree() == graph.max_degree();
  const std::uint64_t uniform_degree = regular ? graph.min_degree() : 0;
  const simd::Ops* ops = active_ops();
  count_t* partials = ws.partials.data();
  // Bytes-only mode: no u32 scratch exists; apply_tile and the fused SIMD
  // kernels skip the wide write on a null out pointer.
  state_t* out = ws.bytes_only ? nullptr : ws.scratch.data();

  const auto sweep = [&](auto nodes_ptr, auto* mirror_out) {
    using TNode = std::remove_const_t<std::remove_pointer_t<decltype(nodes_ptr)>>;
    // Fused prototype args (byte path only; completed per chunk).
    simd::FusedArgs proto;
    const simd::FusedArgs* fused_proto = nullptr;
    if constexpr (std::is_same_v<TNode, std::uint8_t>) {
      // The fused kernels compute gather addresses in 32-bit lanes, so the
      // largest byte offset (n on the clique, n*degree on regular CSR) must
      // fit a signed 32-bit gather index; beyond that the tile pipeline
      // (64-bit scalar addressing) takes over.
      // Relabeled graphs are excluded: the fused kernels block-fill words by
      // NEW id, but the relabel contract addresses them by original id (the
      // scalar pipeline's scattered fill above).
      const std::uint64_t max_offset = complete ? n : n * uniform_degree;
      if (ops != nullptr && (complete || regular) && orig == nullptr &&
          max_offset < (1ULL << 31)) {
        proto.key = key;
        proto.round = round;
        proto.n_pad = n_pad;
        proto.neighbors = complete ? nullptr : graph.neighbors();
        proto.bound = complete ? n : uniform_degree;
        proto.nodes8 = nodes_ptr;
        proto.out8 = mirror_out;
        proto.out32 = out;
        proto.states = k;
        fused_proto = &proto;
      }
    }

#if defined(PLURALITY_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
    for (unsigned chunk = 0; chunk < kGraphChunks; ++chunk) {
      const std::size_t lo = static_cast<std::size_t>(chunk) * chunk_size;
      const std::size_t hi = std::min(n, lo + chunk_size);
      count_t* local = partials + static_cast<std::size_t>(chunk) * k;
      std::fill(local, local + k, count_t{0});
      if (lo >= hi) continue;
      if (complete) {
        const kb::BatchedCompleteSampler<TNode> sampler{nodes_ptr, n};
        batched_chunk(rule, arity, tie_words, key, round, n_pad, sampler, nodes_ptr, out,
                      mirror_out, k, lo, hi, ops, fused_proto, local, k, tuning,
                      orig);
      } else if (implicit) {
        const kb::BatchedImplicitSampler<TNode> sampler{nodes_ptr,
                                                        graph.implicit_topology()};
        batched_chunk(rule, arity, tie_words, key, round, n_pad, sampler, nodes_ptr, out,
                      mirror_out, k, lo, hi, ops, fused_proto, local, k, tuning,
                      orig);
      } else if (regular) {
        const kb::BatchedRegularSampler<TNode> sampler{nodes_ptr, graph.neighbors(),
                                                       uniform_degree};
        batched_chunk(rule, arity, tie_words, key, round, n_pad, sampler, nodes_ptr, out,
                      mirror_out, k, lo, hi, ops, fused_proto, local, k, tuning,
                      orig);
      } else {
        const kb::BatchedCsrSampler<TNode> sampler{nodes_ptr, graph.offsets(),
                                                   graph.neighbors()};
        batched_chunk(rule, arity, tie_words, key, round, n_pad, sampler, nodes_ptr, out,
                      mirror_out, k, lo, hi, ops, fused_proto, local, k, tuning,
                      orig);
      }
    }
  };

  if (k <= 256) {
    // Byte-mirror path (same rationale as the strict engine: the random
    // sample loads hit a 4x denser array; values identical either way).
    std::uint8_t* mirror = ws.nodes8.data();
    // Bytes-only mode: load_nodes writes nodes8 directly; there is no u32
    // array to refresh from (and corrupt_nodes rejects the mode).
    if (!ws.bytes_only && !ws.mirror_fresh) {
      const state_t* nodes = ws.nodes.data();
#if defined(PLURALITY_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
      for (unsigned chunk = 0; chunk < kGraphChunks; ++chunk) {
        const std::size_t lo = static_cast<std::size_t>(chunk) * chunk_size;
        const std::size_t hi = std::min(n, lo + chunk_size);
        for (std::size_t i = lo; i < hi; ++i) {
          mirror[i] = static_cast<std::uint8_t>(nodes[i]);
        }
      }
    }
    sweep(static_cast<const std::uint8_t*>(mirror), ws.scratch8.data());
    ws.nodes8.swap(ws.scratch8);
    ws.mirror_fresh = true;
  } else {
    state_t* no_mirror = nullptr;
    sweep(static_cast<const state_t*>(ws.nodes.data()), no_mirror);
  }

  ws.nodes.swap(ws.scratch);  // no-op (both empty) in bytes-only mode
  std::fill(ws.counts.begin(), ws.counts.end(), count_t{0});
  for (unsigned chunk = 0; chunk < kGraphChunks; ++chunk) {
    const count_t* local = ws.partials.data() + static_cast<std::size_t>(chunk) * k;
    for (state_t j = 0; j < k; ++j) ws.counts[j] += local[j];
  }
  config.assign_counts(ws.counts);
}

}  // namespace

bool batched_has_kernel(const Dynamics& dynamics) {
  return dynamic_cast<const ThreeMajority*>(&dynamics) != nullptr ||
         dynamic_cast<const Voter*>(&dynamics) != nullptr ||
         dynamic_cast<const TwoChoices*>(&dynamics) != nullptr ||
         dynamic_cast<const UndecidedState*>(&dynamics) != nullptr ||
         dynamic_cast<const MedianDynamics*>(&dynamics) != nullptr ||
         dynamic_cast<const MedianOwnTwo*>(&dynamics) != nullptr ||
         dynamic_cast<const HPlurality*>(&dynamics) != nullptr;
}

void step_graph_batched(const Dynamics& dynamics, const AgentGraph& graph,
                        Configuration& config, const rng::StreamFactory& streams,
                        round_t round, GraphStepWorkspace& ws,
                        const StepTuning& tuning) {
  const count_t n = graph.num_nodes();
  PLURALITY_REQUIRE(config.n() == n, "step_graph_batched: configuration has "
                                         << config.n() << " nodes but graph has " << n);
  PLURALITY_REQUIRE(ws.state_size() == n,
                    "step_graph_batched: workspace holds "
                        << ws.state_size() << " node states for " << n
                        << " nodes — call load_nodes first");
  PLURALITY_REQUIRE(graph.is_complete() || graph.min_degree() >= 1,
                    "step_graph_batched: isolated vertices cannot sample");
  // scale_word (kernels_batched.hpp) requires every sample bound < 2^32;
  // sparse graphs satisfy it by the arena's 32-bit ids, the clique/gossip
  // bound is n itself.
  PLURALITY_REQUIRE(!graph.is_complete() || n <= 0xffffffffULL,
                    "step_graph_batched: the clique/gossip sample bound must fit "
                    "32 bits (n=" << n << ")");
  ws.prepare(n, config.k());

  // Fixed-arity rules: the word-plane layout (arity + tie words) comes from
  // the rule's own constants, so a rule edit can never go out of sync with
  // the dispatch.
  const auto run = [&]<class Rule>(const Rule& rule) {
    step_batched_all(rule, Rule::kArity, Rule::kTieWords, graph, config, streams, round,
                     ws, tuning);
  };
  if (const auto* d = dynamic_cast<const ThreeMajority*>(&dynamics)) {
    (void)d;
    run(kb::BatchedMajority{});
  } else if (const auto* v = dynamic_cast<const Voter*>(&dynamics)) {
    (void)v;
    run(kb::BatchedVoter{});
  } else if (const auto* t = dynamic_cast<const TwoChoices*>(&dynamics)) {
    (void)t;
    run(kb::BatchedTwoChoices{});
  } else if (const auto* u = dynamic_cast<const UndecidedState*>(&dynamics)) {
    (void)u;
    run(kb::BatchedUndecided{});
  } else if (const auto* m = dynamic_cast<const MedianDynamics*>(&dynamics)) {
    (void)m;
    run(kb::BatchedMedian{});
  } else if (const auto* m2 = dynamic_cast<const MedianOwnTwo*>(&dynamics)) {
    (void)m2;
    run(kb::BatchedMedianOwnTwo{});
  } else if (const auto* h = dynamic_cast<const HPlurality*>(&dynamics)) {
    const unsigned arity = h->sample_arity();
    PLURALITY_CHECK_MSG(arity <= 64, "graph backend supports sample arity <= 64");
    step_batched_all(kb::BatchedHPlurality{arity}, arity,
                     kb::BatchedHPlurality::kTieWords, graph, config, streams, round, ws,
                     tuning);
  } else {
    PLURALITY_CHECK_MSG(false, "step_graph_batched: dynamics '"
                                   << dynamics.name()
                                   << "' has no batched kernel (see batched_has_kernel)");
  }
}

void set_batched_simd_enabled(bool enabled) {
  g_simd_enabled.store(enabled, std::memory_order_relaxed);
}

bool batched_simd_active() {
  return active_ops() != nullptr;
}

void set_batched_tile_nodes_override(std::size_t tile_nodes) {
  g_tile_override.store(tile_nodes, std::memory_order_relaxed);
}

}  // namespace plurality::graph
