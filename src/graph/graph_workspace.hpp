// Preallocated scratch for the graph stepping hot path — the graph-layer
// sibling of core's StepWorkspace.
//
// A graph round needs the node-state array, its double buffer, and the
// per-chunk partial count matrix. The pre-refactor stepper allocated the
// partials (and a fresh Configuration) every round, which makes agent-level
// stepping allocator-bound exactly where it is already the slow path
// (Θ(n·h) work per round). The workspace owns every buffer and is reused
// across rounds AND across trials — run_graph_trials keeps one per OpenMP
// thread, GraphSimulation owns one for its lifetime.
//
// Unlike StepWorkspace, ws.nodes is NOT pure scratch: it carries the node
// states across rounds (the graph process is not exchangeable, so the
// count vector is not a sufficient statistic). load_nodes() (re)initializes
// it per trial; everything else is fully rewritten by each step, so
// workspace reuse across trials or dynamics never leaks state. After the
// first step at a given (n, k), a warm round performs zero heap
// allocations (tests/alloc/test_allocation.cpp pins this).
#pragma once

#include <cstdint>
#include <vector>

#include "core/engine_mode.hpp"
#include "support/check.hpp"
#include "support/types.hpp"

namespace plurality::graph {

/// Fixed chunk fan-out of the graph stepper (same determinism contract as
/// AgentSimulation::kChunks: one hash-derived RNG stream per (round, chunk),
/// so results depend on the seed but never on the thread count).
inline constexpr unsigned kGraphChunks = 64;

/// Which stepping pipeline step_graph runs. The enum itself now lives in
/// core/engine_mode.hpp (the axis spans both backends); on this backend
/// Batched means the stage-split pipeline of kernels_batched.hpp, whose
/// index conversion is branch-free bounded-bias Lemire high-multiply
/// (bias <= bound / 2^64 per draw — exactly 0 when the bound is a power of
/// two).
using plurality::EngineMode;

/// Cache-behavior knobs of the stepping pipelines, threaded from the
/// scenario spec (`tile_nodes`, `prefetch_distance`) and the bench CLI
/// down to the kernels. Pure performance tuning: every setting produces
/// bitwise-identical results per engine mode (tile addressing is
/// counter-based; the strict window replays the exact draw order), pinned
/// by test_layout's tuning-invariance battery.
struct StepTuning {
  /// Batched-pipeline tile size in nodes (0 = derive from
  /// kernels_batched::kBatchedWordBudget; clamped to the word budget).
  std::uint32_t tile_nodes = 0;
  /// Software-prefetch distance of the gather loops: the batched pass-3
  /// look-ahead, and the strict windowed drivers' window size (clamped to
  /// kernels::kMaxPrefetchWindow). 0 disables prefetching entirely (the
  /// strict path then runs the legacy per-node loop).
  std::uint32_t prefetch_distance = 16;
};

/// Source-id window of the push stepper's scatter bins: 2^20 nodes = one
/// 1 MiB byte-mirror window, sized to stay L2-resident (2 MiB on the dev
/// container) with headroom for the streaming pair buffers. Larger windows
/// amortize the per-bin overhead; the bin only pays off once the full
/// state array outgrows L2, so the window should be as large as the cache
/// allows. Results are invariant to this constant (outputs are
/// dest-indexed; bins only reorder the internal pair layout). Shared with
/// GraphStepWorkspace::prepare_push.
inline constexpr std::size_t kPushBucketNodes = std::size_t{1} << 20;

struct GraphStepWorkspace {
  /// Current node states (persistent across rounds within one trial).
  std::vector<state_t> nodes;
  /// Next-round node states (double buffer; swapped into nodes each step).
  std::vector<state_t> scratch;
  /// Byte-wide mirror of `nodes` (+ its double buffer), used when the
  /// state space fits one byte (k <= 256): the kernels' random sample
  /// loads then hit a 4x denser, cache-resident array. Same values —
  /// results are unaffected. The sweep writes both widths, so a warm round
  /// needs no refresh pass; `mirror_fresh` says whether nodes8 currently
  /// matches nodes (load_nodes and corrupt_nodes clear it).
  std::vector<std::uint8_t> nodes8;
  std::vector<std::uint8_t> scratch8;
  bool mirror_fresh = false;
  /// Bytes-only memory mode: the byte arrays above ARE the whole node
  /// state and the u32 nodes/scratch arrays are never allocated, so a
  /// trial's state is ~2n bytes instead of ~10n — the difference between
  /// fitting and not fitting n = 10^9 in RAM. Requires k <= 256 and no
  /// adversary (corrupt_nodes edits the u32 array). Results are bitwise
  /// identical: with k <= 256 the kernels already sample from the byte
  /// mirror, and the u32 writes they skip were redundant copies. Set
  /// BEFORE prepare()/load_nodes(); flipping it mid-trial is undefined.
  bool bytes_only = false;
  /// kGraphChunks x k per-chunk partial counts.
  std::vector<count_t> partials;
  /// k-entry reduction of partials (the published next configuration).
  std::vector<count_t> counts;

  // (Batched-mode tile arenas are NOT here: the stage-split pipeline stages
  // each tile in fixed-size stack arrays bounded by
  // kernels_batched::kBatchedWordBudget — per-thread by construction, warm,
  // and invisible to the zero-allocation budget. See step_batched.cpp.)

  // --- Adversary scratch (graph_trials' node-level corruption). ---
  std::vector<count_t> adv_before;       // counts before corruption
  std::vector<count_t> adv_take;         // per-state number of victims
  std::vector<count_t> adv_seen;         // reservoir counters
  std::vector<std::uint64_t> adv_offset; // victim-block prefix sums (k+1)
  std::vector<std::uint64_t> adv_victims;

  /// Sizes every buffer for an (n, k) instance; allocation-free once the
  /// workspace has seen these sizes (buffers only ever grow in capacity).
  void prepare(count_t n, state_t k) {
    PLURALITY_REQUIRE(!bytes_only || k <= 256,
                      "GraphStepWorkspace: bytes-only mode needs k <= 256, got "
                          << static_cast<unsigned>(k));
    if (!bytes_only) {
      nodes.resize(n);
      scratch.resize(n);
    }
    if (k <= 256) {
      // +4 bytes of tail slack: the batched SIMD gathers read the byte
      // mirror through 32-bit lane loads (value masked to the low byte), so
      // an access at id n-1 touches 3 bytes past the last state. Only
      // indices < n are ever addressed.
      nodes8.resize(static_cast<std::size_t>(n) + 4);
      scratch8.resize(static_cast<std::size_t>(n) + 4);
    }
    partials.resize(static_cast<std::size_t>(kGraphChunks) * k);
    counts.resize(k);
  }

  /// Node count the workspace currently holds states for — ws.nodes.size()
  /// normally, the byte array (minus its 4 bytes of SIMD tail slack) in
  /// bytes-only mode. The steppers' "call load_nodes first" checks go
  /// through here so they work in either memory mode.
  [[nodiscard]] std::size_t state_size() const {
    if (!bytes_only) return nodes.size();
    return nodes8.size() >= 4 ? nodes8.size() - 4 : 0;
  }

  // --- Push-mode scratch (step_push.cpp; sized only when Push runs). ---
  /// Per-node sampled source id (phase A output).
  std::vector<std::uint32_t> push_src;
  /// (source << 32 | dest) pairs, bucket-major by source window (phase B).
  std::vector<std::uint64_t> push_pairs;
  /// kGraphChunks x buckets histogram, reused as the placement cursors.
  std::vector<std::uint64_t> push_hist;

  /// Sizes the push-mode buffers (12 bytes/node + the bin histogram);
  /// allocation-free once the workspace has seen this n.
  void prepare_push(count_t n) {
    PLURALITY_REQUIRE(n <= 0xffffffffULL,
                      "push stepper: node ids must fit 32 bits (n=" << n << ")");
    push_src.resize(n);
    push_pairs.resize(n);
    const std::size_t buckets =
        (static_cast<std::size_t>(n) + kPushBucketNodes - 1) / kPushBucketNodes;
    push_hist.resize(static_cast<std::size_t>(kGraphChunks) * buckets);
  }

  /// Extra buffers used only when an adversary is wired in.
  void prepare_adversary(state_t k) {
    adv_before.resize(k);
    adv_take.resize(k);
    adv_seen.resize(k);
    adv_offset.resize(static_cast<std::size_t>(k) + 1);
  }
};

}  // namespace plurality::graph
