// Name-based factory over the topology generators — the graph-layer
// member of the registry family (core/registry.hpp names dynamics,
// core/adversary.hpp names adversaries, core/workloads.hpp names initial
// configurations). The scenario layer composes all four from one spec.
#pragma once

#include <string>
#include <vector>

#include "graph/agent_graph.hpp"
#include "graph/layout.hpp"
#include "rng/xoshiro.hpp"

namespace plurality::graph {

/// Parses and validates `spec` against a node count WITHOUT building the
/// graph (torus dimensions must factor n, the configuration model needs
/// d*n even, ...). Throws CheckError with an actionable message; returns
/// normally when make_topology(spec, n, gen) would succeed on a readable
/// edge-list file.
void validate_topology_spec(const std::string& spec, count_t n);

/// Builds the CSR-packed graph named by `spec` on `n` nodes. Accepted
/// specs:
///   "clique"             implicit complete graph (the paper's model)
///   "gossip"             uniform pull over the whole population (self
///                        included) — the gossip model of arXiv:1407.2565;
///                        same sampling as clique, but never rerouted to the
///                        count backend, so it always exercises the node
///                        engine
///   "ring"               cycle C_n (n >= 3)
///   "torus"              square torus (n must be a perfect square, side >= 3)
///   "torus:<r>x<c>"      r x c torus (r*c == n; r, c >= 3)
///   "lattice:<d>"        circulant d-regular lattice: v ~ v +- j (mod n)
///                        for j = 1..d/2 (d even; lattice:2 == ring)
///   "regular:<d>"        random d-regular (configuration model; d*n even)
///   "er:<p>"             Erdős–Rényi G(n, m) with m = round(p * n(n-1)/2),
///                        isolated vertices patched (sampling needs degree
///                        >= 1 everywhere); p in (0, 1]
///   "edges:<path>"       undirected edge list: one "u v" pair per line
///                        (0-based ids < n; '#' comment lines allowed)
/// Random families (regular, er) consume `gen`; the same generator state
/// reproduces the same graph. Arena-backed builds cap n at 2^32 - 1 (ids
/// are packed u32); clique/gossip cap n at 2^32 - 1 (batched sample
/// bound). Throws CheckError on malformed specs.
///
/// `layout` relabels the node ids before CSR packing (graph/layout.hpp):
/// Degree/Rcm apply to any explicit topology; Hilbert needs a 2-D grid —
/// torus[:<r>x<c>] gets the true Hilbert/Morton traversal, lattice:<d>
/// (already bandwidth-optimal in natural order) stores the identity
/// permutation so the relabeled-engine semantics still apply; everything
/// else rejects it. clique/gossip sample uniformly (layout is meaningless)
/// and accept Identity only. The relabeling changes ONLY memory order:
/// results map through the permutation (permutation equivariance — pinned
/// by tests/graph/test_layout.cpp).
AgentGraph make_topology(const std::string& spec, count_t n, rng::Xoshiro256pp& gen,
                         GraphLayout layout = GraphLayout::Identity);

/// Builds the arena-free implicit form of `spec` (neighbors computed from
/// the node id — see implicit_topology.hpp): clique, gossip, ring,
/// torus[:<r>x<c>], lattice:<d>. Ring/torus/lattice results are
/// bitwise-identical to the arena build of make_topology at any n where
/// both exist, and have no 32-bit id cap. Deterministic (no generator).
/// Throws CheckError for specs without an implicit form.
AgentGraph make_topology_implicit(const std::string& spec, count_t n);

/// True for specs with an implicit (arena-free) form usable by
/// make_topology_implicit.
bool topology_is_implicit_capable(const std::string& spec);

/// True for specs naming the implicit complete graph (compiles to the
/// count backend when the dynamics has an exact law). "gossip" is
/// deliberately NOT a clique here: it always stays on the node engine.
bool topology_is_clique(const std::string& spec);

/// The spec forms accepted by make_topology (grammar, for --list output).
std::vector<std::string> topology_names();

}  // namespace plurality::graph
