// Name-based factory over the topology generators — the graph-layer
// member of the registry family (core/registry.hpp names dynamics,
// core/adversary.hpp names adversaries, core/workloads.hpp names initial
// configurations). The scenario layer composes all four from one spec.
#pragma once

#include <string>
#include <vector>

#include "graph/agent_graph.hpp"
#include "rng/xoshiro.hpp"

namespace plurality::graph {

/// Parses and validates `spec` against a node count WITHOUT building the
/// graph (torus dimensions must factor n, the configuration model needs
/// d*n even, ...). Throws CheckError with an actionable message; returns
/// normally when make_topology(spec, n, gen) would succeed on a readable
/// edge-list file.
void validate_topology_spec(const std::string& spec, count_t n);

/// Builds the CSR-packed graph named by `spec` on `n` nodes. Accepted
/// specs:
///   "clique"             implicit complete graph (the paper's model)
///   "ring"               cycle C_n (n >= 3)
///   "torus"              square torus (n must be a perfect square, side >= 3)
///   "torus:<r>x<c>"      r x c torus (r*c == n; r, c >= 3)
///   "regular:<d>"        random d-regular (configuration model; d*n even)
///   "er:<p>"             Erdős–Rényi G(n, m) with m = round(p * n(n-1)/2),
///                        isolated vertices patched (sampling needs degree
///                        >= 1 everywhere); p in (0, 1]
///   "edges:<path>"       undirected edge list: one "u v" pair per line
///                        (0-based ids < n; '#' comment lines allowed)
/// Random families (regular, er) consume `gen`; the same generator state
/// reproduces the same graph. Throws CheckError on malformed specs.
AgentGraph make_topology(const std::string& spec, count_t n, rng::Xoshiro256pp& gen);

/// True for specs naming the implicit complete graph (compiles to the
/// count backend when the dynamics has an exact law).
bool topology_is_clique(const std::string& spec);

/// The spec forms accepted by make_topology (grammar, for --list output).
std::vector<std::string> topology_names();

}  // namespace plurality::graph
