// The batched (EngineMode::Batched) graph stepper — counter-based Philox
// randomness + stage-split tile pipeline (kernels_batched.hpp), with fused
// SIMD fast paths (batched_simd.hpp) on x86 hosts that have them.
//
// step_graph (agent_graph.hpp) routes here when the caller asks for
// EngineMode::Batched and the dynamics has a batched kernel; dynamics
// without one (rule tables / unregistered protocols, whose virtual rule may
// consume generator randomness mid-node) fall back to the strict path —
// batched_has_kernel says which.
#pragma once

#include <cstddef>

#include "core/configuration.hpp"
#include "core/dynamics.hpp"
#include "graph/graph_workspace.hpp"
#include "rng/stream.hpp"
#include "support/types.hpp"

namespace plurality::graph {

class AgentGraph;

/// True when `dynamics` has a batched kernel (the seven fused dynamics).
[[nodiscard]] bool batched_has_kernel(const Dynamics& dynamics);

/// One synchronous batched round. Same externally observable contract as
/// the strict step (reads/advances ws.nodes, publishes counts into config)
/// but randomness is Philox keyed by streams.master_seed() with `round` as
/// the counter domain — bitwise identical results for any thread count,
/// chunking, or tile size (so `tuning` never changes results, only speed).
/// On a relabeled graph (graph.is_relabeled()) every node's words are
/// addressed by its ORIGINAL id, which makes batched results permutation-
/// equivariant in the layout: counts and trial summaries are bitwise
/// invariant under graph_layout. Requires batched_has_kernel(dynamics).
void step_graph_batched(const Dynamics& dynamics, const AgentGraph& graph,
                        Configuration& config, const rng::StreamFactory& streams,
                        round_t round, GraphStepWorkspace& ws,
                        const StepTuning& tuning = {});

// --- Test hooks (single-threaded setup only). ---------------------------

/// Forces the scalar pipeline even when SIMD kernels are available, so the
/// SIMD paths can be pinned bitwise against the scalar reference.
void set_batched_simd_enabled(bool enabled);

/// True when a SIMD fast path exists on this host (and is enabled).
[[nodiscard]] bool batched_simd_active();

/// Overrides the pipeline tile size (0 = derive from kBatchedWordBudget).
/// Exists to pin tile-size invariance by test.
void set_batched_tile_nodes_override(std::size_t tile_nodes);

}  // namespace plurality::graph
