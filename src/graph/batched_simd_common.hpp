// Scalar pieces shared by the ISA-specific batched-SIMD translation units
// (batched_simd_avx512.cpp / batched_simd_avx2.cpp): the fused kernels'
// rule tags and the one-node scalar head/tail fallback. No intrinsics live
// here — a single copy keeps the two ISA TUs from drifting apart on the
// parts the SIMD-vs-scalar bitwise test can only exercise on the host's
// selected table.
#pragma once

#include <type_traits>

#include "graph/batched_simd.hpp"
#include "graph/kernels_batched.hpp"

namespace plurality::graph::simd {

struct MajorityTag {};
struct VoterTag {};
struct UndecidedTag {};

/// One node of a fused kernel, scalar — the byte path of the scalar
/// pipeline evaluated via the raw Philox word function (bitwise identical
/// to both the tile pipeline and the vector lanes by construction). Used
/// for the unaligned heads/tails of every SIMD fused kernel.
template <class Tag>
inline void fused_scalar_node(const FusedArgs& args, std::uint64_t i) {
  namespace kb = kernels_batched;
  const auto sample = [&](unsigned s) -> state_t {
    const std::uint64_t w = static_cast<std::uint64_t>(s) * args.n_pad + i;
    const std::uint64_t x =
        rng::Philox4x32::word<kb::kSamplerRounds>(args.key, args.round, w);
    const std::uint32_t idx = kb::scale_word(x, args.bound);
    return args.neighbors == nullptr ? args.nodes8[idx]
                                     : args.nodes8[args.neighbors[i * args.bound + idx]];
  };
  state_t next;
  if constexpr (std::is_same_v<Tag, MajorityTag>) {
    const state_t a = sample(0), b = sample(1), c = sample(2);
    next = kernels::select((b == c) & (a != b), b, a);
  } else if constexpr (std::is_same_v<Tag, VoterTag>) {
    next = sample(0);
  } else {
    const state_t undecided = args.states - 1;
    const state_t own = args.nodes8[i];
    const state_t seen = sample(0);
    const state_t colored =
        kernels::select((seen == own) | (seen == undecided), own, undecided);
    next = kernels::select(own == undecided, seen, colored);
  }
  args.out8[i] = static_cast<std::uint8_t>(next);
  if (args.out32 != nullptr) args.out32[i] = next;  // absent in bytes-only mode
}

}  // namespace plurality::graph::simd
