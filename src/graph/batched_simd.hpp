// SIMD fast paths of the batched pipeline — interface only (no intrinsics
// here; implementations live in batched_simd_avx512.cpp /
// batched_simd_avx2.cpp, each compiled with its own ISA flags and selected
// at RUNTIME via __builtin_cpu_supports, so one binary runs correctly on
// any x86-64 host and other architectures fall back to the scalar
// pipeline).
//
// Every function here is bitwise-equivalent to the scalar passes in
// kernels_batched.hpp (same Philox words, same bounded-bias conversion,
// same rule algebra) — pinned by tests/graph/test_graph_batched.cpp, which
// runs the engine with SIMD forced off and on and requires identical
// states. SIMD availability can therefore never change results, only
// speed.
#pragma once

#include <cstddef>
#include <cstdint>

#include "rng/philox.hpp"
#include "support/types.hpp"

namespace plurality::graph::simd {

/// Arguments of a fused kernel invocation: passes 1-4 for `count` nodes
/// [base, base+count) of one chunk, byte-mirror states.
struct FusedArgs {
  rng::Philox4x32::Key key;
  std::uint64_t round;           // Philox counter domain
  std::uint64_t n_pad;           // padded node count of the word layout
  const std::uint32_t* neighbors;  // regular CSR rows; nullptr on the clique
  std::uint64_t bound;           // degree (regular) or n (complete)
  const std::uint8_t* nodes8;    // current states, byte mirror
  std::uint8_t* out8;            // next states, byte mirror scratch
  state_t* out32;                // next states, state_t scratch
  std::uint64_t base;            // first node (global id)
  std::size_t count;
  state_t states;                // state-space size (undecided rule uses k-1)
};

/// One ISA's kernel table. Null entries mean "no fused variant — use the
/// scalar pipeline for that stage/rule".
struct Ops {
  const char* name;  // "avx512" / "avx2" (diagnostics)
  /// Pass-1 block fill (R = kernels_batched::kSamplerRounds), bitwise equal
  /// to Philox4x32::fill_words<kSamplerRounds>.
  void (*fill_words)(rng::Philox4x32::Key key, std::uint64_t domain,
                     std::uint64_t word_lo, std::size_t count, std::uint64_t* out);
  // Fused generate+convert+gather+apply, degree-uniform CSR topology.
  void (*fused_regular_majority)(const FusedArgs& args);
  void (*fused_regular_voter)(const FusedArgs& args);
  void (*fused_regular_undecided)(const FusedArgs& args);
  // Fused variants on the implicit complete graph.
  void (*fused_complete_majority)(const FusedArgs& args);
  void (*fused_complete_voter)(const FusedArgs& args);
  void (*fused_complete_undecided)(const FusedArgs& args);
  /// Per-class byte count (k <= 16): local[j] += |{i in [lo,hi): data[i]==j}|.
  void (*count_u8)(const std::uint8_t* data, std::size_t lo, std::size_t hi,
                   state_t k, count_t* local);
};

/// The best kernel table this host supports, or nullptr (non-x86, old CPU,
/// or the library was built without the ISA TUs). Detection runs once.
const Ops* detect();

}  // namespace plurality::graph::simd
