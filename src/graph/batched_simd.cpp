// Runtime ISA detection for the batched pipeline's SIMD fast paths.
//
// The ISA-specific kernel tables live in their own translation units
// (batched_simd_avx512.cpp / batched_simd_avx2.cpp) compiled with the
// matching -m flags; THIS file is compiled with the project's portable
// flags and decides, once, which table the host can actually execute. That
// split is what keeps one binary correct everywhere: no AVX instruction
// exists outside the guarded TUs, and those are only entered after
// __builtin_cpu_supports says the host has the ISA.
#include "graph/batched_simd.hpp"

namespace plurality::graph::simd {

#if defined(PLURALITY_SIMD_AVX512)
const Ops* avx512_ops();  // defined in batched_simd_avx512.cpp
#endif
#if defined(PLURALITY_SIMD_AVX2)
const Ops* avx2_ops();  // defined in batched_simd_avx2.cpp
#endif

const Ops* detect() {
#if defined(__x86_64__) || defined(_M_X64)
#if defined(PLURALITY_SIMD_AVX512)
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512bw") && __builtin_cpu_supports("avx512vl")) {
    return avx512_ops();
  }
#endif
#if defined(PLURALITY_SIMD_AVX2)
  if (__builtin_cpu_supports("avx2")) {
    return avx2_ops();
  }
#endif
#endif
  return nullptr;
}

}  // namespace plurality::graph::simd
