// Multi-trial experiment driver for graph scenarios — the sparse-topology
// counterpart of core's run_trials, producing the same TrialSummary so the
// experiment binaries can sweep (topology x dynamics x k x adversary) grids
// with one reporting path.
//
// Each trial gets its own hash-derived stream family (layout, stepping, and
// factory/adversary randomness all derive from the trial index), so results
// are bitwise identical no matter how many OpenMP threads execute the
// trials. One GraphStepWorkspace per executing thread is reused across all
// of that thread's trials — warm trials allocate nothing per round.
#pragma once

#include "core/adversary.hpp"
#include "core/trials.hpp"
#include "graph/agent_graph.hpp"
#include "graph/graph_workspace.hpp"

namespace plurality::graph {

/// Compatibility wrapper (one release): the pre-scenario option shape.
/// The driver itself consumes core's CommonTrialOptions — this struct just
/// converts, so `max_rounds` and friends no longer fork from the count
/// side. backend/stop_predicate members of CommonTrialOptions do not exist
/// here because the graph driver ignores them (count path only).
struct GraphTrialOptions {
  std::uint64_t trials = 100;
  std::uint64_t seed = 1;
  bool parallel = true;
  /// Shuffle the node layout per trial (node position matters on sparse
  /// graphs; the layout stream is part of the trial's stream family).
  bool shuffle_layout = true;
  round_t max_rounds = 1'000'000;
  /// Applied after every protocol round (node-level; see corrupt_nodes).
  const Adversary* adversary = nullptr;
  /// Stepping pipeline (see EngineMode): Strict is the bitwise-pinned
  /// default; Batched runs the counter-based stage-split engine
  /// (distribution-equivalent, faster at scale).
  EngineMode mode = EngineMode::Strict;

  /// The CommonTrialOptions this legacy struct denotes.
  [[nodiscard]] CommonTrialOptions to_common() const;
};

/// Runs `options.trials` independent runs of `dynamics` on `graph` from
/// factory-generated starts (the factory contract matches core's
/// ConfigFactory: thread-safe / pure, configurations sized to the graph).
/// Count-path-only fields of CommonTrialOptions (backend, stop_predicate)
/// must be left at their defaults.
TrialSummary run_graph_trials(const Dynamics& dynamics, const AgentGraph& graph,
                              const ConfigFactory& factory,
                              const CommonTrialOptions& options);

/// Convenience overload: every trial starts from the same configuration.
TrialSummary run_graph_trials(const Dynamics& dynamics, const AgentGraph& graph,
                              const Configuration& start,
                              const CommonTrialOptions& options);

/// Compatibility wrappers over the CommonTrialOptions driver (one release;
/// bitwise-identical streams and summaries).
TrialSummary run_graph_trials(const Dynamics& dynamics, const AgentGraph& graph,
                              const ConfigFactory& factory,
                              const GraphTrialOptions& options);
TrialSummary run_graph_trials(const Dynamics& dynamics, const AgentGraph& graph,
                              const Configuration& start,
                              const GraphTrialOptions& options);

/// Node-level adaptor for the F-bounded adversaries (Section 3.1): lets the
/// count-level strategies act on an explicit node array. The strategy
/// decides HOW MANY nodes move between WHICH colors (by mutating `config`);
/// this adaptor then picks the affected node positions uniformly at random
/// among each demoted color (single-pass reservoir over ws.nodes, driven by
/// `gen`) and recolors them in place, keeping config and ws.nodes
/// consistent. Position choice is randomized rather than adversarial:
/// the paper's adversary is defined by its count-level move, and uniform
/// placement keeps the wiring strategy-agnostic.
void corrupt_nodes(const Adversary& adversary, Configuration& config,
                   state_t num_colors, round_t round, rng::Xoshiro256pp& gen,
                   GraphStepWorkspace& ws);

}  // namespace plurality::graph
