// Multi-trial experiment driver for graph scenarios — the sparse-topology
// counterpart of core's run_trials, producing the same TrialSummary so the
// experiment binaries can sweep (topology x dynamics x k x adversary) grids
// with one reporting path.
//
// Each trial gets its own hash-derived stream family (layout, stepping, and
// factory/adversary randomness all derive from the trial index), so results
// are bitwise identical no matter how many OpenMP threads execute the
// trials. One GraphStepWorkspace per executing thread is reused across all
// of that thread's trials — warm trials allocate nothing per round.
#pragma once

#include "core/adversary.hpp"
#include "core/trials.hpp"
#include "graph/agent_graph.hpp"
#include "graph/graph_workspace.hpp"

namespace plurality::graph {

/// Runs `options.trials` independent runs of `dynamics` on `graph` from
/// factory-generated starts (the factory contract matches core's
/// ConfigFactory: thread-safe / pure, configurations sized to the graph).
/// Count-path-only fields of CommonTrialOptions (backend, stop_predicate)
/// must be left at their defaults. options.observer (when set) sees every
/// materialized round, adversary move included, without perturbing any
/// stream (tests/core/test_observer.cpp).
TrialSummary run_graph_trials(const Dynamics& dynamics, const AgentGraph& graph,
                              const ConfigFactory& factory,
                              const CommonTrialOptions& options);

/// Auto-enable threshold of the bytes-only memory mode (below, the u32
/// arrays cost little and keep GraphSimulation-style state access around).
inline constexpr count_t kBytesOnlyAutoThreshold = count_t{1} << 26;

/// Memory-mode policy of run_graph_trials: true when trials at (n, k)
/// should run bytes-only (state = the ~2n-byte double-buffered byte array,
/// no u32 node arrays — bitwise-identical results, see
/// GraphStepWorkspace::bytes_only). Requires k <= 256 and no adversary;
/// auto-enables at n >= kBytesOnlyAutoThreshold, subject to
/// set_graph_bytes_only_override.
bool graph_bytes_only_auto(count_t n, state_t k, bool has_adversary);

/// Test/bench hook: -1 = auto threshold (default), 0 = never, 1 = always
/// when eligible (k <= 256, no adversary).
void set_graph_bytes_only_override(int mode);

/// Convenience overload: every trial starts from the same configuration.
TrialSummary run_graph_trials(const Dynamics& dynamics, const AgentGraph& graph,
                              const Configuration& start,
                              const CommonTrialOptions& options);

/// Node-level adaptor for the F-bounded adversaries (Section 3.1): lets the
/// count-level strategies act on an explicit node array. The strategy
/// decides HOW MANY nodes move between WHICH colors (by mutating `config`);
/// this adaptor then picks the affected node positions uniformly at random
/// among each demoted color (single-pass reservoir over ws.nodes, driven by
/// `gen`) and recolors them in place, keeping config and ws.nodes
/// consistent. Position choice is randomized rather than adversarial:
/// the paper's adversary is defined by its count-level move, and uniform
/// placement keeps the wiring strategy-agnostic.
void corrupt_nodes(const Adversary& adversary, Configuration& config,
                   state_t num_colors, round_t round, rng::Xoshiro256pp& gen,
                   GraphStepWorkspace& ws);

}  // namespace plurality::graph
