#include "graph/agent_graph.hpp"

#include <algorithm>
#include <limits>

#include "core/hplurality.hpp"
#include "core/majority.hpp"
#include "core/median.hpp"
#include "core/undecided.hpp"
#include "core/voter.hpp"
#include "graph/kernels.hpp"
#include "graph/step_batched.hpp"
#include "graph/step_push.hpp"
#include "rng/distributions.hpp"
#include "support/check.hpp"

#if defined(PLURALITY_HAVE_OPENMP)
#include <omp.h>
#endif

namespace plurality::graph {

// ------------------------------------------------------------ AgentGraph ---

AgentGraph AgentGraph::complete(count_t n) {
  PLURALITY_REQUIRE(n >= 1, "AgentGraph::complete: need at least one node");
  AgentGraph g;
  g.n_ = n;
  g.complete_ = true;
  g.min_degree_ = n;  // self included — the paper's clique sampling model
  g.max_degree_ = n;
  return g;
}

AgentGraph AgentGraph::implicit(const ImplicitTopology& topo) {
  PLURALITY_REQUIRE(topo.implicit(), "AgentGraph::implicit: empty descriptor");
  if (topo.family == ImplicitTopology::Family::Gossip) {
    // Gossip IS the implicit complete graph; tag the descriptor so the
    // scenario layer can report how the graph was built.
    AgentGraph g = complete(static_cast<count_t>(topo.n));
    g.implicit_ = topo;
    return g;
  }
  AgentGraph g;
  g.n_ = static_cast<count_t>(topo.n);
  g.complete_ = false;
  g.arcs_ = topo.n * topo.degree;  // same count the arena twin would store
  g.min_degree_ = static_cast<count_t>(topo.degree);
  g.max_degree_ = static_cast<count_t>(topo.degree);
  g.implicit_ = topo;
  return g;
}

AgentGraph AgentGraph::from_topology(const Topology& topology) {
  if (topology.kind() == Topology::Kind::CompleteImplicit) {
    return complete(topology.num_nodes());
  }
  const count_t n = topology.num_nodes();
  PLURALITY_REQUIRE(n <= std::numeric_limits<std::uint32_t>::max(),
                    "AgentGraph: node ids must fit 32 bits (n=" << n << ")");
  AgentGraph g;
  g.n_ = n;
  g.complete_ = false;
  g.arcs_ = topology.num_arcs();
  // One arena: n+1 offset words, then the neighbor ids packed two per word.
  const std::size_t words =
      static_cast<std::size_t>(n) + 1 + (static_cast<std::size_t>(g.arcs_) + 1) / 2;
  g.arena_.assign(words, 0);
  std::uint64_t* offsets = g.arena_.data();
  auto* neighbors = reinterpret_cast<std::uint32_t*>(g.arena_.data() + n + 1);
  offsets[0] = 0;
  g.min_degree_ = n > 0 ? topology.degree(0) : 0;
  g.max_degree_ = g.min_degree_;
  std::size_t cursor = 0;
  for (count_t v = 0; v < n; ++v) {
    const auto neigh = topology.neighbors(v);
    for (const count_t u : neigh) neighbors[cursor++] = static_cast<std::uint32_t>(u);
    offsets[v + 1] = cursor;
    const auto deg = static_cast<count_t>(neigh.size());
    g.min_degree_ = std::min(g.min_degree_, deg);
    g.max_degree_ = std::max(g.max_degree_, deg);
  }
  PLURALITY_CHECK(cursor == g.arcs_);
  return g;
}

AgentGraph AgentGraph::from_topology(const Topology& topology,
                                     std::span<const std::uint32_t> new_of) {
  PLURALITY_REQUIRE(topology.kind() == Topology::Kind::Explicit,
                    "AgentGraph: only explicit topologies can be relabeled "
                    "(the implicit complete graph has no layout)");
  const count_t n = topology.num_nodes();
  PLURALITY_REQUIRE(n <= std::numeric_limits<std::uint32_t>::max(),
                    "AgentGraph: node ids must fit 32 bits (n=" << n << ")");
  PLURALITY_REQUIRE(new_of.size() == n, "AgentGraph: relabel permutation has "
                                            << new_of.size() << " entries for " << n
                                            << " nodes");
  // Invert while checking that new_of really is a permutation of [0, n).
  constexpr std::uint32_t kUnset = 0xFFFFFFFFu;
  std::vector<std::uint32_t> orig_of(n, kUnset);
  for (count_t v = 0; v < n; ++v) {
    const std::uint32_t nv = new_of[v];
    PLURALITY_REQUIRE(nv < n && orig_of[nv] == kUnset,
                      "AgentGraph: relabel map is not a permutation at node " << v);
    orig_of[nv] = static_cast<std::uint32_t>(v);
  }

  AgentGraph g;
  g.n_ = n;
  g.complete_ = false;
  g.arcs_ = topology.num_arcs();
  const std::size_t words =
      static_cast<std::size_t>(n) + 1 + (static_cast<std::size_t>(g.arcs_) + 1) / 2;
  g.arena_.assign(words, 0);
  std::uint64_t* offsets = g.arena_.data();
  auto* neighbors = reinterpret_cast<std::uint32_t*>(g.arena_.data() + n + 1);
  offsets[0] = 0;
  g.min_degree_ = n > 0 ? topology.degree(orig_of[0]) : 0;
  g.max_degree_ = g.min_degree_;
  std::size_t cursor = 0;
  // Row of new id i = the original node's row mapped through new_of, in the
  // ORIGINAL row order — so sample index j lands on the same (relabeled)
  // neighbor it would have pre-relabel, which the equivariance proof needs.
  for (count_t i = 0; i < n; ++i) {
    const auto neigh = topology.neighbors(orig_of[i]);
    for (const count_t u : neigh) neighbors[cursor++] = new_of[u];
    offsets[i + 1] = cursor;
    const auto deg = static_cast<count_t>(neigh.size());
    g.min_degree_ = std::min(g.min_degree_, deg);
    g.max_degree_ = std::max(g.max_degree_, deg);
  }
  PLURALITY_CHECK(cursor == g.arcs_);
  g.orig_of_ = std::move(orig_of);
  return g;
}

AgentGraph AgentGraph::from_edges(count_t n,
                                  std::span<const std::pair<count_t, count_t>> edges) {
  return from_topology(Topology::from_edges(n, edges));
}

count_t AgentGraph::degree(count_t v) const {
  PLURALITY_REQUIRE(v < n_, "AgentGraph::degree: node out of range");
  if (complete_) return n_;
  if (is_implicit()) return static_cast<count_t>(implicit_.degree);
  return offsets()[v + 1] - offsets()[v];
}

std::span<const std::uint32_t> AgentGraph::neighbors_of(count_t v) const {
  PLURALITY_REQUIRE(!complete_ && !is_implicit(),
                    "AgentGraph::neighbors_of: implicit graph stores no list");
  PLURALITY_REQUIRE(v < n_, "AgentGraph::neighbors_of: node out of range");
  const std::uint64_t lo = offsets()[v];
  return {neighbors() + lo, static_cast<std::size_t>(offsets()[v + 1] - lo)};
}

// ---------------------------------------------------------------- engine ---

void load_nodes(const Configuration& start, bool shuffle_layout,
                const rng::StreamFactory& streams, GraphStepWorkspace& ws,
                const AgentGraph* graph) {
  // On a relabeled graph the block assignment + shuffle run in ORIGINAL id
  // space (staged in the double buffer — no extra memory) and the result is
  // permuted into the new numbering. The stream consumption is identical
  // either way, so the relabeled trial starts from exactly the permuted
  // image of the identity-labeled trial's initial state.
  const bool relabeled = graph != nullptr && graph->is_relabeled();
  const std::uint32_t* orig =
      relabeled ? graph->orig_of().data() : nullptr;
  if (ws.bytes_only) {
    // The byte array IS the state. rng::shuffle's swap sequence depends
    // only on the element count, so shuffling bytes here yields the same
    // node->state assignment as the u32 path — bitwise-identical runs.
    PLURALITY_REQUIRE(start.k() <= 256,
                      "load_nodes: bytes-only mode needs k <= 256");
    const std::size_t n = start.n();
    ws.nodes8.resize(n + 4);
    ws.scratch8.resize(n + 4);
    std::uint8_t* staged = relabeled ? ws.scratch8.data() : ws.nodes8.data();
    std::size_t pos = 0;
    for (state_t j = 0; j < start.k(); ++j) {
      const count_t c = start.at(j);
      std::fill_n(staged + pos, c, static_cast<std::uint8_t>(j));
      pos += c;
    }
    if (shuffle_layout) {
      rng::Xoshiro256pp gen = streams.stream(kLayoutStream);
      rng::shuffle(gen, staged, n);
    }
    if (relabeled) {
      for (std::size_t i = 0; i < n; ++i) ws.nodes8[i] = staged[orig[i]];
    }
    std::fill_n(ws.nodes8.begin() + static_cast<std::ptrdiff_t>(n), 4,
                std::uint8_t{0});  // SIMD tail slack
    ws.mirror_fresh = true;  // nodes8 is authoritative by definition
    return;
  }
  ws.nodes.resize(start.n());
  ws.scratch.resize(start.n());
  state_t* staged = relabeled ? ws.scratch.data() : ws.nodes.data();
  std::size_t pos = 0;
  for (state_t j = 0; j < start.k(); ++j) {
    const count_t c = start.at(j);
    std::fill_n(staged + pos, c, j);
    pos += c;
  }
  if (shuffle_layout) {
    rng::Xoshiro256pp gen = streams.stream(kLayoutStream);
    rng::shuffle(gen, staged, ws.nodes.size());
  }
  if (relabeled) {
    for (std::size_t i = 0; i < ws.nodes.size(); ++i) {
      ws.nodes[i] = staged[orig[i]];
    }
  }
  ws.mirror_fresh = false;  // nodes rewritten; the byte mirror is stale
}

namespace {

/// Shared chunked-step body, instantiated once per fused rule. The chunk
/// grid, stream derivation, and publish order are bit-for-bit the frozen
/// reference's (reference_sim.cpp); only the per-node inner loop differs.
template <class Rule, typename TNode>
void chunk_sweep(const Rule& rule, const TNode* nodes, TNode* mirror_out,
                 const AgentGraph& graph, state_t k, const rng::StreamFactory& streams,
                 round_t round, GraphStepWorkspace& ws, const StepTuning& tuning) {
  const std::size_t n = graph.num_nodes();
  const std::size_t chunk_size = (n + kGraphChunks - 1) / kGraphChunks;
  // Bytes-only mode: no u32 array exists; publish() skips the wide write.
  state_t* out = ws.bytes_only ? nullptr : ws.scratch.data();
  count_t* partials = ws.partials.data();
  const bool complete = graph.is_complete();
  const bool implicit = graph.is_implicit();
  const std::uint64_t* offsets = (complete || implicit) ? nullptr : graph.offsets();
  const std::uint32_t* neighbors = (complete || implicit) ? nullptr : graph.neighbors();
  // Degree-uniform graphs (cycle, torus, random-regular) take the
  // specialized kernel: same results, no per-node offset loads.
  const bool regular =
      !complete && !implicit && graph.min_degree() == graph.max_degree();
  const std::uint64_t uniform_degree = regular ? graph.min_degree() : 0;
  const unsigned prefetch = tuning.prefetch_distance;

  if (graph.is_relabeled()) {
    // Relabeled graphs step with one hash-derived stream PER NODE, indexed
    // by the node's ORIGINAL id: the draw sequence a node consumes is then
    // independent of where the layout placed it, so a relabeled run is the
    // identity-relabeled run mapped through the permutation (states,
    // counts, summaries — the strict half of the equivariance contract).
    // The per-(round, chunk) shared-stream shape of the default path cannot
    // deliver that (a node's draws would depend on its chunk position), so
    // this is a deliberately different stream derivation — which is why
    // from_topology's relabeling overload always marks the graph, identity
    // permutation included. Relabeled graphs are arena-backed by
    // construction, so only the regular/CSR row shapes occur here.
    const rng::StreamFactory node_streams =
        streams.child(kRelabelStreamTag).child(round);
    const std::uint32_t* orig = graph.orig_of().data();
#if defined(PLURALITY_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
    for (unsigned chunk = 0; chunk < kGraphChunks; ++chunk) {
      const std::size_t lo = static_cast<std::size_t>(chunk) * chunk_size;
      const std::size_t hi = std::min(n, lo + chunk_size);
      count_t* local = partials + static_cast<std::size_t>(chunk) * k;
      std::fill(local, local + k, count_t{0});
      for (std::size_t i = lo; i < hi; ++i) {
        rng::Xoshiro256pp gen = node_streams.stream(orig[i]);
        kernels::step_one_csr(rule, nodes, out, mirror_out, local, i, offsets,
                              neighbors, k, gen);
      }
    }
    return;
  }

#if defined(PLURALITY_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
  for (unsigned chunk = 0; chunk < kGraphChunks; ++chunk) {
    const std::size_t lo = static_cast<std::size_t>(chunk) * chunk_size;
    const std::size_t hi = std::min(n, lo + chunk_size);
    count_t* local = partials + static_cast<std::size_t>(chunk) * k;
    std::fill(local, local + k, count_t{0});
    if (lo < hi) {
      rng::Xoshiro256pp gen = streams.stream(round * kGraphChunks + chunk);
      if (complete) {
        kernels::run_chunk_complete(rule, nodes, out, mirror_out, local, lo, hi, n, k,
                                    gen, prefetch);
      } else if (implicit) {
        kernels::run_chunk_implicit(rule, nodes, out, mirror_out, local, lo, hi,
                                    graph.implicit_topology(), k, gen, prefetch);
      } else if (regular) {
        kernels::run_chunk_regular(rule, nodes, out, mirror_out, local, lo, hi,
                                   neighbors, uniform_degree, k, gen, prefetch);
      } else {
        kernels::run_chunk_csr(rule, nodes, out, mirror_out, local, lo, hi, offsets,
                               neighbors, k, gen, prefetch);
      }
    }
  }
}

template <class Rule>
void step_all_chunks(const Rule& rule, const AgentGraph& graph, Configuration& config,
                     const rng::StreamFactory& streams, round_t round,
                     GraphStepWorkspace& ws, const StepTuning& tuning) {
  const std::size_t n = graph.num_nodes();
  const state_t k = config.k();

  if (k <= 256) {
    // Sample from the byte-wide mirror of the node states: the random
    // sample loads then touch a 4x denser array (L1/L2-resident at bench
    // scale). Values are identical, so results are bitwise unaffected. The
    // sweep emits the next round's mirror as it goes (publish() in
    // kernels.hpp); the explicit refresh below only runs when somebody
    // rewrote ws.nodes since the last sweep (trial start, adversary).
    std::uint8_t* mirror = ws.nodes8.data();
    // Bytes-only mode has no u32 array to refresh from; load_nodes writes
    // nodes8 directly and nothing else can stale it (corrupt_nodes rejects
    // the mode).
    if (!ws.bytes_only && !ws.mirror_fresh) {
      const state_t* nodes = ws.nodes.data();
#if defined(PLURALITY_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
      for (unsigned chunk = 0; chunk < kGraphChunks; ++chunk) {
        const std::size_t chunk_size = (n + kGraphChunks - 1) / kGraphChunks;
        const std::size_t lo = static_cast<std::size_t>(chunk) * chunk_size;
        const std::size_t hi = std::min(n, lo + chunk_size);
        for (std::size_t i = lo; i < hi; ++i) {
          mirror[i] = static_cast<std::uint8_t>(nodes[i]);
        }
      }
    }
    chunk_sweep(rule, mirror, ws.scratch8.data(), graph, k, streams, round, ws, tuning);
    ws.nodes8.swap(ws.scratch8);
    ws.mirror_fresh = true;
  } else {
    state_t* no_mirror = nullptr;
    chunk_sweep(rule, ws.nodes.data(), no_mirror, graph, k, streams, round, ws, tuning);
  }

  ws.nodes.swap(ws.scratch);  // no-op (both empty) in bytes-only mode
  std::fill(ws.counts.begin(), ws.counts.end(), count_t{0});
  for (unsigned chunk = 0; chunk < kGraphChunks; ++chunk) {
    const count_t* local = ws.partials.data() + static_cast<std::size_t>(chunk) * k;
    for (state_t j = 0; j < k; ++j) ws.counts[j] += local[j];
  }
  config.assign_counts(ws.counts);
}

}  // namespace

void step_graph(const Dynamics& dynamics, const AgentGraph& graph,
                Configuration& config, const rng::StreamFactory& streams,
                round_t round, GraphStepWorkspace& ws, EngineMode mode,
                const StepTuning& tuning) {
  const count_t n = graph.num_nodes();
  PLURALITY_REQUIRE(config.n() == n, "step_graph: configuration has "
                                         << config.n() << " nodes but graph has " << n);
  PLURALITY_REQUIRE(ws.state_size() == n,
                    "step_graph: workspace holds " << ws.state_size()
                        << " node states for " << n << " nodes — call load_nodes first");
  PLURALITY_REQUIRE(graph.is_complete() || graph.min_degree() >= 1,
                    "step_graph: isolated vertices cannot sample");
  ws.prepare(n, config.k());

  // Push pipeline (scatter formulation of the batched law) for arity-1
  // dynamics; bitwise-equal to Batched, so the fallback chain Push ->
  // Batched -> Strict only ever widens the kernel coverage, never changes
  // a covered result.
  if (mode == EngineMode::Push && push_has_kernel(dynamics) &&
      n <= 0xffffffffULL) {
    step_graph_push(dynamics, graph, config, streams, round, ws, tuning);
    return;
  }

  // Batched pipeline for the fused dynamics; rule tables and other
  // unregistered dynamics keep the strict path (their virtual rule may
  // consume generator randomness mid-node, which the stage-split layout
  // cannot address).
  if ((mode == EngineMode::Batched || mode == EngineMode::Push) &&
      batched_has_kernel(dynamics)) {
    step_graph_batched(dynamics, graph, config, streams, round, ws, tuning);
    return;
  }

  // One dynamic_cast chain per ROUND (not per node) selects the fused
  // kernel; everything inside the chunk loop is then fully inlined.
  if (const auto* d = dynamic_cast<const ThreeMajority*>(&dynamics)) {
    (void)d;
    step_all_chunks(kernels::MajorityRule{}, graph, config, streams, round, ws, tuning);
  } else if (const auto* v = dynamic_cast<const Voter*>(&dynamics)) {
    (void)v;
    step_all_chunks(kernels::VoterRule{}, graph, config, streams, round, ws, tuning);
  } else if (const auto* t = dynamic_cast<const TwoChoices*>(&dynamics)) {
    (void)t;
    step_all_chunks(kernels::TwoChoicesRule{}, graph, config, streams, round, ws,
                    tuning);
  } else if (const auto* u = dynamic_cast<const UndecidedState*>(&dynamics)) {
    (void)u;
    step_all_chunks(kernels::UndecidedRule{}, graph, config, streams, round, ws,
                    tuning);
  } else if (const auto* m = dynamic_cast<const MedianDynamics*>(&dynamics)) {
    (void)m;
    step_all_chunks(kernels::MedianRule{}, graph, config, streams, round, ws, tuning);
  } else if (const auto* m2 = dynamic_cast<const MedianOwnTwo*>(&dynamics)) {
    (void)m2;
    step_all_chunks(kernels::MedianOwnTwoRule{}, graph, config, streams, round, ws,
                    tuning);
  } else if (const auto* h = dynamic_cast<const HPlurality*>(&dynamics)) {
    PLURALITY_CHECK_MSG(h->sample_arity() <= 64,
                        "graph backend supports sample arity <= 64");
    step_all_chunks(kernels::HPluralityRule{h->sample_arity()}, graph, config, streams,
                    round, ws, tuning);
  } else {
    const unsigned arity = dynamics.sample_arity();
    PLURALITY_CHECK_MSG(arity <= 64, "graph backend supports sample arity <= 64");
    step_all_chunks(kernels::GenericRule{&dynamics, arity}, graph, config, streams,
                    round, ws, tuning);
  }
}

// ------------------------------------------------------- GraphSimulation ---

GraphSimulation::GraphSimulation(const Dynamics& dynamics, const Topology& topology,
                                 const Configuration& start, std::uint64_t seed,
                                 bool shuffle_layout, EngineMode mode)
    : dynamics_(dynamics),
      owned_graph_(AgentGraph::from_topology(topology)),
      graph_(&owned_graph_),
      config_(start),
      streams_(seed),
      mode_(mode) {
  init(start, shuffle_layout);
}

GraphSimulation::GraphSimulation(const Dynamics& dynamics, const AgentGraph& graph,
                                 const Configuration& start, std::uint64_t seed,
                                 bool shuffle_layout, EngineMode mode)
    : dynamics_(dynamics), graph_(&graph), config_(start), streams_(seed), mode_(mode) {
  init(start, shuffle_layout);
}

void GraphSimulation::init(const Configuration& start, bool shuffle_layout) {
  PLURALITY_REQUIRE(start.n() == graph_->num_nodes(),
                    "GraphSimulation: configuration has " << start.n()
                        << " nodes but topology has " << graph_->num_nodes());
  PLURALITY_REQUIRE(graph_->is_complete() || graph_->min_degree() >= 1,
                    "GraphSimulation: isolated vertices cannot sample");
  ws_.prepare(start.n(), start.k());
  load_nodes(start, shuffle_layout, streams_, ws_, graph_);
}

void GraphSimulation::step() {
  step_graph(dynamics_, *graph_, config_, streams_, round_, ws_, mode_, tuning_);
  ++round_;
}

round_t GraphSimulation::run_to_consensus(round_t max_rounds) {
  const state_t num_colors = dynamics_.num_colors(config_.k());
  for (round_t r = 1; r <= max_rounds; ++r) {
    step();
    if (config_.color_consensus(num_colors)) return r;
  }
  return max_rounds;
}

}  // namespace plurality::graph
