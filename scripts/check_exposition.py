#!/usr/bin/env python3
"""Validate a Prometheus text-exposition document (stdlib only).

CI's telemetry smoke job scrapes plurality_sweepd's --metrics-port endpoint
and pipes the body through this script, so a malformed exposition fails the
build instead of silently breaking whoever points a real scraper at it.

Checks:
  * every line is a comment (# HELP / # TYPE), blank, or a sample
    ``name{label="value",...} value`` with a finite-or-Inf/NaN float value
  * metric and label names match the Prometheus grammar
  * label values use only the three legal escapes (\\\\, \\", \\n)
  * a family's # TYPE line appears at most once, before its samples
  * # TYPE kinds are counter/gauge/histogram/summary/untyped
  * histogram families carry _bucket/_sum/_count samples with
    non-decreasing cumulative buckets ending in le="+Inf"

Usage:
  check_exposition.py [FILE] [--require NAME ...]   # FILE defaults to stdin
  check_exposition.py --self-test                   # run the embedded tests

Exit codes: 0 valid (and all --require names present), 1 invalid, 2 usage.
"""

import argparse
import math
import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
TYPE_KINDS = ("counter", "gauge", "histogram", "summary", "untyped")


class ExpositionError(ValueError):
    """One grammar violation, carrying the 1-based line number."""

    def __init__(self, lineno, message):
        super().__init__("line %d: %s" % (lineno, message))
        self.lineno = lineno


def _parse_value(text, lineno):
    if text in ("+Inf", "-Inf", "Inf"):
        return math.inf if not text.startswith("-") else -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise ExpositionError(lineno, "unparsable sample value %r" % text)


def _parse_labels(block, lineno):
    """Parses the inside of a {...} block into an ordered (name, value) list."""
    labels = []
    i = 0
    while i < len(block):
        match = re.match(r"[a-zA-Z_][a-zA-Z0-9_]*", block[i:])
        if not match:
            raise ExpositionError(lineno, "bad label name at %r" % block[i:])
        name = match.group(0)
        i += len(name)
        if not block[i:].startswith('="'):
            raise ExpositionError(lineno, 'label %s missing ="..." value' % name)
        i += 2
        value = []
        while True:
            if i >= len(block):
                raise ExpositionError(lineno, "unterminated label value for %s" % name)
            c = block[i]
            if c == "\\":
                if i + 1 >= len(block) or block[i + 1] not in ("\\", '"', "n"):
                    raise ExpositionError(lineno, "illegal escape in label %s" % name)
                value.append({"\\": "\\", '"': '"', "n": "\n"}[block[i + 1]])
                i += 2
            elif c == '"':
                i += 1
                break
            else:
                value.append(c)
                i += 1
        labels.append((name, "".join(value)))
        if i < len(block):
            if block[i] != ",":
                raise ExpositionError(lineno, "expected ',' between labels")
            i += 1
    return labels


def parse_sample(line, lineno):
    """Parses one sample line into (name, labels, value)."""
    brace = line.find("{")
    if brace >= 0:
        close = line.rfind("}")
        if close < brace:
            raise ExpositionError(lineno, "unbalanced '{' in sample line")
        name = line[:brace]
        labels = _parse_labels(line[brace + 1 : close], lineno)
        rest = line[close + 1 :].strip()
    else:
        parts = line.split(None, 1)
        if len(parts) != 2:
            raise ExpositionError(lineno, "sample line needs a name and a value")
        name, rest = parts
        labels = []
    if not METRIC_NAME.match(name):
        raise ExpositionError(lineno, "bad metric name %r" % name)
    fields = rest.split()
    if not fields or len(fields) > 2:  # optional trailing timestamp
        raise ExpositionError(lineno, "expected 'value [timestamp]' after name")
    value = _parse_value(fields[0], lineno)
    if len(fields) == 2 and not re.match(r"^-?\d+$", fields[1]):
        raise ExpositionError(lineno, "bad timestamp %r" % fields[1])
    return name, labels, value


def _family_of(name, typed_histograms):
    """Maps a sample name to its family (strips histogram suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in typed_histograms:
            return name[: -len(suffix)]
    return name


def check_exposition(text):
    """Validates the document; returns {sample name -> count}. Raises
    ExpositionError on the first violation."""
    types = {}
    seen_samples = {}
    histogram_state = {}  # family -> {"last_cumulative", "saw_inf", labels_key}

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip("\r")
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3 or not METRIC_NAME.match(parts[2]):
                    raise ExpositionError(lineno, "bad metric name in %s line" % parts[1])
                if parts[1] == "TYPE":
                    if len(parts) != 4 or parts[3] not in TYPE_KINDS:
                        raise ExpositionError(
                            lineno, "TYPE kind must be one of %s" % (TYPE_KINDS,))
                    name = parts[2]
                    if name in types:
                        raise ExpositionError(lineno, "duplicate TYPE for %s" % name)
                    if any(_family_of(s, ()) == name for s in seen_samples):
                        raise ExpositionError(
                            lineno, "TYPE for %s after its samples" % name)
                    types[name] = parts[3]
            continue  # other comments are legal and ignored
        name, labels, value = parse_sample(line, lineno)
        typed_histograms = tuple(n for n, k in types.items() if k == "histogram")
        family = _family_of(name, typed_histograms)
        seen_samples[name] = seen_samples.get(name, 0) + 1

        if family in typed_histograms and name == family + "_bucket":
            le = [v for k, v in labels if k == "le"]
            if len(le) != 1:
                raise ExpositionError(lineno, "%s needs exactly one le label" % name)
            key = tuple((k, v) for k, v in labels if k != "le")
            state = histogram_state.setdefault(
                (family, key), {"last": -1.0, "saw_inf": False})
            if state["saw_inf"]:
                state = histogram_state[(family, key)] = {"last": -1.0, "saw_inf": False}
            if value < state["last"]:
                raise ExpositionError(
                    lineno, "%s cumulative bucket counts decreased" % family)
            state["last"] = value
            if le[0] == "+Inf":
                state["saw_inf"] = True
        if types.get(family) == "counter" and value < 0:
            raise ExpositionError(lineno, "counter %s has negative value" % family)

    for (family, key), state in histogram_state.items():
        if not state["saw_inf"]:
            raise ExpositionError(0, "histogram %s%r has no +Inf bucket" % (family, key))
    return seen_samples


def _require_present(seen_samples, required):
    """Returns the subset of `required` with no matching sample family."""
    missing = []
    for name in required:
        if name in seen_samples:
            continue
        if any(s.startswith(name + suffix)
               for s in seen_samples
               for suffix in ("_bucket", "_sum", "_count", "{")):
            continue
        missing.append(name)
    return missing


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("file", nargs="?", help="exposition file (default stdin)")
    parser.add_argument("--require", action="append", default=[], metavar="NAME",
                        help="fail unless a sample of this family is present")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded unit tests and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        import unittest

        result = unittest.main(module=sys.modules[__name__], argv=["check_exposition"],
                               exit=False).result
        return 0 if result.wasSuccessful() else 1

    text = open(args.file, encoding="utf-8").read() if args.file else sys.stdin.read()
    try:
        seen = check_exposition(text)
    except ExpositionError as error:
        print("check_exposition: %s" % error, file=sys.stderr)
        return 1
    missing = _require_present(seen, args.require)
    if missing:
        print("check_exposition: missing required metrics: %s" % ", ".join(missing),
              file=sys.stderr)
        return 1
    print("check_exposition: OK (%d samples, %d names)"
          % (sum(seen.values()), len(seen)))
    return 0


# --- embedded tests (python3 check_exposition.py --self-test) ---------------

import unittest  # noqa: E402  (kept below main() so --help stays fast to read)


VALID = """\
# HELP requests_total Total requests
# TYPE requests_total counter
requests_total 3
requests_total{cell="c0"} 2
# TYPE temp gauge
temp 1.5
# TYPE lat histogram
lat_bucket{le="1"} 1
lat_bucket{le="2.5"} 2
lat_bucket{le="+Inf"} 3
lat_sum 11.5
lat_count 3
"""


class CheckExpositionTest(unittest.TestCase):
    def test_valid_document(self):
        seen = check_exposition(VALID)
        self.assertEqual(seen["requests_total"], 2)
        self.assertEqual(seen["lat_bucket"], 3)

    def test_empty_document_is_valid(self):
        self.assertEqual(check_exposition(""), {})

    def test_escaped_label_values(self):
        seen = check_exposition('g{path="a\\\\b\\"c\\nd"} 1\n')
        self.assertEqual(seen["g"], 1)

    def test_rejects_bad_value(self):
        with self.assertRaises(ExpositionError):
            check_exposition("m twelve\n")

    def test_rejects_bad_metric_name(self):
        with self.assertRaises(ExpositionError):
            check_exposition("9bad 1\n")

    def test_rejects_bad_escape(self):
        with self.assertRaises(ExpositionError):
            check_exposition('m{l="a\\x"} 1\n')

    def test_rejects_unterminated_label(self):
        with self.assertRaises(ExpositionError):
            check_exposition('m{l="open 1\n')

    def test_rejects_type_after_samples(self):
        with self.assertRaises(ExpositionError):
            check_exposition("m 1\n# TYPE m counter\n")

    def test_rejects_duplicate_type(self):
        with self.assertRaises(ExpositionError):
            check_exposition("# TYPE m counter\n# TYPE m counter\nm 1\n")

    def test_rejects_unknown_kind(self):
        with self.assertRaises(ExpositionError):
            check_exposition("# TYPE m widget\n")

    def test_rejects_negative_counter(self):
        with self.assertRaises(ExpositionError):
            check_exposition("# TYPE m counter\nm -1\n")

    def test_rejects_decreasing_histogram_buckets(self):
        with self.assertRaises(ExpositionError):
            check_exposition(
                '# TYPE h histogram\n'
                'h_bucket{le="1"} 5\nh_bucket{le="+Inf"} 3\nh_sum 1\nh_count 5\n')

    def test_rejects_histogram_without_inf_bucket(self):
        with self.assertRaises(ExpositionError):
            check_exposition(
                '# TYPE h histogram\nh_bucket{le="1"} 5\nh_sum 1\nh_count 5\n')

    def test_timestamps_and_comments_are_legal(self):
        seen = check_exposition("# a freeform comment\nm 1 1700000000\n")
        self.assertEqual(seen["m"], 1)

    def test_require_matches_families_and_suffixes(self):
        seen = check_exposition(VALID)
        self.assertEqual(_require_present(seen, ["requests_total", "lat"]), [])
        self.assertEqual(_require_present(seen, ["absent_total"]), ["absent_total"])


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
