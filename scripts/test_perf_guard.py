#!/usr/bin/env python3
"""Unit tests for perf_guard.py (run as a ctest; stdlib unittest only).

Each case writes a baseline/measured document pair into a temp dir and
runs the guard as a subprocess, asserting on exit code and the lines the
docstring promises: [ok]/[FAIL] per metric, [skip] for baseline-only
cells, [new ] for measured-only cells, [map ] for renames.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

GUARD = os.path.join(os.path.dirname(os.path.abspath(__file__)), "perf_guard.py")


def doc(cells, mode="quick", n=100000, threads=1):
    return {
        "mode": mode,
        "n": n,
        "threads": threads,
        "topologies": [
            {
                "topology": topo,
                "dynamics": dyn,
                "strict_node_updates_per_sec": strict,
                "batched_node_updates_per_sec": batched,
            }
            for (topo, dyn, strict, batched) in cells
        ],
    }


class PerfGuardTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self._tmp.cleanup)

    def run_guard(self, base, meas, *extra):
        base_path = os.path.join(self._tmp.name, "base.json")
        meas_path = os.path.join(self._tmp.name, "meas.json")
        with open(base_path, "w") as f:
            json.dump(base, f)
        with open(meas_path, "w") as f:
            json.dump(meas, f)
        proc = subprocess.run(
            [sys.executable, GUARD, base_path, meas_path, *extra],
            capture_output=True, text=True)
        return proc.returncode, proc.stdout, proc.stderr

    def test_within_tolerance_passes(self):
        base = doc([("ring", "3-majority", 100.0, 400.0)])
        meas = doc([("ring", "3-majority", 90.0, 380.0)])
        code, out, _ = self.run_guard(base, meas)
        self.assertEqual(code, 0)
        self.assertIn("all 2 cells within tolerance", out)

    def test_regression_fails(self):
        base = doc([("ring", "3-majority", 100.0, 400.0)])
        meas = doc([("ring", "3-majority", 100.0, 100.0)])
        code, out, err = self.run_guard(base, meas)
        self.assertEqual(code, 1)
        self.assertIn("FAIL", out)
        self.assertIn("batched_node_updates_per_sec", err)

    def test_baseline_only_cell_is_skipped_not_fatal(self):
        base = doc([("ring", "3-majority", 100.0, 400.0),
                    ("torus", "voter", 50.0, 200.0)])
        meas = doc([("ring", "3-majority", 100.0, 400.0)])
        code, out, _ = self.run_guard(base, meas)
        self.assertEqual(code, 0)
        self.assertIn("[skip]", out)
        self.assertIn("torus", out)

    def test_measured_only_cell_is_reported(self):
        # The docstring's "or vice versa": a cell added to the bench but
        # absent from the committed baseline must be surfaced, not silent.
        base = doc([("ring", "3-majority", 100.0, 400.0)])
        meas = doc([("ring", "3-majority", 100.0, 400.0),
                    ("gossip", "3-majority", 500.0, 900.0)])
        code, out, _ = self.run_guard(base, meas)
        self.assertEqual(code, 0)
        self.assertIn("[new ]", out)
        self.assertIn("gossip", out)

    def test_rename_maps_and_target_not_reported_as_new(self):
        base = doc([("cycle", "3-majority", 100.0, 400.0)])
        meas = doc([("ring", "3-majority", 100.0, 400.0)])
        code, out, _ = self.run_guard(
            base, meas, "--rename", "cycle/3-majority=ring/3-majority")
        self.assertEqual(code, 0)
        self.assertIn("[map ]", out)
        self.assertNotIn("[new ]", out)
        self.assertNotIn("[skip]", out)

    def test_rename_still_catches_regressions(self):
        base = doc([("cycle", "3-majority", 100.0, 400.0)])
        meas = doc([("ring", "3-majority", 10.0, 400.0)])
        code, _, err = self.run_guard(
            base, meas, "--rename", "cycle/3-majority=ring/3-majority")
        self.assertEqual(code, 1)
        self.assertIn("strict_node_updates_per_sec", err)

    def test_push_metric_is_guarded(self):
        # The locality-sweep voter rows carry push_node_updates_per_sec;
        # a scatter-path regression must trip the guard like any engine.
        base = doc([("random 8-regular/rcm", "voter", 100.0, 400.0)])
        base["topologies"][0]["push_node_updates_per_sec"] = 900.0
        meas = doc([("random 8-regular/rcm", "voter", 100.0, 400.0)])
        meas["topologies"][0]["push_node_updates_per_sec"] = 100.0
        code, out, err = self.run_guard(base, meas)
        self.assertEqual(code, 1)
        self.assertIn("push_node_updates_per_sec", err)

    def test_no_comparable_cells_fails(self):
        base = doc([("ring", "3-majority", 100.0, 400.0)])
        meas = doc([("torus", "voter", 100.0, 400.0)])
        code, _, err = self.run_guard(base, meas)
        self.assertEqual(code, 1)
        self.assertIn("no comparable cells", err)

    def test_missing_bench_json_names_the_file_no_traceback(self):
        # A bench that never ran must produce an actionable one-liner
        # naming the missing path, not a FileNotFoundError traceback.
        base = doc([("ring", "3-majority", 100.0, 400.0)])
        base_path = os.path.join(self._tmp.name, "base.json")
        with open(base_path, "w") as f:
            json.dump(base, f)
        missing = os.path.join(self._tmp.name, "never_written.json")
        proc = subprocess.run(
            [sys.executable, GUARD, base_path, missing],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 1)
        self.assertIn(missing, proc.stderr)
        self.assertIn("did not run", proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    def test_missing_baseline_names_the_file_no_traceback(self):
        meas = doc([("ring", "3-majority", 100.0, 400.0)])
        meas_path = os.path.join(self._tmp.name, "meas.json")
        with open(meas_path, "w") as f:
            json.dump(meas, f)
        missing = os.path.join(self._tmp.name, "no_baseline.json")
        proc = subprocess.run(
            [sys.executable, GUARD, missing, meas_path],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 1)
        self.assertIn(missing, proc.stderr)
        self.assertIn("baseline", proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    def test_truncated_bench_json_is_actionable(self):
        base = doc([("ring", "3-majority", 100.0, 400.0)])
        base_path = os.path.join(self._tmp.name, "base.json")
        with open(base_path, "w") as f:
            json.dump(base, f)
        trunc_path = os.path.join(self._tmp.name, "truncated.json")
        with open(trunc_path, "w") as f:
            f.write('{"mode": "quick", "topologies": [')
        proc = subprocess.run(
            [sys.executable, GUARD, base_path, trunc_path],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 1)
        self.assertIn(trunc_path, proc.stderr)
        self.assertIn("not valid JSON", proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    def test_config_mismatch_fails_without_flag(self):
        base = doc([("ring", "3-majority", 100.0, 400.0)], n=100000)
        meas = doc([("ring", "3-majority", 100.0, 400.0)], n=1000000)
        code, _, err = self.run_guard(base, meas)
        self.assertEqual(code, 1)
        self.assertIn("configs differ", err)
        code, _, _ = self.run_guard(base, meas, "--allow-config-mismatch")
        self.assertEqual(code, 0)


if __name__ == "__main__":
    unittest.main()
