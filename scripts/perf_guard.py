#!/usr/bin/env python3
"""Perf-regression guard over BENCH_graphs.json.

Compares a freshly measured bench_graphs document against the committed
baseline and fails (exit 1) if node-updates/sec drops more than the
tolerance below the baseline for any (topology, dynamics, engine) cell,
where engine is one of strict / batched / reference.

Usage:
    perf_guard.py BASELINE.json MEASURED.json [--drop-tolerance 0.30]
                  [--rename old_topo/old_dyn=new_topo/new_dyn ...]

Notes:
  * The default tolerance is deliberately loose (30%): CI runs --quick on
    shared runners while the committed baseline is a default-mode run, so
    absolute throughput differs with n and machine. The guard's job is to
    catch step-change regressions (an accidentally de-vectorized kernel, a
    reintroduced per-round allocation), not 10% noise.
  * Cells present in the baseline but missing from the measurement (or vice
    versa) are reported and skipped: topology/dynamics additions must not
    break older baselines.
  * When a bench renames a cell (a topology spec string or dynamics name
    changes), pass --rename so the baseline keeps guarding it under the
    new name instead of silently skipping — regenerating the committed
    baseline on unrelated hardware would launder real regressions.
"""

import argparse
import json
import sys

ENGINE_METRICS = [
    "strict_node_updates_per_sec",
    "batched_node_updates_per_sec",
    "reference_node_updates_per_sec",
    "push_node_updates_per_sec",
]


def load_cells(path, role):
    try:
        with open(path) as f:
            doc = json.load(f)
    except FileNotFoundError:
        raise SystemExit(
            f"perf_guard: {role} file '{path}' does not exist — "
            f"{'the committed baseline is missing (regenerate it with the bench and commit it)' if role == 'baseline' else 'the bench that should have produced it did not run or wrote elsewhere'}")
    except json.JSONDecodeError as e:
        raise SystemExit(
            f"perf_guard: {role} file '{path}' is not valid JSON ({e}) — "
            f"likely a truncated or interrupted bench run; regenerate it")
    cells = {}
    for row in doc.get("topologies", []):
        key = (row.get("topology"), row.get("dynamics"))
        cells[key] = row
    return doc, cells


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("measured")
    parser.add_argument("--drop-tolerance", type=float, default=0.30,
                        help="maximum allowed fractional drop below baseline")
    parser.add_argument("--allow-config-mismatch", action="store_true",
                        help="compare even when mode/n/threads differ between the "
                             "documents (ad-hoc use only; the CI gate requires a "
                             "same-config baseline, otherwise a drifted config "
                             "silently degrades the guard)")
    parser.add_argument("--rename", action="append", default=[],
                        metavar="OLD_TOPO/OLD_DYN=NEW_TOPO/NEW_DYN",
                        help="map a baseline cell key onto its renamed measured key "
                             "(repeatable); keeps renamed bench cells guarded "
                             "instead of skipped")
    args = parser.parse_args()

    renames = {}
    for spec in args.rename:
        try:
            old, new = spec.split("=", 1)
            old_topo, old_dyn = old.split("/", 1)
            new_topo, new_dyn = new.split("/", 1)
        except ValueError:
            print(f"perf_guard: bad --rename '{spec}' "
                  f"(want old_topo/old_dyn=new_topo/new_dyn)", file=sys.stderr)
            return 2
        renames[(old_topo, old_dyn)] = (new_topo, new_dyn)

    base_doc, base_cells = load_cells(args.baseline, "baseline")
    meas_doc, meas_cells = load_cells(args.measured, "measured")
    print(f"baseline: mode={base_doc.get('mode')} n={base_doc.get('n')} "
          f"threads={base_doc.get('threads')}")
    print(f"measured: mode={meas_doc.get('mode')} n={meas_doc.get('n')} "
          f"threads={meas_doc.get('threads')}")
    mismatched = [f for f in ("mode", "n", "threads")
                  if base_doc.get(f) != meas_doc.get(f)]
    if mismatched:
        msg = (f"perf_guard: baseline/measured configs differ on "
               f"{', '.join(mismatched)} — throughput is not comparable; "
               f"regenerate the committed baseline for this configuration")
        if not args.allow_config_mismatch:
            print(msg, file=sys.stderr)
            return 1
        print(f"[warn] {msg} (--allow-config-mismatch given)")

    failures = []
    checked = 0
    for key, base_row in sorted(base_cells.items()):
        lookup = renames.get(key, key)
        meas_row = meas_cells.get(lookup)
        if meas_row is None:
            print(f"  [skip] {key}: not in measured document"
                  + (f" (as {lookup})" if lookup != key else ""))
            continue
        if lookup != key:
            print(f"  [map ] {key} -> {lookup}")
        for metric in ENGINE_METRICS:
            base = base_row.get(metric)
            meas = meas_row.get(metric)
            if base is None or meas is None:
                continue
            checked += 1
            floor = base * (1.0 - args.drop_tolerance)
            status = "ok" if meas >= floor else "FAIL"
            if meas < floor:
                failures.append((key, metric, base, meas))
            print(f"  [{status:>4}] {key[0]} / {key[1]} / {metric}: "
                  f"{meas:.3g} vs baseline {base:.3g} (floor {floor:.3g})")

    rename_targets = set(renames.values())
    for key in sorted(meas_cells):
        if key in base_cells or key in rename_targets:
            continue
        print(f"  [new ] {key}: not in baseline document — unguarded until the "
              f"committed baseline is regenerated")

    if checked == 0:
        print("perf_guard: no comparable cells — schema mismatch?", file=sys.stderr)
        return 1
    if failures:
        print(f"\nperf_guard: {len(failures)} cell(s) dropped more than "
              f"{args.drop_tolerance:.0%} below the committed baseline:",
              file=sys.stderr)
        for (topology, dynamics), metric, base, meas in failures:
            print(f"  {topology} / {dynamics} / {metric}: {meas:.3g} < "
                  f"{base * (1 - args.drop_tolerance):.3g}", file=sys.stderr)
        return 1
    print(f"perf_guard: all {checked} cells within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
