// plurality_sweep_top — live terminal view of a running plurality_sweepd.
//
// Connects to the master, polls the `status` protocol verb, and renders a
// refreshing table: grid totals, connected workers, and one row per leased
// cell with the latest heartbeat progress block (trial, round,
// node-updates/s, worker RSS). A monitor connection never takes leases and
// never shrinks the per-worker memory share, so it is safe to leave
// attached to a production sweep.
//
//   $ ./plurality_sweep_top --port-file out/k_grid/port
//   $ ./plurality_sweep_top --host 127.0.0.1 --port 7421 --once
//
// --once prints a single snapshot and exits 0 — the form CI polls.
//
// Exit codes: 0 snapshot(s) rendered (also when the master finished and
// closed the connection), 1 usage error or master never reachable.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "io/json.hpp"
#include "net/socket.hpp"
#include "service/protocol.hpp"
#include "support/check.hpp"
#include "support/cli.hpp"
#include "sweep/preflight.hpp"

namespace {

using namespace plurality;

std::uint16_t resolve_port(const std::string& port_file, std::uint16_t port,
                           double timeout_seconds) {
  if (port != 0) return port;
  PLURALITY_REQUIRE(!port_file.empty(),
                    "plurality_sweep_top: need --port or --port-file to find the master");
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  for (;;) {
    if (std::ifstream in(port_file); in.good()) {
      unsigned p = 0;
      in >> p;
      if (p > 0 && p <= 65535) return static_cast<std::uint16_t>(p);
    }
    PLURALITY_REQUIRE(std::chrono::steady_clock::now() < deadline,
                      "plurality_sweep_top: master port file " << port_file
                                                               << " never appeared");
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

double num_or_zero(const io::JsonValue& obj, const std::string& key) {
  const io::JsonValue* v = obj.get(key);
  return (v != nullptr && v->is_number()) ? v->as_double() : 0.0;
}

void render(const io::JsonValue& status) {
  const std::uint64_t total = status.at("cells_total").as_uint();
  const std::uint64_t done = status.at("done").as_uint();
  const std::uint64_t failed = status.at("failed").as_uint();
  const std::uint64_t pending = status.at("pending").as_uint();
  const std::uint64_t leased = status.at("leased").as_uint();
  const std::size_t workers =
      status.contains("workers") ? status.at("workers").size() : 0;

  std::printf("cells %llu/%llu done | %llu leased | %llu pending | %llu failed | "
              "%zu worker(s) | %.3g node-upd/s\n",
              static_cast<unsigned long long>(done), static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(leased),
              static_cast<unsigned long long>(pending),
              static_cast<unsigned long long>(failed), workers,
              num_or_zero(status, "node_updates_per_sec"));
  if (const io::JsonValue* cache = status.get("cache")) {
    std::printf("cache  %llu hit / %llu miss / %llu evicted\n",
                static_cast<unsigned long long>(cache->at("hits").as_uint()),
                static_cast<unsigned long long>(cache->at("misses").as_uint()),
                static_cast<unsigned long long>(cache->at("evictions").as_uint()));
  }
  if (status.at("draining").as_bool()) std::printf("DRAINING — no new leases\n");

  const io::JsonValue& cells = status.at("cells");
  if (cells.size() == 0) {
    std::printf("\n(no leased cells)\n");
    return;
  }
  std::printf("\n%-28s %-10s %7s %7s %9s %12s %10s %6s\n", "CELL", "WORKER", "ATTEMPT",
              "TRIAL", "ROUND", "NODE-UPD/S", "RSS", "AGE");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const io::JsonValue& row = cells.item(i);
    std::printf("%-28s %-10s %7llu ", row.at("cell").as_string().c_str(),
                row.at("worker").as_string().c_str(),
                static_cast<unsigned long long>(row.at("attempt").as_uint()));
    if (row.contains("round")) {
      std::printf("%7llu %9llu %12.3g %10s %5.0fs\n",
                  static_cast<unsigned long long>(row.at("trial").as_uint()),
                  static_cast<unsigned long long>(row.at("round").as_uint()),
                  num_or_zero(row, "node_updates_per_sec"),
                  sweep::format_bytes(row.at("rss_bytes").as_uint()).c_str(),
                  num_or_zero(row, "progress_age_seconds"));
    } else {
      std::printf("%7s %9s %12s %10s %6s\n", "-", "-", "-", "-", "-");
    }
  }
}

int run(int argc, char** argv) {
  CliParser cli("plurality_sweep_top",
                "live status table for a running plurality_sweepd master");
  cli.add_string("host", "127.0.0.1", "master address");
  cli.add_uint("port", 0, "master port (0 = read it from --port-file)");
  cli.add_string("port-file", "", "file the master writes its port into");
  cli.add_double("interval", 2.0, "seconds between refreshes");
  cli.add_double("connect-timeout", 10.0,
                 "give up connecting/port-file-polling after this many seconds");
  cli.add_flag("once", "print one snapshot and exit (no screen clearing)");
  if (!cli.parse(argc, argv)) return 0;

  const bool once = cli.flag("once");
  const double interval = cli.get_double("interval");
  const std::uint16_t port =
      resolve_port(cli.get_string("port-file"),
                   static_cast<std::uint16_t>(cli.get_uint("port")),
                   cli.get_double("connect-timeout"));
  net::TcpConnection conn =
      net::connect_tcp(cli.get_string("host"), port, cli.get_double("connect-timeout"));

  for (;;) {
    conn.send_all(service::encode(service::make_message("status")),
                  service::kIoTimeoutSeconds);
    std::string line;
    if (!conn.recv_line(line, service::kIoTimeoutSeconds)) {
      // Clean close: the master finished (or drained) — not a monitor error.
      std::printf("master closed the connection (sweep finished or draining)\n");
      return 0;
    }
    const io::JsonValue status = service::parse_message(line);
    PLURALITY_REQUIRE(service::message_type(status) == "status",
                      "plurality_sweep_top: expected status, got '"
                          << service::message_type(status) << "'");
    if (!once) std::printf("\033[H\033[2J");  // home + clear, top(1)-style
    render(status);
    std::fflush(stdout);
    if (once) return 0;
    std::this_thread::sleep_for(std::chrono::duration<double>(interval));
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "plurality_sweep_top: " << e.what() << "\n";
    return 1;
  }
}
