// plurality_sweepd — the fault-tolerant sweep master.
//
// Loads a SweepSpec, listens on a TCP port, and dispatches cells to
// plurality_sweep_worker processes under leases with heartbeats.
// Workers share the --out directory; results travel as CRC-enveloped
// checkpoint files on disk, never over the wire. Kill workers freely:
// expired leases are reassigned with the same exponential backoff and
// attempt budget as the in-process orchestrator, and the final
// aggregate.csv is bitwise-identical (under --zero-wall-times) to a
// single-process plurality_sweep run of the same grid.
//
//   $ ./plurality_sweepd --sweep sweeps/consensus_vs_k.json --out out/k_grid \
//         --port-file out/k_grid/port &
//   $ ./plurality_sweep_worker --port-file out/k_grid/port &
//   $ ./plurality_sweep_worker --port-file out/k_grid/port &
//
// SIGTERM/SIGINT drains: no new leases, in-flight leases get up to
// --drain-seconds to finish, the manifest is left resumable, exit 130.
// Restart with --resume to continue exactly where it stopped.
//
// Exit codes: 0 grid complete, 1 usage/config error, 2 cells failed
// terminally, 130 drained (resumable).
#include <iostream>

#include "obs/trace.hpp"
#include "service/master.hpp"
#include "support/check.hpp"
#include "support/cli.hpp"
#include "sweep/fault_plan.hpp"
#include "sweep/watchdog.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace plurality;

  CliParser cli("plurality_sweepd",
                "serve a scenario grid to plurality_sweep_worker processes under "
                "leases with crash-safe reassignment");
  cli.add_string("sweep", "", "read the SweepSpec from this JSON file");
  cli.add_string("grid", "",
                 "compact sweep string: \"key=value[,value...] ...\" (commas make an axis)");
  cli.add_string("out", "",
                 "shared checkpoint directory (manifest.json, cells/, aggregate.csv); "
                 "workers must see the same filesystem");
  cli.add_string("host", "127.0.0.1", "address to listen on");
  cli.add_uint("port", 0, "TCP port to listen on (0 = ephemeral; see --port-file)");
  cli.add_string("port-file", "",
                 "write the bound port here (atomically) once listening — how workers "
                 "find an ephemeral port");
  cli.add_flag("resume", "skip cells whose result file already matches the grid");
  cli.add_flag("force", "start over inside a populated out dir (deletes stale cell files)");
  cli.add_uint("trials", 0, "override every cell's trial count (0 = spec values)");
  cli.add_double("heartbeat-seconds", service::kDefaultHeartbeatSeconds,
                 "workers heartbeat at this cadence while computing");
  cli.add_double("lease-seconds", 0.0,
                 "lease expiry; a silent lease past this is reassigned "
                 "(0 = 3x heartbeat)");
  cli.add_double("cell-timeout", 0.0,
                 "per-cell wall-clock deadline in seconds, enforced by the worker's "
                 "watchdog (0 = none)");
  cli.add_uint("retries", 2,
               "retries per cell after a retryable failure; attempts persist across "
               "worker deaths via the shared ledger");
  cli.add_double("retry-backoff", 0.05,
                 "base reassignment backoff in seconds (doubles per attempt, "
                 "seeded jitter)");
  cli.add_uint("memory-budget-mb", 0,
               "preflight memory budget in MiB for the WHOLE worker host "
               "(0 = ~80% of RAM); each lease carries budget / connected workers");
  cli.add_flag("zero-wall-times",
               "write wall_seconds as 0 everywhere so identical grids produce "
               "bitwise-identical artifacts (CI golden comparisons)");
  cli.add_double("drain-seconds", 10.0,
                 "on SIGTERM/SIGINT, wait this long for in-flight leases before "
                 "writing the resumable manifest");
  cli.add_string("fault-plan", "",
                 "deterministic fault-injection plan (JSON) forwarded to every "
                 "worker; torture/CI use only");
  cli.add_string("cache-dir", "",
                 "result cache directory: completed cells are stored by resolved-spec "
                 "hash and future sweeps fetch instead of recomputing");
  cli.add_uint("cache-max-entries", 0,
               "bound on --cache-dir entries; each store trims the oldest-mtime "
               "entries past the bound (0 = unbounded)");
  cli.add_double("progress-seconds", 0.0,
                 "print an aggregate progress line (cells done/leased/pending, summed "
                 "worker node-updates/s) every N seconds (0 = off)");
  cli.add_uint("metrics-port", 0,
               "serve the Prometheus text exposition over HTTP on this port "
               "(0 with --metrics-port-file = ephemeral)");
  cli.add_string("metrics-port-file", "",
                 "write the bound metrics port here (atomically) once serving");
  cli.add_string("trace-out", "",
                 "write a Chrome trace-event JSON (lease round-trips, checkpoint "
                 "scans) to this file on exit");
  cli.add_flag("quiet", "suppress progress lines");
  if (!cli.parse(argc, argv)) return 0;

  const bool from_file = !cli.get_string("sweep").empty();
  const bool from_grid = !cli.get_string("grid").empty();
  PLURALITY_REQUIRE(from_file != from_grid,
                    "plurality_sweepd: pass exactly one of --sweep <file> or --grid "
                    "\"<spec>\" (see --help)");

  service::MasterOptions options;
  options.spec = from_file ? sweep::SweepSpec::from_json_file(cli.get_string("sweep"))
                           : sweep::SweepSpec::parse(cli.get_string("grid"));
  options.out_dir = cli.get_string("out");
  options.host = cli.get_string("host");
  options.port = static_cast<std::uint16_t>(cli.get_uint("port"));
  options.port_file = cli.get_string("port-file");
  options.resume = cli.flag("resume");
  options.force = cli.flag("force");
  options.trials_override = cli.get_uint("trials");
  options.heartbeat_seconds = cli.get_double("heartbeat-seconds");
  options.lease_seconds = cli.get_double("lease-seconds");
  options.cell_timeout_seconds = cli.get_double("cell-timeout");
  options.max_retries = static_cast<std::uint32_t>(cli.get_uint("retries"));
  options.retry_backoff_seconds = cli.get_double("retry-backoff");
  options.memory_budget_bytes = cli.get_uint("memory-budget-mb") * (1ull << 20);
  options.zero_wall_times = cli.flag("zero-wall-times");
  options.drain_seconds = cli.get_double("drain-seconds");
  options.cache_dir = cli.get_string("cache-dir");
  options.cache_max_entries = cli.get_uint("cache-max-entries");
  options.progress_seconds = cli.get_double("progress-seconds");
  options.metrics_port = static_cast<std::uint16_t>(cli.get_uint("metrics-port"));
  options.metrics_port_file = cli.get_string("metrics-port-file");
  options.serve_metrics = cli.provided("metrics-port") || !options.metrics_port_file.empty();
  options.verbose = !cli.flag("quiet");
  if (!cli.get_string("fault-plan").empty()) {
    // Validate locally (bad plans fail HERE, with a line/column message),
    // then forward the raw text so every worker arms the identical plan.
    const io::JsonValue plan = io::read_json_file(cli.get_string("fault-plan"));
    (void)sweep::FaultPlan::from_json(plan);
    options.fault_plan_text = plan.to_compact_string();
  }

  const std::string trace_out = cli.get_string("trace-out");
  if (!trace_out.empty()) obs::TraceRecorder::global().enable();

  sweep::install_shutdown_signal_handlers();
  const int exit_code = service::run_master(std::move(options));
  if (!trace_out.empty()) obs::TraceRecorder::global().write(trace_out);
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "plurality_sweepd: " << e.what() << "\n";
    return 1;
  }
}
