// plurality_sweep_worker — one compute process for a plurality_sweepd
// master.
//
// Connects, receives the sweep spec and out_dir in the welcome, then
// loops: lease a cell, run ONE attempt with the shared cell runner
// (heartbeating while it computes), commit the result as a CRC
// checkpoint file under link(2) first-write-wins, report, repeat.
// Start as many as the host's memory budget allows — the master hands
// each lease the per-worker share.
//
//   $ ./plurality_sweep_worker --port-file out/k_grid/port
//   $ ./plurality_sweep_worker --host 127.0.0.1 --port 7421 --name w1
//
// If the master vanishes mid-cell the worker degrades to
// local-orchestrator mode: it finishes the cell, the file lands on
// disk, and a restarted master reconciles it from there.
//
// Exit codes: 0 drained by the master (grid done) or idle when the
// master vanished, 1 usage/config error, 3 orphaned mid-cell (work
// committed locally, report lost), 130 shutdown signal, 86 injected
// crash fault.
#include <iostream>

#include "obs/trace.hpp"
#include "service/worker.hpp"
#include "support/cli.hpp"
#include "sweep/watchdog.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace plurality;

  CliParser cli("plurality_sweep_worker",
                "lease and run sweep cells for a plurality_sweepd master");
  cli.add_string("host", "127.0.0.1", "master address");
  cli.add_uint("port", 0, "master port (0 = read it from --port-file)");
  cli.add_string("port-file", "",
                 "file the master writes its port into; polled until "
                 "--connect-timeout so workers can start first");
  cli.add_string("name", "", "worker name in master logs (default w<pid>)");
  cli.add_double("connect-timeout", 10.0,
                 "give up connecting/port-file-polling after this many seconds");
  cli.add_string("trace-out", "",
                 "write a Chrome trace-event JSON (cell attempts, trials, checkpoint "
                 "writes, lease round-trips) to this file on exit");
  cli.add_flag("quiet", "suppress progress lines");
  if (!cli.parse(argc, argv)) return 0;

  service::WorkerOptions options;
  options.host = cli.get_string("host");
  options.port = static_cast<std::uint16_t>(cli.get_uint("port"));
  options.port_file = cli.get_string("port-file");
  options.name = cli.get_string("name");
  options.connect_timeout_seconds = cli.get_double("connect-timeout");
  options.verbose = !cli.flag("quiet");

  const std::string trace_out = cli.get_string("trace-out");
  if (!trace_out.empty()) obs::TraceRecorder::global().enable();

  sweep::install_shutdown_signal_handlers();
  const int exit_code = service::run_worker(std::move(options));
  if (!trace_out.empty()) obs::TraceRecorder::global().write(trace_out);
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "plurality_sweep_worker: " << e.what() << "\n";
    return 1;
  }
}
