// E9 — Section 1's remark: 2 samples with uniform tie-breaking IS the
// polling (voter) process, and that process fails plurality consensus even
// from s = Theta(n).
//
// Three layers of evidence:
//  (a) exact kernel identity: max |p_voter - p_2choices| over random
//      configurations is floating-point zero;
//  (b) exact Markov analysis (small n): win probability from share alpha is
//      exactly alpha for both, vs 3-majority's amplified curve;
//  (c) Monte Carlo at larger n: minority-win rates stay constant in n.
#include <cmath>
#include <iostream>

#include "common/experiment.hpp"
#include "core/majority.hpp"
#include "core/markov_exact.hpp"
#include "core/trials.hpp"
#include "core/voter.hpp"
#include "core/workloads.hpp"
#include "rng/distributions.hpp"
#include "support/format.hpp"

namespace plurality::bench {
namespace {

int run(int argc, const char* const* argv) {
  Experiment exp("E9", "2-choices(uniform tie) == voter; both fail plurality",
                 "Section 1 (polling equivalence, [12])", "bench_voter_equiv");
  if (!exp.parse(argc, argv)) return 0;

  const std::uint64_t trials =
      exp.trials() != 0 ? exp.trials() : exp.scaled<std::uint64_t>(400, 2000, 10000);

  exp.record().add("workload", "binary configurations with share alpha = c0/n");
  exp.record().add("trials/point (Monte Carlo)", std::to_string(trials));
  exp.record().set_expectation(
      "identical kernels; win probability exactly alpha (minority wins w.p. "
      "1-alpha at every n); 3-majority amplifies instead");
  exp.print_header();

  // (a) Kernel identity over random configurations.
  Voter voter;
  TwoChoices two;
  rng::Xoshiro256pp gen(exp.seed());
  double max_gap = 0.0;
  for (int trial = 0; trial < 1000; ++trial) {
    const auto k = static_cast<state_t>(2 + rng::uniform_below(gen, 14));
    std::vector<double> counts(k);
    for (auto& c : counts) c = static_cast<double>(1 + rng::uniform_below(gen, 10000));
    std::vector<double> law_voter(k), law_two(k);
    voter.adoption_law(counts, law_voter);
    two.adoption_law(counts, law_two);
    for (state_t j = 0; j < k; ++j) {
      max_gap = std::max(max_gap, std::fabs(law_voter[j] - law_two[j]));
    }
  }
  std::cout << "(a) kernel identity: max |p_voter - p_2choices| over 1000 random "
               "configurations = "
            << format_sig(max_gap, 3) << "\n";

  // (b) Exact win probabilities at n = 120.
  const count_t n_exact = 120;
  const auto voter_exact = analyze_k2(voter, n_exact);
  const auto two_exact = analyze_k2(two, n_exact);
  ThreeMajority majority;
  const auto majority_exact = analyze_k2(majority, n_exact);
  io::Table exact_table({"share c0/n", "voter win (exact)", "2-choices win (exact)",
                         "exact alpha", "3-majority win (exact)"});
  for (const double alpha : {0.55, 0.6, 0.7, 0.8, 0.9}) {
    const auto c0 = static_cast<count_t>(alpha * n_exact);
    exact_table.row()
        .cell(alpha, 3)
        .cell(voter_exact.win_color0[c0], 6)
        .cell(two_exact.win_color0[c0], 6)
        .cell(static_cast<double>(c0) / n_exact, 6)
        .cell(majority_exact.win_color0[c0], 6);
  }
  std::cout << "\n(b) exact absorption probabilities (n = " << n_exact << "):\n";
  exp.emit(exact_table, "exact");

  // (c) Monte Carlo minority-win rates across n at fixed share 0.6.
  io::Table mc_table({"n", "dynamics", "win rate", "minority-win rate",
                      "mean rounds", "rounds/n"});
  for (const count_t n : {200ull, 1000ull, 5000ull}) {
    const Configuration start = workloads::additive_bias(
        n, 2, static_cast<count_t>(0.2 * static_cast<double>(n)));
    for (const Dynamics* dynamics :
         {static_cast<const Dynamics*>(&voter), static_cast<const Dynamics*>(&two),
          static_cast<const Dynamics*>(&majority)}) {
      CommonTrialOptions options;
      options.trials = trials;
      options.seed = exp.seed() + n;
      options.max_rounds = exp.max_rounds();
      const TrialSummary summary = run_trials(*dynamics, start, options);
      mc_table.row()
          .cell(n)
          .cell(dynamics->name())
          .percent(summary.win_rate())
          .percent(1.0 - summary.win_rate())
          .cell(summary.rounds.mean(), 4)
          .cell(summary.rounds.mean() / static_cast<double>(n), 3);
    }
  }
  std::cout << "\n(c) Monte Carlo at share 0.6 (minority-win should stay ~40% for the\n"
               "    voter pair at every n, ~0% for 3-majority; voter rounds ~ Theta(n)):\n";
  exp.emit(mc_table, "mc");

  exp.finish();
  return 0;
}

}  // namespace
}  // namespace plurality::bench

int main(int argc, char** argv) { return plurality::bench::run(argc, argv); }
