// E1 — Theorem 1 / Corollary 1: 3-majority convergence time vs k.
//
// Workload: additive-bias configurations at a fixed multiple of the
// critical bias scale sqrt(min{2k, (n/ln n)^(1/3)} n ln n). The paper
// predicts convergence in O(min{2k, (n/ln n)^(1/3)} log n) rounds w.h.p.
// with the initial plurality winning; the table reports measured rounds,
// the normalized ratio rounds / (min-factor * ln n) (which should flatten
// to a constant), and the plurality win rate (which should be ~100%).
//
// The grid itself is a SweepSpec over the k axis (sweep/orchestrator.hpp)
// — this binary just builds the spec, runs it in memory, and prints the
// paper-style normalization. The same grid, file-backed and resumable,
// ships as sweeps/consensus_vs_k.json for plurality_sweep.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/experiment.hpp"
#include "core/workloads.hpp"
#include "support/format.hpp"
#include "sweep/orchestrator.hpp"

namespace plurality::bench {
namespace {

int run(int argc, const char* const* argv) {
  Experiment exp("E1", "3-majority convergence time vs k",
                 "Theorem 1 / Corollary 1 (upper bound)", "bench_convergence_vs_k");
  exp.cli().add_uint("n", 0, "number of nodes (0 = mode default)");
  exp.cli().add_double("bias-mult", 2.0,
                       "initial bias as a multiple of the critical scale");
  if (!exp.parse(argc, argv)) return 0;

  const count_t n = exp.cli().get_uint("n") != 0
                        ? exp.cli().get_uint("n")
                        : exp.scaled<count_t>(100'000, 1'000'000, 10'000'000);
  const std::uint64_t trials = exp.trials() != 0 ? exp.trials()
                                                 : exp.scaled<std::uint64_t>(10, 30, 100);
  const double mult = exp.cli().get_double("bias-mult");
  const double ln_n = std::log(static_cast<double>(n));

  exp.record().add("workload", "additive_bias(n, k, mult * critical_bias_scale(n, k))");
  exp.record().add("n", format_count(n));
  exp.record().add("bias multiplier", format_sig(mult, 3));
  exp.record().add("trials/point", std::to_string(trials));
  exp.record().set_expectation(
      "UPPER bound: rounds <= C * min{2k, (n/ln n)^(1/3)} * ln n with one "
      "constant C across all k, and plurality win rate ~100% at the paper's "
      "bias (the matching linear-in-k growth is E2's lower bound)");
  exp.print_header();

  // The grid as a sweep: k axis over the workable range (points whose
  // required bias reaches a constant fraction of n are skipped, as before).
  sweep::SweepSpec sweep_spec;
  char workload[32];
  std::snprintf(workload, sizeof(workload), "bias:%gc", mult);
  sweep_spec.base.dynamics = "3-majority";
  sweep_spec.base.workload = workload;
  sweep_spec.base.n = n;
  sweep_spec.base.trials = trials;
  sweep_spec.base.seed = exp.seed();
  sweep_spec.base.max_rounds = exp.max_rounds();

  sweep::SweepAxis k_axis{"k", {}};
  for (state_t k : {2, 4, 8, 16, 32, 64, 128, 256}) {
    const double critical = workloads::critical_bias_scale(n, k);
    if (static_cast<count_t>(mult * critical) >= n / 2) {
      std::cout << "[skip] k=" << k << ": required bias "
                << static_cast<count_t>(mult * critical)
                << " is a constant fraction of n at this scale\n";
      continue;
    }
    k_axis.values.push_back(std::to_string(k));
  }
  sweep_spec.axes.push_back(std::move(k_axis));

  const sweep::SweepOutcome outcome = sweep::run_sweep(sweep_spec, sweep::SweepOptions{});

  io::Table table({"k", "min-factor", "bias s", "s/critical", "rounds (mean ± ci)",
                   "rounds p95", "rounds/(factor*ln n)", "win rate"});
  std::vector<double> xs, ys;
  for (const sweep::CellOutcome& cell : outcome.cells) {
    const state_t k = cell.requested.k;
    const double critical = workloads::critical_bias_scale(n, k);
    const auto s = static_cast<count_t>(mult * critical);
    const double factor =
        std::min(2.0 * k, std::cbrt(static_cast<double>(n) / ln_n));
    const TrialSummary& summary = cell.summary;

    const double normalized = summary.rounds.mean() / (factor * ln_n);
    table.row()
        .cell(static_cast<std::uint64_t>(k))
        .cell(factor, 4)
        .cell(s)
        .cell(static_cast<double>(s) / critical, 3)
        .cell(mean_ci_cell(summary.rounds.mean(), summary.rounds.ci95_halfwidth()))
        .cell(summary.rounds_p(0.95), 4)
        .cell(normalized, 3)
        .percent(summary.win_rate());
    xs.push_back(factor * ln_n);
    ys.push_back(summary.rounds.mean());
  }
  exp.emit(table);

  if (!xs.empty()) {
    double worst = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) worst = std::max(worst, ys[i] / xs[i]);
    std::cout << "\nUpper-bound constant: max over k of rounds/(min-factor * ln n) = "
              << format_sig(worst, 4)
              << "\n(Theorem 1/Corollary 1 predict this stays bounded by one constant as"
              << "\n k and n grow; the paper's own constant is far more conservative."
              << "\n At this n the threshold bias already reaches n/k for larger k, so"
              << "\n the visible growth saturates — the tight linear-in-k regime is"
              << "\n exercised from below by bench_lower_bound/E2.)\n";
  }
  exp.finish();
  return 0;
}

}  // namespace
}  // namespace plurality::bench

int main(int argc, char** argv) { return plurality::bench::run(argc, argv); }
