// Shared harness for the experiment binaries (bench/bench_*).
//
// Every experiment binary:
//   * announces itself with an ExperimentRecord header (experiment id,
//     paper result, workload, expectation),
//   * accepts the common CLI options (--trials, --seed, --max-rounds,
//     --csv, --quick/--full),
//   * prints paper-style tables and optionally mirrors them to CSV.
#pragma once

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "io/csv.hpp"
#include "io/record.hpp"
#include "io/table.hpp"
#include "support/cli.hpp"
#include "support/timer.hpp"
#include "support/types.hpp"

namespace plurality::bench {

class Experiment {
 public:
  /// Registers the common options. Call add_* for extra options before
  /// parse().
  Experiment(std::string id, std::string title, std::string paper_result,
             std::string binary_name);

  CliParser& cli() { return cli_; }

  /// Parses argv; returns false if --help was printed (caller exits 0).
  bool parse(int argc, const char* const* argv);

  // Common knobs (valid after parse()).
  [[nodiscard]] std::uint64_t trials() const;
  [[nodiscard]] std::uint64_t seed() const;
  [[nodiscard]] round_t max_rounds() const;
  /// True when --quick (CI-sized run) was requested.
  [[nodiscard]] bool quick() const;
  /// True when --full (paper-sized run) was requested.
  [[nodiscard]] bool full() const;
  /// Effective OpenMP team size after --threads (1 without OpenMP). parse()
  /// pins the team when --threads is given, so committed JSON snapshots are
  /// reproducible across machines.
  [[nodiscard]] unsigned threads() const;
  /// "quick" / "default" / "full" — recorded in machine-readable output so
  /// trend tooling never compares across run sizes. Benches that emit JSON
  /// register their own `--json` option (see bench_throughput).
  [[nodiscard]] std::string mode_name() const;

  /// Picks quick/default/full value by mode.
  template <typename T>
  [[nodiscard]] T scaled(T quick_value, T default_value, T full_value) const {
    if (quick()) return quick_value;
    if (full()) return full_value;
    return default_value;
  }

  /// Header block; call once before the sweep.
  io::ExperimentRecord& record() { return record_; }
  void print_header();

  /// Emits the table to stdout and mirrors rows to --csv when given.
  void emit(const io::Table& table, const std::string& csv_suffix = "");

  /// Closing line with total wall time.
  void finish();

 private:
  std::string id_;
  std::string binary_name_;
  CliParser cli_;
  io::ExperimentRecord record_;
  WallTimer timer_;
};

/// Formats "mean ± ci95" for table cells.
std::string mean_ci_cell(double mean, double ci_halfwidth);

}  // namespace plurality::bench
